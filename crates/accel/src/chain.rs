//! Hardware accelerator chaining (§2.2, §5.4).
//!
//! A `PASS` with several `COMP`s configures the tile switches so data
//! streams from the first accelerator (which fetches from DRAM) through
//! the chain to the last (which stores back); intermediate results stay
//! in the tiles' Local Memories. Software chaining — separate passes per
//! accelerator — round-trips every intermediate through DRAM instead.

use mealib_memsim::{analytic, AccessPattern, MemoryConfig};
use mealib_types::{Joules, Seconds};

use crate::hw::AccelHwConfig;
use crate::model::{AccelModel, ExecReport, CONFIG_LATENCY};
use crate::params::AccelParams;
use crate::power::profile_at;

/// Prices a chained pass: the stages pipeline, only the first stage's
/// input and the last stage's output touch DRAM.
///
/// # Panics
///
/// Panics if `comps` is empty or any parameter set fails validation.
pub fn execute_chained(
    comps: &[AccelParams],
    hw: &AccelHwConfig,
    mem: &MemoryConfig,
) -> ExecReport {
    assert!(!comps.is_empty(), "a chained pass needs at least one stage");
    if comps.len() == 1 {
        return AccelModel::new(comps[0].kind()).execute(&comps[0], hw, mem);
    }
    let stages: Vec<ExecReport> = comps
        .iter()
        .map(|p| AccelModel::new(p.kind()).execute(p, hw, mem))
        .collect();

    // Boundary DRAM traffic: the first stage's reads and the last
    // stage's writes.
    let first = &stages[0];
    let last = stages.last().expect("nonempty");
    let boundary =
        AccessPattern::sequential_rw(first.mem.bytes_read.get(), last.mem.bytes_written.get());
    let mut mem_stats = analytic::try_estimate(mem, &boundary).expect("validated memory config");
    let eff = comps
        .iter()
        .map(|p| AccelModel::new(p.kind()).bandwidth_efficiency())
        .fold(1.0_f64, f64::min);
    mem_stats.elapsed = mem_stats.elapsed / eff;

    // The pipeline runs at the rate of its slowest stage; stages overlap.
    let slowest_compute = stages
        .iter()
        .map(|s| s.compute_time)
        .fold(Seconds::ZERO, Seconds::max);
    let busy = mem_stats.elapsed.max(slowest_compute);
    // One pipeline fill of the chain (one stage's latency per link).
    let fill = CONFIG_LATENCY * (comps.len() - 1) as f64;
    let time = busy + CONFIG_LATENCY + fill;

    let mem_energy =
        mem.energy
            .trace_energy(mem_stats.activations, mem_stats.bytes_moved().get(), busy);
    mem_stats.energy = mem_energy;

    // Every stage's datapath still processes the full stream, and all
    // FLOPs still execute — chaining saves DRAM traffic, not core work.
    let mut core_energy = Joules::ZERO;
    let mut flops = 0u64;
    for (p, s) in comps.iter().zip(&stages) {
        let prof = profile_at(p.kind(), hw.frequency);
        core_energy += prof.e_byte_datapath * s.mem.bytes_moved().get() as f64
            + prof.e_flop * s.flops as f64
            + prof.p_leakage.for_duration(time);
        flops += s.flops;
    }

    ExecReport {
        kind: last.kind,
        time,
        mem_time: mem_stats.elapsed,
        compute_time: slowest_compute,
        energy: mem_energy + core_energy,
        mem_energy,
        flops,
        mem: mem_stats,
    }
}

/// Prices the same comps as *separate* passes (software chaining): each
/// stage round-trips through DRAM, and each stage pays `per_pass_overhead`
/// (descriptor handling, cache flushing — supplied by the runtime layer).
///
/// # Panics
///
/// Panics if `comps` is empty.
pub fn execute_unchained(
    comps: &[AccelParams],
    hw: &AccelHwConfig,
    mem: &MemoryConfig,
    per_pass_overhead: Seconds,
) -> ExecReport {
    assert!(
        !comps.is_empty(),
        "a pass sequence needs at least one stage"
    );
    let mut total: Option<ExecReport> = None;
    for p in comps {
        let mut stage = AccelModel::new(p.kind()).execute(p, hw, mem);
        stage.time += per_pass_overhead;
        total = Some(match total {
            None => stage,
            Some(acc) => acc.then(&stage),
        });
    }
    total.expect("nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sar_stages(pixels: u64) -> Vec<AccelParams> {
        vec![
            AccelParams::Resmp {
                blocks: pixels.isqrt(),
                in_per_block: pixels.isqrt(),
                out_per_block: pixels.isqrt(),
            },
            AccelParams::Fft {
                n: pixels.isqrt().next_power_of_two(),
                batch: pixels.isqrt(),
            },
        ]
    }

    fn ctx() -> (AccelHwConfig, MemoryConfig) {
        (AccelHwConfig::mealib_default(), MemoryConfig::hmc_stack())
    }

    #[test]
    fn chaining_beats_software_chaining() {
        let (hw, mem) = ctx();
        let stages = sar_stages(256 * 256);
        let hw_chain = execute_chained(&stages, &hw, &mem);
        let sw_chain = execute_unchained(&stages, &hw, &mem, Seconds::from_micros(20.0));
        assert!(
            sw_chain.time.get() > 1.5 * hw_chain.time.get(),
            "sw {} vs hw {}",
            sw_chain.time,
            hw_chain.time
        );
    }

    #[test]
    fn chaining_gain_shrinks_with_problem_size() {
        let (hw, mem) = ctx();
        let gain = |pixels: u64| {
            let stages = sar_stages(pixels);
            let h = execute_chained(&stages, &hw, &mem);
            let s = execute_unchained(&stages, &hw, &mem, Seconds::from_micros(20.0));
            s.time / h.time
        };
        let small = gain(256 * 256);
        let large = gain(8192 * 8192);
        assert!(
            small > large,
            "Fig 12a shape: gain must shrink with size ({small:.2} vs {large:.2})"
        );
        assert!(large >= 1.0, "chaining never loses");
    }

    #[test]
    fn chained_moves_less_dram_traffic() {
        let (hw, mem) = ctx();
        let stages = sar_stages(1024 * 1024);
        let h = execute_chained(&stages, &hw, &mem);
        let s = execute_unchained(&stages, &hw, &mem, Seconds::ZERO);
        assert!(h.mem.bytes_moved() < s.mem.bytes_moved());
    }

    #[test]
    fn chained_keeps_all_flops() {
        let (hw, mem) = ctx();
        let stages = sar_stages(512 * 512);
        let h = execute_chained(&stages, &hw, &mem);
        let s = execute_unchained(&stages, &hw, &mem, Seconds::ZERO);
        assert_eq!(h.flops, s.flops, "chaining must not drop work");
    }

    #[test]
    fn single_stage_chain_is_plain_execution() {
        let (hw, mem) = ctx();
        let p = AccelParams::Fft { n: 4096, batch: 64 };
        let chained = execute_chained(std::slice::from_ref(&p), &hw, &mem);
        let plain = AccelModel::new(p.kind()).execute(&p, &hw, &mem);
        assert_eq!(chained, plain);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_chain_panics() {
        let (hw, mem) = ctx();
        let _ = execute_chained(&[], &hw, &mem);
    }
}
