//! The Configuration Unit (Figure 5): fetch, decode, and sequencing of
//! accelerator descriptors.
//!
//! The CU's Fetch Unit copies the descriptor from the command space into
//! its Instruction Memory; the Decode Unit walks the Instruction Region
//! pass by pass, configures the tile switches over the NoC, triggers the
//! accelerator-initialization parameter fetch, and monitors pass
//! completion. A `LOOP` block re-runs its passes without re-fetching or
//! re-decoding — the hardware-loop advantage of §5.4.

use core::fmt;

use mealib_memsim::{analytic, AccessPattern};
use mealib_tdl::descriptor::{DecodedInstr, Descriptor, DescriptorError};
use mealib_types::{Hertz, Joules, Seconds};

use crate::chain::execute_chained;
use crate::layer::AcceleratorLayer;
use crate::model::{AccelModel, ExecReport, CONFIG_LATENCY};
use crate::params::{AccelParams, ParamsError};
use crate::power::profile_at;

/// Per-iteration trigger latency of a hardware `LOOP`: the switches are
/// already configured, the Decode Unit only re-fires the pass.
pub const LOOP_ITER_LATENCY: Seconds = Seconds::new(50e-9);

/// Cost parameters of the CU front-end.
#[derive(Debug, Clone, PartialEq)]
pub struct CuCostModel {
    /// Decode-unit cycles per IR instruction.
    pub decode_cycles_per_instr: u64,
    /// CU clock.
    pub clock: Hertz,
    /// Configuration bytes broadcast to each tile per pass.
    pub config_bytes_per_tile: u64,
}

impl Default for CuCostModel {
    fn default() -> Self {
        Self {
            decode_cycles_per_instr: 8,
            clock: Hertz::from_ghz(1.0),
            config_bytes_per_tile: 64,
        }
    }
}

/// Errors from running a descriptor.
#[derive(Debug, Clone, PartialEq)]
pub enum CuError {
    /// The descriptor image failed to decode.
    Descriptor(DescriptorError),
    /// A parameter blob failed to parse.
    Params(ParamsError),
    /// An accelerator instruction's opcode disagreed with its parameter
    /// blob's tag.
    KindMismatch,
}

impl fmt::Display for CuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CuError::Descriptor(e) => write!(f, "descriptor error: {e}"),
            CuError::Params(e) => write!(f, "parameter error: {e}"),
            CuError::KindMismatch => f.write_str("instruction opcode disagrees with parameters"),
        }
    }
}

impl std::error::Error for CuError {}

impl From<DescriptorError> for CuError {
    fn from(e: DescriptorError) -> Self {
        CuError::Descriptor(e)
    }
}

impl From<ParamsError> for CuError {
    fn from(e: ParamsError) -> Self {
        CuError::Params(e)
    }
}

/// One executed (static) pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PassRun {
    /// Parameters of each chained stage.
    pub stages: Vec<AccelParams>,
    /// The modeled execution of one iteration of this pass.
    pub report: ExecReport,
    /// Loop multiplier applied to this pass (1 outside loops).
    pub iterations: u64,
}

/// Itemized CU front-end work: the same total as
/// [`DescriptorRun::setup_time`] / `setup_energy`, split by phase for
/// attribution (descriptor fetch, instruction decode, configuration
/// broadcast, completion gather) plus the event counts the
/// observability layer reports.
#[derive(Debug, Clone, PartialEq)]
pub struct CuFrontEnd {
    /// Time streaming the descriptor image out of DRAM.
    pub fetch_time: Seconds,
    /// Energy of the descriptor fetch.
    pub fetch_energy: Joules,
    /// Descriptor image size fetched.
    pub fetch_bytes: u64,
    /// Decode Unit time over the Instruction Region.
    pub decode_time: Seconds,
    /// Instructions decoded.
    pub decoded_instrs: u64,
    /// Switch-configuration broadcast time (plus the one-time loop
    /// configuration charge).
    pub config_time: Seconds,
    /// Energy of the configuration broadcasts.
    pub config_energy: Joules,
    /// Pass-completion gather time.
    pub drain_time: Seconds,
    /// Energy of the completion gathers.
    pub drain_energy: Joules,
    /// NoC flits injected by broadcasts and gathers.
    pub noc_flits: u64,
    /// NoC flit-hops traversed by broadcasts and gathers.
    pub noc_flit_hops: u64,
    /// Hardware-loop iterations re-triggered without host involvement
    /// (iterations of looped passes).
    pub loop_iterations: u64,
}

impl Default for CuFrontEnd {
    fn default() -> Self {
        Self {
            fetch_time: Seconds::ZERO,
            fetch_energy: Joules::ZERO,
            fetch_bytes: 0,
            decode_time: Seconds::ZERO,
            decoded_instrs: 0,
            config_time: Seconds::ZERO,
            config_energy: Joules::ZERO,
            drain_time: Seconds::ZERO,
            drain_energy: Joules::ZERO,
            noc_flits: 0,
            noc_flit_hops: 0,
            loop_iterations: 0,
        }
    }
}

/// The result of running one descriptor through the CU.
#[derive(Debug, Clone, PartialEq)]
pub struct DescriptorRun {
    /// One-time front-end cost: descriptor fetch + decode + per-pass
    /// configuration broadcasts.
    pub setup_time: Seconds,
    /// Energy of the front-end work.
    pub setup_energy: Joules,
    /// The front-end cost itemized by phase (sums to `setup_time` /
    /// `setup_energy`).
    pub front_end: CuFrontEnd,
    /// Static passes with their per-iteration reports and multipliers.
    pub passes: Vec<PassRun>,
}

impl DescriptorRun {
    /// Aggregate accelerator execution (loops expanded), excluding setup.
    pub fn execution(&self) -> Option<ExecReport> {
        let mut total: Option<ExecReport> = None;
        for p in &self.passes {
            let scaled = p.report.repeat(p.iterations);
            total = Some(match total {
                None => scaled,
                Some(acc) => acc.then(&scaled),
            });
        }
        total
    }

    /// Total time including the front-end.
    pub fn total_time(&self) -> Seconds {
        self.setup_time + self.execution().map_or(Seconds::ZERO, |e| e.time)
    }

    /// Total energy including the front-end.
    pub fn total_energy(&self) -> Joules {
        self.setup_energy + self.execution().map_or(Joules::ZERO, |e| e.energy)
    }

    /// Dynamic accelerator invocations this run performed.
    pub fn invocations(&self) -> u64 {
        self.passes
            .iter()
            .map(|p| p.iterations * p.stages.len() as u64)
            .sum()
    }

    /// Partitions this run's total time and energy by phase: the CU
    /// front-end splits into `plan` (decode), `dma` (fetch + config)
    /// and `drain` (completion gather); each pass splits its modeled
    /// interval into `compute` (PE arithmetic) and `dma` (memory
    /// streaming + per-pass trigger overhead). The phase sums equal
    /// [`DescriptorRun::total_time`] / `total_energy` exactly, which is
    /// what lets the observability layer reconcile traces against
    /// report totals.
    pub fn breakdown(&self) -> mealib_obs::Breakdown {
        use mealib_obs::Phase;
        let fe = &self.front_end;
        let mut bd = mealib_obs::Breakdown::new();
        bd.add_phase(Phase::Plan, fe.decode_time, Joules::ZERO);
        bd.add_phase(
            Phase::Dma,
            fe.fetch_time + fe.config_time,
            fe.fetch_energy + fe.config_energy,
        );
        bd.add_phase(Phase::Drain, fe.drain_time, fe.drain_energy);
        for p in &self.passes {
            let r = p.report.repeat(p.iterations);
            bd.add_phase(Phase::Compute, r.compute_time, r.energy - r.mem_energy);
            bd.add_phase(Phase::Dma, r.time - r.compute_time, r.mem_energy);
        }
        bd
    }

    /// Lays this run out as phase intervals in modeled time on `track`,
    /// starting at `origin`: descriptor fetch, decode, configuration
    /// broadcast, one memory-streaming + compute interval pair per pass
    /// (loops expanded), then the completion gather. Intervals are
    /// sequential and their durations use exactly the same accounting as
    /// [`DescriptorRun::breakdown`], so the per-phase interval sums equal
    /// the breakdown's phase totals and the final interval ends at
    /// `origin + total_time()`.
    pub fn intervals(
        &self,
        track: &str,
        origin: Seconds,
    ) -> Vec<mealib_obs::profile::IntervalEvent> {
        use mealib_obs::Phase;
        let fe = &self.front_end;
        let mut profile = mealib_obs::Profile::new();
        let mut cursor = origin;
        cursor = profile.interval(track, Phase::Dma, "descriptor fetch", cursor, fe.fetch_time);
        cursor = profile.interval(track, Phase::Plan, "decode", cursor, fe.decode_time);
        cursor = profile.interval(
            track,
            Phase::Dma,
            "config broadcast",
            cursor,
            fe.config_time,
        );
        for (i, p) in self.passes.iter().enumerate() {
            let r = p.report.repeat(p.iterations);
            let label = format!("pass{i} {}", p.report.kind.keyword());
            cursor = profile.interval(
                track,
                Phase::Dma,
                &format!("{label} stream"),
                cursor,
                r.time - r.compute_time,
            );
            cursor = profile.interval(track, Phase::Compute, &label, cursor, r.compute_time);
        }
        profile.interval(
            track,
            Phase::Drain,
            "completion gather",
            cursor,
            fe.drain_time,
        );
        profile.intervals
    }

    /// Records this run's CU, NoC and DRAM event counters into an
    /// observability handle. A no-op when recording is off.
    pub fn record_into(&self, obs: &mealib_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        use mealib_obs::Counter;
        let fe = &self.front_end;
        obs.count(Counter::CuFetchBytes, fe.fetch_bytes);
        obs.count(Counter::CuDecodedInstrs, fe.decoded_instrs);
        obs.count(Counter::CuPasses, self.invocations());
        obs.count(Counter::CuLoopIters, fe.loop_iterations);
        obs.count(Counter::NocFlits, fe.noc_flits);
        obs.count(Counter::NocFlitHops, fe.noc_flit_hops);
        obs.count(Counter::NocCredits, fe.noc_flit_hops);
        if let Some(exec) = self.execution() {
            exec.mem.record_into(obs);
        }
    }
}

/// Runs a descriptor on the layer, returning the modeled costs.
///
/// # Errors
///
/// Returns a [`CuError`] if the descriptor or its parameter blobs are
/// malformed.
pub fn run_descriptor(
    desc: &Descriptor,
    layer: &AcceleratorLayer,
    cost: &CuCostModel,
) -> Result<DescriptorRun, CuError> {
    let instrs = desc.decode()?;

    // Front-end: fetch the descriptor image from DRAM, decode every
    // instruction once.
    let fetch = analytic::try_estimate(
        layer.mem(),
        &AccessPattern::sequential_read(desc.size_bytes() as u64),
    )
    .expect("validated memory config");
    let decode_time =
        Seconds::new(instrs.len() as f64 * cost.decode_cycles_per_instr as f64 / cost.clock.get());
    let mut setup_time = fetch.elapsed + decode_time;
    let mut setup_energy = fetch.energy;
    let mut front_end = CuFrontEnd {
        fetch_time: fetch.elapsed,
        fetch_energy: fetch.energy,
        fetch_bytes: desc.size_bytes() as u64,
        decode_time,
        decoded_instrs: instrs.len() as u64,
        ..CuFrontEnd::default()
    };

    let mut passes: Vec<PassRun> = Vec::new();
    let mut pending: Vec<AccelParams> = Vec::new();
    let mut multiplier = 1u64;
    for instr in &instrs {
        match instr {
            DecodedInstr::LoopBegin { count } => multiplier = *count,
            DecodedInstr::LoopEnd => multiplier = 1,
            DecodedInstr::PassBegin { .. } => pending.clear(),
            DecodedInstr::Accel {
                kind,
                param_size,
                param_addr,
            } => {
                let blob = desc.param_blob(*param_addr, *param_size);
                let params = AccelParams::from_bytes(blob)?;
                if params.kind() != *kind {
                    return Err(CuError::KindMismatch);
                }
                pending.push(params);
            }
            DecodedInstr::PassEnd { .. } => {
                let stages = std::mem::take(&mut pending);
                // Per-pass switch configuration broadcast (paid once even
                // for looped passes — that is the hardware-loop win), plus
                // the Decode Unit's completion gather at pass end.
                let bcast = layer.config_broadcast(cost.config_bytes_per_tile);
                let gather = layer.mesh().gather(mealib_noc::TileId::new(0, 0), 16);
                setup_time += bcast.elapsed + gather.elapsed;
                setup_energy += bcast.energy + gather.energy;
                front_end.config_time += bcast.elapsed;
                front_end.config_energy += bcast.energy;
                front_end.drain_time += gather.elapsed;
                front_end.drain_energy += gather.energy;
                front_end.noc_flits += bcast.flits + gather.flits;
                front_end.noc_flit_hops += bcast.flit_hops + gather.flit_hops;
                let mut report = execute_chained(&stages, layer.hw(), layer.mem());
                if multiplier > 1 {
                    front_end.loop_iterations += multiplier;
                    // Looped passes pay CONFIG_LATENCY once (in setup).
                    // Iterations then *pipeline*: the Decode Unit keeps
                    // the next iteration's fetch in flight while the
                    // current one drains, so memory streams across
                    // iterations instead of paying the DRAM latency each
                    // time, and per-iteration triggers overlap across
                    // tiles when the working set fits a Local Memory.
                    setup_time += CONFIG_LATENCY;
                    front_end.config_time += CONFIG_LATENCY;
                    let eff = stages
                        .iter()
                        .map(|p| AccelModel::new(p.kind()).bandwidth_efficiency())
                        .fold(1.0_f64, f64::min);
                    let stream_bw = layer.mem().peak_bandwidth().get() * eff;
                    let stream_mem =
                        Seconds::new(report.mem.bytes_moved().get() as f64 / stream_bw);
                    let trigger = if report.mem.bytes_moved().get() <= layer.hw().local_mem_bytes {
                        LOOP_ITER_LATENCY / layer.tiles().len() as f64
                    } else {
                        LOOP_ITER_LATENCY
                    };
                    report.mem_time = stream_mem;
                    report.time = stream_mem.max(report.compute_time).max(trigger);
                    // Re-price the per-iteration energy over the
                    // pipelined interval: work terms (activations,
                    // bytes, FLOPs) are unchanged, but background power
                    // and leakage accrue over the streamed time, not the
                    // standalone latency.
                    let bytes = report.mem.bytes_moved().get();
                    let mem_energy =
                        layer
                            .mem()
                            .energy
                            .trace_energy(report.mem.activations, bytes, report.time);
                    let mut core = mealib_types::Joules::ZERO;
                    for p in &stages {
                        let prof = profile_at(p.kind(), layer.hw().frequency);
                        core += prof.e_byte_datapath * bytes as f64
                            + prof.e_flop * report.flops as f64
                            + prof.p_leakage.for_duration(report.time);
                    }
                    report.mem.energy = mem_energy;
                    report.mem_energy = mem_energy;
                    report.energy = mem_energy + core;
                }
                passes.push(PassRun {
                    stages,
                    report,
                    iterations: multiplier,
                });
            }
        }
    }

    Ok(DescriptorRun {
        setup_time,
        setup_energy,
        front_end,
        passes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_tdl::{parse, ParamBag};
    use std::collections::BTreeMap;

    fn make_descriptor(loop_count: u64) -> Descriptor {
        let src = format!(
            r#"
            LOOP {loop_count} {{
                PASS in=x out=y {{
                    COMP FFT params="fft.para"
                }}
            }}
            "#
        );
        let program = parse(&src).unwrap();
        let mut params = ParamBag::new();
        params.insert(
            "fft.para".into(),
            AccelParams::Fft { n: 256, batch: 256 }.to_bytes(),
        );
        let buffers: BTreeMap<String, u64> =
            [("x".to_string(), 0x1000u64), ("y".to_string(), 0x100000)]
                .into_iter()
                .collect();
        Descriptor::encode(&program, &params, &buffers).unwrap()
    }

    #[test]
    fn hardware_loop_pays_setup_once() {
        let layer = AcceleratorLayer::mealib_default();
        let cost = CuCostModel::default();
        let once = run_descriptor(&make_descriptor(1), &layer, &cost).unwrap();
        let many = run_descriptor(&make_descriptor(128), &layer, &cost).unwrap();
        assert_eq!(many.invocations(), 128);
        assert_eq!(once.invocations(), 1);
        // Setup differs only by the one-time configuration charge.
        assert!(
            (many.setup_time.get() - once.setup_time.get()).abs() < 1e-6,
            "setup {} vs {}",
            many.setup_time,
            once.setup_time
        );
        // Execution scales with the count but is cheaper than 128 naive
        // repetitions: configuration amortizes and iterations pipeline.
        let exec_ratio = many.execution().unwrap().time / once.execution().unwrap().time;
        assert!((30.0..128.5).contains(&exec_ratio), "ratio {exec_ratio}");
    }

    #[test]
    fn intervals_reconcile_with_breakdown_and_totals() {
        use mealib_obs::Phase;
        let layer = AcceleratorLayer::mealib_default();
        let cost = CuCostModel::default();
        let run = run_descriptor(&make_descriptor(8), &layer, &cost).unwrap();
        let origin = Seconds::from_micros(5.0);
        let ivs = run.intervals("cu", origin);
        assert!(!ivs.is_empty());
        // Sequential layout: each interval starts where the previous one
        // ended, the first at `origin`.
        let mut cursor = origin;
        for iv in &ivs {
            assert!(
                (iv.start.get() - cursor.get()).abs() < 1e-15,
                "{}",
                iv.label
            );
            cursor = iv.end;
        }
        // The end of the last interval is origin + total_time.
        let end = ivs.last().unwrap().end.get();
        assert!((end - (origin + run.total_time()).get()).abs() < 1e-12);
        // Per-phase interval sums equal the breakdown's phase totals.
        let bd = run.breakdown();
        for phase in [Phase::Plan, Phase::Dma, Phase::Compute, Phase::Drain] {
            let sum: f64 = ivs
                .iter()
                .filter(|iv| iv.phase == phase)
                .map(|iv| iv.duration().get())
                .sum();
            assert!(
                (sum - bd.phase(phase).time.get()).abs() < 1e-12,
                "{phase}: {sum} vs {}",
                bd.phase(phase).time
            );
        }
        // And they export as a valid Perfetto trace.
        let mut profile = mealib_obs::Profile::new();
        profile.intervals = ivs;
        mealib_obs::validate_chrome_trace(&profile.to_chrome_trace()).expect("valid trace");
    }

    #[test]
    fn chained_pass_prices_as_chain() {
        let src = r#"
            PASS in=a out=b {
                COMP RESMP params="r.para"
                COMP FFT params="f.para"
            }
        "#;
        let program = parse(src).unwrap();
        let mut bag = ParamBag::new();
        let resmp = AccelParams::Resmp {
            blocks: 256,
            in_per_block: 256,
            out_per_block: 256,
        };
        let fft = AccelParams::Fft { n: 256, batch: 256 };
        bag.insert("r.para".into(), resmp.to_bytes());
        bag.insert("f.para".into(), fft.to_bytes());
        let buffers: BTreeMap<String, u64> = [("a".to_string(), 0u64), ("b".to_string(), 1 << 20)]
            .into_iter()
            .collect();
        let desc = Descriptor::encode(&program, &bag, &buffers).unwrap();
        let layer = AcceleratorLayer::mealib_default();
        let run = run_descriptor(&desc, &layer, &CuCostModel::default()).unwrap();
        assert_eq!(run.passes.len(), 1);
        assert_eq!(run.passes[0].stages, vec![resmp, fft]);
        let direct = execute_chained(&[resmp, fft], layer.hw(), layer.mem());
        assert_eq!(run.passes[0].report, direct);
    }

    #[test]
    fn corrupt_param_blob_is_an_error() {
        let desc = make_descriptor(1);
        let mut bytes = desc.as_bytes().to_vec();
        // Clobber the last byte (inside the PR blob).
        let last = bytes.len() - 1;
        // Make FFT n not a power of two by trashing the tag instead:
        // locate PR offset from CR.
        let pr_off = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        bytes[pr_off] = 0x7f; // invalid tag
        let _ = last;
        let corrupted = Descriptor::decode_bytes(&bytes).map(|_| ());
        assert!(corrupted.is_ok(), "IR still decodes");
        // Re-wrap: Descriptor has no public from-bytes constructor, so
        // exercise the error through AccelParams directly.
        assert!(matches!(
            AccelParams::from_bytes(&bytes[pr_off..]),
            Err(ParamsError::BadTag(0x7f))
        ));
    }

    #[test]
    fn total_time_includes_setup_and_execution() {
        let layer = AcceleratorLayer::mealib_default();
        let run = run_descriptor(&make_descriptor(4), &layer, &CuCostModel::default()).unwrap();
        let exec = run.execution().unwrap();
        assert!(run.total_time() > exec.time);
        assert!(run.total_energy() > exec.energy);
        assert!(run.setup_time.get() > 0.0);
    }

    #[test]
    fn front_end_itemization_sums_to_setup() {
        let layer = AcceleratorLayer::mealib_default();
        for loops in [1, 128] {
            let run =
                run_descriptor(&make_descriptor(loops), &layer, &CuCostModel::default()).unwrap();
            let fe = &run.front_end;
            let t = fe.fetch_time + fe.decode_time + fe.config_time + fe.drain_time;
            let e = fe.fetch_energy + fe.config_energy + fe.drain_energy;
            assert!(
                (t.get() - run.setup_time.get()).abs() <= 1e-12 * run.setup_time.get().max(1.0),
                "time {} vs setup {}",
                t,
                run.setup_time
            );
            assert!(
                (e.get() - run.setup_energy.get()).abs() <= 1e-12 * run.setup_energy.get().max(1.0),
                "energy {} vs setup {}",
                e,
                run.setup_energy
            );
            assert!(fe.fetch_bytes > 0);
            assert!(fe.decoded_instrs > 0);
            assert!(fe.noc_flits > 0);
        }
    }

    #[test]
    fn breakdown_reconciles_with_totals() {
        let layer = AcceleratorLayer::mealib_default();
        let run = run_descriptor(&make_descriptor(128), &layer, &CuCostModel::default()).unwrap();
        let bd = run.breakdown();
        let dt = (bd.total_time().get() - run.total_time().get()).abs();
        let de = (bd.total_energy().get() - run.total_energy().get()).abs();
        assert!(
            dt <= 1e-9 * run.total_time().get(),
            "breakdown time {} vs total {}",
            bd.total_time(),
            run.total_time()
        );
        assert!(
            de <= 1e-9 * run.total_energy().get(),
            "breakdown energy {} vs total {}",
            bd.total_energy(),
            run.total_energy()
        );
        assert_eq!(run.front_end.loop_iterations, 128);
    }

    #[test]
    fn descriptor_run_records_counters() {
        use mealib_obs::{Counter, Obs, TraceRecorder};
        let layer = AcceleratorLayer::mealib_default();
        let run = run_descriptor(&make_descriptor(4), &layer, &CuCostModel::default()).unwrap();
        let rec = TraceRecorder::shared();
        run.record_into(&Obs::new(rec.clone()));
        let bd = rec.breakdown();
        assert_eq!(bd.counter(Counter::CuPasses), 4);
        assert_eq!(bd.counter(Counter::CuLoopIters), 4);
        assert_eq!(
            bd.counter(Counter::CuDecodedInstrs),
            run.front_end.decoded_instrs
        );
        assert!(bd.counter(Counter::DramAct) > 0);
    }

    #[test]
    fn empty_descriptor_runs_with_no_passes() {
        let program = parse("").unwrap();
        let desc = Descriptor::encode(&program, &ParamBag::new(), &BTreeMap::new()).unwrap();
        let layer = AcceleratorLayer::mealib_default();
        let run = run_descriptor(&desc, &layer, &CuCostModel::default()).unwrap();
        assert!(run.passes.is_empty());
        assert!(run.execution().is_none());
        assert_eq!(run.invocations(), 0);
        assert_eq!(run.total_time(), run.setup_time);
    }
}
