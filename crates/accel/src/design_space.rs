//! Design-space exploration (§5.3, Figure 11).
//!
//! "Given a memory bandwidth of 510 GB/s, we explored various design
//! parameters, such as accelerator frequency, row buffer size, number of
//! accelerator cores, and block size." This module sweeps those knobs
//! for any accelerator and reports (performance, power) points, from
//! which the harness draws the Fig. 11 scatter plots for FFT and SPMV.
//!
//! Two sweep strategies share one grid:
//!
//! * [`sweep_with`] evaluates every point in full, including the
//!   optional cycle-engine bandwidth cross-check;
//! * [`sweep_pruned`] first prices every point with the closed-form
//!   static bounds from [`point_bounds`] plus the analytic model, then
//!   replays the cycle engine only for points no certified point
//!   dominates. Pruning is provably frontier-preserving: a point is
//!   skipped only when its certified price is dominated under the same
//!   tolerance [`pareto_frontier`] uses, so the pruned sweep's frontier
//!   is bit-identical to the full sweep's.

use mealib_memsim::{AccessPattern, MemoryConfig};
use mealib_tdl::AcceleratorKind;
use mealib_types::{Hertz, Interval};

use crate::hw::AccelHwConfig;
use crate::model::{AccelModel, CONFIG_LATENCY};
use crate::params::AccelParams;
use crate::power::profile_at;

/// A point `q` dominates `p` when `q.gflops >= p.gflops` and
/// `q.power_w < p.power_w * DOMINANCE_TOLERANCE`. Shared between
/// [`pareto_frontier`] and the [`sweep_pruned`] skip rule so pruning
/// can never disagree with frontier membership.
const DOMINANCE_TOLERANCE: f64 = 0.999;

/// One explored design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Accelerator clock.
    pub frequency: Hertz,
    /// Core count.
    pub cores: u32,
    /// Block size, elements.
    pub block_elems: u64,
    /// DRAM row-buffer size, bytes.
    pub row_bytes: u64,
    /// Achieved GFLOPS.
    pub gflops: f64,
    /// Average power, W.
    pub power_w: f64,
    /// Cycle-engine cross-check: achieved GB/s replaying a sequential
    /// stream over this point's memory configuration. `0.0` when the
    /// check is disabled ([`SweepOptions::engine_check_bytes`] = 0).
    pub engine_gbps: f64,
}

impl DesignPoint {
    /// Energy efficiency of the point.
    pub fn gflops_per_watt(&self) -> f64 {
        if self.power_w > 0.0 {
            self.gflops / self.power_w
        } else {
            0.0
        }
    }
}

/// The sweep grid. Defaults mirror the paper's axes: frequencies
/// 0.8/1.2/1.6/2.0 GHz, core counts 4-32, two block sizes, two row-buffer
/// sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Clock frequencies to explore.
    pub frequencies_ghz: Vec<f64>,
    /// Core counts to explore.
    pub cores: Vec<u32>,
    /// Block sizes to explore.
    pub block_elems: Vec<u64>,
    /// DRAM row-buffer sizes to explore.
    pub row_bytes: Vec<u64>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        Self {
            frequencies_ghz: vec![0.8, 1.2, 1.6, 2.0],
            cores: vec![4, 8, 16, 32],
            block_elems: vec![1024, 4096],
            row_bytes: vec![2048, 4096],
        }
    }
}

/// Execution options for [`sweep_with`]: worker-pool width and the
/// optional cycle-engine cross-check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOptions {
    /// Worker threads for the design-point fan-out (`1` = serial).
    /// Points are independent, so the output is identical for any
    /// value — only wall-clock time changes.
    pub jobs: usize,
    /// Bytes of sequential traffic to replay through the cycle engine
    /// at every point (fills [`DesignPoint::engine_gbps`]); `0` skips
    /// the replay.
    pub engine_check_bytes: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            jobs: 1,
            engine_check_bytes: 0,
        }
    }
}

/// Sweeps the design space of one accelerator over the grid, pricing
/// `workload` at every point with default [`SweepOptions`] (serial, no
/// engine cross-check).
///
/// # Panics
///
/// Panics if `workload` does not belong to `kind`.
pub fn sweep(
    kind: AcceleratorKind,
    workload: &AccelParams,
    grid: &SweepGrid,
    base_mem: &MemoryConfig,
) -> Vec<DesignPoint> {
    sweep_with(kind, workload, grid, base_mem, &SweepOptions::default())
}

/// Like [`sweep`], but with explicit execution options: design points
/// are priced on up to `opts.jobs` worker threads (grid order is
/// preserved regardless), and when `opts.engine_check_bytes > 0` each
/// point additionally replays that much sequential traffic through the
/// cycle engine to cross-check the analytic bandwidth model.
///
/// # Panics
///
/// Panics if `workload` does not belong to `kind`.
pub fn sweep_with(
    kind: AcceleratorKind,
    workload: &AccelParams,
    grid: &SweepGrid,
    base_mem: &MemoryConfig,
    opts: &SweepOptions,
) -> Vec<DesignPoint> {
    assert_eq!(workload.kind(), kind, "workload/accelerator mismatch");
    let model = AccelModel::new(kind);
    let cells = grid_cells(grid);
    mealib_types::par_map(&cells, opts.jobs, |cell| {
        let (hw, mem) = configure(base_mem, *cell);
        let report = model.execute(workload, &hw, &mem);
        DesignPoint {
            frequency: hw.frequency,
            cores: cell.1,
            block_elems: cell.2,
            row_bytes: cell.3,
            gflops: report.gflops().get(),
            power_w: report.power().get(),
            engine_gbps: engine_check(&mem, opts.engine_check_bytes),
        }
    })
}

/// The Cartesian product of the grid axes, in grid order.
fn grid_cells(grid: &SweepGrid) -> Vec<(f64, u32, u64, u64)> {
    let mut cells = Vec::new();
    for &f in &grid.frequencies_ghz {
        for &cores in &grid.cores {
            for &block in &grid.block_elems {
                for &row in &grid.row_bytes {
                    cells.push((f, cores, block, row));
                }
            }
        }
    }
    cells
}

/// The hardware and memory configuration one grid cell evaluates.
fn configure(
    base_mem: &MemoryConfig,
    (f, cores, block, row): (f64, u32, u64, u64),
) -> (AccelHwConfig, MemoryConfig) {
    let hw = AccelHwConfig::mealib_default()
        .with_frequency(Hertz::from_ghz(f))
        .with_cores(cores)
        .with_block_elems(block);
    let mut mem = base_mem.clone();
    if let mealib_memsim::AddressMapping::Interleaved {
        ref mut row_bytes, ..
    } = mem.mapping
    {
        *row_bytes = row;
    }
    (hw, mem)
}

/// Replays `bytes` of sequential reads through the fast engine over
/// `mem` and returns the achieved bandwidth in GB/s (`0.0` when
/// `bytes == 0`). The request size is one row buffer, so the replay
/// exercises activate/precharge scheduling, not just the data bus.
fn engine_check(mem: &MemoryConfig, bytes: u64) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    let step = mem.mapping.row_bytes();
    let trace: mealib_memsim::TraceBuffer = (0..bytes.div_ceil(step))
        .map(|i| mealib_memsim::Request::read(i * step, step.min(bytes - i * step)))
        .collect();
    mealib_memsim::simulate(mem, &trace, &mealib_memsim::SimOptions::fast())
        .expect("validated memory configuration")
        .stats
        .achieved_bandwidth()
        .as_gb_per_sec()
}

/// Certified static bounds on one design point: closed-form intervals
/// on achieved GFLOPS and average power derived from the roofline of
/// the memory layer (peak bandwidth, worst-case per-burst timing), the
/// PE-array compute rate, and the Table-5 synthesis constants — without
/// running the analytic DRAM estimator or the cycle engine.
///
/// The intervals are proved (by the bounds tests and re-checked at
/// every [`sweep_pruned`] point) to contain the analytic model's price
/// for the point; that containment is what licenses dominance pruning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointBounds {
    /// Certified interval on achieved GFLOPS.
    pub gflops: Interval,
    /// Certified interval on average power, W.
    pub power_w: Interval,
}

impl PointBounds {
    /// Whether an evaluated `(gflops, power_w)` price lies inside both
    /// certified intervals.
    pub fn contains(&self, gflops: f64, power_w: f64) -> bool {
        self.gflops.contains(gflops) && self.power_w.contains(power_w)
    }
}

/// Worst-case DRAM burst commands a pattern can issue, plus the leaf
/// count (each leaf pays at most one startup sequence and one rounding
/// cycle in the analytic model).
fn burst_budget(pattern: &AccessPattern, burst_bytes: u64) -> (u64, u64) {
    match pattern {
        AccessPattern::Sequential { read, written } => ((read + written).div_ceil(burst_bytes), 1),
        AccessPattern::Strided {
            elem_bytes, count, ..
        }
        | AccessPattern::Random {
            elem_bytes, count, ..
        } => (count * elem_bytes.div_ceil(burst_bytes).max(1), 1),
        AccessPattern::Then(parts) => parts
            .iter()
            .map(|p| burst_budget(p, burst_bytes))
            .fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1)),
    }
}

/// Computes the certified static bounds for one design point.
///
/// Lower time bound: the traffic cannot beat the layer's peak bandwidth
/// (derated by the accelerator's DMA efficiency) nor the PE array's
/// compute rate, and every invocation pays the configuration latency.
/// Upper time bound: every burst at worst pays a full
/// `max(tRC, tFAW) + tRCD + tCL + tBURST` window, stretched by refresh.
/// The power interval combines the exact datapath/byte/FLOP energies
/// with the leakage and background floors over those time bounds.
///
/// # Panics
///
/// Panics if `workload` does not belong to `kind`.
pub fn point_bounds(
    kind: AcceleratorKind,
    workload: &AccelParams,
    hw: &AccelHwConfig,
    mem: &MemoryConfig,
) -> PointBounds {
    let model = AccelModel::new(kind);
    let pattern = model.access_pattern(workload, hw);
    let bytes = pattern.useful_bytes() as f64;
    let flops = model.flops(workload);
    let eff = model.bandwidth_efficiency().min(0.95);
    let t = &mem.timing;

    let compute_s = if flops == 0 {
        0.0
    } else {
        flops as f64 / model.compute_rate(hw)
    };
    let mem_lo_s = bytes / mem.peak_bandwidth().get() / eff;
    let time_lo = CONFIG_LATENCY.get() + mem_lo_s.max(compute_s);

    let (bursts, leaves) = burst_budget(&pattern, t.burst_bytes);
    let delta = (t.t_rc().max(t.t_faw) + t.t_rcd + t.t_cl + t.t_burst) as f64;
    let refresh_factor = 1.0 + t.t_rfc as f64 / t.t_refi as f64;
    let worst_cycles = ((bursts + leaves) as f64 * delta) * refresh_factor + leaves as f64;
    let mem_hi_s = worst_cycles * t.t_ck.get() / eff;
    let time_hi = CONFIG_LATENCY.get() + mem_hi_s.max(compute_s);

    let gflops = if flops == 0 {
        Interval::exact(0.0)
    } else {
        Interval::new(flops as f64 / time_hi * 1e-9, flops as f64 / time_lo * 1e-9)
    };

    // Exact fixed energies: every useful byte pays the DRAM byte chain
    // and the accelerator datapath, every FLOP pays the FLOP energy.
    let prof = profile_at(kind, hw.frequency);
    let e = &mem.energy;
    let e_byte = (e.e_byte_core + e.e_byte_transport + e.e_byte_link + prof.e_byte_datapath).get();
    let e_fixed = e_byte * bytes + prof.e_flop.get() * flops as f64;
    let p_leak = prof.p_leakage.get();
    let p_bg = e.p_background.get();
    // Background power is charged over the busy interval, which is the
    // total time minus the configuration latency.
    let busy_frac_lo = ((time_lo - CONFIG_LATENCY.get()) / time_lo).max(0.0);
    let power_lo = e_fixed / time_hi + p_leak + p_bg * busy_frac_lo;
    // At most one activation per burst command.
    let power_hi = (e_fixed + e.e_act.get() * bursts as f64) / time_lo + p_leak + p_bg;

    PointBounds {
        gflops,
        power_w: Interval::new(power_lo, power_hi),
    }
}

/// Result of a bounds-pruned sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunedSweep {
    /// The fully-evaluated design points, in grid order. Pruned points
    /// are absent: each is provably dominated by a point in this set,
    /// so it cannot sit on the Pareto frontier.
    pub points: Vec<DesignPoint>,
    /// Grid points fully evaluated, cycle-engine replay included.
    pub simulated: usize,
    /// Grid points whose cycle-engine replay was skipped.
    pub pruned: usize,
}

/// Like [`sweep_with`], but prunes the expensive cycle-engine replay
/// for provably-dominated grid points.
///
/// Every point is first priced statically: the closed-form
/// [`point_bounds`] interval plus the analytic model (no cycle engine).
/// A point whose certified price is dominated — under the exact
/// [`pareto_frontier`] tolerance — by an already-retained point is
/// skipped; a point whose analytic price escapes its certified interval
/// is never pruned (and never prunes others). Retained points then run
/// the same full evaluation as [`sweep_with`], so the pruned sweep's
/// Pareto frontier is bit-identical to the full sweep's, including the
/// engine cross-check values.
///
/// # Panics
///
/// Panics if `workload` does not belong to `kind`.
pub fn sweep_pruned(
    kind: AcceleratorKind,
    workload: &AccelParams,
    grid: &SweepGrid,
    base_mem: &MemoryConfig,
    opts: &SweepOptions,
) -> PrunedSweep {
    assert_eq!(workload.kind(), kind, "workload/accelerator mismatch");
    let model = AccelModel::new(kind);
    let cells = grid_cells(grid);

    // Static phase: price every cell with the analytic model and
    // certify the price against the closed-form bounds.
    let priced = mealib_types::par_map(&cells, opts.jobs, |cell| {
        let (hw, mem) = configure(base_mem, *cell);
        let report = model.execute(workload, &hw, &mem);
        let bounds = point_bounds(kind, workload, &hw, &mem);
        let gflops = report.gflops().get();
        let power_w = report.power().get();
        (gflops, power_w, bounds.contains(gflops, power_w))
    });

    // Prune phase: visit cells from cheapest upward so low-power
    // high-throughput points are retained before the points they
    // dominate are considered.
    let mut order: Vec<usize> = (0..cells.len()).collect();
    order.sort_by(|&a, &b| {
        priced[a]
            .1
            .total_cmp(&priced[b].1)
            .then(priced[b].0.total_cmp(&priced[a].0))
            .then(a.cmp(&b))
    });
    let mut retained: Vec<usize> = Vec::new();
    for idx in order {
        let (gflops, power_w, certified) = priced[idx];
        let dominated = certified
            && retained
                .iter()
                .any(|&q| priced[q].0 >= gflops && priced[q].1 < power_w * DOMINANCE_TOLERANCE);
        if !dominated {
            retained.push(idx);
        }
    }
    retained.sort_unstable();

    // Full evaluation (cycle-engine replay included) for the survivors.
    let points = mealib_types::par_map(&retained, opts.jobs, |&idx| {
        let (hw, mem) = configure(base_mem, cells[idx]);
        DesignPoint {
            frequency: hw.frequency,
            cores: cells[idx].1,
            block_elems: cells[idx].2,
            row_bytes: cells[idx].3,
            gflops: priced[idx].0,
            power_w: priced[idx].1,
            engine_gbps: engine_check(&mem, opts.engine_check_bytes),
        }
    });
    PrunedSweep {
        simulated: points.len(),
        pruned: cells.len() - points.len(),
        points,
    }
}

/// The Pareto frontier of a design space: points no other point
/// dominates (higher GFLOPS at lower power). Sorted by power.
pub fn pareto_frontier(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut frontier: Vec<DesignPoint> = points
        .iter()
        .filter(|p| {
            !points
                .iter()
                .any(|q| q.gflops >= p.gflops && q.power_w < p.power_w * DOMINANCE_TOLERANCE)
        })
        .cloned()
        .collect();
    frontier.sort_by(|a, b| a.power_w.total_cmp(&b.power_w));
    frontier
}

/// The best-performing point within a power budget, if any fits.
pub fn best_under_budget(points: &[DesignPoint], budget_w: f64) -> Option<&DesignPoint> {
    points
        .iter()
        .filter(|p| p.power_w <= budget_w)
        .max_by(|a, b| a.gflops.total_cmp(&b.gflops))
}

/// The reference FFT workload of Table 2 (8192×8192 batch).
pub fn fft_reference_workload() -> AccelParams {
    AccelParams::Fft {
        n: 8192,
        batch: 8192,
    }
}

/// The reference SPMV workload: an `rgg_n_2_20`-class matrix
/// (2²⁰ rows, average degree ~13).
pub fn spmv_reference_workload() -> AccelParams {
    AccelParams::Spmv {
        rows: 1 << 20,
        cols: 1 << 20,
        nnz: 13 * (1 << 20),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_grid() {
        let grid = SweepGrid::default();
        let pts = sweep(
            AcceleratorKind::Fft,
            &fft_reference_workload(),
            &grid,
            &MemoryConfig::hmc_stack(),
        );
        assert_eq!(pts.len(), 4 * 4 * 2 * 2);
    }

    #[test]
    fn fft_efficiency_range_matches_fig11a() {
        // Paper: FFT energy efficiency varies from 10 to 56 GFLOPS/W
        // across the design space.
        let pts = sweep(
            AcceleratorKind::Fft,
            &fft_reference_workload(),
            &SweepGrid::default(),
            &MemoryConfig::hmc_stack(),
        );
        let effs: Vec<f64> = pts.iter().map(DesignPoint::gflops_per_watt).collect();
        let min = effs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = effs.iter().cloned().fold(0.0_f64, f64::max);
        assert!(
            max / min > 1.5,
            "design choices must matter: {min:.1}..{max:.1}"
        );
        assert!(
            max < 120.0 && min > 2.0,
            "efficiency decade: {min:.1}..{max:.1}"
        );
    }

    #[test]
    fn spmv_efficiency_is_an_order_below_fft() {
        // Paper: SPMV varies 0.18-1.76 GFLOPS/W — an order of magnitude
        // below FFT.
        let fft = sweep(
            AcceleratorKind::Fft,
            &fft_reference_workload(),
            &SweepGrid::default(),
            &MemoryConfig::hmc_stack(),
        );
        let spmv = sweep(
            AcceleratorKind::Spmv,
            &spmv_reference_workload(),
            &SweepGrid::default(),
            &MemoryConfig::hmc_stack(),
        );
        let fft_best = fft
            .iter()
            .map(DesignPoint::gflops_per_watt)
            .fold(0.0_f64, f64::max);
        let spmv_best = spmv
            .iter()
            .map(DesignPoint::gflops_per_watt)
            .fold(0.0_f64, f64::max);
        assert!(
            fft_best / spmv_best > 8.0,
            "FFT {fft_best:.1} vs SPMV {spmv_best:.2} GFLOPS/W"
        );
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let pts = sweep(
            AcceleratorKind::Fft,
            &fft_reference_workload(),
            &SweepGrid::default(),
            &MemoryConfig::hmc_stack(),
        );
        let frontier = pareto_frontier(&pts);
        assert!(!frontier.is_empty());
        assert!(frontier.len() <= pts.len());
        // Along the frontier, more power must buy more performance.
        for w in frontier.windows(2) {
            assert!(w[1].power_w >= w[0].power_w);
            assert!(
                w[1].gflops >= w[0].gflops * 0.999,
                "dominated point on frontier"
            );
        }
        // Nothing in the space dominates a frontier point.
        for f in &frontier {
            assert!(!pts
                .iter()
                .any(|q| q.gflops > f.gflops && q.power_w < f.power_w * 0.999));
        }
    }

    #[test]
    fn budget_picker_respects_the_budget() {
        let pts = sweep(
            AcceleratorKind::Fft,
            &fft_reference_workload(),
            &SweepGrid::default(),
            &MemoryConfig::hmc_stack(),
        );
        let best = best_under_budget(&pts, 20.0).expect("something fits 20 W");
        assert!(best.power_w <= 20.0);
        let unlimited = best_under_budget(&pts, f64::INFINITY).unwrap();
        assert!(unlimited.gflops >= best.gflops);
        assert!(best_under_budget(&pts, 0.1).is_none());
    }

    #[test]
    fn parallel_sweep_is_identical_to_serial() {
        let grid = SweepGrid::default();
        let mem = MemoryConfig::hmc_stack();
        let opts = SweepOptions {
            jobs: 1,
            engine_check_bytes: 1 << 20,
        };
        let serial = sweep_with(
            AcceleratorKind::Fft,
            &fft_reference_workload(),
            &grid,
            &mem,
            &opts,
        );
        for jobs in [2usize, 4, 8] {
            let parallel = sweep_with(
                AcceleratorKind::Fft,
                &fft_reference_workload(),
                &grid,
                &mem,
                &SweepOptions {
                    jobs,
                    engine_check_bytes: 1 << 20,
                },
            );
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn static_bounds_certify_every_grid_point() {
        // The closed-form interval must contain the analytic price at
        // every point of the default grid, for a compute-heavy and a
        // gather-heavy workload alike — this is the containment the
        // pruner's dominance rule relies on.
        let mem = MemoryConfig::hmc_stack();
        for (kind, workload) in [
            (AcceleratorKind::Fft, fft_reference_workload()),
            (AcceleratorKind::Spmv, spmv_reference_workload()),
        ] {
            let model = AccelModel::new(kind);
            for cell in super::grid_cells(&SweepGrid::default()) {
                let (hw, mem) = super::configure(&mem, cell);
                let report = model.execute(&workload, &hw, &mem);
                let b = point_bounds(kind, &workload, &hw, &mem);
                assert!(b.gflops.lo <= b.gflops.hi && b.power_w.lo <= b.power_w.hi);
                assert!(b.power_w.lo > 0.0, "leakage floors the power bound");
                assert!(
                    b.contains(report.gflops().get(), report.power().get()),
                    "{kind:?} {cell:?}: ({:.3}, {:.3}) outside {:?}/{:?}",
                    report.gflops().get(),
                    report.power().get(),
                    b.gflops,
                    b.power_w,
                );
            }
        }
    }

    #[test]
    fn pruned_sweep_preserves_the_frontier_bit_for_bit() {
        let grid = SweepGrid::default();
        let mem = MemoryConfig::hmc_stack();
        let opts = SweepOptions {
            jobs: 2,
            engine_check_bytes: 1 << 20,
        };
        for (kind, workload) in [
            (AcceleratorKind::Fft, fft_reference_workload()),
            (AcceleratorKind::Spmv, spmv_reference_workload()),
        ] {
            let full = sweep_with(kind, &workload, &grid, &mem, &opts);
            let pruned = sweep_pruned(kind, &workload, &grid, &mem, &opts);
            assert_eq!(pruned.simulated + pruned.pruned, full.len());
            assert_eq!(pruned.simulated, pruned.points.len());
            assert!(
                pruned.pruned as f64 >= full.len() as f64 * 0.3,
                "{kind:?}: pruning must cut >=30% of simulations, cut {}/{}",
                pruned.pruned,
                full.len()
            );
            // Every retained point is the full sweep's point, bit for
            // bit — engine cross-check included.
            for p in &pruned.points {
                assert!(full.contains(p), "{kind:?}: retained point drifted");
            }
            assert_eq!(
                pareto_frontier(&full),
                pareto_frontier(&pruned.points),
                "{kind:?}: pruning perturbed the frontier"
            );
        }
    }

    #[test]
    fn pruned_sweep_is_deterministic_across_jobs() {
        let grid = SweepGrid::default();
        let mem = MemoryConfig::hmc_stack();
        let serial = sweep_pruned(
            AcceleratorKind::Fft,
            &fft_reference_workload(),
            &grid,
            &mem,
            &SweepOptions {
                jobs: 1,
                engine_check_bytes: 1 << 20,
            },
        );
        for jobs in [2usize, 8] {
            let parallel = sweep_pruned(
                AcceleratorKind::Fft,
                &fft_reference_workload(),
                &grid,
                &mem,
                &SweepOptions {
                    jobs,
                    engine_check_bytes: 1 << 20,
                },
            );
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn engine_check_reports_plausible_bandwidth() {
        let grid = SweepGrid {
            frequencies_ghz: vec![1.2],
            cores: vec![16],
            block_elems: vec![4096],
            row_bytes: vec![2048, 4096],
        };
        let mem = MemoryConfig::hmc_stack();
        let pts = sweep_with(
            AcceleratorKind::Fft,
            &fft_reference_workload(),
            &grid,
            &mem,
            &SweepOptions {
                jobs: 2,
                engine_check_bytes: 8 << 20,
            },
        );
        let peak = mem.peak_bandwidth().as_gb_per_sec();
        for p in &pts {
            assert!(
                p.engine_gbps > 0.0 && p.engine_gbps <= peak * 1.001,
                "engine check {} outside (0, {peak}]",
                p.engine_gbps
            );
        }
        // Disabled by default: sweep() leaves the field zero.
        let plain = sweep(AcceleratorKind::Fft, &fft_reference_workload(), &grid, &mem);
        assert!(plain.iter().all(|p| p.engine_gbps == 0.0));
    }

    #[test]
    fn higher_frequency_never_reduces_throughput() {
        let grid = SweepGrid {
            frequencies_ghz: vec![0.8, 2.0],
            cores: vec![16],
            block_elems: vec![4096],
            row_bytes: vec![4096],
        };
        let pts = sweep(
            AcceleratorKind::Fft,
            &fft_reference_workload(),
            &grid,
            &MemoryConfig::hmc_stack(),
        );
        assert!(pts[1].gflops >= pts[0].gflops * 0.99);
        assert!(pts[1].power_w > pts[0].power_w, "speed costs power");
    }
}
