//! Design-space exploration (§5.3, Figure 11).
//!
//! "Given a memory bandwidth of 510 GB/s, we explored various design
//! parameters, such as accelerator frequency, row buffer size, number of
//! accelerator cores, and block size." This module sweeps those knobs
//! for any accelerator and reports (performance, power) points, from
//! which the harness draws the Fig. 11 scatter plots for FFT and SPMV.

use mealib_memsim::MemoryConfig;
use mealib_tdl::AcceleratorKind;
use mealib_types::Hertz;

use crate::hw::AccelHwConfig;
use crate::model::AccelModel;
use crate::params::AccelParams;

/// One explored design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Accelerator clock.
    pub frequency: Hertz,
    /// Core count.
    pub cores: u32,
    /// Block size, elements.
    pub block_elems: u64,
    /// DRAM row-buffer size, bytes.
    pub row_bytes: u64,
    /// Achieved GFLOPS.
    pub gflops: f64,
    /// Average power, W.
    pub power_w: f64,
    /// Cycle-engine cross-check: achieved GB/s replaying a sequential
    /// stream over this point's memory configuration. `0.0` when the
    /// check is disabled ([`SweepOptions::engine_check_bytes`] = 0).
    pub engine_gbps: f64,
}

impl DesignPoint {
    /// Energy efficiency of the point.
    pub fn gflops_per_watt(&self) -> f64 {
        if self.power_w > 0.0 {
            self.gflops / self.power_w
        } else {
            0.0
        }
    }
}

/// The sweep grid. Defaults mirror the paper's axes: frequencies
/// 0.8/1.2/1.6/2.0 GHz, core counts 4-32, two block sizes, two row-buffer
/// sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Clock frequencies to explore.
    pub frequencies_ghz: Vec<f64>,
    /// Core counts to explore.
    pub cores: Vec<u32>,
    /// Block sizes to explore.
    pub block_elems: Vec<u64>,
    /// DRAM row-buffer sizes to explore.
    pub row_bytes: Vec<u64>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        Self {
            frequencies_ghz: vec![0.8, 1.2, 1.6, 2.0],
            cores: vec![4, 8, 16, 32],
            block_elems: vec![1024, 4096],
            row_bytes: vec![2048, 4096],
        }
    }
}

/// Execution options for [`sweep_with`]: worker-pool width and the
/// optional cycle-engine cross-check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOptions {
    /// Worker threads for the design-point fan-out (`1` = serial).
    /// Points are independent, so the output is identical for any
    /// value — only wall-clock time changes.
    pub jobs: usize,
    /// Bytes of sequential traffic to replay through the cycle engine
    /// at every point (fills [`DesignPoint::engine_gbps`]); `0` skips
    /// the replay.
    pub engine_check_bytes: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            jobs: 1,
            engine_check_bytes: 0,
        }
    }
}

/// Sweeps the design space of one accelerator over the grid, pricing
/// `workload` at every point with default [`SweepOptions`] (serial, no
/// engine cross-check).
///
/// # Panics
///
/// Panics if `workload` does not belong to `kind`.
pub fn sweep(
    kind: AcceleratorKind,
    workload: &AccelParams,
    grid: &SweepGrid,
    base_mem: &MemoryConfig,
) -> Vec<DesignPoint> {
    sweep_with(kind, workload, grid, base_mem, &SweepOptions::default())
}

/// Like [`sweep`], but with explicit execution options: design points
/// are priced on up to `opts.jobs` worker threads (grid order is
/// preserved regardless), and when `opts.engine_check_bytes > 0` each
/// point additionally replays that much sequential traffic through the
/// cycle engine to cross-check the analytic bandwidth model.
///
/// # Panics
///
/// Panics if `workload` does not belong to `kind`.
pub fn sweep_with(
    kind: AcceleratorKind,
    workload: &AccelParams,
    grid: &SweepGrid,
    base_mem: &MemoryConfig,
    opts: &SweepOptions,
) -> Vec<DesignPoint> {
    assert_eq!(workload.kind(), kind, "workload/accelerator mismatch");
    let model = AccelModel::new(kind);
    let base_hw = AccelHwConfig::mealib_default();
    let mut cells = Vec::new();
    for &f in &grid.frequencies_ghz {
        for &cores in &grid.cores {
            for &block in &grid.block_elems {
                for &row in &grid.row_bytes {
                    cells.push((f, cores, block, row));
                }
            }
        }
    }
    mealib_types::par_map(&cells, opts.jobs, |&(f, cores, block, row)| {
        let hw = base_hw
            .with_frequency(Hertz::from_ghz(f))
            .with_cores(cores)
            .with_block_elems(block);
        let mut mem = base_mem.clone();
        if let mealib_memsim::AddressMapping::Interleaved {
            ref mut row_bytes, ..
        } = mem.mapping
        {
            *row_bytes = row;
        }
        let report = model.execute(workload, &hw, &mem);
        DesignPoint {
            frequency: hw.frequency,
            cores,
            block_elems: block,
            row_bytes: row,
            gflops: report.gflops().get(),
            power_w: report.power().get(),
            engine_gbps: engine_check(&mem, opts.engine_check_bytes),
        }
    })
}

/// Replays `bytes` of sequential reads through the cycle engine over
/// `mem` and returns the achieved bandwidth in GB/s (`0.0` when
/// `bytes == 0`). The request size is one row buffer, so the replay
/// exercises activate/precharge scheduling, not just the data bus.
fn engine_check(mem: &MemoryConfig, bytes: u64) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    let step = mem.mapping.row_bytes();
    let trace: Vec<mealib_memsim::Request> = (0..bytes.div_ceil(step))
        .map(|i| mealib_memsim::Request::read(i * step, step.min(bytes - i * step)))
        .collect();
    mealib_memsim::simulate_trace(mem, &trace)
        .achieved_bandwidth()
        .as_gb_per_sec()
}

/// The Pareto frontier of a design space: points no other point
/// dominates (higher GFLOPS at lower power). Sorted by power.
pub fn pareto_frontier(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut frontier: Vec<DesignPoint> = points
        .iter()
        .filter(|p| {
            !points
                .iter()
                .any(|q| q.gflops >= p.gflops && q.power_w < p.power_w * 0.999)
        })
        .cloned()
        .collect();
    frontier.sort_by(|a, b| a.power_w.total_cmp(&b.power_w));
    frontier
}

/// The best-performing point within a power budget, if any fits.
pub fn best_under_budget(points: &[DesignPoint], budget_w: f64) -> Option<&DesignPoint> {
    points
        .iter()
        .filter(|p| p.power_w <= budget_w)
        .max_by(|a, b| a.gflops.total_cmp(&b.gflops))
}

/// The reference FFT workload of Table 2 (8192×8192 batch).
pub fn fft_reference_workload() -> AccelParams {
    AccelParams::Fft {
        n: 8192,
        batch: 8192,
    }
}

/// The reference SPMV workload: an `rgg_n_2_20`-class matrix
/// (2²⁰ rows, average degree ~13).
pub fn spmv_reference_workload() -> AccelParams {
    AccelParams::Spmv {
        rows: 1 << 20,
        cols: 1 << 20,
        nnz: 13 * (1 << 20),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_grid() {
        let grid = SweepGrid::default();
        let pts = sweep(
            AcceleratorKind::Fft,
            &fft_reference_workload(),
            &grid,
            &MemoryConfig::hmc_stack(),
        );
        assert_eq!(pts.len(), 4 * 4 * 2 * 2);
    }

    #[test]
    fn fft_efficiency_range_matches_fig11a() {
        // Paper: FFT energy efficiency varies from 10 to 56 GFLOPS/W
        // across the design space.
        let pts = sweep(
            AcceleratorKind::Fft,
            &fft_reference_workload(),
            &SweepGrid::default(),
            &MemoryConfig::hmc_stack(),
        );
        let effs: Vec<f64> = pts.iter().map(DesignPoint::gflops_per_watt).collect();
        let min = effs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = effs.iter().cloned().fold(0.0_f64, f64::max);
        assert!(
            max / min > 1.5,
            "design choices must matter: {min:.1}..{max:.1}"
        );
        assert!(
            max < 120.0 && min > 2.0,
            "efficiency decade: {min:.1}..{max:.1}"
        );
    }

    #[test]
    fn spmv_efficiency_is_an_order_below_fft() {
        // Paper: SPMV varies 0.18-1.76 GFLOPS/W — an order of magnitude
        // below FFT.
        let fft = sweep(
            AcceleratorKind::Fft,
            &fft_reference_workload(),
            &SweepGrid::default(),
            &MemoryConfig::hmc_stack(),
        );
        let spmv = sweep(
            AcceleratorKind::Spmv,
            &spmv_reference_workload(),
            &SweepGrid::default(),
            &MemoryConfig::hmc_stack(),
        );
        let fft_best = fft
            .iter()
            .map(DesignPoint::gflops_per_watt)
            .fold(0.0_f64, f64::max);
        let spmv_best = spmv
            .iter()
            .map(DesignPoint::gflops_per_watt)
            .fold(0.0_f64, f64::max);
        assert!(
            fft_best / spmv_best > 8.0,
            "FFT {fft_best:.1} vs SPMV {spmv_best:.2} GFLOPS/W"
        );
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let pts = sweep(
            AcceleratorKind::Fft,
            &fft_reference_workload(),
            &SweepGrid::default(),
            &MemoryConfig::hmc_stack(),
        );
        let frontier = pareto_frontier(&pts);
        assert!(!frontier.is_empty());
        assert!(frontier.len() <= pts.len());
        // Along the frontier, more power must buy more performance.
        for w in frontier.windows(2) {
            assert!(w[1].power_w >= w[0].power_w);
            assert!(
                w[1].gflops >= w[0].gflops * 0.999,
                "dominated point on frontier"
            );
        }
        // Nothing in the space dominates a frontier point.
        for f in &frontier {
            assert!(!pts
                .iter()
                .any(|q| q.gflops > f.gflops && q.power_w < f.power_w * 0.999));
        }
    }

    #[test]
    fn budget_picker_respects_the_budget() {
        let pts = sweep(
            AcceleratorKind::Fft,
            &fft_reference_workload(),
            &SweepGrid::default(),
            &MemoryConfig::hmc_stack(),
        );
        let best = best_under_budget(&pts, 20.0).expect("something fits 20 W");
        assert!(best.power_w <= 20.0);
        let unlimited = best_under_budget(&pts, f64::INFINITY).unwrap();
        assert!(unlimited.gflops >= best.gflops);
        assert!(best_under_budget(&pts, 0.1).is_none());
    }

    #[test]
    fn parallel_sweep_is_identical_to_serial() {
        let grid = SweepGrid::default();
        let mem = MemoryConfig::hmc_stack();
        let opts = SweepOptions {
            jobs: 1,
            engine_check_bytes: 1 << 20,
        };
        let serial = sweep_with(
            AcceleratorKind::Fft,
            &fft_reference_workload(),
            &grid,
            &mem,
            &opts,
        );
        for jobs in [2usize, 4, 8] {
            let parallel = sweep_with(
                AcceleratorKind::Fft,
                &fft_reference_workload(),
                &grid,
                &mem,
                &SweepOptions {
                    jobs,
                    engine_check_bytes: 1 << 20,
                },
            );
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn engine_check_reports_plausible_bandwidth() {
        let grid = SweepGrid {
            frequencies_ghz: vec![1.2],
            cores: vec![16],
            block_elems: vec![4096],
            row_bytes: vec![2048, 4096],
        };
        let mem = MemoryConfig::hmc_stack();
        let pts = sweep_with(
            AcceleratorKind::Fft,
            &fft_reference_workload(),
            &grid,
            &mem,
            &SweepOptions {
                jobs: 2,
                engine_check_bytes: 8 << 20,
            },
        );
        let peak = mem.peak_bandwidth().as_gb_per_sec();
        for p in &pts {
            assert!(
                p.engine_gbps > 0.0 && p.engine_gbps <= peak * 1.001,
                "engine check {} outside (0, {peak}]",
                p.engine_gbps
            );
        }
        // Disabled by default: sweep() leaves the field zero.
        let plain = sweep(AcceleratorKind::Fft, &fft_reference_workload(), &grid, &mem);
        assert!(plain.iter().all(|p| p.engine_gbps == 0.0));
    }

    #[test]
    fn higher_frequency_never_reduces_throughput() {
        let grid = SweepGrid {
            frequencies_ghz: vec![0.8, 2.0],
            cores: vec![16],
            block_elems: vec![4096],
            row_bytes: vec![4096],
        };
        let pts = sweep(
            AcceleratorKind::Fft,
            &fft_reference_workload(),
            &grid,
            &MemoryConfig::hmc_stack(),
        );
        assert!(pts[1].gflops >= pts[0].gflops * 0.99);
        assert!(pts[1].power_w > pts[0].power_w, "speed costs power");
    }
}
