//! Accelerator-layer hardware configuration.
//!
//! These are the knobs the paper's design-space analysis turns (§5.3):
//! "we explored various design parameters, such as accelerator frequency,
//! row buffer size, number of accelerator cores, and block size."

use mealib_types::{ConfigError, Hertz};

/// Hardware parameters of one accelerator deployment on the layer.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelHwConfig {
    /// Accelerator clock frequency.
    pub frequency: Hertz,
    /// Accelerator cores (PE clusters) active for this operation, across
    /// all tiles.
    pub cores: u32,
    /// f32 SIMD lanes per core.
    pub lanes_per_core: u32,
    /// Local Memory per tile, bytes.
    pub local_mem_bytes: u64,
    /// Block/tile size in elements for blocked algorithms (FFT stages,
    /// transpose tiles, SPMV row blocks).
    pub block_elems: u64,
}

impl AccelHwConfig {
    /// The nominal MEALib deployment: one core per vault (32), 8 lanes,
    /// 1 GHz, 256 KiB of LM per tile, 4 Ki-element blocks.
    pub fn mealib_default() -> Self {
        Self {
            frequency: Hertz::from_ghz(1.0),
            cores: 32,
            lanes_per_core: 8,
            local_mem_bytes: 256 * 1024,
            block_elems: 4096,
        }
    }

    /// Peak f32 FLOP/s of the PE array (one fused multiply-add per lane
    /// per cycle = 2 FLOPs).
    pub fn peak_flops(&self) -> f64 {
        self.frequency.get() * self.cores as f64 * self.lanes_per_core as f64 * 2.0
    }

    /// Peak datapath streaming rate in bytes/s (each lane moves one f32
    /// per cycle).
    pub fn peak_stream_bytes(&self) -> f64 {
        self.frequency.get() * self.cores as f64 * self.lanes_per_core as f64 * 4.0
    }

    /// Returns a copy with a different clock frequency (design-space
    /// sweeps).
    pub fn with_frequency(&self, frequency: Hertz) -> Self {
        Self {
            frequency,
            ..self.clone()
        }
    }

    /// Returns a copy with a different core count.
    pub fn with_cores(&self, cores: u32) -> Self {
        Self {
            cores,
            ..self.clone()
        }
    }

    /// Returns a copy with a different block size.
    pub fn with_block_elems(&self, block_elems: u64) -> Self {
        Self {
            block_elems,
            ..self.clone()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.frequency.get() <= 0.0 {
            return Err(ConfigError::new("frequency", "must be positive"));
        }
        if self.cores == 0 {
            return Err(ConfigError::new("cores", "must be nonzero"));
        }
        if self.lanes_per_core == 0 {
            return Err(ConfigError::new("lanes_per_core", "must be nonzero"));
        }
        if self.local_mem_bytes == 0 {
            return Err(ConfigError::new("local_mem_bytes", "must be nonzero"));
        }
        if self.block_elems == 0 {
            return Err(ConfigError::new("block_elems", "must be nonzero"));
        }
        Ok(())
    }
}

impl Default for AccelHwConfig {
    fn default() -> Self {
        Self::mealib_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert!(AccelHwConfig::mealib_default().validate().is_ok());
    }

    #[test]
    fn peak_rates() {
        let hw = AccelHwConfig::mealib_default();
        // 32 cores x 8 lanes x 2 flops x 1 GHz = 512 GFLOP/s.
        assert!((hw.peak_flops() - 512e9).abs() < 1.0);
        assert!((hw.peak_stream_bytes() - 1024e9).abs() < 1.0);
    }

    #[test]
    fn with_builders_change_one_field() {
        let hw = AccelHwConfig::mealib_default();
        let f = hw.with_frequency(Hertz::from_ghz(2.0));
        assert_eq!(f.cores, hw.cores);
        assert!((f.peak_flops() - 1024e9).abs() < 1.0);
        assert_eq!(hw.with_cores(4).cores, 4);
        assert_eq!(hw.with_block_elems(512).block_elems, 512);
    }

    #[test]
    fn validation_rejects_zero_fields() {
        let hw = AccelHwConfig::mealib_default();
        assert!(hw.with_cores(0).validate().is_err());
        assert!(hw.with_frequency(Hertz::new(0.0)).validate().is_err());
        assert!(hw.with_block_elems(0).validate().is_err());
        let mut bad = hw.clone();
        bad.lanes_per_core = 0;
        assert!(bad.validate().is_err());
        let mut bad = hw;
        bad.local_mem_bytes = 0;
        assert!(bad.validate().is_err());
    }
}
