//! The tiled accelerator layer (Figure 4).
//!
//! One tile per vault; each tile has a Local Memory, a Network Controller
//! on the mesh, and a switched cluster of accelerator PEs. The layer owns
//! the hardware configuration and the memory device the tiles talk to.

use mealib_memsim::MemoryConfig;
use mealib_noc::{Mesh, NocStats, TileId};
use mealib_tdl::AcceleratorKind;

use crate::hw::AccelHwConfig;
use crate::model::{AccelModel, ExecReport};
use crate::params::AccelParams;

/// One accelerator tile: local memory plus a PE cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tile {
    /// Position on the mesh (and the vault it fronts).
    pub id: TileId,
    /// Local Memory capacity, bytes.
    pub local_mem_bytes: u64,
    /// Accelerator PEs present behind this tile's switch.
    pub pes: Vec<AcceleratorKind>,
}

/// The accelerator layer: a mesh of tiles plus the device configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorLayer {
    mesh: Mesh,
    tiles: Vec<Tile>,
    hw: AccelHwConfig,
    mem: MemoryConfig,
    dma_scale: f64,
}

impl AcceleratorLayer {
    /// The paper's deployment: a 4×8 mesh (one tile per vault of the
    /// 32-vault stack), every PE kind in every tile, internal stack
    /// access.
    pub fn mealib_default() -> Self {
        let mesh = Mesh::mealib_layer();
        let hw = AccelHwConfig::mealib_default();
        let tiles = (0..mesh.rows())
            .flat_map(|r| (0..mesh.cols()).map(move |c| TileId::new(r, c)))
            .map(|id| Tile {
                id,
                local_mem_bytes: hw.local_mem_bytes,
                pes: AcceleratorKind::ALL.to_vec(),
            })
            .collect();
        Self {
            mesh,
            tiles,
            hw,
            mem: MemoryConfig::hmc_stack(),
            dma_scale: 1.0,
        }
    }

    /// Builds a layer with explicit parts (used by design-space sweeps).
    pub fn with_parts(mesh: Mesh, tiles: Vec<Tile>, hw: AccelHwConfig, mem: MemoryConfig) -> Self {
        Self {
            mesh,
            tiles,
            hw,
            mem,
            dma_scale: 1.0,
        }
    }

    /// Returns a copy with a scaled DMA efficiency (see
    /// [`AccelModel::execute_scaled`]).
    pub fn with_dma_scale(&self, dma_scale: f64) -> Self {
        Self {
            dma_scale,
            ..self.clone()
        }
    }

    /// The mesh NoC.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The tiles.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// The hardware configuration.
    pub fn hw(&self) -> &AccelHwConfig {
        &self.hw
    }

    /// The memory device the layer sits under.
    pub fn mem(&self) -> &MemoryConfig {
        &self.mem
    }

    /// The layer roofline: the stack's peak bandwidth against the PE
    /// cluster's peak arithmetic throughput. This is what per-run
    /// bottleneck attribution classifies windows against.
    pub fn roofline(&self) -> mealib_obs::Roofline {
        mealib_obs::Roofline::new(self.mem.peak_bandwidth(), self.hw.peak_flops())
    }

    /// Returns a copy with a different hardware configuration.
    pub fn with_hw(&self, hw: AccelHwConfig) -> Self {
        Self { hw, ..self.clone() }
    }

    /// Returns a copy talking to a different memory device (e.g. the
    /// remote-stack view of §3.3).
    pub fn with_mem(&self, mem: MemoryConfig) -> Self {
        Self {
            mem,
            ..self.clone()
        }
    }

    /// Returns `true` if some tile has a PE of the given kind.
    pub fn supports(&self, kind: AcceleratorKind) -> bool {
        self.tiles.iter().any(|t| t.pes.contains(&kind))
    }

    /// Prices one accelerator invocation on this layer.
    ///
    /// # Panics
    ///
    /// Panics if no tile supports the accelerator the parameters name.
    pub fn execute(&self, params: &AccelParams) -> ExecReport {
        assert!(
            self.supports(params.kind()),
            "layer has no {} accelerator",
            params.kind()
        );
        AccelModel::new(params.kind()).execute_scaled(params, &self.hw, &self.mem, self.dma_scale)
    }

    /// Cost of distributing pass configuration from the Configuration
    /// Unit (at tile (0,0)) to every tile.
    pub fn config_broadcast(&self, bytes_per_tile: u64) -> NocStats {
        self.mesh.broadcast(TileId::new(0, 0), bytes_per_tile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layer_has_32_tiles_with_all_pes() {
        let layer = AcceleratorLayer::mealib_default();
        assert_eq!(layer.tiles().len(), 32);
        for kind in AcceleratorKind::ALL {
            assert!(layer.supports(kind), "missing {kind}");
        }
    }

    #[test]
    fn execute_dispatches_to_model() {
        let layer = AcceleratorLayer::mealib_default();
        let r = layer.execute(&AccelParams::Axpy {
            n: 1 << 24,
            alpha: 1.0,
            incx: 1,
            incy: 1,
        });
        assert!(r.time.get() > 0.0);
        assert_eq!(r.kind, AcceleratorKind::Axpy);
    }

    #[test]
    fn broadcast_touches_all_tiles() {
        let layer = AcceleratorLayer::mealib_default();
        let stats = layer.config_broadcast(64);
        assert_eq!(stats.flits, 31 * 4);
    }

    #[test]
    #[should_panic(expected = "no FFT accelerator")]
    fn unsupported_kind_panics() {
        let layer = AcceleratorLayer::mealib_default();
        let tiles: Vec<Tile> = layer
            .tiles()
            .iter()
            .map(|t| Tile {
                pes: vec![AcceleratorKind::Axpy],
                ..t.clone()
            })
            .collect();
        let stripped = AcceleratorLayer::with_parts(
            layer.mesh().clone(),
            tiles,
            layer.hw().clone(),
            layer.mem().clone(),
        );
        let _ = stripped.execute(&AccelParams::Fft { n: 1024, batch: 1 });
    }
}
