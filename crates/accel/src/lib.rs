//! The MEALib accelerator layer (§2.2): tiled memory-side accelerators,
//! the configuration infrastructure, and their performance/power/area
//! models.
//!
//! The layer sits below the HMC logic base and contains one tile per
//! vault; each tile holds a Local Memory, a Network Controller on the
//! mesh NoC, and a cluster of accelerator PEs (AXPY, DOT, GEMV, SPMV,
//! RESMP, FFT; RESHP lives on the DRAM logic layer). A centralized
//! Configuration Unit fetches the accelerator descriptor from DRAM,
//! decodes it, configures the tile switches, and sequences passes and
//! hardware loops.
//!
//! Modeling split:
//!
//! * **Functional** results are produced by `mealib-kernels` (wired up in
//!   the `mealib` core crate, where the simulated data space lives).
//! * **Timing** is `max(memory time, compute time)`: memory time comes
//!   from the `mealib-memsim` analytic model over the accelerator's
//!   [`pattern`](model::AccelModel::access_pattern); compute time from the
//!   PE array's FLOPs/cycle.
//! * **Power/area** come from per-accelerator synthesis-style constants
//!   ([`power`]) calibrated against Table 5 of the paper, plus live DRAM
//!   energy from the memory model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod cu;
pub mod design_space;
pub mod hw;
pub mod layer;
pub mod logic_layer;
pub mod model;
pub mod params;
pub mod power;
pub mod trace_exec;

pub use hw::AccelHwConfig;
pub use layer::AcceleratorLayer;
pub use model::{AccelModel, ExecReport};
pub use params::AccelParams;
