//! The augmented DRAM logic layer (§2.1, Figure 3).
//!
//! MEALib adds three things to the HMC logic base: (de)multiplexers on
//! each vault controller's queues (to steer accesses between the CPU
//! path, the data-reshape infrastructure, and the accelerator layer), an
//! arbitration rule in the link controller (CPU and accelerators never
//! operate on the DRAM simultaneously), and the data-reshape
//! infrastructure itself — a special accelerator for layout transforms
//! that both the CPU and the accelerators can employ.
//!
//! §5.2: "The additional logic at the DRAM logic layer mainly contains
//! the MUX and data reshape unit. The total power of these components is
//! 0.25 W, and the total area is 0.45 mm², which is only 0.66% of the
//! entire logic layer."

use mealib_types::{Bytes, ConfigError, Joules, Seconds, Watts};

/// Who currently owns the DRAM (the link controller's arbitration state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DramOwner {
    /// The host CPU issues requests over the external links.
    #[default]
    Cpu,
    /// The accelerator layer owns the vaults; CPU accesses are blocked.
    Accelerators,
}

/// The link controller's arbitration: a hard mutex between the CPU and
/// the accelerator layer (the paper's simplifying design decision).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkArbiter {
    owner: DramOwner,
    /// Ownership switches performed (each costs a drain of in-flight
    /// requests).
    pub switches: u64,
}

impl LinkArbiter {
    /// Creates an arbiter with the CPU owning the DRAM.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current owner.
    pub fn owner(&self) -> DramOwner {
        self.owner
    }

    /// Requests ownership for `who`, returning the switch penalty (zero
    /// when `who` already owns the DRAM).
    pub fn acquire(&mut self, who: DramOwner) -> Seconds {
        if self.owner == who {
            Seconds::ZERO
        } else {
            self.owner = who;
            self.switches += 1;
            // Drain in-flight requests + retrain the steering MUXes.
            Seconds::from_nanos(400.0)
        }
    }

    /// Returns `true` if `who` may issue DRAM requests right now.
    pub fn may_access(&self, who: DramOwner) -> bool {
        self.owner == who
    }
}

/// The data-reshape infrastructure on the logic layer: steering MUXes +
/// the reshape unit (Table 5's logic-layer row).
#[derive(Debug, Clone, PartialEq)]
pub struct ReshapeInfrastructure {
    /// Dynamic power while actively reshaping.
    pub active_power: Watts,
    /// Area on the logic layer, mm².
    pub area_mm2: f64,
    /// Internal reorder-buffer capacity (one DRAM row per vault).
    pub buffer_bytes: u64,
}

impl ReshapeInfrastructure {
    /// The paper's configuration: 0.25 W, 0.45 mm², row-sized buffers
    /// per vault.
    pub fn mealib_default() -> Self {
        Self {
            active_power: Watts::new(0.25),
            area_mm2: 0.45,
            buffer_bytes: 32 * 4096,
        }
    }

    /// Fraction of the 68 mm² logic layer this logic occupies.
    pub fn layer_share(&self) -> f64 {
        self.area_mm2 / crate::power::LAYER_AREA_BUDGET_MM2
    }

    /// Energy of steering `bytes` through the reshape datapath for
    /// `elapsed` (the unit is only powered while a transform runs).
    pub fn energy(&self, elapsed: Seconds) -> Joules {
        self.active_power.for_duration(elapsed)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.active_power.get() <= 0.0 {
            return Err(ConfigError::new("active_power", "must be positive"));
        }
        if self.area_mm2 <= 0.0 {
            return Err(ConfigError::new("area_mm2", "must be positive"));
        }
        if self.buffer_bytes == 0 {
            return Err(ConfigError::new("buffer_bytes", "must be nonzero"));
        }
        Ok(())
    }

    /// Largest tile (square, elements of `elem_bytes`) the reorder
    /// buffers can hold — the blocking factor of the layout transforms.
    pub fn max_tile_elems(&self, elem_bytes: u64) -> u64 {
        ((self.buffer_bytes / elem_bytes) as f64).sqrt() as u64
    }

    /// Bytes the reshape unit must buffer to transpose a `rows × cols`
    /// matrix tile-by-tile without row-buffer thrashing.
    pub fn working_set(&self, rows: u64, cols: u64, elem_bytes: u64) -> Bytes {
        let tile = self.max_tile_elems(elem_bytes).min(rows).min(cols);
        Bytes::new(tile * tile * elem_bytes)
    }
}

impl Default for ReshapeInfrastructure {
    fn default() -> Self {
        Self::mealib_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arbiter_is_a_mutex_with_switch_penalty() {
        let mut arb = LinkArbiter::new();
        assert_eq!(arb.owner(), DramOwner::Cpu);
        assert!(arb.may_access(DramOwner::Cpu));
        assert!(!arb.may_access(DramOwner::Accelerators));

        // Re-acquiring what you own is free.
        assert_eq!(arb.acquire(DramOwner::Cpu), Seconds::ZERO);
        assert_eq!(arb.switches, 0);

        // Switching costs a drain and flips access rights.
        let penalty = arb.acquire(DramOwner::Accelerators);
        assert!(penalty.get() > 0.0);
        assert_eq!(arb.switches, 1);
        assert!(arb.may_access(DramOwner::Accelerators));
        assert!(!arb.may_access(DramOwner::Cpu));

        let _ = arb.acquire(DramOwner::Cpu);
        assert_eq!(arb.switches, 2);
    }

    #[test]
    fn reshape_logic_matches_table5_note() {
        let r = ReshapeInfrastructure::mealib_default();
        assert!(r.validate().is_ok());
        // "0.45 mm², which is only 0.66% of the entire logic layer."
        assert!(
            (r.layer_share() - 0.0066).abs() < 0.001,
            "{}",
            r.layer_share()
        );
        assert_eq!(r.active_power, Watts::new(0.25));
    }

    #[test]
    fn reshape_energy_scales_with_time() {
        let r = ReshapeInfrastructure::mealib_default();
        let e = r.energy(Seconds::from_millis(4.0));
        assert!((e.get() - 0.001).abs() < 1e-9);
    }

    #[test]
    fn tile_sizing_respects_buffers_and_matrix() {
        let r = ReshapeInfrastructure::mealib_default();
        let tile = r.max_tile_elems(4);
        assert!(tile * tile * 4 <= r.buffer_bytes);
        // Tiny matrices cap the working set.
        assert_eq!(r.working_set(8, 8, 4), Bytes::new(8 * 8 * 4));
        // Large matrices are capped by the buffers.
        assert!(r.working_set(1 << 20, 1 << 20, 4).get() <= r.buffer_bytes);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut r = ReshapeInfrastructure::mealib_default();
        r.buffer_bytes = 0;
        assert!(r.validate().is_err());
        let mut r = ReshapeInfrastructure::mealib_default();
        r.area_mm2 = 0.0;
        assert!(r.validate().is_err());
    }
}
