//! Per-accelerator analytical performance/power models.
//!
//! Following the paper's methodology (§4.2), each accelerator is priced
//! by an analytical model fed with (a) the achieved memory bandwidth and
//! energy from the DRAM model and (b) synthesis-style power constants.
//! Execution time is `max(memory time, compute time)` plus a fixed
//! configuration latency; the functional result is computed separately by
//! the `mealib-kernels` implementations.

use mealib_memsim::{analytic, AccessPattern, MemoryConfig, TraceStats};
use mealib_tdl::AcceleratorKind;
use mealib_types::{Gflops, Joules, Seconds, Watts};

use crate::hw::AccelHwConfig;
use crate::params::AccelParams;
use crate::power::profile_at;

/// Fixed per-invocation configuration latency inside the layer (switch
/// setup + accelerator init), once the descriptor has been decoded.
pub const CONFIG_LATENCY: Seconds = Seconds::new(0.5e-6);

/// Result of modeling one accelerator invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// Which accelerator ran.
    pub kind: AcceleratorKind,
    /// End-to-end time (memory/compute overlap + configuration).
    pub time: Seconds,
    /// Time the memory system needed in isolation.
    pub mem_time: Seconds,
    /// Time the PE array needed in isolation.
    pub compute_time: Seconds,
    /// Total energy: DRAM + accelerator datapath + leakage.
    pub energy: Joules,
    /// DRAM share of the energy.
    pub mem_energy: Joules,
    /// FLOPs executed.
    pub flops: u64,
    /// Memory-system statistics of the invocation.
    pub mem: TraceStats,
}

impl ExecReport {
    /// Achieved floating-point throughput.
    pub fn gflops(&self) -> Gflops {
        Gflops::from_flops(self.flops as f64, self.time)
    }

    /// Average power over the invocation.
    pub fn power(&self) -> Watts {
        self.energy.over(self.time)
    }

    /// Energy efficiency in GFLOPS per watt.
    pub fn gflops_per_watt(&self) -> f64 {
        self.gflops().per_watt(self.power())
    }

    /// For `RESHP` (no FLOPs) the paper reports GB/s instead; this is the
    /// matching throughput metric.
    pub fn gbytes_per_sec(&self) -> f64 {
        self.mem.bytes_moved().get() as f64 / self.time.get() * 1e-9
    }

    /// Scales the report by `count` back-to-back repetitions (hardware
    /// `LOOP` execution: configuration already paid, the body re-runs).
    pub fn repeat(&self, count: u64) -> ExecReport {
        let n = count as f64;
        let mut mem = self.mem.clone();
        mem.elapsed = mem.elapsed * n;
        mem.cycles = mem.cycles * count;
        mem.bytes_read = mem.bytes_read * count;
        mem.bytes_written = mem.bytes_written * count;
        mem.activations *= count;
        mem.precharges *= count;
        mem.row_hits *= count;
        mem.row_misses *= count;
        mem.energy = mem.energy * n;
        ExecReport {
            kind: self.kind,
            time: self.time * n,
            mem_time: self.mem_time * n,
            compute_time: self.compute_time * n,
            energy: self.energy * n,
            mem_energy: self.mem_energy * n,
            flops: self.flops * count,
            mem,
        }
    }

    /// Sequential composition of two reports (e.g. software chaining).
    pub fn then(&self, other: &ExecReport) -> ExecReport {
        ExecReport {
            kind: other.kind,
            time: self.time + other.time,
            mem_time: self.mem_time + other.mem_time,
            compute_time: self.compute_time + other.compute_time,
            energy: self.energy + other.energy,
            mem_energy: self.mem_energy + other.mem_energy,
            flops: self.flops + other.flops,
            mem: self.mem.merge_sequential(&other.mem),
        }
    }
}

/// The analytical model of one accelerator kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelModel {
    kind: AcceleratorKind,
}

impl AccelModel {
    /// Creates the model for an accelerator kind.
    pub fn new(kind: AcceleratorKind) -> Self {
        Self { kind }
    }

    /// The accelerator kind this model prices.
    pub fn kind(&self) -> AcceleratorKind {
        self.kind
    }

    /// The DRAM traffic of one invocation.
    ///
    /// # Panics
    ///
    /// Panics if `params` is for a different accelerator.
    pub fn access_pattern(&self, params: &AccelParams, hw: &AccelHwConfig) -> AccessPattern {
        assert_eq!(params.kind(), self.kind, "parameter/accelerator mismatch");
        match *params {
            AccelParams::Axpy { n, incx, incy, .. } => {
                if incx == 1 && incy == 1 {
                    // Read x and y, write y.
                    AccessPattern::sequential_rw(8 * n, 4 * n)
                } else {
                    AccessPattern::Then(vec![
                        AccessPattern::Strided {
                            stride: 4 * incx as u64,
                            elem_bytes: 4,
                            count: n,
                            write: false,
                        },
                        AccessPattern::Strided {
                            stride: 4 * incy as u64,
                            elem_bytes: 4,
                            count: 2 * n, // y read + write
                            write: false,
                        },
                    ])
                }
            }
            AccelParams::Dot {
                n,
                incx,
                incy,
                complex,
            } => {
                let elem = if complex { 8 } else { 4 };
                if incx == 1 && incy == 1 {
                    AccessPattern::sequential_read(2 * elem * n)
                } else {
                    AccessPattern::Then(vec![
                        AccessPattern::Strided {
                            stride: elem * incx as u64,
                            elem_bytes: elem,
                            count: n,
                            write: false,
                        },
                        AccessPattern::Strided {
                            stride: elem * incy as u64,
                            elem_bytes: elem,
                            count: n,
                            write: false,
                        },
                    ])
                }
            }
            AccelParams::Gemv { m, n } => {
                // Matrix streamed once; x held in LM; y written once.
                AccessPattern::sequential_rw(4 * (m * n + n), 4 * m)
            }
            AccelParams::Spmv { rows, cols, nnz } => AccessPattern::Then(vec![
                // CSR arrays stream sequentially...
                AccessPattern::sequential_read(8 * nnz + 4 * (rows + 1)),
                // ...while x is gathered randomly...
                AccessPattern::Random {
                    elem_bytes: 4,
                    count: nnz,
                    region_bytes: 4 * cols,
                },
                // ...and y streams out.
                AccessPattern::sequential_write(4 * rows),
            ]),
            AccelParams::Resmp {
                blocks,
                in_per_block,
                out_per_block,
            } => {
                AccessPattern::sequential_rw(4 * blocks * in_per_block, 4 * blocks * out_per_block)
            }
            AccelParams::Fft { n, batch } => {
                let bytes = 8 * n * batch;
                if 8 * n <= hw.local_mem_bytes {
                    // Whole transform fits in a tile's LM: one pass.
                    AccessPattern::sequential_rw(bytes, bytes)
                } else {
                    // DRAM-optimized two-pass decomposition.
                    AccessPattern::Then(vec![
                        AccessPattern::sequential_rw(bytes, bytes),
                        AccessPattern::sequential_rw(bytes, bytes),
                    ])
                }
            }
            AccelParams::Reshp {
                rows,
                cols,
                elem_bytes,
            } => {
                // The data-reshape infrastructure buffers row-buffer-sized
                // tiles, so both the read and the write stream.
                let bytes = rows * cols * elem_bytes as u64;
                AccessPattern::sequential_rw(bytes, bytes)
            }
        }
    }

    /// FLOPs of one invocation.
    ///
    /// # Panics
    ///
    /// Panics if `params` is for a different accelerator.
    pub fn flops(&self, params: &AccelParams) -> u64 {
        assert_eq!(params.kind(), self.kind, "parameter/accelerator mismatch");
        match *params {
            AccelParams::Axpy { n, .. } => 2 * n,
            AccelParams::Dot { n, complex, .. } => {
                if complex {
                    8 * n
                } else {
                    2 * n
                }
            }
            AccelParams::Gemv { m, n } => 2 * m * n,
            AccelParams::Spmv { nnz, .. } => 2 * nnz,
            AccelParams::Resmp {
                blocks,
                out_per_block,
                ..
            } => 4 * blocks * out_per_block,
            AccelParams::Fft { n, batch } => 5 * n * (63 - n.leading_zeros() as u64) * batch,
            AccelParams::Reshp { .. } => 0,
        }
    }

    /// Peak compute rate of the PE array for this operation, FLOP/s.
    pub fn compute_rate(&self, hw: &AccelHwConfig) -> f64 {
        let per_core_lane = hw.frequency.get() * hw.cores as f64 * hw.lanes_per_core as f64;
        match self.kind {
            // Streaming MACs: one FMA per lane per cycle.
            AcceleratorKind::Axpy | AcceleratorKind::Dot | AcceleratorKind::Gemv => {
                per_core_lane * 2.0
            }
            // One nonzero per core per cycle (index decode limits lanes).
            AcceleratorKind::Spmv => hw.frequency.get() * hw.cores as f64 * 2.0,
            // One interpolated output per core per cycle (4 FLOPs each).
            AcceleratorKind::Resmp => hw.frequency.get() * hw.cores as f64 * 4.0,
            // Dedicated radix pipelines: lanes butterflies/cycle, 10
            // FLOPs per butterfly.
            AcceleratorKind::Fft => per_core_lane * 10.0,
            // Pure data movement.
            AcceleratorKind::Reshp => f64::INFINITY,
        }
    }

    /// Fraction of the stack's peak bandwidth this accelerator's DMA
    /// engines sustain on their dominant stream (vault-conflict and
    /// double-buffering losses).
    pub fn bandwidth_efficiency(&self) -> f64 {
        match self.kind {
            AcceleratorKind::Axpy => 0.62,
            AcceleratorKind::Dot => 0.52,
            AcceleratorKind::Gemv => 0.90,
            AcceleratorKind::Spmv => 1.0, // gather pattern already priced
            AcceleratorKind::Resmp => 0.55,
            AcceleratorKind::Fft => 0.85,
            AcceleratorKind::Reshp => 0.88,
        }
    }

    /// Prices one invocation on the given hardware and memory device.
    ///
    /// # Panics
    ///
    /// Panics if `params` is for a different accelerator or a
    /// configuration fails validation.
    pub fn execute(
        &self,
        params: &AccelParams,
        hw: &AccelHwConfig,
        mem: &MemoryConfig,
    ) -> ExecReport {
        self.execute_scaled(params, hw, mem, 1.0)
    }

    /// Like [`AccelModel::execute`], with the DMA efficiency scaled by
    /// `dma_scale` (capped at 0.95 absolute). Processor-side deployments
    /// (PSAS) stream through the host's memory controller and prefetch
    /// queues, recovering most of the standalone-DMA derate.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters or hardware configuration.
    pub fn execute_scaled(
        &self,
        params: &AccelParams,
        hw: &AccelHwConfig,
        mem: &MemoryConfig,
        dma_scale: f64,
    ) -> ExecReport {
        hw.validate()
            .expect("invalid accelerator hardware configuration");
        params.validate().expect("invalid accelerator parameters");
        let pattern = self.access_pattern(params, hw);
        let mut mem_stats = analytic::try_estimate(mem, &pattern).expect("validated memory config");
        // Apply the DMA-efficiency derate to the memory time.
        let eff = (self.bandwidth_efficiency() * dma_scale).min(0.95);
        mem_stats.elapsed = mem_stats.elapsed / eff;
        let flops = self.flops(params);
        let compute_time = if flops == 0 {
            Seconds::ZERO
        } else {
            Seconds::new(flops as f64 / self.compute_rate(hw))
        };
        let busy = mem_stats.elapsed.max(compute_time);
        let time = busy + CONFIG_LATENCY;

        // Recharge DRAM background power over the stretched interval.
        let mem_energy =
            mem.energy
                .trace_energy(mem_stats.activations, mem_stats.bytes_moved().get(), busy);
        mem_stats.energy = mem_energy;

        let prof = profile_at(self.kind, hw.frequency);
        let core_energy = prof.e_byte_datapath * mem_stats.bytes_moved().get() as f64
            + prof.e_flop * flops as f64
            + prof.p_leakage.for_duration(time);

        ExecReport {
            kind: self.kind,
            time,
            mem_time: mem_stats.elapsed,
            compute_time,
            energy: mem_energy + core_energy,
            mem_energy,
            flops,
            mem: mem_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(params: AccelParams) -> ExecReport {
        AccelModel::new(params.kind()).execute(
            &params,
            &AccelHwConfig::mealib_default(),
            &MemoryConfig::hmc_stack(),
        )
    }

    #[test]
    fn axpy_is_memory_bound_on_the_stack() {
        let r = run(AccelParams::Axpy {
            n: 1 << 28,
            alpha: 2.0,
            incx: 1,
            incy: 1,
        });
        assert!(r.mem_time > r.compute_time, "AXPY must be memory-bound");
        // 12 bytes per 2 flops at ~300+ GB/s → tens of GFLOPS.
        let g = r.gflops().get();
        assert!((20.0..200.0).contains(&g), "AXPY {g:.1} GFLOPS");
    }

    #[test]
    fn reshp_throughput_tracks_bandwidth() {
        let r = run(AccelParams::Reshp {
            rows: 16384,
            cols: 16384,
            elem_bytes: 4,
        });
        assert_eq!(r.flops, 0);
        let gbs = r.gbytes_per_sec();
        assert!((200.0..512.0).contains(&gbs), "RESHP {gbs:.0} GB/s");
    }

    #[test]
    fn spmv_is_slowest_per_byte() {
        let dense = run(AccelParams::Dot {
            n: 1 << 26,
            incx: 1,
            incy: 1,
            complex: false,
        });
        let sparse = run(AccelParams::Spmv {
            rows: 1 << 20,
            cols: 1 << 20,
            nnz: 12 << 20,
        });
        let dense_bw = dense.mem.bytes_moved().get() as f64 / dense.time.get();
        let sparse_bw = sparse.mem.bytes_moved().get() as f64 / sparse.time.get();
        assert!(
            sparse_bw < 0.5 * dense_bw,
            "gather must be far below streaming: {sparse_bw:.2e} vs {dense_bw:.2e}"
        );
    }

    #[test]
    fn fft_hits_the_fig11_throughput_scale() {
        let r = run(AccelParams::Fft {
            n: 8192,
            batch: 8192,
        });
        let g = r.gflops().get();
        // Fig 11a: the FFT design space tops out around 2000+ GFLOPS.
        assert!((500.0..3000.0).contains(&g), "FFT {g:.0} GFLOPS");
        let eff = r.gflops_per_watt();
        assert!((10.0..80.0).contains(&eff), "FFT {eff:.1} GFLOPS/W");
    }

    #[test]
    fn table5_power_scale_is_respected() {
        // Table 5 lists per-accelerator (incl. DRAM) powers between ~8 W
        // (RESMP) and ~24 W (GEMV). Our computed powers must land in that
        // decade, and GEMV must exceed RESMP.
        let gemv = run(AccelParams::Gemv { m: 16384, n: 16384 });
        let resmp = run(AccelParams::Resmp {
            blocks: 16384,
            in_per_block: 16384,
            out_per_block: 16384,
        });
        let pg = gemv.power().get();
        let pr = resmp.power().get();
        assert!((5.0..40.0).contains(&pg), "GEMV power {pg:.1} W");
        assert!((3.0..40.0).contains(&pr), "RESMP power {pr:.1} W");
        assert!(pg > pr, "GEMV ({pg:.1} W) must out-draw RESMP ({pr:.1} W)");
    }

    #[test]
    fn strided_dot_is_slower_than_unit_stride() {
        let unit = run(AccelParams::Dot {
            n: 1 << 22,
            incx: 1,
            incy: 1,
            complex: true,
        });
        let strided = run(AccelParams::Dot {
            n: 1 << 22,
            incx: 1,
            incy: 64,
            complex: true,
        });
        assert!(strided.time > unit.time);
    }

    #[test]
    fn config_latency_floors_small_invocations() {
        let tiny = run(AccelParams::Axpy {
            n: 16,
            alpha: 1.0,
            incx: 1,
            incy: 1,
        });
        assert!(tiny.time >= CONFIG_LATENCY);
    }

    #[test]
    fn report_composition() {
        let a = run(AccelParams::Axpy {
            n: 1 << 20,
            alpha: 1.0,
            incx: 1,
            incy: 1,
        });
        let b = run(AccelParams::Dot {
            n: 1 << 20,
            incx: 1,
            incy: 1,
            complex: false,
        });
        let c = a.then(&b);
        assert_eq!(c.flops, a.flops + b.flops);
        assert!((c.time.get() - (a.time + b.time).get()).abs() < 1e-15);
        assert_eq!(c.kind, b.kind);
    }

    #[test]
    #[should_panic(expected = "parameter/accelerator mismatch")]
    fn mismatched_params_panic() {
        let model = AccelModel::new(AcceleratorKind::Fft);
        let _ = model.flops(&AccelParams::Gemv { m: 4, n: 4 });
    }

    #[test]
    fn energy_split_is_consistent() {
        let r = run(AccelParams::Gemv { m: 8192, n: 8192 });
        assert!(r.mem_energy.get() > 0.0);
        assert!(
            r.energy.get() > r.mem_energy.get(),
            "core energy must be nonzero"
        );
    }
}
