//! Typed accelerator parameters and their `.para`-file wire format.
//!
//! "The opcode specifies which accelerator to use, while the other two
//! fields determine the size and starting address of accelerator
//! parameters, which are determined by the targeted library APIs" (§2.3).
//! Each variant here mirrors the parameters of the corresponding MKL API
//! (problem size, strides, batch counts); [`AccelParams::to_bytes`] /
//! [`AccelParams::from_bytes`] define the little-endian blob stored in
//! the descriptor's Parameter Region.

use core::fmt;

use mealib_tdl::AcceleratorKind;

/// Parameters of one accelerator invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccelParams {
    /// `cblas_saxpy(n, alpha, x, incx, y, incy)`.
    Axpy {
        /// Element count.
        n: u64,
        /// Scale factor.
        alpha: f32,
        /// Stride of `x` in elements.
        incx: u32,
        /// Stride of `y` in elements.
        incy: u32,
    },
    /// `cblas_sdot` / `cblas_cdotc_sub`.
    Dot {
        /// Element count.
        n: u64,
        /// Stride of `x` in elements.
        incx: u32,
        /// Stride of `y` in elements.
        incy: u32,
        /// `true` for the conjugated complex variant.
        complex: bool,
    },
    /// `cblas_sgemv` (no transpose, row-major).
    Gemv {
        /// Rows of the matrix.
        m: u64,
        /// Columns of the matrix.
        n: u64,
    },
    /// `mkl_scsrgemv`.
    Spmv {
        /// Matrix rows.
        rows: u64,
        /// Matrix columns.
        cols: u64,
        /// Stored non-zeros.
        nnz: u64,
    },
    /// `dfsInterpolate1D` over contiguous blocks.
    Resmp {
        /// Independent blocks.
        blocks: u64,
        /// Input samples per block.
        in_per_block: u64,
        /// Output samples per block.
        out_per_block: u64,
    },
    /// `fftwf_execute` of a batch of 1D complex transforms.
    Fft {
        /// Transform length (power of two).
        n: u64,
        /// Number of transforms in the batch.
        batch: u64,
    },
    /// `mkl_simatcopy` matrix transpose / layout reshape.
    Reshp {
        /// Matrix rows.
        rows: u64,
        /// Matrix columns.
        cols: u64,
        /// Element size in bytes.
        elem_bytes: u32,
    },
}

/// Error decoding a parameter blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamsError {
    /// The blob is shorter than the fixed layout requires.
    Truncated,
    /// The blob's leading tag byte names no accelerator.
    BadTag(u8),
    /// A field failed validation (zero size, stride, ...).
    Invalid(&'static str),
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::Truncated => f.write_str("parameter blob truncated"),
            ParamsError::BadTag(t) => write!(f, "unknown parameter tag {t:#04x}"),
            ParamsError::Invalid(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for ParamsError {}

impl AccelParams {
    /// Which accelerator these parameters configure.
    pub fn kind(&self) -> AcceleratorKind {
        match self {
            AccelParams::Axpy { .. } => AcceleratorKind::Axpy,
            AccelParams::Dot { .. } => AcceleratorKind::Dot,
            AccelParams::Gemv { .. } => AcceleratorKind::Gemv,
            AccelParams::Spmv { .. } => AcceleratorKind::Spmv,
            AccelParams::Resmp { .. } => AcceleratorKind::Resmp,
            AccelParams::Fft { .. } => AcceleratorKind::Fft,
            AccelParams::Reshp { .. } => AcceleratorKind::Reshp,
        }
    }

    /// Serializes to the `.para` wire format: a tag byte followed by
    /// fixed little-endian fields.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![self.kind().opcode()];
        let push64 = |v: u64, out: &mut Vec<u8>| out.extend_from_slice(&v.to_le_bytes());
        match *self {
            AccelParams::Axpy {
                n,
                alpha,
                incx,
                incy,
            } => {
                push64(n, &mut out);
                out.extend_from_slice(&alpha.to_le_bytes());
                out.extend_from_slice(&incx.to_le_bytes());
                out.extend_from_slice(&incy.to_le_bytes());
            }
            AccelParams::Dot {
                n,
                incx,
                incy,
                complex,
            } => {
                push64(n, &mut out);
                out.extend_from_slice(&incx.to_le_bytes());
                out.extend_from_slice(&incy.to_le_bytes());
                out.push(complex as u8);
            }
            AccelParams::Gemv { m, n } => {
                push64(m, &mut out);
                push64(n, &mut out);
            }
            AccelParams::Spmv { rows, cols, nnz } => {
                push64(rows, &mut out);
                push64(cols, &mut out);
                push64(nnz, &mut out);
            }
            AccelParams::Resmp {
                blocks,
                in_per_block,
                out_per_block,
            } => {
                push64(blocks, &mut out);
                push64(in_per_block, &mut out);
                push64(out_per_block, &mut out);
            }
            AccelParams::Fft { n, batch } => {
                push64(n, &mut out);
                push64(batch, &mut out);
            }
            AccelParams::Reshp {
                rows,
                cols,
                elem_bytes,
            } => {
                push64(rows, &mut out);
                push64(cols, &mut out);
                out.extend_from_slice(&elem_bytes.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes the `.para` wire format.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamsError`] for short blobs, unknown tags, or
    /// field values that fail [`AccelParams::validate`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ParamsError> {
        let (&tag, rest) = bytes.split_first().ok_or(ParamsError::Truncated)?;
        let kind = AcceleratorKind::from_opcode(tag).ok_or(ParamsError::BadTag(tag))?;
        let mut cursor = Cursor { rest };
        let parsed = match kind {
            AcceleratorKind::Axpy => AccelParams::Axpy {
                n: cursor.u64()?,
                alpha: cursor.f32()?,
                incx: cursor.u32()?,
                incy: cursor.u32()?,
            },
            AcceleratorKind::Dot => AccelParams::Dot {
                n: cursor.u64()?,
                incx: cursor.u32()?,
                incy: cursor.u32()?,
                complex: cursor.u8()? != 0,
            },
            AcceleratorKind::Gemv => AccelParams::Gemv {
                m: cursor.u64()?,
                n: cursor.u64()?,
            },
            AcceleratorKind::Spmv => AccelParams::Spmv {
                rows: cursor.u64()?,
                cols: cursor.u64()?,
                nnz: cursor.u64()?,
            },
            AcceleratorKind::Resmp => AccelParams::Resmp {
                blocks: cursor.u64()?,
                in_per_block: cursor.u64()?,
                out_per_block: cursor.u64()?,
            },
            AcceleratorKind::Fft => AccelParams::Fft {
                n: cursor.u64()?,
                batch: cursor.u64()?,
            },
            AcceleratorKind::Reshp => AccelParams::Reshp {
                rows: cursor.u64()?,
                cols: cursor.u64()?,
                elem_bytes: cursor.u32()?,
            },
        };
        parsed.validate()?;
        Ok(parsed)
    }

    /// Validates field values.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError::Invalid`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), ParamsError> {
        match *self {
            AccelParams::Axpy { n, incx, incy, .. } => {
                if n == 0 {
                    return Err(ParamsError::Invalid("axpy n must be nonzero"));
                }
                if incx == 0 || incy == 0 {
                    return Err(ParamsError::Invalid("axpy strides must be nonzero"));
                }
            }
            AccelParams::Dot { n, incx, incy, .. } => {
                if n == 0 {
                    return Err(ParamsError::Invalid("dot n must be nonzero"));
                }
                if incx == 0 || incy == 0 {
                    return Err(ParamsError::Invalid("dot strides must be nonzero"));
                }
            }
            AccelParams::Gemv { m, n } => {
                if m == 0 || n == 0 {
                    return Err(ParamsError::Invalid("gemv dimensions must be nonzero"));
                }
            }
            AccelParams::Spmv { rows, cols, nnz } => {
                if rows == 0 || cols == 0 {
                    return Err(ParamsError::Invalid("spmv dimensions must be nonzero"));
                }
                if rows.checked_mul(cols).is_some_and(|cap| nnz > cap) {
                    return Err(ParamsError::Invalid("spmv nnz exceeds matrix capacity"));
                }
            }
            AccelParams::Resmp {
                blocks,
                in_per_block,
                out_per_block,
            } => {
                if blocks == 0 || in_per_block == 0 || out_per_block == 0 {
                    return Err(ParamsError::Invalid("resmp sizes must be nonzero"));
                }
            }
            AccelParams::Fft { n, batch } => {
                if !n.is_power_of_two() || n == 0 {
                    return Err(ParamsError::Invalid("fft n must be a power of two"));
                }
                if batch == 0 {
                    return Err(ParamsError::Invalid("fft batch must be nonzero"));
                }
            }
            AccelParams::Reshp {
                rows,
                cols,
                elem_bytes,
            } => {
                if rows == 0 || cols == 0 || elem_bytes == 0 {
                    return Err(ParamsError::Invalid("reshp dimensions must be nonzero"));
                }
            }
        }
        Ok(())
    }
}

struct Cursor<'a> {
    rest: &'a [u8],
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], ParamsError> {
        if self.rest.len() < n {
            return Err(ParamsError::Truncated);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ParamsError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ParamsError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ParamsError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f32(&mut self) -> Result<f32, ParamsError> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<AccelParams> {
        vec![
            AccelParams::Axpy {
                n: 1 << 28,
                alpha: 2.5,
                incx: 1,
                incy: 1,
            },
            AccelParams::Dot {
                n: 1 << 28,
                incx: 1,
                incy: 7,
                complex: true,
            },
            AccelParams::Gemv { m: 16384, n: 16384 },
            AccelParams::Spmv {
                rows: 1 << 20,
                cols: 1 << 20,
                nnz: 12 << 20,
            },
            AccelParams::Resmp {
                blocks: 16384,
                in_per_block: 1024,
                out_per_block: 2048,
            },
            AccelParams::Fft {
                n: 8192,
                batch: 8192,
            },
            AccelParams::Reshp {
                rows: 16384,
                cols: 16384,
                elem_bytes: 4,
            },
        ]
    }

    #[test]
    fn round_trip_all_kinds() {
        for p in samples() {
            let bytes = p.to_bytes();
            let back = AccelParams::from_bytes(&bytes).unwrap();
            assert_eq!(p, back);
            assert_eq!(p.kind().opcode(), bytes[0]);
        }
    }

    #[test]
    fn truncated_blob_is_rejected() {
        for p in samples() {
            let bytes = p.to_bytes();
            for cut in 0..bytes.len() {
                assert!(
                    AccelParams::from_bytes(&bytes[..cut]).is_err(),
                    "{p:?} truncated at {cut} must fail"
                );
            }
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert_eq!(
            AccelParams::from_bytes(&[0x7f, 0, 0]),
            Err(ParamsError::BadTag(0x7f))
        );
        assert_eq!(AccelParams::from_bytes(&[]), Err(ParamsError::Truncated));
    }

    #[test]
    fn validation_rules() {
        assert!(AccelParams::Axpy {
            n: 0,
            alpha: 1.0,
            incx: 1,
            incy: 1
        }
        .validate()
        .is_err());
        assert!(AccelParams::Dot {
            n: 4,
            incx: 0,
            incy: 1,
            complex: false
        }
        .validate()
        .is_err());
        assert!(AccelParams::Fft { n: 100, batch: 1 }.validate().is_err());
        assert!(AccelParams::Spmv {
            rows: 2,
            cols: 2,
            nnz: 5
        }
        .validate()
        .is_err());
        assert!(AccelParams::Reshp {
            rows: 1,
            cols: 1,
            elem_bytes: 0
        }
        .validate()
        .is_err());
        for p in samples() {
            assert!(p.validate().is_ok(), "{p:?}");
        }
    }

    #[test]
    fn decode_enforces_validation() {
        let bad = AccelParams::Fft { n: 8192, batch: 1 };
        let mut bytes = bad.to_bytes();
        // Corrupt n to a non-power-of-two.
        bytes[1..9].copy_from_slice(&100u64.to_le_bytes());
        assert!(matches!(
            AccelParams::from_bytes(&bytes),
            Err(ParamsError::Invalid(_))
        ));
    }
}
