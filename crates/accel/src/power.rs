//! Per-accelerator synthesis-style power and area constants.
//!
//! The paper feeds Synopsys Design Compiler results (32 nm) into
//! analytical models; here the synthesis step is replaced by calibrated
//! constants chosen so the computed Table 5 reproduction lands in the
//! published ranges. Dynamic power has two parts: a *datapath* term
//! proportional to the bytes streamed through the PE pipelines and a
//! *compute* term proportional to FLOPs executed; leakage scales with
//! area.

use mealib_tdl::AcceleratorKind;
use mealib_types::{Hertz, Joules, Watts};

/// Synthesis-derived constants for one accelerator at the nominal
/// configuration (32 cores, 1 GHz, 32 nm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisProfile {
    /// Dynamic energy per byte streamed through the PE datapath.
    pub e_byte_datapath: Joules,
    /// Dynamic energy per f32 FLOP.
    pub e_flop: Joules,
    /// Leakage power of the full deployment at nominal frequency.
    pub p_leakage: Watts,
    /// Layout area at the nominal configuration, mm² (32 nm).
    pub area_mm2: f64,
}

/// Returns the synthesis profile of an accelerator.
///
/// Area values follow Table 5: SPMV and FFT are the big blocks (gather
/// engines and butterfly pipelines plus large local buffers), the
/// streaming BLAS units are small. RESHP's datapath lives on the DRAM
/// logic layer, so its layer-area contribution is zero.
pub fn profile(kind: AcceleratorKind) -> SynthesisProfile {
    match kind {
        AcceleratorKind::Axpy => SynthesisProfile {
            e_byte_datapath: Joules::from_picos(22.0),
            e_flop: Joules::from_picos(18.0),
            p_leakage: Watts::new(0.20),
            area_mm2: 1.38,
        },
        AcceleratorKind::Dot => SynthesisProfile {
            e_byte_datapath: Joules::from_picos(22.0),
            e_flop: Joules::from_picos(20.0),
            p_leakage: Watts::new(0.25),
            area_mm2: 1.81,
        },
        AcceleratorKind::Gemv => SynthesisProfile {
            e_byte_datapath: Joules::from_picos(16.0),
            e_flop: Joules::from_picos(22.0),
            p_leakage: Watts::new(0.32),
            area_mm2: 2.45,
        },
        AcceleratorKind::Spmv => SynthesisProfile {
            // Gather engine: expensive per byte (index arithmetic,
            // reorder buffers), big area.
            e_byte_datapath: Joules::from_picos(20.0),
            e_flop: Joules::from_picos(20.0),
            p_leakage: Watts::new(0.60),
            area_mm2: 14.17,
        },
        AcceleratorKind::Resmp => SynthesisProfile {
            e_byte_datapath: Joules::from_picos(18.0),
            e_flop: Joules::from_picos(22.0),
            p_leakage: Watts::new(0.35),
            area_mm2: 2.64,
        },
        AcceleratorKind::Fft => SynthesisProfile {
            // Butterfly pipelines + twiddle ROMs + staging buffers.
            e_byte_datapath: Joules::from_picos(10.0),
            e_flop: Joules::from_picos(6.0),
            p_leakage: Watts::new(1.20),
            area_mm2: 16.13,
        },
        AcceleratorKind::Reshp => SynthesisProfile {
            // The reshape unit sits on the DRAM logic layer; its power is
            // charged per byte moved through the reorder crossbar.
            e_byte_datapath: Joules::from_picos(26.0),
            e_flop: Joules::from_picos(0.0),
            p_leakage: Watts::new(0.12),
            area_mm2: 0.0,
        },
    }
}

/// Area of the TSV field on the accelerator layer (Table 5), mm².
pub const TSV_AREA_MM2: f64 = 1.75;

/// Total area budget of the accelerator layer — the HMC 2011 die size the
/// paper assumes, mm².
pub const LAYER_AREA_BUDGET_MM2: f64 = 68.0;

/// Leakage scales linearly with frequency-driven voltage headroom; the
/// paper's sweeps run 0.8-2.0 GHz. This helper applies a simple
/// `(f/1 GHz)` scaling to dynamic energies (voltage held) and returns
/// the scaled profile used by the design-space exploration.
pub fn profile_at(kind: AcceleratorKind, frequency: Hertz) -> SynthesisProfile {
    let base = profile(kind);
    let f = frequency.as_ghz();
    // Energy/op grows mildly with frequency (shallower pipelines need
    // higher drive): ~15% per GHz above nominal.
    let scale = 1.0 + 0.15 * (f - 1.0).max(0.0);
    SynthesisProfile {
        e_byte_datapath: base.e_byte_datapath * scale,
        e_flop: base.e_flop * scale,
        p_leakage: base.p_leakage * (0.7 + 0.3 * f),
        area_mm2: base.area_mm2,
    }
}

/// Sum of all accelerator areas plus NoC and TSVs — the Table 5 "Total"
/// row numerator.
pub fn total_layer_area(noc_area_mm2: f64) -> f64 {
    let accel: f64 = AcceleratorKind::ALL
        .iter()
        .map(|&k| profile(k).area_mm2)
        .sum();
    accel + noc_area_mm2 + TSV_AREA_MM2
}

/// Area of the mesh NoC (routers + links) from Table 5, mm².
pub const NOC_AREA_MM2: f64 = 1.44;

/// Scales core count into area: the nominal profile is for the default
/// 32-core deployment; design points with fewer/more cores scale the
/// PE-array share (60% of the block) linearly.
pub fn area_at(kind: AcceleratorKind, cores: u32) -> f64 {
    let base = profile(kind).area_mm2;
    let pe_share = 0.6;
    let fixed = base * (1.0 - pe_share);
    fixed + base * pe_share * cores as f64 / 32.0
}

/// Greedily selects the accelerators that fit an area budget, most
/// area-efficient (paper-priority) first — the paper's observation that
/// "more domain-specific, memory-bounded libraries can be accelerated
/// with more area budget". NoC and TSV overheads are charged up front.
///
/// Returns the chosen kinds (in Table 1 order) and the area they occupy
/// including infrastructure.
pub fn fit_accelerators(budget_mm2: f64) -> (Vec<AcceleratorKind>, f64) {
    let infra = NOC_AREA_MM2 + TSV_AREA_MM2;
    if budget_mm2 < infra {
        return (Vec::new(), 0.0);
    }
    let mut used = infra;
    let mut chosen = Vec::new();
    // Cheapest first maximizes the number of accelerated libraries.
    let mut kinds: Vec<AcceleratorKind> = AcceleratorKind::ALL.to_vec();
    kinds.sort_by(|a, b| profile(*a).area_mm2.total_cmp(&profile(*b).area_mm2));
    for kind in kinds {
        let area = profile(kind).area_mm2;
        if used + area <= budget_mm2 {
            used += area;
            chosen.push(kind);
        }
    }
    chosen.sort();
    (chosen, used)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_totals_match_table5_budget_share() {
        let total = total_layer_area(NOC_AREA_MM2);
        // Paper: 41.77 mm², 61.43% of 68 mm².
        assert!((total - 41.77).abs() < 2.0, "layer area {total:.2} mm²");
        let share = total / LAYER_AREA_BUDGET_MM2;
        assert!((share - 0.6143).abs() < 0.05, "share {share:.3}");
    }

    #[test]
    fn spmv_and_fft_dominate_area() {
        let spmv = profile(AcceleratorKind::Spmv).area_mm2;
        let fft = profile(AcceleratorKind::Fft).area_mm2;
        for k in [
            AcceleratorKind::Axpy,
            AcceleratorKind::Dot,
            AcceleratorKind::Gemv,
        ] {
            assert!(profile(k).area_mm2 < spmv);
            assert!(profile(k).area_mm2 < fft);
        }
    }

    #[test]
    fn frequency_scaling_increases_energy() {
        let base = profile_at(AcceleratorKind::Fft, Hertz::from_ghz(1.0));
        let fast = profile_at(AcceleratorKind::Fft, Hertz::from_ghz(2.0));
        assert!(fast.e_flop.get() > base.e_flop.get());
        assert!(fast.p_leakage.get() > base.p_leakage.get());
        assert_eq!(fast.area_mm2, base.area_mm2);
    }

    #[test]
    fn area_scales_with_cores() {
        let full = area_at(AcceleratorKind::Fft, 32);
        let quarter = area_at(AcceleratorKind::Fft, 8);
        assert!((full - profile(AcceleratorKind::Fft).area_mm2).abs() < 1e-9);
        assert!(quarter < full);
        assert!(quarter > 0.3 * full, "fixed share keeps a floor");
    }

    #[test]
    fn reshp_occupies_no_layer_area() {
        assert_eq!(profile(AcceleratorKind::Reshp).area_mm2, 0.0);
    }

    #[test]
    fn full_budget_fits_all_seven_accelerators() {
        let (chosen, used) = fit_accelerators(LAYER_AREA_BUDGET_MM2);
        assert_eq!(chosen.len(), 7);
        assert!((used - total_layer_area(NOC_AREA_MM2)).abs() < 1e-9);
    }

    #[test]
    fn tight_budgets_drop_the_big_blocks_first() {
        // 12 mm² fits the infrastructure plus the small streaming units,
        // but not SPMV (14.17) or FFT (16.13).
        let (chosen, used) = fit_accelerators(12.0);
        assert!(chosen.contains(&AcceleratorKind::Axpy));
        assert!(chosen.contains(&AcceleratorKind::Dot));
        assert!(!chosen.contains(&AcceleratorKind::Spmv));
        assert!(!chosen.contains(&AcceleratorKind::Fft));
        assert!(used <= 12.0);
    }

    #[test]
    fn budget_below_infrastructure_fits_nothing() {
        let (chosen, used) = fit_accelerators(2.0);
        assert!(chosen.is_empty());
        assert_eq!(used, 0.0);
    }

    #[test]
    fn fit_is_monotone_in_budget() {
        let mut prev = 0usize;
        for budget in [5.0, 10.0, 15.0, 25.0, 40.0, 68.0] {
            let (chosen, _) = fit_accelerators(budget);
            assert!(chosen.len() >= prev, "budget {budget} lost accelerators");
            prev = chosen.len();
        }
    }
}
