//! Trace-driven accelerator execution (the full Figure 8 pipeline).
//!
//! "We first generate memory traces from accelerators, and treat them as
//! inputs for an in-house cycle-accurate 3D-stacked DRAM simulator"
//! (§4.2). This module generates the explicit request trace each
//! accelerator's DMA engines would issue and replays it through
//! `mealib-memsim`'s fast engine (bit-exact with the cycle oracle) —
//! the high-fidelity twin of the
//! closed-form path in [`crate::model`]. Tests cross-validate the two.
//!
//! Gigabyte workloads are scaled down to a caller-chosen footprint; the
//! returned [`TracedExec::scale`] says how much, so callers can
//! extrapolate steady-state numbers.

use mealib_memsim::engine::SimOptions;
use mealib_memsim::{MemoryConfig, TraceBuffer, TraceStats};
use mealib_types::Seconds;

use crate::hw::AccelHwConfig;
use crate::params::AccelParams;

/// Result of one trace-driven execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedExec {
    /// Cycle-engine statistics of the (possibly scaled) trace.
    pub stats: TraceStats,
    /// Fraction of the full operation the trace covers (1.0 = whole op).
    pub scale: f64,
    /// Number of requests replayed.
    pub requests: usize,
}

impl TracedExec {
    /// Extrapolated time of the full operation at the traced rate.
    pub fn extrapolated_time(&self) -> Seconds {
        if self.scale <= 0.0 {
            Seconds::ZERO
        } else {
            self.stats.elapsed / self.scale
        }
    }
}

/// Deterministic xorshift for gather traces — avoids a `rand` dependency
/// in the library path.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// The DMA chunk size accelerator tiles stream with (one stacked-DRAM
/// row).
const CHUNK: u64 = 4096;
/// Bank-offset between distinct buffers so streams do not collide in
/// the same banks (the allocator's bank-aware placement).
const BUFFER_GAP: u64 = (1 << 30) + 128 * 1024;

fn scaled(full: u64, cap: u64) -> (u64, f64) {
    if full <= cap {
        (full, 1.0)
    } else {
        (cap, cap as f64 / full as f64)
    }
}

/// Generates the request trace of one (possibly scaled-down) invocation.
/// Returns the trace and the covered fraction of the full operation.
///
/// # Panics
///
/// Panics if `params` fail validation or `max_bytes` is zero.
pub fn generate_trace(
    params: &AccelParams,
    hw: &AccelHwConfig,
    max_bytes: u64,
) -> (TraceBuffer, f64) {
    params.validate().expect("invalid accelerator parameters");
    assert!(max_bytes > 0, "trace byte cap must be nonzero");
    let mut trace = TraceBuffer::new();
    let scale;
    match *params {
        AccelParams::Axpy { n, .. } => {
            let (bytes, s) = scaled(4 * n, max_bytes / 3);
            scale = s;
            for off in (0..bytes).step_by(CHUNK as usize) {
                let len = CHUNK.min(bytes - off);
                trace.push_read(off, len);
                trace.push_read(BUFFER_GAP + off, len);
                trace.push_write(BUFFER_GAP + off, len);
            }
        }
        AccelParams::Dot { n, complex, .. } => {
            let elem = if complex { 8 } else { 4 };
            let (bytes, s) = scaled(elem * n, max_bytes / 2);
            scale = s;
            for off in (0..bytes).step_by(CHUNK as usize) {
                let len = CHUNK.min(bytes - off);
                trace.push_read(off, len);
                trace.push_read(BUFFER_GAP + off, len);
            }
        }
        AccelParams::Gemv { m, n } => {
            let (bytes, s) = scaled(4 * m * n, max_bytes);
            scale = s;
            for off in (0..bytes).step_by(CHUNK as usize) {
                trace.push_read(off, CHUNK.min(bytes - off));
            }
            // y writeback, scaled alongside.
            let y_bytes = ((4 * m) as f64 * s) as u64;
            for off in (0..y_bytes).step_by(CHUNK as usize) {
                trace.push_write(BUFFER_GAP + off, CHUNK.min(y_bytes - off));
            }
        }
        AccelParams::Spmv { cols, nnz, .. } => {
            // CSR arrays stream; x gathers randomly over the column span.
            let (gathers, s) = scaled(nnz, max_bytes / 16);
            scale = s;
            let stream_bytes = ((8 * nnz) as f64 * s) as u64;
            for off in (0..stream_bytes).step_by(CHUNK as usize) {
                trace.push_read(off, CHUNK.min(stream_bytes - off));
            }
            let region = (4 * cols).max(CHUNK);
            let mut rng = XorShift(0x5eed ^ nnz);
            for _ in 0..gathers {
                let addr = (BUFFER_GAP + rng.next() % region) & !3;
                trace.push_read(addr, 4);
            }
        }
        AccelParams::Resmp {
            blocks,
            in_per_block,
            out_per_block,
        } => {
            let full = 4 * blocks * (in_per_block + out_per_block);
            let (bytes, s) = scaled(full, max_bytes);
            scale = s;
            let in_share = in_per_block as f64 / (in_per_block + out_per_block) as f64;
            let in_bytes = (bytes as f64 * in_share) as u64;
            let out_bytes = bytes - in_bytes;
            for off in (0..in_bytes).step_by(CHUNK as usize) {
                trace.push_read(off, CHUNK.min(in_bytes - off));
            }
            for off in (0..out_bytes).step_by(CHUNK as usize) {
                trace.push_write(BUFFER_GAP + off, CHUNK.min(out_bytes - off));
            }
        }
        AccelParams::Fft { n, batch } => {
            let passes = if 8 * n <= hw.local_mem_bytes { 1 } else { 2 };
            let (bytes, s) = scaled(8 * n * batch, max_bytes / (2 * passes));
            scale = s;
            for _ in 0..passes {
                for off in (0..bytes).step_by(CHUNK as usize) {
                    let len = CHUNK.min(bytes - off);
                    trace.push_read(off, len);
                    trace.push_write(BUFFER_GAP + off, len);
                }
            }
        }
        AccelParams::Reshp {
            rows,
            cols,
            elem_bytes,
        } => {
            // The reshape infrastructure buffers row-sized tiles: both
            // sides stream at chunk granularity.
            let (bytes, s) = scaled(rows * cols * elem_bytes as u64, max_bytes / 2);
            scale = s;
            for off in (0..bytes).step_by(CHUNK as usize) {
                let len = CHUNK.min(bytes - off);
                trace.push_read(off, len);
                trace.push_write(BUFFER_GAP + off, len);
            }
        }
    }
    (trace, scale)
}

/// Replays one (scaled) invocation through the memory engine (fast
/// path; bit-exact with the cycle oracle).
///
/// # Panics
///
/// Panics if parameters or the memory configuration fail validation.
pub fn execute_traced(
    params: &AccelParams,
    hw: &AccelHwConfig,
    mem: &MemoryConfig,
    max_bytes: u64,
) -> TracedExec {
    let (trace, scale) = generate_trace(params, hw, max_bytes);
    let requests = trace.len();
    let stats = mealib_memsim::simulate(mem, &trace, &SimOptions::fast())
        .expect("validated memory configuration")
        .stats;
    TracedExec {
        stats,
        scale,
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AccelModel;
    use mealib_memsim::engine::Op;

    fn cases() -> Vec<AccelParams> {
        vec![
            AccelParams::Axpy {
                n: 1 << 24,
                alpha: 1.0,
                incx: 1,
                incy: 1,
            },
            AccelParams::Dot {
                n: 1 << 24,
                incx: 1,
                incy: 1,
                complex: false,
            },
            AccelParams::Gemv { m: 4096, n: 4096 },
            AccelParams::Resmp {
                blocks: 1024,
                in_per_block: 1024,
                out_per_block: 1024,
            },
            AccelParams::Fft {
                n: 8192,
                batch: 512,
            },
            AccelParams::Reshp {
                rows: 4096,
                cols: 4096,
                elem_bytes: 4,
            },
        ]
    }

    #[test]
    fn traced_streaming_ops_agree_with_the_analytic_model() {
        let hw = AccelHwConfig::mealib_default();
        let mem = MemoryConfig::hmc_stack();
        for params in cases() {
            let traced = execute_traced(&params, &hw, &mem, 16 << 20);
            let model = AccelModel::new(params.kind()).execute(&params, &hw, &mem);
            // Compare *memory* time, scaled: the analytic path includes
            // the per-kind DMA derate, so agreement within ~2.5x is the
            // contract (the derate itself is a calibration).
            let traced_full = traced.extrapolated_time().get();
            let ratio = model.mem_time.get() / traced_full;
            assert!(
                (0.4..=2.6).contains(&ratio),
                "{:?}: analytic {} vs traced {traced_full:.6} (ratio {ratio:.2})",
                params.kind(),
                model.mem_time,
            );
        }
    }

    #[test]
    fn traces_cover_the_requested_footprint() {
        let hw = AccelHwConfig::mealib_default();
        for params in cases() {
            let (trace, scale) = generate_trace(&params, &hw, 8 << 20);
            assert!(!trace.is_empty(), "{:?}", params.kind());
            assert!(
                scale > 0.0 && scale <= 1.0,
                "{:?}: scale {scale}",
                params.kind()
            );
            let bytes: u64 = trace.total_bytes();
            assert!(
                bytes <= (8 << 20) + 4 * CHUNK,
                "{:?}: {bytes} bytes",
                params.kind()
            );
        }
    }

    #[test]
    fn small_ops_trace_in_full() {
        let hw = AccelHwConfig::mealib_default();
        let p = AccelParams::Axpy {
            n: 1024,
            alpha: 1.0,
            incx: 1,
            incy: 1,
        };
        let (trace, scale) = generate_trace(&p, &hw, 1 << 20);
        assert_eq!(scale, 1.0);
        let read: u64 = trace
            .iter()
            .filter(|r| r.op == Op::Read)
            .map(|r| r.bytes)
            .sum();
        assert_eq!(read, 2 * 4 * 1024, "x and y each read once");
    }

    #[test]
    fn spmv_trace_mixes_streams_and_gathers() {
        let hw = AccelHwConfig::mealib_default();
        let p = AccelParams::Spmv {
            rows: 1 << 16,
            cols: 1 << 16,
            nnz: 13 << 16,
        };
        let (trace, _) = generate_trace(&p, &hw, 4 << 20);
        let tiny = trace.iter().filter(|r| r.bytes == 4).count();
        let chunky = trace.iter().filter(|r| r.bytes > 1024).count();
        assert!(tiny > 0, "gathers present");
        assert!(chunky > 0, "CSR streams present");
    }

    #[test]
    fn fft_past_lm_capacity_traces_two_passes() {
        let hw = AccelHwConfig::mealib_default(); // 256 KiB LM
        let small = AccelParams::Fft { n: 8192, batch: 4 }; // 64 KiB / transform
        let large = AccelParams::Fft {
            n: 1 << 16,
            batch: 4,
        }; // 512 KiB / transform
        let cap = 64 << 20;
        let (t_small, s1) = generate_trace(&small, &hw, cap);
        let (t_large, s2) = generate_trace(&large, &hw, cap);
        assert_eq!(s1, 1.0);
        assert_eq!(s2, 1.0);
        let b_small: u64 = t_small.total_bytes();
        let b_large: u64 = t_large.total_bytes();
        // 8x the data, 2x the passes → 16x the traffic.
        assert_eq!(b_large, 16 * b_small);
    }
}
