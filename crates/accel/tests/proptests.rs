//! Property tests over accelerator parameters and the execution model.

use mealib_accel::model::{AccelModel, CONFIG_LATENCY};
use mealib_accel::{AccelHwConfig, AccelParams};
use mealib_memsim::MemoryConfig;
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = AccelParams> {
    prop_oneof![
        (1u64..(1 << 28), -8i32..8, 1u32..8, 1u32..8).prop_map(|(n, a, ix, iy)| {
            AccelParams::Axpy {
                n,
                alpha: a as f32 / 2.0,
                incx: ix,
                incy: iy,
            }
        }),
        (1u64..(1 << 28), 1u32..8, 1u32..8, any::<bool>()).prop_map(|(n, ix, iy, c)| {
            AccelParams::Dot {
                n,
                incx: ix,
                incy: iy,
                complex: c,
            }
        }),
        (1u64..16384, 1u64..16384).prop_map(|(m, n)| AccelParams::Gemv { m, n }),
        (1u64..(1 << 20), 1u64..(1 << 20), 1u64..(1 << 22)).prop_filter_map(
            "nnz fits matrix",
            |(r, c, nnz)| (nnz <= r * c).then_some(AccelParams::Spmv {
                rows: r,
                cols: c,
                nnz
            }),
        ),
        (1u64..4096, 1u64..4096, 1u64..4096).prop_map(|(b, i, o)| AccelParams::Resmp {
            blocks: b,
            in_per_block: i,
            out_per_block: o,
        }),
        (1u32..16, 1u64..4096).prop_map(|(log_n, batch)| AccelParams::Fft {
            n: 1 << log_n,
            batch
        }),
        (
            1u64..16384,
            1u64..16384,
            prop_oneof![Just(4u32), Just(8u32)]
        )
            .prop_map(|(r, c, e)| AccelParams::Reshp {
                rows: r,
                cols: c,
                elem_bytes: e
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The .para wire format round-trips every valid parameter set.
    #[test]
    fn params_round_trip(p in params_strategy()) {
        let bytes = p.to_bytes();
        let back = AccelParams::from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(p, back);
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn params_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = AccelParams::from_bytes(&bytes);
    }

    /// Every modeled execution is finite, positive, and floored by the
    /// configuration latency; energy splits are consistent.
    #[test]
    fn execution_costs_are_sane(p in params_strategy()) {
        let hw = AccelHwConfig::mealib_default();
        let mem = MemoryConfig::hmc_stack();
        let r = AccelModel::new(p.kind()).execute(&p, &hw, &mem);
        prop_assert!(r.time >= CONFIG_LATENCY);
        prop_assert!(r.time.get().is_finite());
        prop_assert!(r.energy.get() > 0.0 && r.energy.get().is_finite());
        prop_assert!(r.mem_energy.get() <= r.energy.get());
        prop_assert!(r.time.get() + 1e-12 >= r.mem_time.get().min(r.compute_time.get()));
    }

    /// Report algebra: `repeat(a+b) == repeat(a).then(repeat(b))` in time,
    /// energy, and work.
    #[test]
    fn repeat_is_additive(p in params_strategy(), a in 1u64..50, b in 1u64..50) {
        let hw = AccelHwConfig::mealib_default();
        let mem = MemoryConfig::hmc_stack();
        let r = AccelModel::new(p.kind()).execute(&p, &hw, &mem);
        let whole = r.repeat(a + b);
        let split = r.repeat(a).then(&r.repeat(b));
        prop_assert!((whole.time.get() - split.time.get()).abs() <= whole.time.get() * 1e-9);
        prop_assert!((whole.energy.get() - split.energy.get()).abs() <= whole.energy.get() * 1e-9);
        prop_assert_eq!(whole.flops, split.flops);
        prop_assert_eq!(whole.mem.bytes_moved(), split.mem.bytes_moved());
    }

    /// A faster memory substrate never slows an operation down.
    #[test]
    fn stack_never_loses_to_dimms(p in params_strategy()) {
        let hw = AccelHwConfig::mealib_default();
        let model = AccelModel::new(p.kind());
        let stack = model.execute(&p, &hw, &MemoryConfig::hmc_stack());
        let dimms = model.execute(&p, &hw, &MemoryConfig::ddr_dual_channel());
        prop_assert!(
            stack.time.get() <= dimms.time.get() * 1.001,
            "stack {} vs dimms {}",
            stack.time,
            dimms.time
        );
    }
}
