//! Criterion microbenches of the numerical kernels (the functional
//! substrate's real wall-clock cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mealib_kernels::blas1::{sdot, sdot_naive};
use mealib_kernels::blas3::cherk;
use mealib_kernels::fft::{Direction, FftPlan};
use mealib_kernels::reshape::{transpose, transpose_naive};
use mealib_types::Complex32;
use mealib_workloads::rgg;

fn bench_dot(c: &mut Criterion) {
    let n = 1 << 20;
    let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
    let y: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos()).collect();
    let mut g = c.benchmark_group("dot");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("optimized", |b| b.iter(|| sdot(&x, &y)));
    g.bench_function("naive", |b| b.iter(|| sdot_naive(&x, &y)));
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [1024usize, 8192] {
        let plan = FftPlan::new(n);
        let signal: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32 * 0.3).sin(), 0.0))
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut data = signal.clone();
                plan.execute(&mut data, Direction::Forward);
                data
            })
        });
    }
    g.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let n = 1024;
    let m: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
    let mut g = c.benchmark_group("transpose_1024");
    g.throughput(Throughput::Bytes((n * n * 4) as u64));
    g.bench_function("blocked", |b| b.iter(|| transpose(&m, n, n)));
    g.bench_function("naive", |b| b.iter(|| transpose_naive(&m, n, n)));
    g.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let m = rgg::generate(1 << 14, 13.0, 7);
    let x = vec![1.0f32; m.cols()];
    let mut g = c.benchmark_group("spmv_rgg_2_14");
    g.throughput(Throughput::Elements(m.nnz() as u64));
    g.bench_function("csr", |b| b.iter(|| m.spmv(&x)));
    g.finish();
}

fn bench_cherk(c: &mut Criterion) {
    let n = 80;
    let k = 64;
    let a: Vec<Complex32> = (0..n * k)
        .map(|i| Complex32::new(i as f32 * 0.01, -(i as f32) * 0.02))
        .collect();
    c.bench_function("cherk_80x64", |b| {
        b.iter(|| {
            let mut cmat = vec![Complex32::ZERO; n * n];
            cherk(n, k, 1.0, &a, 0.0, &mut cmat);
            cmat
        })
    });
}

criterion_group!(
    benches,
    bench_dot,
    bench_fft,
    bench_transpose,
    bench_spmv,
    bench_cherk
);
criterion_main!(benches);
