//! Criterion microbenches of the hardware simulators: how fast the
//! reproduction itself simulates.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mealib_memsim::engine::{sequential_trace, simulate, Op, SimOptions};
use mealib_memsim::{analytic, AccessPattern, MemoryConfig};
use mealib_noc::{Mesh, TileId};
use mealib_runtime::PhysicalSpace;
use mealib_types::{AddrRange, Bytes, PhysAddr};

fn bench_dram_engine(c: &mut Criterion) {
    let cfg = MemoryConfig::hmc_stack();
    let trace = sequential_trace(0, 4 << 20, 256, Op::Read);
    let mut g = c.benchmark_group("dram_cycle_engine");
    g.throughput(Throughput::Bytes(4 << 20));
    g.bench_function("sequential_4MiB", |b| {
        b.iter(|| simulate(&cfg, &trace, &SimOptions::cycle()).unwrap())
    });
    g.finish();
    let mut g = c.benchmark_group("dram_fast_engine");
    g.throughput(Throughput::Bytes(4 << 20));
    g.bench_function("sequential_4MiB", |b| {
        b.iter(|| simulate(&cfg, &trace, &SimOptions::fast()).unwrap())
    });
    g.finish();
}

fn bench_dram_analytic(c: &mut Criterion) {
    let cfg = MemoryConfig::hmc_stack();
    c.bench_function("dram_analytic_1GiB", |b| {
        b.iter(|| analytic::try_estimate(&cfg, &AccessPattern::sequential_read(1 << 30)).unwrap())
    });
}

fn bench_noc_broadcast(c: &mut Criterion) {
    let mesh = Mesh::mealib_layer();
    c.bench_function("noc_broadcast_32tiles", |b| {
        b.iter(|| mesh.broadcast(TileId::new(0, 0), 256))
    });
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("physmem_alloc_free_churn", |b| {
        b.iter(|| {
            let mut space = PhysicalSpace::new(
                AddrRange::new(PhysAddr::new(0x1000_0000), Bytes::from_mib(64)),
                4096,
            );
            let mut live = Vec::new();
            for i in 0..128 {
                live.push(
                    space
                        .alloc(Bytes::from_kib(64 + (i % 7) * 16))
                        .expect("fits"),
                );
                if i % 3 == 0 {
                    let r: AddrRange = live.swap_remove(live.len() / 2);
                    space.free(r.start()).expect("live");
                }
            }
            space.allocated_bytes()
        })
    });
}

criterion_group!(
    benches,
    bench_dram_engine,
    bench_dram_analytic,
    bench_noc_broadcast,
    bench_allocator
);
criterion_main!(benches);
