//! Criterion microbenches of the software stack: TDL, descriptors, the
//! source-to-source compiler, and end-to-end API invocations.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion};
use mealib::Mealib;
use mealib_tdl::{parse, Descriptor, ParamBag};

const TDL_SRC: &str = r#"
    PASS in=datacube out=doppler {
        COMP RESHP params="reshape.para"
        COMP FFT params="fft.para"
    }
    LOOP 16777216 {
        PASS in=weights out=prods {
            COMP DOT params="dot.para"
        }
    }
"#;

const C_SRC: &str = r#"
    float *x; float *y;
    x = malloc(sizeof(float) * 65536);
    y = malloc(sizeof(float) * 65536);
    for (i = 0; i < 1024; ++i)
        cblas_saxpy(65536, 2.0, x, 1, y, 1);
    free(x); free(y);
"#;

fn bench_tdl(c: &mut Criterion) {
    c.bench_function("tdl_parse", |b| b.iter(|| parse(TDL_SRC).expect("valid")));

    let program = parse(TDL_SRC).expect("valid");
    let mut params = ParamBag::new();
    for name in program.param_files() {
        params.insert(name.to_string(), vec![0xAB; 24]);
    }
    let buffers: BTreeMap<String, u64> = [
        ("datacube".to_string(), 0x1000u64),
        ("doppler".to_string(), 0x2000),
        ("weights".to_string(), 0x3000),
        ("prods".to_string(), 0x4000),
    ]
    .into_iter()
    .collect();
    c.bench_function("descriptor_encode", |b| {
        b.iter(|| Descriptor::encode(&program, &params, &buffers).expect("encodable"))
    });
    let desc = Descriptor::encode(&program, &params, &buffers).expect("encodable");
    c.bench_function("descriptor_decode", |b| {
        b.iter(|| desc.decode().expect("decodable"))
    });
}

fn bench_compiler(c: &mut Criterion) {
    c.bench_function("compile_saxpy_loop", |b| {
        b.iter(|| mealib_compiler::compile(C_SRC).expect("compiles"))
    });
}

fn bench_api(c: &mut Criterion) {
    c.bench_function("mealib_saxpy_end_to_end", |b| {
        let mut ml = Mealib::builder().build();
        ml.alloc_f32("x", 4096).expect("alloc");
        ml.alloc_f32("y", 4096).expect("alloc");
        ml.write_f32("x", &vec![1.0; 4096]).expect("write");
        ml.write_f32("y", &vec![2.0; 4096]).expect("write");
        b.iter(|| ml.saxpy(1.0001, "x", "y").expect("runs"));
    });
}

criterion_group!(benches, bench_tdl, bench_compiler, bench_api);
criterion_main!(benches);
