//! Ablation studies over the design choices DESIGN.md calls out:
//! local-memory capacity (FFT pass structure), DRAM row-buffer size,
//! DMA efficiency, the hardware-loop trigger, and the area budget.

use mealib_accel::power::fit_accelerators;
use mealib_accel::{AccelHwConfig, AccelModel, AccelParams};
use mealib_bench::{banner, section, write_profile, HarnessOpts, JsonSummary};
use mealib_memsim::{AddressMapping, MemoryConfig};
use mealib_obs::{Phase, Profile};
use mealib_sim::TextTable;
use mealib_tdl::AcceleratorKind;
use mealib_types::Seconds;

fn main() {
    let opts = HarnessOpts::from_env();
    banner(
        "Ablations — MEALib design-choice sensitivity",
        "each section removes or resizes one mechanism and reports the cost",
    );

    let mem = MemoryConfig::hmc_stack();
    let hw = AccelHwConfig::mealib_default();

    section("local-memory capacity: FFT single-pass vs two-pass crossover");
    let mut t = TextTable::new(vec!["LM per tile", "8192-pt FFT traffic", "time"]);
    let fft = AccelParams::Fft {
        n: 8192,
        batch: 8192,
    };
    for row in mealib_types::par_map(&[16u64, 64, 256, 1024], opts.jobs, |&lm_kib| {
        let hw_lm = AccelHwConfig {
            local_mem_bytes: lm_kib * 1024,
            ..hw.clone()
        };
        let r = AccelModel::new(AcceleratorKind::Fft).execute(&fft, &hw_lm, &mem);
        vec![
            format!("{lm_kib} KiB"),
            format!("{:.2} GiB", r.mem.bytes_moved().as_gib()),
            format!("{:.2} ms", r.time.as_millis()),
        ]
    }) {
        t.push_row(row);
    }
    print!("{t}");
    println!("(a transform that no longer fits the LM pays a second DRAM pass)");

    section("DRAM row-buffer size: streaming vs gather operations");
    let mut t = TextTable::new(vec!["row bytes", "GEMV time", "SPMV time"]);
    let gemv = AccelParams::Gemv { m: 16384, n: 16384 };
    let spmv = AccelParams::Spmv {
        rows: 1 << 20,
        cols: 1 << 20,
        nnz: 13 << 20,
    };
    for row in mealib_types::par_map(&[1024u64, 2048, 4096, 8192], opts.jobs, |&row| {
        let mut m = mem.clone();
        if let AddressMapping::Interleaved {
            ref mut row_bytes, ..
        } = m.mapping
        {
            *row_bytes = row;
        }
        let g = AccelModel::new(AcceleratorKind::Gemv).execute(&gemv, &hw, &m);
        let s = AccelModel::new(AcceleratorKind::Spmv).execute(&spmv, &hw, &m);
        vec![
            row.to_string(),
            format!("{:.2} ms", g.time.as_millis()),
            format!("{:.2} ms", s.time.as_millis()),
        ]
    }) {
        t.push_row(row);
    }
    print!("{t}");
    println!("(bigger rows help gathers hit open rows; streams barely notice)");

    section("DMA efficiency: what the per-kind derates cost");
    let mut t = TextTable::new(vec!["op", "modeled eff", "time", "time at 0.95"]);
    let mut profile = Profile::new();
    let mut cursor = Seconds::ZERO;
    for op in [
        AccelParams::Axpy {
            n: 256 << 20,
            alpha: 1.0,
            incx: 1,
            incy: 1,
        },
        AccelParams::Dot {
            n: 256 << 20,
            incx: 1,
            incy: 1,
            complex: false,
        },
        fft,
    ] {
        let model = AccelModel::new(op.kind());
        let real = model.execute(&op, &hw, &mem);
        let ideal = model.execute_scaled(&op, &hw, &mem, 10.0); // capped at 0.95
        cursor = profile.interval(
            "accel",
            Phase::Dma,
            &op.kind().to_string(),
            cursor,
            real.time,
        );
        t.push_row(vec![
            op.kind().to_string(),
            format!("{:.2}", model.bandwidth_efficiency()),
            format!("{:.2} ms", real.time.as_millis()),
            format!("{:.2} ms", ideal.time.as_millis()),
        ]);
    }
    print!("{t}");

    section("stack bandwidth: the gain's primary dependence (§5.3)");
    let mut t = TextTable::new(vec!["stack", "peak BW", "GEMV time", "FFT time"]);
    let fft_wl = AccelParams::Fft {
        n: 8192,
        batch: 8192,
    };
    let stacks = [
        MemoryConfig::hmc_stack_remote(),
        MemoryConfig::hmc_stack_gen1(),
        MemoryConfig::hmc_stack(),
    ];
    for row in mealib_types::par_map(&stacks, opts.jobs, |m| {
        let g = AccelModel::new(AcceleratorKind::Gemv).execute(
            &AccelParams::Gemv { m: 16384, n: 16384 },
            &hw,
            m,
        );
        let f = AccelModel::new(AcceleratorKind::Fft).execute(&fft_wl, &hw, m);
        vec![
            m.name.clone(),
            format!("{:.0} GB/s", m.peak_bandwidth().as_gb_per_sec()),
            format!("{:.2} ms", g.time.as_millis()),
            format!("{:.2} ms", f.time.as_millis()),
        ]
    }) {
        t.push_row(row);
    }
    print!("{t}");

    section("area budget: how many libraries fit the layer");
    let mut summary = JsonSummary::new("ablations");
    let mut t = TextTable::new(vec!["budget", "accelerators", "which"]);
    for budget in [5.0, 10.0, 15.0, 25.0, 45.0, 68.0] {
        let (chosen, used) = fit_accelerators(budget);
        let names: Vec<String> = chosen.iter().map(|k| k.to_string()).collect();
        summary.metric(&format!("accels_at_{budget:.0}mm2"), chosen.len() as f64);
        t.push_row(vec![
            format!("{budget:.0} mm2"),
            format!("{} ({used:.1} mm2 used)", chosen.len()),
            names.join(" "),
        ]);
    }
    print!("{t}");
    println!(
        "(\"more domain-specific, memory-bounded libraries can be accelerated\n with more area budget\" — §5.2)"
    );
    // Modeled DMA-section execution times, back to back on one track.
    write_profile(&opts, &profile);
    summary.emit(&opts);
}
