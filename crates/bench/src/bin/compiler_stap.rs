//! §3.4 demonstration: the source-to-source compiler on the paper's
//! Listing 1 (the STAP fragment) — 16M+ library calls compacted into
//! three accelerator descriptors.

use mealib_bench::{banner, section, write_profile, HarnessOpts, JsonSummary};
use mealib_obs::{Phase, Profile};
use mealib_types::Seconds;

const LISTING1: &str = r#"
    int N_DOP = 256;
    int N_BLOCKS = 64;
    int N_STEERING = 16;
    int TBS = 64;
    int TDOF = 3;
    int N_CHAN = 4;

    complex *datacube;
    complex *datacube_pulse_major_padded;
    complex *datacube_doppler_major;
    complex *adaptive_weights;
    complex *snapshots;
    complex *prods;

    datacube = malloc(sizeof(complex) * num_datacube_elements);
    datacube_pulse_major_padded = malloc(sizeof(complex) * num_padded_elements);
    datacube_doppler_major = malloc(sizeof(complex) * num_datacube_elements);
    adaptive_weights = malloc(sizeof(complex) * num_weight_elements);
    snapshots = malloc(sizeof(complex) * num_snapshot_elements);
    prods = malloc(sizeof(complex) * num_prod_elements);

    plan_ct = fftwf_plan_guru_dft(0, NULL, 3, howmany_dims_ct,
        datacube, datacube_pulse_major_padded, FFTW_FORWARD, FFTW_WISDOM_ONLY);
    plan_fft = fftwf_plan_guru_dft(1, dims, 2, howmany_dims,
        datacube_pulse_major_padded, datacube_doppler_major,
        FFTW_FORWARD, FFTW_WISDOM_ONLY);
    fftwf_execute(plan_ct);
    fftwf_execute(plan_fft);

    #pragma omp parallel for num_threads(4)
    for (dop = 0; dop < N_DOP; ++dop)
        for (block = 0; block < N_BLOCKS; ++block)
            for (sv = 0; sv < N_STEERING; ++sv)
                for (cell = 0; cell < TBS; ++cell)
                    cblas_cdotc_sub(TDOF * N_CHAN,
                        &adaptive_weights[dop][block][sv][0], 1,
                        &snapshots[dop][block][cell], TBS,
                        &prods[dop][block][sv][cell]);

    for (dop = 0; dop < N_DOP; ++dop)
        cblas_saxpy(4096, 1.0, prods, 1, datacube_doppler_major, 1);

    free(datacube);
    free(datacube_pulse_major_padded);
    free(datacube_doppler_major);
    free(adaptive_weights);
    free(snapshots);
    free(prods);
"#;

fn main() {
    let opts = HarnessOpts::from_env();
    banner(
        "§3.4 — source-to-source compilation of Listing 1",
        "more than 16M cblas_cdotc_sub calls translate to one accelerator invocation",
    );

    let started = std::time::Instant::now();
    let out = mealib_compiler::compile(LISTING1).expect("Listing 1 compiles");
    let compile_wall = started.elapsed();

    section("statistics");
    println!("accelerable call sites:    {}", out.stats.accelerable_calls);
    println!("dynamic library calls:     {}", out.stats.dynamic_calls);
    println!("descriptors generated:     {}", out.stats.descriptors);
    println!("calls fused by chaining:   {}", out.stats.chained_calls);
    println!(
        "buffers moved to MEALib:   {}",
        out.stats.allocations_rewritten
    );

    section("generated TDL");
    for gen in &out.tdl {
        println!(
            "// {} — compacts {} call(s)",
            gen.plan_name, gen.calls_compacted
        );
        println!("{}", gen.text);
    }

    section("transformed source");
    println!("{}", out.source);

    let mut summary = JsonSummary::new("compiler_stap");
    summary.metric("accelerable_calls", out.stats.accelerable_calls as f64);
    summary.metric("dynamic_calls", out.stats.dynamic_calls as f64);
    summary.metric("descriptors", out.stats.descriptors as f64);
    summary.metric("chained_calls", out.stats.chained_calls as f64);
    if opts.profile.is_some() {
        // The compiler is host-side tooling, so its profile is the
        // measured wall time of the translation itself — the only bench
        // bin whose trace is not in modeled time.
        let mut p = Profile::new();
        p.interval(
            "compiler",
            Phase::Plan,
            "compile Listing 1",
            Seconds::ZERO,
            Seconds::new(compile_wall.as_secs_f64()),
        );
        write_profile(&opts, &p);
    }
    summary.emit(&opts);
}
