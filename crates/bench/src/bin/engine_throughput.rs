//! Engine throughput — the dual-engine win, measured.
//!
//! Replays the Figure 9 (Table 1/2 operations) and Figure 13 (STAP
//! phase) DRAM request streams at a reduced footprint through both
//! memsim engines and reports burst throughput per worker core:
//!
//! * `cycle_bursts_per_sec_per_core` — the cycle-accurate oracle;
//! * `fast_bursts_per_sec_per_core` — the event-driven epoch-skipping
//!   engine;
//! * `fast_over_cycle` — the **geometric mean** of the per-stream
//!   cycle/fast wall ratios, which the perf gate floors (the fast
//!   engine must stay >= 5x the oracle on these streams). The geomean
//!   weighs every stream equally: a wall-time sum would let spmv's
//!   random scalar gathers — which no analytic batching can skip, and
//!   which therefore replay at ~1x by construction — mask the win on
//!   every other stream.
//!
//! Streams smaller than the footprint target are tiled (repeated at
//! disjoint address offsets) so short fig13 phases measure replay
//! throughput, not setup overhead. Every stream is first replayed in
//! `DualCheck` mode, so the numbers are only ever reported for a fast
//! engine that is bit-exact against the oracle on the exact traces
//! being timed.

use std::time::Instant;

use mealib_accel::trace_exec::generate_trace;
use mealib_accel::AcceleratorLayer;
use mealib_bench::{banner, section, HarnessOpts, JsonSummary};
use mealib_memsim::engine::{simulate, SimOptions};
use mealib_memsim::TraceBuffer;
use mealib_sim::TextTable;
use mealib_types::auto_jobs;
use mealib_workloads::stap::{self, StapConfig};
use mealib_workloads::{datasets, sar};

/// One replayed request stream.
struct Stream {
    name: String,
    trace: TraceBuffer,
}

/// Tiles `trace` out to at least `min_bytes` by repeating it at
/// disjoint address offsets, so tiny phase traces (fig13's cdotc is a
/// few dozen bursts) measure steady-state replay, not per-call setup.
fn tiled(trace: TraceBuffer, min_bytes: u64) -> TraceBuffer {
    let total = trace.total_bytes();
    if total == 0 || total >= min_bytes {
        return trace;
    }
    // Far enough apart that tiles never share a row with each other or
    // with the buffer-gap offsets the generators use.
    const TILE_STRIDE: u64 = 1 << 33;
    let reps = min_bytes.div_ceil(total);
    let mut out = TraceBuffer::with_capacity(trace.len() * reps as usize);
    for rep in 0..reps {
        let off = rep * TILE_STRIDE;
        for r in trace.iter() {
            out.push(mealib_memsim::Request {
                addr: mealib_types::PhysAddr::new(r.addr.get() + off),
                ..r
            });
        }
    }
    out
}

/// The fig09 operation streams plus the fig13 STAP phase streams, all
/// scaled to `max_bytes` per stream.
fn streams(max_bytes: u64) -> Vec<Stream> {
    let layer = AcceleratorLayer::mealib_default();
    let mut out = Vec::new();
    for row in datasets::table2() {
        let (trace, _) = generate_trace(&row.params, layer.hw(), max_bytes);
        out.push(Stream {
            name: format!("fig09:{}", row.params.kind().keyword().to_lowercase()),
            trace: tiled(trace, max_bytes / 2),
        });
    }
    let cfg = StapConfig::small();
    for phase in ["fftw (chain)", "cdotc", "saxpy"] {
        let params = stap::accel_phase_params(&cfg, phase);
        let (trace, _) = generate_trace(&params, layer.hw(), max_bytes);
        out.push(Stream {
            name: format!("fig13:{phase}"),
            trace: tiled(trace, max_bytes / 2),
        });
    }
    for (i, params) in sar::sar_stages(256).iter().enumerate() {
        let (trace, _) = generate_trace(params, layer.hw(), max_bytes);
        out.push(Stream {
            name: format!("sar:stage{i}"),
            trace: tiled(trace, max_bytes / 2),
        });
    }
    out
}

/// Bursts replayed by `run` (each burst is exactly one row hit or miss).
fn bursts(run: &mealib_memsim::EngineRun) -> u64 {
    run.vaults
        .iter()
        .map(|v| v.read_bursts + v.write_bursts)
        .sum()
}

/// Best-of-`reps` replay wall time in seconds, plus the burst count.
fn time_engine(
    cfg: &mealib_memsim::MemoryConfig,
    trace: &TraceBuffer,
    opts: &SimOptions,
    reps: u32,
) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut bursts_done = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        let run = simulate(cfg, trace, opts).expect("preset config validates");
        best = best.min(t0.elapsed().as_secs_f64());
        bursts_done = bursts(&run);
    }
    (best, bursts_done)
}

fn main() {
    let opts = HarnessOpts::from_env();
    banner(
        "engine throughput — event-driven fast engine vs cycle oracle",
        "epoch skipping batches row-hit streaks; bit-exactness is re-checked before timing",
    );
    let max_bytes: u64 = if opts.small { 2 << 20 } else { 8 << 20 };
    let reps: u32 = if opts.small { 2 } else { 3 };
    let jobs = auto_jobs(opts.jobs);
    let layer = AcceleratorLayer::mealib_default();
    let mem = layer.mem();

    let mut summary = JsonSummary::new("engine_throughput");
    section(&format!(
        "replays at {} MiB/stream, best of {reps}, jobs={jobs}",
        max_bytes >> 20
    ));
    let mut t = TextTable::new(vec![
        "stream",
        "bursts",
        "cycle Mb/s/core",
        "fast Mb/s/core",
        "fast/cycle",
    ]);
    let mut cycle_wall = 0.0f64;
    let mut fast_wall = 0.0f64;
    let mut ln_ratio_sum = 0.0f64;
    let mut total_bursts = 0u64;
    let mut n_streams = 0u64;
    for s in streams(max_bytes) {
        n_streams += 1;
        // Bit-exactness first: the throughput numbers are meaningless
        // if the engines disagree on the very traces being timed.
        simulate(mem, &s.trace, &SimOptions::dual_check().jobs(jobs))
            .expect("fast engine must stay bit-exact with the cycle oracle");

        let (cw, n) = time_engine(mem, &s.trace, &SimOptions::cycle().jobs(jobs), reps);
        let (fw, fn_) = time_engine(mem, &s.trace, &SimOptions::fast().jobs(jobs), reps);
        assert_eq!(
            n, fn_,
            "{}: engines replayed different burst counts",
            s.name
        );
        cycle_wall += cw;
        fast_wall += fw;
        ln_ratio_sum += (cw / fw).ln();
        total_bursts += n;
        let per_core = jobs as f64;
        t.push_row(vec![
            s.name.clone(),
            n.to_string(),
            format!("{:.2}", n as f64 / cw / per_core / 1e6),
            format!("{:.2}", n as f64 / fw / per_core / 1e6),
            format!("{:.1}x", cw / fw),
        ]);
    }
    print!("{t}");

    let per_core = jobs as f64;
    let cycle_rate = total_bursts as f64 / cycle_wall / per_core;
    let fast_rate = total_bursts as f64 / fast_wall / per_core;
    // Geomean, not wall-sum: each stream votes equally, so spmv's
    // unbatchable scalar gathers (~1x by construction) cannot mask the
    // win on the streaming workloads.
    let ratio = (ln_ratio_sum / n_streams as f64).exp();
    println!();
    println!(
        "aggregate: {total_bursts} bursts; cycle {:.2} Mbursts/s/core, fast {:.2} Mbursts/s/core; geomean speedup {ratio:.1}x",
        cycle_rate / 1e6,
        fast_rate / 1e6
    );
    summary.metric("cycle_bursts_per_sec_per_core", cycle_rate);
    summary.metric("fast_bursts_per_sec_per_core", fast_rate);
    summary.metric("fast_over_cycle", ratio);
    summary.metric("streams", n_streams as f64);
    summary.emit(&opts);
}
