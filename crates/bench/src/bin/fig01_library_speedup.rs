//! Figure 1: performance gains from replacing original code with
//! high-performance library calls (R / PERFECT / PARSEC benchmarks on a
//! commodity Haswell machine).

use mealib_bench::{banner, fmt_gain, section, write_profile, HarnessOpts, JsonSummary};
use mealib_obs::{Phase, Profile};
use mealib_sim::TextTable;
use mealib_types::Seconds;
use mealib_workloads::fig1;

fn main() {
    let opts = HarnessOpts::from_env();
    banner(
        "Figure 1 — library vs original-code speedups",
        "up to 27x (R), 42x (PERFECT), 24x (PARSEC); bars from ~5x",
    );

    let mut table = TextTable::new(vec![
        "suite",
        "benchmark",
        "single-thread lib",
        "multi-thread lib",
    ]);
    let points = fig1::speedups();
    for p in &points {
        table.push_row(vec![
            p.benchmark.suite.name().to_string(),
            p.benchmark.name.to_string(),
            fmt_gain(p.single_thread),
            fmt_gain(p.multi_thread),
        ]);
    }
    section("measured (modeled Haswell roofline)");
    print!("{table}");

    section("per-suite maxima (the figure's call-outs)");
    let mut summary = JsonSummary::new("fig01_library_speedup");
    for suite in [fig1::Suite::R, fig1::Suite::Perfect, fig1::Suite::Parsec] {
        let best = points
            .iter()
            .filter(|p| p.benchmark.suite == suite)
            .map(|p| p.multi_thread)
            .fold(0.0_f64, f64::max);
        println!(
            "{:8} max multi-thread speedup: {}",
            suite.name(),
            fmt_gain(best)
        );
        summary.metric(
            &format!("max_speedup_{}", suite.name().to_lowercase()),
            best,
        );
    }
    if opts.profile.is_some() {
        // Modeled multi-threaded library time per benchmark, laid out
        // back to back on one Haswell track.
        let mut p = Profile::new();
        let mut cursor = Seconds::ZERO;
        for point in &points {
            cursor = p.interval(
                "haswell",
                Phase::Compute,
                point.benchmark.name,
                cursor,
                fig1::library_time(&point.benchmark),
            );
        }
        write_profile(&opts, &p);
    }
    summary.emit(&opts);
}
