//! Figure 9 (plus Tables 1-3): performance of each Table 1 operation on
//! its Table 2 dataset across the five platforms, normalized to MKL on
//! Haswell.

use mealib_bench::{banner, fmt_gain, section, write_profile, HarnessOpts, JsonSummary};
use mealib_obs::{Profile, TraceRecorder};
use mealib_sim::{run_sweep, ExperimentOptions, TextTable};
use mealib_types::stats::geometric_mean;
use mealib_workloads::datasets;

fn main() {
    let opts = HarnessOpts::from_env();
    banner(
        "Figure 9 — performance improvement over Intel MKL on Haswell",
        "MEALib 11x (SPMV) to 88x (RESHP), average 38x; PSAS 2.51x, MSAS 10.32x",
    );

    section("Table 1/2 — accelerated functions and data sets");
    let mut t = TextTable::new(vec!["function", "accelerator", "data set"]);
    for row in datasets::table2() {
        t.push_row(vec![
            row.function.to_string(),
            row.params.kind().to_string(),
            row.description.to_string(),
        ]);
    }
    print!("{t}");

    section("Table 3 — platforms");
    let mut t = TextTable::new(vec!["platform", "peak bandwidth"]);
    for (name, bw) in [
        ("Haswell i7-4770K", 25.6),
        ("Xeon Phi 5110P", 320.0),
        ("PSAS", 25.6),
        ("MSAS", 102.4),
        ("MEALib hardware", 510.0),
    ] {
        t.push_row(vec![name.to_string(), format!("{bw:.1} GB/s")]);
    }
    print!("{t}");

    section("Figure 9 — speedups over Haswell (GFLOPS; GB/s for RESHP)");
    let mut t = TextTable::new(vec!["op", "Haswell", "Xeon Phi", "PSAS", "MSAS", "MEALib"]);
    let mut mealib_gains = Vec::new();
    let mut summary = JsonSummary::new("fig09_performance");
    let rec = opts.profile.as_ref().map(|_| TraceRecorder::shared());
    let mut xopts = ExperimentOptions::default();
    if let Some(rec) = &rec {
        xopts = xopts.recorder(rec.clone());
    }
    let rows = datasets::table2();
    let ops: Vec<_> = rows.iter().map(|row| row.params).collect();
    let reports = run_sweep(&ops, &xopts, opts.jobs);
    for (row, report) in rows.iter().zip(reports) {
        let cmp = report.expect("preflight clean").comparison;
        let speedups = cmp.speedups();
        mealib_gains.push(cmp.mealib_speedup());
        summary.metric(
            &format!("speedup_{}", row.params.kind().keyword().to_lowercase()),
            cmp.mealib_speedup(),
        );
        t.push_row(vec![
            row.params.kind().to_string(),
            fmt_gain(speedups[0].1),
            fmt_gain(speedups[1].1),
            fmt_gain(speedups[2].1),
            fmt_gain(speedups[3].1),
            fmt_gain(speedups[4].1),
        ]);
    }
    print!("{t}");
    let avg = geometric_mean(&mealib_gains).expect("positive gains");
    println!();
    println!(
        "MEALib average speedup: {} (paper: 38x, range 11x-88x)",
        fmt_gain(avg)
    );
    summary.metric("avg_speedup", avg);
    if let Some(rec) = &rec {
        // Merged phase taxonomy across all seven MEALib runs.
        write_profile(
            &opts,
            &Profile::from_breakdown(&rec.breakdown(), "experiments"),
        );
    }
    summary.emit(&opts);
}
