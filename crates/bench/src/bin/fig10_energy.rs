//! Figure 10: energy efficiency (GFLOPS/W) of each operation across the
//! five platforms, normalized to MKL on Haswell.

use mealib_bench::{banner, fmt_gain, section, write_profile, HarnessOpts, JsonSummary};
use mealib_obs::{Profile, TraceRecorder};
use mealib_sim::{run_experiment, run_sweep, ExperimentOptions, TextTable};
use mealib_types::stats::geometric_mean;
use mealib_workloads::datasets;

fn main() {
    let opts = HarnessOpts::from_env();
    banner(
        "Figure 10 — energy-efficiency improvement over Intel MKL on Haswell",
        "MEALib average 75x; e.g. FFT at 19 W vs Haswell 48 W, Phi 130 W, MSAS 41 W",
    );

    section("efficiency gains over Haswell (GFLOPS/W; GB/s/W for RESHP)");
    let mut t = TextTable::new(vec!["op", "Haswell", "Xeon Phi", "PSAS", "MSAS", "MEALib"]);
    let mut mealib_gains = Vec::new();
    let mut summary = JsonSummary::new("fig10_energy");
    let rec = opts.profile.as_ref().map(|_| TraceRecorder::shared());
    let mut xopts = ExperimentOptions::default();
    if let Some(rec) = &rec {
        xopts = xopts.recorder(rec.clone());
    }
    let rows = datasets::table2();
    let ops: Vec<_> = rows.iter().map(|row| row.params).collect();
    let reports = run_sweep(&ops, &xopts, opts.jobs);
    for (row, report) in rows.iter().zip(reports) {
        let cmp = report.expect("preflight clean").comparison;
        let gains = cmp.efficiency_gains();
        mealib_gains.push(cmp.mealib_efficiency_gain());
        summary.metric(
            &format!("ee_gain_{}", row.params.kind().keyword().to_lowercase()),
            cmp.mealib_efficiency_gain(),
        );
        t.push_row(vec![
            row.params.kind().to_string(),
            fmt_gain(gains[0].1),
            fmt_gain(gains[1].1),
            fmt_gain(gains[2].1),
            fmt_gain(gains[3].1),
            fmt_gain(gains[4].1),
        ]);
    }
    print!("{t}");

    section("absolute power during the FFT operation (the paper's example)");
    let fft = datasets::for_kind(mealib_tdl::AcceleratorKind::Fft);
    let cmp = run_experiment(&fft.params, &xopts)
        .expect("preflight clean")
        .comparison;
    let mut t = TextTable::new(vec!["platform", "power", "paper"]);
    let paper = ["48 W", "130 W", "-", "41 W", "19 W"];
    for (row, p) in cmp.rows.iter().zip(paper) {
        t.push_row(vec![
            row.name.clone(),
            format!("{:.1} W", row.power().get()),
            p.to_string(),
        ]);
    }
    print!("{t}");

    let avg = geometric_mean(&mealib_gains).expect("positive gains");
    println!();
    println!(
        "MEALib average energy-efficiency gain: {} (paper: 75x)",
        fmt_gain(avg)
    );
    summary.metric("avg_ee_gain", avg);
    if let Some(rec) = &rec {
        // Merged phase taxonomy across the sweep plus the FFT rerun.
        write_profile(
            &opts,
            &Profile::from_breakdown(&rec.breakdown(), "experiments"),
        );
    }
    summary.emit(&opts);
}
