//! Figure 11: design-space analysis of the FFT and SPMV accelerators —
//! performance vs power across frequency, core count, block size, and
//! DRAM row-buffer size, at 510 GB/s of memory bandwidth.
//!
//! Every design point additionally replays a sequential stream through
//! the cycle engine (the `engine` column) to cross-check the analytic
//! bandwidth model; `--jobs N` fans the points across worker threads
//! with bit-identical output.
//!
//! With `--prune`, the static-bounds certifier prices every grid point
//! in closed form first and the cycle-engine replay runs only for
//! points no certified point dominates. The Pareto frontier (printed
//! and summarized in both modes) is bit-identical either way — the
//! smoke script asserts it — while the number of engine simulations
//! drops, which the prune-mode summary records.

use mealib_accel::design_space::{
    fft_reference_workload, pareto_frontier, spmv_reference_workload, sweep_pruned, sweep_with,
    DesignPoint, SweepGrid, SweepOptions,
};
use mealib_accel::AccelParams;
use mealib_bench::{banner, section, write_profile, HarnessOpts, JsonSummary};
use mealib_memsim::engine::{sequential_trace, simulate, Op, SimOptions};
use mealib_memsim::MemoryConfig;
use mealib_obs::Profile;
use mealib_sim::TextTable;
use mealib_tdl::AcceleratorKind;
use mealib_types::Seconds;

fn point_table(points: &[DesignPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "freq", "cores", "block", "row", "GFLOPS", "power", "GF/W", "engine",
    ]);
    for p in points {
        t.push_row(vec![
            format!("{:.1} GHz", p.frequency.as_ghz()),
            p.cores.to_string(),
            p.block_elems.to_string(),
            p.row_bytes.to_string(),
            format!("{:.1}", p.gflops),
            format!("{:.1} W", p.power_w),
            format!("{:.2}", p.gflops_per_watt()),
            format!("{:.0} GB/s", p.engine_gbps),
        ]);
    }
    t
}

fn eff_range(points: &[DesignPoint]) -> (f64, f64) {
    let min = points
        .iter()
        .map(DesignPoint::gflops_per_watt)
        .fold(f64::INFINITY, f64::min);
    let max = points
        .iter()
        .map(DesignPoint::gflops_per_watt)
        .fold(0.0_f64, f64::max);
    (min, max)
}

fn print_space(kind: AcceleratorKind, points: &[DesignPoint], paper_range: &str) {
    section(&format!("{kind} design space (one row per point)"));
    print!("{}", point_table(points));
    let (min, max) = eff_range(points);
    println!();
    println!("{kind} efficiency range: {min:.2} - {max:.2} GFLOPS/W (paper: {paper_range})");
}

/// Prints the Pareto frontier and records it in the summary with full
/// f64 precision: identical frontiers produce identical metric values,
/// which is how the smoke script asserts that `--prune` changed nothing.
fn report_frontier(kind: AcceleratorKind, points: &[DesignPoint], summary: &mut JsonSummary) {
    let frontier = pareto_frontier(points);
    section(&format!("{kind} Pareto frontier"));
    print!("{}", point_table(&frontier));
    let k = format!("{kind}").to_lowercase();
    summary.metric(&format!("{k}_frontier_points"), frontier.len() as f64);
    summary.metric(
        &format!("{k}_frontier_gflops_sum"),
        frontier.iter().map(|p| p.gflops).sum(),
    );
    summary.metric(
        &format!("{k}_frontier_power_sum"),
        frontier.iter().map(|p| p.power_w).sum(),
    );
    summary.metric(
        &format!("{k}_frontier_engine_sum"),
        frontier.iter().map(|p| p.engine_gbps).sum(),
    );
}

/// Explores one accelerator's design space, pruned or full, and returns
/// the evaluated points plus `(simulated, pruned)` accounting.
fn explore(
    kind: AcceleratorKind,
    workload: &AccelParams,
    grid: &SweepGrid,
    mem: &MemoryConfig,
    sweep_opts: &SweepOptions,
    prune: bool,
) -> (Vec<DesignPoint>, usize, usize) {
    if prune {
        let s = sweep_pruned(kind, workload, grid, mem, sweep_opts);
        (s.points, s.simulated, s.pruned)
    } else {
        let points = sweep_with(kind, workload, grid, mem, sweep_opts);
        let n = points.len();
        (points, n, 0)
    }
}

fn main() {
    let opts = HarnessOpts::from_env();
    banner(
        "Figure 11 — FFT and SPMV accelerator design spaces",
        "FFT 10-56 GFLOPS/W; SPMV 0.18-1.76 GFLOPS/W across design options",
    );
    let grid = SweepGrid::default();
    let mem = MemoryConfig::hmc_stack();
    let sweep_opts = SweepOptions {
        jobs: opts.jobs,
        // The engine replay is what makes each point worth
        // parallelizing; keep it light in smoke-test mode.
        engine_check_bytes: if opts.small { 1 << 20 } else { 64 << 20 },
    };

    // Deterministic modeled outputs only — no wall times, so summaries
    // from different --jobs values must be byte-identical (the smoke
    // script asserts this). Prune mode uses its own record name: its
    // point set is a subset, so only the frontier metrics are
    // comparable against the full sweep.
    let mut summary = JsonSummary::new(if opts.prune {
        "fig11_design_space_prune"
    } else {
        "fig11_design_space"
    });

    let mut grid_points = 0usize;
    let mut engine_max = 0.0_f64;
    for (kind, workload, paper_range) in [
        (
            AcceleratorKind::Fft,
            fft_reference_workload(),
            "10-56 GFLOPS/W",
        ),
        (
            AcceleratorKind::Spmv,
            spmv_reference_workload(),
            "0.18-1.76 GFLOPS/W",
        ),
    ] {
        let (points, simulated, pruned) =
            explore(kind, &workload, &grid, &mem, &sweep_opts, opts.prune);
        grid_points = simulated + pruned;
        print_space(kind, &points, paper_range);
        report_frontier(kind, &points, &mut summary);
        let k = format!("{kind}").to_lowercase();
        if opts.prune {
            println!();
            println!(
                "{kind} bounds pruning: {simulated}/{grid_points} points simulated, {pruned} \
                 provably dominated"
            );
            summary.metric(&format!("{k}_simulated"), simulated as f64);
            summary.metric(&format!("{k}_pruned"), pruned as f64);
        } else {
            let (min, max) = eff_range(&points);
            summary.metric(&format!("{k}_eff_min"), min);
            summary.metric(&format!("{k}_eff_max"), max);
            engine_max = points
                .iter()
                .map(|p| p.engine_gbps)
                .fold(engine_max, f64::max);
        }
    }
    if opts.prune {
        summary.metric("grid_points", grid_points as f64);
    } else {
        summary.metric("engine_check_max_gbps", engine_max);
    }

    if opts.profile.is_some() {
        // Cycle-windowed replay of the engine cross-check stream: one
        // counter timeline per vault at 4096-cycle windows.
        let trace = sequential_trace(0, sweep_opts.engine_check_bytes, 256, Op::Read);
        let timeline = simulate(&mem, &trace, &SimOptions::fast().profile(4096))
            .expect("preset config validates")
            .timeline
            .expect("profiled run carries a timeline");
        let mut p = Profile::new();
        p.push_timeline(
            "dram:engine-check",
            timeline,
            mem.timing.t_ck,
            Seconds::ZERO,
        );
        write_profile(&opts, &p);
    }
    summary.emit(&opts);
}
