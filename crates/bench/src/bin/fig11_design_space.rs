//! Figure 11: design-space analysis of the FFT and SPMV accelerators —
//! performance vs power across frequency, core count, block size, and
//! DRAM row-buffer size, at 510 GB/s of memory bandwidth.
//!
//! Every design point additionally replays a sequential stream through
//! the cycle engine (the `engine` column) to cross-check the analytic
//! bandwidth model; `--jobs N` fans the points across worker threads
//! with bit-identical output.

use mealib_accel::design_space::{
    fft_reference_workload, spmv_reference_workload, sweep_with, DesignPoint, SweepGrid,
    SweepOptions,
};
use mealib_bench::{banner, section, write_profile, HarnessOpts, JsonSummary};
use mealib_memsim::engine::{sequential_trace, simulate_trace_profiled, Op};
use mealib_memsim::MemoryConfig;
use mealib_obs::Profile;
use mealib_sim::TextTable;
use mealib_tdl::AcceleratorKind;
use mealib_types::Seconds;

fn print_space(kind: AcceleratorKind, points: &[DesignPoint], paper_range: &str) {
    section(&format!("{kind} design space (one row per point)"));
    let mut t = TextTable::new(vec![
        "freq", "cores", "block", "row", "GFLOPS", "power", "GF/W", "engine",
    ]);
    for p in points {
        t.push_row(vec![
            format!("{:.1} GHz", p.frequency.as_ghz()),
            p.cores.to_string(),
            p.block_elems.to_string(),
            p.row_bytes.to_string(),
            format!("{:.1}", p.gflops),
            format!("{:.1} W", p.power_w),
            format!("{:.2}", p.gflops_per_watt()),
            format!("{:.0} GB/s", p.engine_gbps),
        ]);
    }
    print!("{t}");
    let min = points
        .iter()
        .map(DesignPoint::gflops_per_watt)
        .fold(f64::INFINITY, f64::min);
    let max = points
        .iter()
        .map(DesignPoint::gflops_per_watt)
        .fold(0.0_f64, f64::max);
    println!();
    println!("{kind} efficiency range: {min:.2} - {max:.2} GFLOPS/W (paper: {paper_range})");
}

fn main() {
    let opts = HarnessOpts::from_env();
    banner(
        "Figure 11 — FFT and SPMV accelerator design spaces",
        "FFT 10-56 GFLOPS/W; SPMV 0.18-1.76 GFLOPS/W across design options",
    );
    let grid = SweepGrid::default();
    let mem = MemoryConfig::hmc_stack();
    let sweep_opts = SweepOptions {
        jobs: opts.jobs,
        // The engine replay is what makes each point worth
        // parallelizing; keep it light in smoke-test mode.
        engine_check_bytes: if opts.small { 1 << 20 } else { 64 << 20 },
    };

    let fft = sweep_with(
        AcceleratorKind::Fft,
        &fft_reference_workload(),
        &grid,
        &mem,
        &sweep_opts,
    );
    print_space(AcceleratorKind::Fft, &fft, "10-56 GFLOPS/W");

    let spmv = sweep_with(
        AcceleratorKind::Spmv,
        &spmv_reference_workload(),
        &grid,
        &mem,
        &sweep_opts,
    );
    print_space(AcceleratorKind::Spmv, &spmv, "0.18-1.76 GFLOPS/W");

    // Deterministic modeled outputs only — no wall times, so summaries
    // from different --jobs values must be byte-identical (the smoke
    // script asserts this).
    let mut summary = JsonSummary::new("fig11_design_space");
    let eff_range = |points: &[DesignPoint]| {
        let min = points
            .iter()
            .map(DesignPoint::gflops_per_watt)
            .fold(f64::INFINITY, f64::min);
        let max = points
            .iter()
            .map(DesignPoint::gflops_per_watt)
            .fold(0.0_f64, f64::max);
        (min, max)
    };
    let (fmin, fmax) = eff_range(&fft);
    let (smin, smax) = eff_range(&spmv);
    summary.metric("fft_eff_min", fmin);
    summary.metric("fft_eff_max", fmax);
    summary.metric("spmv_eff_min", smin);
    summary.metric("spmv_eff_max", smax);
    let engine_max = fft
        .iter()
        .chain(&spmv)
        .map(|p| p.engine_gbps)
        .fold(0.0_f64, f64::max);
    summary.metric("engine_check_max_gbps", engine_max);
    if opts.profile.is_some() {
        // Cycle-windowed replay of the engine cross-check stream: one
        // counter timeline per vault at 4096-cycle windows.
        let trace = sequential_trace(0, sweep_opts.engine_check_bytes, 256, Op::Read);
        let profiled = simulate_trace_profiled(&mem, &trace, 4096);
        let mut p = Profile::new();
        p.push_timeline(
            "dram:engine-check",
            profiled.timeline,
            mem.timing.t_ck,
            Seconds::ZERO,
        );
        write_profile(&opts, &p);
    }
    summary.emit(&opts);
}
