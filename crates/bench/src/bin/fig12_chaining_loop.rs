//! Figure 12: efficiency of the configuration infrastructure —
//! hardware vs software accelerator chaining (SAR's RESMP+FFT) and
//! hardware vs software loops (128 FFT invocations).

use mealib_bench::{banner, fmt_gain, section, HarnessOpts, JsonSummary};
use mealib_sim::TextTable;
use mealib_workloads::sar;

fn main() {
    let opts = HarnessOpts::from_env();
    banner(
        "Figure 12 — configuration-infrastructure efficiency",
        "chaining: 2.5x at 256², shrinking; loop: 9.5x at 256², shrinking",
    );

    let mut summary = JsonSummary::new("fig12_chaining_loop");
    section("(a) software vs hardware chaining (RESMP + FFT, SAR)");
    let mut t = TextTable::new(vec!["size", "software", "hardware", "gain"]);
    for p in sar::chaining_sweep() {
        summary.metric(&format!("chain_gain_{}", p.size), p.gain());
        t.push_row(vec![
            format!("{0}x{0}", p.size),
            format!("{:.1} us", p.software.as_micros()),
            format!("{:.1} us", p.hardware.as_micros()),
            fmt_gain(p.gain()),
        ]);
    }
    print!("{t}");

    let iterations = if opts.small { 16 } else { 128 };
    section(&format!(
        "(b) software vs hardware loop ({iterations} FFT invocations)"
    ));
    let mut t = TextTable::new(vec!["size", "software", "hardware", "gain"]);
    for p in sar::loop_sweep(iterations) {
        summary.metric(&format!("loop_gain_{}", p.size), p.gain());
        t.push_row(vec![
            format!("{0}x{0}", p.size),
            format!("{:.1} us", p.software.as_micros()),
            format!("{:.1} us", p.hardware.as_micros()),
            fmt_gain(p.gain()),
        ]);
    }
    print!("{t}");
    summary.emit(&opts);
}
