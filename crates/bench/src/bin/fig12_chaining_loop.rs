//! Figure 12: efficiency of the configuration infrastructure —
//! hardware vs software accelerator chaining (SAR's RESMP+FFT) and
//! hardware vs software loops (128 FFT invocations).

use mealib_bench::{banner, fmt_gain, section, write_profile, HarnessOpts, JsonSummary};
use mealib_obs::{Phase, Profile};
use mealib_sim::TextTable;
use mealib_types::Seconds;
use mealib_workloads::sar;

fn main() {
    let opts = HarnessOpts::from_env();
    banner(
        "Figure 12 — configuration-infrastructure efficiency",
        "chaining: 2.5x at 256², shrinking; loop: 9.5x at 256², shrinking",
    );

    let mut summary = JsonSummary::new("fig12_chaining_loop");
    section("(a) software vs hardware chaining (RESMP + FFT, SAR)");
    let mut t = TextTable::new(vec!["size", "software", "hardware", "gain"]);
    for p in sar::chaining_sweep() {
        summary.metric(&format!("chain_gain_{}", p.size), p.gain());
        t.push_row(vec![
            format!("{0}x{0}", p.size),
            format!("{:.1} us", p.software.as_micros()),
            format!("{:.1} us", p.hardware.as_micros()),
            fmt_gain(p.gain()),
        ]);
    }
    print!("{t}");

    let iterations = if opts.small { 16 } else { 128 };
    section(&format!(
        "(b) software vs hardware loop ({iterations} FFT invocations)"
    ));
    let mut t = TextTable::new(vec!["size", "software", "hardware", "gain"]);
    for p in sar::loop_sweep(iterations) {
        summary.metric(&format!("loop_gain_{}", p.size), p.gain());
        t.push_row(vec![
            format!("{0}x{0}", p.size),
            format!("{:.1} us", p.software.as_micros()),
            format!("{:.1} us", p.hardware.as_micros()),
            fmt_gain(p.gain()),
        ]);
    }
    print!("{t}");
    if opts.profile.is_some() {
        // Back-to-back modeled hardware vs software configuration
        // times, one track each, so the Perfetto view shows where the
        // software path loses ground as sizes grow.
        let mut p = Profile::new();
        let (mut hw, mut sw) = (Seconds::ZERO, Seconds::ZERO);
        for (prefix, points) in [
            ("chain", sar::chaining_sweep()),
            ("loop", sar::loop_sweep(iterations)),
        ] {
            for pt in points {
                let label = format!("{prefix}_{}", pt.size);
                hw = p.interval("sar:hardware", Phase::Compute, &label, hw, pt.hardware);
                sw = p.interval("sar:software", Phase::Flush, &label, sw, pt.software);
            }
        }
        write_profile(&opts, &p);
    }
    summary.emit(&opts);
}
