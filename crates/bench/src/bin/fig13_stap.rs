//! Figure 13 (and Table 4): STAP on MEALib vs the optimized
//! MKL+OpenMP Haswell baseline — performance and EDP gains for three
//! dataset sizes.

use mealib_bench::{banner, fmt_gain, section, write_profile, HarnessOpts, JsonSummary};
use mealib_obs::Bound;
use mealib_sim::TextTable;
use mealib_workloads::stap::{self, StapConfig};

fn main() {
    let opts = HarnessOpts::from_env();
    banner(
        "Figure 13 — STAP performance and EDP gains over Haswell",
        "perf 2.0x/2.3x/3.2x, EDP 4.5x/9.0x/10.2x for small/medium/large",
    );

    section("Table 4 — library functions used in STAP");
    let mut t = TextTable::new(vec!["function", "purpose", "type"]);
    for (f, purpose, mem) in stap::table4() {
        t.push_row(vec![
            f.to_string(),
            purpose.to_string(),
            if mem {
                "memory-bounded".into()
            } else {
                "compute-bounded".to_string()
            },
        ]);
    }
    print!("{t}");

    section("modeled end-to-end runs");
    let mut t = TextTable::new(vec![
        "dataset",
        "Haswell time",
        "MEALib time",
        "perf gain",
        "paper",
        "EDP gain",
        "paper",
    ]);
    let paper = [("2.0x", "4.5x"), ("2.3x", "9.0x"), ("3.2x", "10.2x")];
    let configs = if opts.small {
        vec![StapConfig::small()]
    } else {
        vec![
            StapConfig::small(),
            StapConfig::medium(),
            StapConfig::large(),
        ]
    };
    let mut summary = JsonSummary::new("fig13_stap");
    for (cfg, (pp, pe)) in configs.iter().zip(paper) {
        let haswell = stap::run_on_haswell(cfg);
        let mealib = stap::run_on_mealib(cfg);
        let (perf, edp) = stap::gains(cfg);
        summary.metric(&format!("perf_gain_{}", cfg.name), perf);
        summary.metric(&format!("edp_gain_{}", cfg.name), edp);
        t.push_row(vec![
            cfg.name.to_string(),
            format!("{:.3} s", haswell.total_time().get()),
            format!("{:.3} s", mealib.total_time().get()),
            fmt_gain(perf),
            pp.to_string(),
            fmt_gain(edp),
            pe.to_string(),
        ]);
    }
    print!("{t}");

    section("descriptor compaction (the compiler's contribution)");
    let cfg = StapConfig::large();
    println!(
        "{} cdotc + {} saxpy + 2 fftw library calls -> 3 accelerator descriptors",
        cfg.cdotc_calls(),
        cfg.saxpy_calls()
    );

    if opts.profile.is_some() {
        // Time-resolved profile of one end-to-end run: host/invocation
        // phases on the "stap" track, per-descriptor CU spans, DRAM
        // timelines per accelerated phase, and the roofline attribution.
        let cfg = if opts.small {
            StapConfig::small()
        } else {
            StapConfig::large()
        };
        let sp = stap::profile_on_mealib(&cfg);
        section(&format!("bottleneck attribution ({} dataset)", cfg.name));
        for bound in Bound::ALL {
            println!(
                "{:9} {:5.1}% of modeled time",
                format!("{bound:?}"),
                100.0 * sp.attribution.share(bound)
            );
        }
        println!(
            "dominant: {:?} (coverage {:.0}%)",
            sp.attribution.dominant(),
            100.0 * sp.attribution.coverage()
        );
        write_profile(&opts, &sp.profile);
    }
    summary.emit(&opts);
}
