//! Figure 14: execution time and energy breakdown of STAP on MEALib —
//! host vs accelerators vs invocation overhead, and the per-accelerator
//! split.

use mealib_bench::{banner, section, write_profile, HarnessOpts, JsonSummary};
use mealib_obs::{Obs, Profile, TraceRecorder};
use mealib_sim::TextTable;
use mealib_tdl::AcceleratorKind;
use mealib_types::{Joules, Seconds};
use mealib_workloads::stap::{self, Executor, StapConfig};

fn main() {
    let opts = HarnessOpts::from_env();
    banner(
        "Figure 14 — STAP time/energy breakdown on MEALib",
        "host ~75% time / ~90% energy; DOT ~60%/76% of accelerator share; invocation 3.3%/7.1%",
    );

    let cfg = if opts.small {
        StapConfig::small()
    } else {
        StapConfig::large()
    };
    let rec = TraceRecorder::shared();
    let (run, breakdown) = stap::run_on_mealib_traced(&cfg, &Obs::new(rec.clone()));

    if let Some(path) = &opts.trace {
        let jsonl = rec.to_jsonl();
        std::fs::write(path, &jsonl).expect("trace file writable");
        let drift =
            (breakdown.total_time().get() - run.total_time().get()).abs() / run.total_time().get();
        section("trace");
        println!(
            "wrote {} JSONL events to {} (breakdown/run time drift {:.2e})",
            jsonl.lines().count(),
            path.display(),
            drift
        );
    }

    section(&format!("per-phase costs ({} dataset)", cfg.name));
    let mut t = TextTable::new(vec!["phase", "executor", "time", "energy"]);
    for p in &run.phases {
        let exec = match p.executor {
            Executor::Host => "host".to_string(),
            Executor::Accelerator(k) => format!("accel:{k}"),
            Executor::Invocation => "invocation".to_string(),
        };
        t.push_row(vec![
            p.name.to_string(),
            exec,
            format!("{:.4} s", p.time.get()),
            format!("{:.3} J", p.energy.get()),
        ]);
    }
    print!("{t}");

    section("(a) host vs accelerators");
    let host_t = run.time_fraction(|p| p.executor == Executor::Host);
    let host_e = run.energy_fraction(|p| p.executor == Executor::Host);
    println!("host time share:   {:5.1}%   (paper: ~75%)", 100.0 * host_t);
    println!("host energy share: {:5.1}%   (paper: ~90%)", 100.0 * host_e);

    section("(b) accelerator and invocation split");
    let accel_time: Seconds = run
        .phases
        .iter()
        .filter(|p| !matches!(p.executor, Executor::Host))
        .map(|p| p.time)
        .sum();
    let accel_energy: Joules = run
        .phases
        .iter()
        .filter(|p| !matches!(p.executor, Executor::Host))
        .map(|p| p.energy)
        .sum();
    let mut t = TextTable::new(vec!["component", "time share", "energy share", "paper"]);
    for (kind, paper) in [
        (Some(AcceleratorKind::Reshp), "-"),
        (Some(AcceleratorKind::Fft), "(RESHP+FFT remainder)"),
        (Some(AcceleratorKind::Dot), "60% / 76%"),
        (Some(AcceleratorKind::Axpy), "3.1% / 3.8%"),
        (None, "3.3% / 7.1%"),
    ] {
        let (label, tt, ee): (String, Seconds, Joules) = match kind {
            Some(k) => {
                let tt = run
                    .phases
                    .iter()
                    .filter(|p| p.executor == Executor::Accelerator(k))
                    .map(|p| p.time)
                    .sum();
                let ee = run
                    .phases
                    .iter()
                    .filter(|p| p.executor == Executor::Accelerator(k))
                    .map(|p| p.energy)
                    .sum();
                (k.to_string(), tt, ee)
            }
            None => {
                let tt = run
                    .phases
                    .iter()
                    .filter(|p| p.executor == Executor::Invocation)
                    .map(|p| p.time)
                    .sum();
                let ee = run
                    .phases
                    .iter()
                    .filter(|p| p.executor == Executor::Invocation)
                    .map(|p| p.energy)
                    .sum();
                ("invocation".to_string(), tt, ee)
            }
        };
        t.push_row(vec![
            label,
            format!("{:5.1}%", (100.0 * (tt / accel_time)).max(0.0)),
            format!("{:5.1}%", (100.0 * ee.get() / accel_energy.get()).max(0.0)),
            paper.to_string(),
        ]);
    }
    print!("{t}");

    section("phase taxonomy (obs breakdown — reconciles with the totals)");
    let mut t = TextTable::new(vec!["phase", "time", "energy"]);
    for (phase, totals) in breakdown.phases() {
        t.push_row(vec![
            phase.name().to_string(),
            format!("{:.4} s", totals.time.get()),
            format!("{:.3} J", totals.energy.get()),
        ]);
    }
    print!("{t}");

    // The phase-taxonomy breakdown, laid out on one modeled-time track.
    write_profile(&opts, &Profile::from_breakdown(&breakdown, "stap"));

    let mut summary = JsonSummary::new("fig14_breakdown");
    summary.metric("total_time_s", run.total_time().get());
    summary.metric("total_energy_j", run.total_energy().get());
    summary.metric("host_time_share", host_t);
    summary.metric("host_energy_share", host_e);
    summary.metric("breakdown_time_s", breakdown.total_time().get());
    summary.metric("breakdown_energy_j", breakdown.total_energy().get());
    summary.emit(&opts);
}
