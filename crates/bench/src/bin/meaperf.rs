//! `meaperf` — the perf-trajectory gate.
//!
//! Compares two or more schema-versioned `BENCH_*.json` summaries in
//! chronological order and exits nonzero when a modeled metric (or,
//! unless demoted, a wall-clock metric) regresses beyond its threshold:
//!
//! ```text
//! meaperf [options] BENCH_pr4.json BENCH_pr5.json [BENCH_pr6.json ...]
//!
//!   --threshold-pct <N>        modeled-metric gate (default 5)
//!   --wall-threshold-pct <N>   wall-clock gate (default 20)
//!   --wall-report-only         report wall regressions, never fail on them
//!   --min <bench.key=N>        absolute floor on a metric of the *newest*
//!                              summary (repeatable); fails the gate when
//!                              the metric is below N or missing
//!   --json                     machine-readable report per comparison
//!   --check-trace <FILE>       standalone: validate a Chrome trace-event
//!                              profile (as written by --profile) and exit
//!   --convert <FILE>           standalone: re-render a legacy BENCH file
//!                              in the current schema on stdout and exit
//! ```
//!
//! With more than two summaries, adjacent pairs are compared in
//! sequence (pr4→pr5, pr5→pr6, ...); the gate fails if any step fails.

use std::process::ExitCode;

use mealib_bench::perf::{check_minimums, compare, GateOptions, MinRule};
use mealib_obs::bench_schema::BenchSummary;

fn usage() -> ExitCode {
    eprintln!(
        "usage: meaperf [--threshold-pct N] [--wall-threshold-pct N] \
         [--wall-report-only] [--min bench.key=N] [--json] \
         BENCH_old.json BENCH_new.json ...\n\
         \x20      meaperf --check-trace FILE.trace.json\n\
         \x20      meaperf --convert BENCH_legacy.json"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<BenchSummary, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("meaperf: cannot read {path}: {e}");
        ExitCode::from(2)
    })?;
    BenchSummary::parse(&text).map_err(|e| {
        eprintln!("meaperf: {path}: {e}");
        ExitCode::from(2)
    })
}

fn check_trace(path: &str) -> ExitCode {
    let doc = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("meaperf: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match mealib_obs::validate_chrome_trace(&doc) {
        Ok(s) => {
            println!(
                "{path}: valid ({} events, {} spans, {} counter samples, {} tracks)",
                s.events, s.spans, s.counters, s.tracks
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("meaperf: {path}: invalid trace: {e}");
            ExitCode::FAILURE
        }
    }
}

fn convert(path: &str) -> ExitCode {
    match load(path) {
        Ok(summary) => {
            // render() always emits the current schema version, so a
            // legacy file parses as version 0 and re-renders upgraded.
            print!("{}", summary.render());
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

fn main() -> ExitCode {
    let mut gate = GateOptions::default();
    let mut json = false;
    let mut minimums: Vec<MinRule> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--wall-report-only" => gate.wall_report_only = true,
            "--threshold-pct" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => gate.metric_threshold_pct = n,
                None => return usage(),
            },
            "--wall-threshold-pct" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => gate.wall_threshold_pct = n,
                None => return usage(),
            },
            "--min" => match args.next().as_deref().and_then(MinRule::parse) {
                Some(rule) => minimums.push(rule),
                None => return usage(),
            },
            "--check-trace" => {
                return match args.next() {
                    Some(path) => check_trace(&path),
                    None => usage(),
                };
            }
            "--convert" => {
                return match args.next() {
                    Some(path) => convert(&path),
                    None => usage(),
                };
            }
            "--help" | "-h" => return usage(),
            _ if arg.starts_with("--") => return usage(),
            _ => files.push(arg),
        }
    }
    if files.len() < 2 {
        return usage();
    }

    let mut failed = false;
    for pair in files.windows(2) {
        let (old_path, new_path) = (&pair[0], &pair[1]);
        let before = match load(old_path) {
            Ok(s) => s,
            Err(code) => return code,
        };
        let after = match load(new_path) {
            Ok(s) => s,
            Err(code) => return code,
        };
        let report = compare(&before, &after, &gate);
        if json {
            println!("{}", report.to_json(&gate));
        } else {
            println!("meaperf: {old_path} -> {new_path}");
            for note in [&before, &after]
                .iter()
                .zip([old_path, new_path])
                .filter(|(s, _)| s.is_legacy())
                .map(|(_, p)| p)
            {
                println!("note {note}: legacy (pre-schema) file; consider --convert");
            }
            print!("{}", report.render(&gate));
        }
        failed |= report.failed(&gate);
    }
    if !minimums.is_empty() {
        // Floors apply to the newest summary only — they assert where
        // the trajectory *ends up*, not how it got there.
        let newest_path = files.last().expect("len checked above");
        let newest = match load(newest_path) {
            Ok(s) => s,
            Err(code) => return code,
        };
        let violations = check_minimums(&newest, &minimums);
        for v in &violations {
            println!("{v}");
        }
        if violations.is_empty() {
            println!(
                "{} floor(s) checked against {newest_path} — ok",
                minimums.len()
            );
        }
        failed |= !violations.is_empty();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
