//! `meatop` — a top-style view over the serving telemetry.
//!
//! Three modes:
//!
//! * default: run a small telemetered serve in-process and render the
//!   live view (quick demo, no artifacts needed);
//! * `--from <snapshots.jsonl>`: render the view from a snapshot
//!   stream `serve_traffic --telemetry <prefix>` wrote;
//! * `--check <prefix>`: validate the full artifact set on disk — the
//!   Prometheus exposition parses, every JSONL snapshot parses, the
//!   per-key snapshot deltas sum *exactly* to the exposed cumulative
//!   counters, and the lifecycle trace round-trips through the Chrome
//!   trace validator. Exits nonzero (panics) on any violation; the
//!   smoke gate runs this against the bench artifacts.
//!
//! The view itself: one row per tenant class with sketch-derived
//! service percentiles, plus per-epoch sparklines of admissions and
//! queue depth in modeled time.

use std::collections::BTreeMap;

use mealib_bench::{banner, section, HarnessOpts, JsonSummary};
use mealib_obs::json::{self, Value};
use mealib_obs::{validate_chrome_trace, validate_exposition, Obs};
use mealib_serve::{
    generate, serve_with_telemetry, Catalogue, ServeConfig, TelemetryConfig, TrafficSpec,
};
use mealib_sim::{sparkline, TextTable};
use mealib_verify::BoundsEnv;
use mealib_workloads::sessions::session_buffer_bytes;

struct TopArgs {
    from: Option<String>,
    check: Option<String>,
    seed: u64,
}

fn top_args() -> TopArgs {
    let mut out = TopArgs {
        from: None,
        check: None,
        seed: 42,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--from" => out.from = args.next(),
            "--check" => out.check = args.next(),
            "--seed" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    out.seed = v;
                }
            }
            _ => {}
        }
    }
    out
}

/// Extracts the `class="..."` label value from a flat metric key.
fn class_of(flat_key: &str) -> Option<&str> {
    let start = flat_key.find("class=\"")? + "class=\"".len();
    let rest = &flat_key[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// One parsed snapshot line.
struct Snapshot {
    epoch: u64,
    clock_s: f64,
    queue_depth: f64,
    alerts: u64,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Value>,
}

fn parse_snapshots(doc: &str) -> Result<Vec<Snapshot>, String> {
    let mut out = Vec::new();
    for (i, line) in doc.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("snapshot line {}: {e}", i + 1))?;
        let num = |key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(0.0);
        let mut counters = BTreeMap::new();
        if let Some(obj) = v.get("counters").and_then(Value::as_object) {
            for (k, val) in obj {
                counters.insert(
                    k.clone(),
                    val.as_f64()
                        .ok_or_else(|| format!("snapshot line {}: {k} not numeric", i + 1))?
                        as u64,
                );
            }
        }
        let mut histograms = BTreeMap::new();
        if let Some(obj) = v.get("histograms").and_then(Value::as_object) {
            for (k, val) in obj {
                histograms.insert(k.clone(), val.clone());
            }
        }
        let queue_depth = v
            .get("gauges")
            .and_then(|g| g.get("serve_queue_depth"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        out.push(Snapshot {
            epoch: num("epoch") as u64,
            clock_s: num("clock_s"),
            queue_depth,
            alerts: num("alerts") as u64,
            counters,
            histograms,
        });
    }
    Ok(out)
}

fn render(snapshots: &[Snapshot], opts: &HarnessOpts) {
    let Some(last) = snapshots.last() else {
        println!("no snapshots — nothing to render");
        return;
    };
    section("per-class service percentiles (streaming sketches)");
    let mut table = TextTable::new(vec!["class", "count", "p50_ms", "p95_ms", "p99_ms"]);
    for (key, hist) in &last.histograms {
        if !key.starts_with("serve_service_seconds") {
            continue;
        }
        let class = class_of(key).unwrap_or(key);
        let field = |name: &str| hist.get(name).and_then(Value::as_f64).unwrap_or(0.0);
        table.push_row(vec![
            class.to_string(),
            format!("{}", field("count") as u64),
            format!("{:.3}", field("p50") * 1e3),
            format!("{:.3}", field("p95") * 1e3),
            format!("{:.3}", field("p99") * 1e3),
        ]);
    }
    print!("{table}");

    section("per-epoch activity (modeled time)");
    let admitted: Vec<f64> = snapshots
        .iter()
        .map(|s| {
            s.counters
                .iter()
                .filter(|(k, _)| k.starts_with("serve_admitted_total"))
                .map(|(_, v)| *v as f64)
                .sum()
        })
        .collect();
    let queue: Vec<f64> = snapshots.iter().map(|s| s.queue_depth).collect();
    println!("admitted  {}", sparkline(&admitted));
    println!("queue     {}", sparkline(&queue));
    println!(
        "epochs e0..e{}, modeled clock {:.3} ms, {} alerts",
        last.epoch,
        last.clock_s * 1e3,
        last.alerts
    );

    let mut summary = JsonSummary::new("meatop");
    summary.metric("snapshots", snapshots.len() as f64);
    summary.metric("final_epoch", last.epoch as f64);
    summary.metric("final_clock_s", last.clock_s);
    summary.metric("alerts", last.alerts as f64);
    summary.emit(opts);
}

/// `--check <prefix>`: validates the artifact set `serve_traffic
/// --telemetry` wrote and reconciles snapshots against the exposition.
fn check(prefix: &str, opts: &HarnessOpts) {
    let read = |suffix: &str| {
        let path = format!("{prefix}{suffix}");
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("meatop: read {path}: {e}"))
    };
    let prom = read(".prom");
    let exposition = validate_exposition(&prom).expect("meatop: exposition must validate");
    let snapshots = parse_snapshots(&read(".snapshots.jsonl")).expect("meatop: snapshots parse");
    assert!(!snapshots.is_empty(), "meatop: no snapshots to check");

    // Per-key snapshot deltas must sum exactly to the exposed
    // cumulative counter: the flat snapshot key and the exposition
    // sample name render identically, so the reconciliation is a
    // literal line match.
    let mut summed: BTreeMap<String, u64> = BTreeMap::new();
    for s in &snapshots {
        for (k, v) in &s.counters {
            *summed.entry(k.clone()).or_default() += v;
        }
    }
    let mut reconciled = 0usize;
    for (key, total) in &summed {
        let line = format!("{key} {total}");
        assert!(
            prom.lines().any(|l| l == line),
            "meatop: exposition missing reconciled sample {line:?}"
        );
        reconciled += 1;
    }

    let trace = read(".trace.json");
    let trace_summary = validate_chrome_trace(&trace).expect("meatop: lifecycle trace round-trips");

    println!(
        "check ok: {} families, {} samples; {} snapshots, {} counters reconciled exactly; \
         {} trace spans on {} tracks",
        exposition.families,
        exposition.samples,
        snapshots.len(),
        reconciled,
        trace_summary.spans,
        trace_summary.tracks,
    );
    render(&snapshots, opts);

    let mut summary = JsonSummary::new("meatop_check");
    summary.metric("families", exposition.families as f64);
    summary.metric("samples", exposition.samples as f64);
    summary.metric("snapshots", snapshots.len() as f64);
    summary.metric("counters_reconciled", reconciled as f64);
    summary.metric("trace_spans", trace_summary.spans as f64);
    summary.emit(opts);
}

fn main() {
    let opts = HarnessOpts::from_env();
    let extra = top_args();
    banner(
        "meatop",
        "serving telemetry is inspectable live: bounded-memory sketches, \
         exact counter reconciliation, and modeled-time activity views",
    );

    if let Some(prefix) = &extra.check {
        check(prefix, &opts);
        return;
    }
    if let Some(path) = &extra.from {
        let doc =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("meatop: read {path}: {e}"));
        let snapshots = parse_snapshots(&doc).expect("meatop: snapshots parse");
        render(&snapshots, &opts);
        return;
    }

    section("self-run: small telemetered serve");
    let env = BoundsEnv::default();
    let catalogue = Catalogue::standard(&env);
    let mut spec = TrafficSpec::poisson(&catalogue, extra.seed, 8, 1.5);
    spec.classes
        .retain(|c| matches!(c.class.as_str(), "stap-tiny" | "sar-chain-256"));
    let traffic = generate(&catalogue, &spec);
    let config = ServeConfig {
        jobs: opts.jobs.max(1),
        ..ServeConfig::default()
    };
    for class in catalogue
        .classes()
        .filter(|c| matches!(c.name.as_str(), "stap-tiny" | "sar-chain-256"))
    {
        println!(
            "{:>14}: working set {:.2} MB, slot 0x{:x}",
            class.name,
            session_buffer_bytes(&class.body) as f64 / 1e6,
            class.slot,
        );
    }
    let tcfg = TelemetryConfig::standard(&catalogue);
    let (report, tele) =
        serve_with_telemetry(&catalogue, &traffic, &config, &env, &Obs::off(), &tcfg);
    tele.reconcile(&report)
        .expect("meatop: self-run telemetry must reconcile");
    let snapshots = parse_snapshots(&tele.snapshots_jsonl()).expect("meatop: snapshots parse");
    render(&snapshots, &opts);
}
