//! Figure 8 analog: the paper validates its analytical accelerator
//! models against a cycle-accurate DRAM simulator. This harness does the
//! same for the reproduction — for each operation's access pattern it
//! replays a scaled-down explicit trace through the cycle engine and
//! compares against the closed-form analytic estimate the accelerator
//! models actually use.

use mealib_bench::{banner, section, write_profile, HarnessOpts, JsonSummary};
use mealib_memsim::engine::{self, simulate, Op, SimOptions};
use mealib_memsim::TraceBuffer;
use mealib_memsim::{analytic, AccessPattern, MemoryConfig};
use mealib_obs::{Phase, Profile};
use mealib_sim::TextTable;
use mealib_types::Seconds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Case {
    name: &'static str,
    pattern: AccessPattern,
    trace: TraceBuffer,
}

fn cases() -> Vec<Case> {
    let mut rng = StdRng::seed_from_u64(8);
    let mb = 1u64 << 20;

    // AXPY: read x and y, write y. The DMA engines interleave the
    // streams at page granularity (4 KiB chunks), not burst by burst —
    // fine-grained ping-pong between streams would thrash row buffers.
    let axpy_bytes = 8 * mb;
    let mut axpy_trace = TraceBuffer::new();
    let chunk = 4096u64;
    // Offset the second stream by one row so the two streams land in
    // different banks (the allocator's bank-aware placement).
    let y_base = (1u64 << 30) + 128 * 1024;
    for i in 0..(axpy_bytes / chunk) {
        axpy_trace.push_read(i * chunk, chunk);
        axpy_trace.push_read(y_base + i * chunk, chunk);
        axpy_trace.push_write(y_base + i * chunk, chunk / 2);
    }

    // RESHP on a conventional row-thrashing layout: strided row walk.
    let reshp_trace = engine::strided_trace(0, 65536, 256, 16384, Op::Read);

    // SPMV gather: random 4-byte reads over a 64 MiB region.
    let mut gather_trace = TraceBuffer::with_capacity(65536);
    for _ in 0..65536 {
        gather_trace.push_read(rng.gen_range(0u64..(64 * mb)) & !3, 4);
    }

    vec![
        Case {
            name: "stream (FFT/GEMV class)",
            pattern: AccessPattern::sequential_read(32 * mb),
            trace: engine::sequential_trace(0, 32 * mb, 256, Op::Read),
        },
        Case {
            name: "axpy (read+read+write)",
            pattern: AccessPattern::sequential_rw(2 * axpy_bytes, axpy_bytes / 2),
            trace: axpy_trace,
        },
        Case {
            name: "strided row walk",
            pattern: AccessPattern::Strided {
                stride: 65536,
                elem_bytes: 256,
                count: 16384,
                write: false,
            },
            trace: reshp_trace,
        },
        Case {
            name: "spmv gather",
            pattern: AccessPattern::Random {
                elem_bytes: 4,
                count: 65536,
                region_bytes: 64 * mb,
            },
            trace: gather_trace,
        },
    ]
}

fn main() {
    let opts = HarnessOpts::from_env();
    banner(
        "methodology validation — analytic model vs cycle engine",
        "the paper feeds trace-driven DRAM simulation into analytical models (Fig. 8)",
    );

    let mut summary = JsonSummary::new("methodology_validation");
    let mut profile = Profile::new();
    for cfg in [MemoryConfig::hmc_stack(), MemoryConfig::ddr_dual_channel()] {
        let mut cursor = Seconds::ZERO;
        section(&format!("device: {}", cfg.name));
        let mut t = TextTable::new(vec![
            "pattern",
            "engine BW",
            "analytic BW",
            "ratio",
            "hit-rate (eng/ana)",
            "p50 lat",
            "p99 lat",
        ]);
        for (i, case) in cases().into_iter().enumerate() {
            let run = simulate(&cfg, &case.trace, &SimOptions::dual_check())
                .expect("preset config validates");
            let (sim, lat) = (run.stats, run.latencies);
            cursor = profile.interval(
                &format!("engine:{}", cfg.name),
                Phase::Dma,
                case.name,
                cursor,
                sim.elapsed,
            );
            let est = analytic::try_estimate(&cfg, &case.pattern).expect("validated config");
            let ratio = est.elapsed.get() / sim.elapsed.get();
            summary.metric(&format!("ratio_{}_case{i}", cfg.name), ratio);
            let fmt_rate = |r: Option<f64>| {
                r.map_or_else(|| "-".to_string(), |v| format!("{:.0}%", v * 100.0))
            };
            let fmt_lat =
                |q: Option<u64>| q.map_or_else(|| "-".to_string(), |c| format!("<{c} cyc"));
            t.push_row(vec![
                case.name.to_string(),
                format!("{:.1} GB/s", sim.achieved_bandwidth().as_gb_per_sec()),
                format!("{:.1} GB/s", est.achieved_bandwidth().as_gb_per_sec()),
                format!("{ratio:.2}"),
                format!(
                    "{} / {}",
                    fmt_rate(sim.row_hit_rate()),
                    fmt_rate(est.row_hit_rate())
                ),
                fmt_lat(lat.quantile_bound(0.5)),
                fmt_lat(lat.quantile_bound(0.99)),
            ]);
        }
        print!("{t}");
    }
    println!();
    println!("ratio = analytic time / engine time; 1.00 is perfect agreement.");
    // Engine-replay elapsed times, one track per memory device.
    write_profile(&opts, &profile);
    summary.emit(&opts);
}
