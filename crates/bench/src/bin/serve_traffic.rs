//! Traffic serving — the certified-admission scheduler, measured.
//!
//! Generates a seeded session stream over the full pipeline catalogue
//! (Poisson by default, `--mix diurnal` for the day-shaped load),
//! runs the `mealib-serve` loop end to end — certify, partition,
//! batch, replay, attribute — and reports per-class service-time
//! percentiles plus the serving counters. `admission_soundness` is
//! the fraction of completions whose measured service time stayed
//! inside the elapsed ceiling their admission proved; the perf gate
//! floors it at 1.0, because a serving layer that admits on proofs it
//! then violates is not faster, it is wrong.
//!
//! Extra flags (unknown to the shared harness, parsed here):
//! `--seed <n>`, `--mix poisson|diurnal`, `--epochs <n>`,
//! `--telemetry <prefix>` — run with live telemetry and write
//! `<prefix>.prom` (Prometheus exposition), `<prefix>.snapshots.jsonl`
//! (per-epoch counter deltas + sketch summaries),
//! `<prefix>.trace.json` (per-session lifecycle trace, Perfetto
//! loadable), and `<prefix>.alerts.jsonl` (structured SLO /
//! bounds-escape alerts). With telemetry the per-class percentiles in
//! the JSON summary come from the streaming sketches; without it the
//! run is byte-identical to the pre-telemetry harness.

use std::time::Instant;

use mealib_bench::{banner, section, HarnessOpts, JsonSummary};
use mealib_obs::{validate_exposition, AlertKind, Obs};
use mealib_serve::{
    generate, serve, serve_with_telemetry, ArrivalMix, Catalogue, ServeConfig, TelemetryConfig,
    TrafficSpec,
};
use mealib_sim::TextTable;
use mealib_verify::BoundsEnv;

/// Serving-specific flags; everything the shared harness knows is
/// handled by [`HarnessOpts`] (which ignores these).
struct ServeArgs {
    seed: u64,
    mix: String,
    epochs: Option<u64>,
    telemetry: Option<String>,
}

fn serve_args() -> ServeArgs {
    let mut out = ServeArgs {
        seed: 42,
        mix: "poisson".into(),
        epochs: None,
        telemetry: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    out.seed = v;
                }
            }
            "--mix" => {
                if let Some(v) = args.next() {
                    out.mix = v;
                }
            }
            "--epochs" => {
                out.epochs = args.next().and_then(|v| v.parse().ok());
            }
            "--telemetry" => {
                out.telemetry = args.next();
            }
            _ => {}
        }
    }
    out
}

fn main() {
    let opts = HarnessOpts::from_env();
    let extra = serve_args();
    banner(
        "serve_traffic",
        "a multi-tenant serving layer can run on certified admission \
         alone: every resident set was proved isolated before it ran, \
         every completion lands inside its proved ceiling, and every \
         rejection carries the MEA3xx code that proved it",
    );

    let env = BoundsEnv::default();
    section("building the class catalogue");
    let catalogue = Catalogue::standard(&env);

    let epochs = extra.epochs.unwrap_or(if opts.small { 8 } else { 32 });
    let mean = if opts.small { 1.5 } else { 2.0 };
    let mut spec = TrafficSpec::poisson(&catalogue, extra.seed, epochs, mean);
    if opts.small {
        // The reduced mix the smoke gate replays: small classes only.
        spec.classes
            .retain(|c| matches!(c.class.as_str(), "stap-tiny" | "sar-chain-256"));
    }
    if extra.mix == "diurnal" {
        spec.mix = ArrivalMix::Diurnal {
            base: mean * 0.5,
            peak: mean * 2.0,
            period_epochs: 16,
        };
    }
    let traffic = generate(&catalogue, &spec);
    println!(
        "mix={} seed={} epochs={epochs}: {} sessions over {} classes",
        extra.mix,
        extra.seed,
        traffic.sessions.len(),
        spec.classes.len()
    );

    let config = ServeConfig {
        jobs: opts.jobs.max(1),
        ..ServeConfig::default()
    };
    section("serving the stream");
    let t0 = Instant::now();
    let (report, telemetry) = if extra.telemetry.is_some() {
        let tcfg = TelemetryConfig::standard(&catalogue);
        let (report, tele) =
            serve_with_telemetry(&catalogue, &traffic, &config, &env, &Obs::off(), &tcfg);
        (report, Some(tele))
    } else {
        (serve(&catalogue, &traffic, &config, &env), None)
    };
    let wall_s = t0.elapsed().as_secs_f64();

    let mut table = TextTable::new(vec![
        "class",
        "done",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "max_qd_ms",
        "MB",
        "mJ",
    ]);
    let class_stats = report.class_stats();
    for (class, s) in &class_stats {
        table.push_row(vec![
            class.clone(),
            s.count.to_string(),
            format!("{:.3}", s.p50_s * 1e3),
            format!("{:.3}", s.p95_s * 1e3),
            format!("{:.3}", s.p99_s * 1e3),
            format!("{:.3}", s.max_queue_delay_s * 1e3),
            format!("{:.2}", s.bytes as f64 / 1e6),
            format!("{:.3}", s.energy_j * 1e3),
        ]);
    }
    print!("{table}");
    println!(
        "\n{} completed, {} rejected (proved), {} shed over {} epochs; \
         modeled {:.3} ms, peak queue {}, plan cache {}/{} hits",
        report.completed.len(),
        report.rejected.len(),
        report.shed.len(),
        report.epochs.len(),
        report.modeled_s * 1e3,
        report.peak_queue_depth,
        report.plan_cache_hits,
        report.plans_planned,
    );

    let soundness = report.admission_soundness();
    let proved_rejections = report
        .rejected
        .iter()
        .filter(|r| !r.codes.is_empty())
        .count();

    if let (Some(prefix), Some(tele)) = (&extra.telemetry, &telemetry) {
        section("telemetry");
        tele.reconcile(&report)
            .expect("serve_traffic: telemetry must reconcile with the exact ledger");
        let exposition = tele.prometheus();
        let summary =
            validate_exposition(&exposition).expect("serve_traffic: exposition must validate");
        std::fs::write(format!("{prefix}.prom"), &exposition)
            .expect("serve_traffic: write exposition");
        std::fs::write(format!("{prefix}.snapshots.jsonl"), tele.snapshots_jsonl())
            .expect("serve_traffic: write snapshots");
        std::fs::write(format!("{prefix}.trace.json"), tele.chrome_trace())
            .expect("serve_traffic: write lifecycle trace");
        std::fs::write(format!("{prefix}.alerts.jsonl"), tele.alerts_jsonl())
            .expect("serve_traffic: write alerts");
        println!(
            "exposition: {} families, {} samples; {} snapshots; {} lifecycle events; \
             {} alerts ({} bounds escapes); slo_conformance {:.3}, \
             certified_bounds_conformance {:.3}",
            summary.families,
            summary.samples,
            tele.snapshots.len(),
            tele.profile.intervals.len(),
            tele.alerts.len(),
            tele.alert_count(AlertKind::BoundsEscape),
            tele.slo_conformance,
            tele.certified_bounds_conformance(),
        );
    }

    let mut summary = JsonSummary::new("serve_traffic");
    summary.metric("sessions", traffic.sessions.len() as f64);
    summary.metric("completed", report.completed.len() as f64);
    summary.metric("rejected", report.rejected.len() as f64);
    summary.metric("shed", report.shed.len() as f64);
    summary.metric("epochs", report.epochs.len() as f64);
    summary.metric("admission_soundness", soundness);
    summary.metric(
        "rejection_proof_rate",
        if report.rejected.is_empty() {
            1.0
        } else {
            proved_rejections as f64 / report.rejected.len() as f64
        },
    );
    summary.metric("modeled_s", report.modeled_s);
    summary.metric("peak_queue_depth", report.peak_queue_depth as f64);
    summary.metric("plan_cache_hits", report.plan_cache_hits as f64);
    summary.metric("plans_planned", report.plans_planned as f64);
    summary.metric("serve_wall_s", wall_s);
    for (class, s) in &class_stats {
        let key = class.replace('-', "_");
        // With telemetry the percentiles come from the streaming
        // sketch (within its documented 1% relative bound of the
        // exact nearest-rank values the plain path reports).
        let (p50, p95, p99) = telemetry
            .as_ref()
            .and_then(|t| t.class_percentiles(class))
            .unwrap_or((s.p50_s, s.p95_s, s.p99_s));
        summary.metric(&format!("{key}_p50_s"), p50);
        summary.metric(&format!("{key}_p95_s"), p95);
        summary.metric(&format!("{key}_p99_s"), p99);
    }
    if let Some(tele) = &telemetry {
        summary.metric("slo_conformance", tele.slo_conformance);
        summary.metric(
            "certified_bounds_conformance",
            tele.certified_bounds_conformance(),
        );
        summary.metric("slo_evaluations", tele.slo_evaluations as f64);
        summary.metric(
            "slo_burn_alerts",
            tele.alert_count(AlertKind::SloBurn) as f64,
        );
        summary.metric(
            "bounds_escape_alerts",
            tele.alert_count(AlertKind::BoundsEscape) as f64,
        );
        summary.metric("telemetry_snapshots", tele.snapshots.len() as f64);
        summary.metric(
            "telemetry_sketch_buckets",
            tele.registry.total_buckets() as f64,
        );
    }
    summary.emit(&opts);

    report
        .check_conservation(&traffic, &catalogue)
        .expect("serve_traffic: conservation violated");
    assert!(
        (soundness - 1.0).abs() < f64::EPSILON,
        "serve_traffic: a completion exceeded its certified ceiling"
    );
    assert_eq!(
        proved_rejections,
        report.rejected.len(),
        "serve_traffic: a rejection without its MEA3xx proof"
    );
}
