//! Table 5: estimated power and area (32 nm) for the components of the
//! accelerator layer.
//!
//! Power is *computed* by running each accelerator on its Table 2
//! dataset (per the paper, the per-accelerator figure includes the 3D
//! DRAM power); area comes from the synthesis-profile constants.

use mealib_accel::power::{
    profile, total_layer_area, LAYER_AREA_BUDGET_MM2, NOC_AREA_MM2, TSV_AREA_MM2,
};
use mealib_accel::AcceleratorLayer;
use mealib_bench::{banner, section, write_profile, HarnessOpts, JsonSummary};
use mealib_noc::{Mesh, Packet, TileId};
use mealib_obs::{Phase, Profile};
use mealib_sim::TextTable;
use mealib_types::Seconds;
use mealib_workloads::datasets;

fn main() {
    let opts = HarnessOpts::from_env();
    banner(
        "Table 5 — power and area of the accelerator layer (32 nm)",
        "total 23.85 W / 41.77 mm² = 61.43% of the 68 mm² layer",
    );

    let layer = AcceleratorLayer::mealib_default();
    let paper_power = [
        ("AXPY", 23.56),
        ("DOT", 23.49),
        ("GEMV", 23.75),
        ("SPMV", 15.44),
        ("RESMP", 8.19),
        ("FFT", 18.89),
        ("RESHP", 22.70),
    ];
    let paper_area = [1.38, 1.81, 2.45, 14.17, 2.64, 16.13, f64::NAN];

    section("per-component estimates (accelerator + 3D DRAM power)");
    let mut t = TextTable::new(vec![
        "component",
        "power (model)",
        "power (paper)",
        "area (model)",
        "area (paper)",
    ]);
    let mut max_power: f64 = 0.0;
    let rows = datasets::table2();
    let runs = mealib_types::par_map(&rows, opts.jobs, |row| {
        let r = layer.execute(&row.params);
        (r.power(), r.time)
    });
    let mut gantt = Profile::new();
    let mut cursor = Seconds::ZERO;
    for (i, (row, (power, time))) in rows.iter().zip(runs).enumerate() {
        let power = power.get();
        cursor = gantt.interval(
            "layer",
            Phase::Compute,
            &row.params.kind().to_string(),
            cursor,
            time,
        );
        max_power = max_power.max(power);
        let area = profile(row.params.kind()).area_mm2;
        t.push_row(vec![
            row.params.kind().to_string(),
            format!("{power:.2} W"),
            format!("{:.2} W", paper_power[i].1),
            if area > 0.0 {
                format!("{area:.2} mm2")
            } else {
                "- (logic layer)".into()
            },
            if paper_area[i].is_nan() {
                "-".into()
            } else {
                format!("{:.2} mm2", paper_area[i])
            },
        ]);
    }

    // NoC under a saturating configuration broadcast.
    let mesh = Mesh::mealib_layer();
    let packets: Vec<Packet> = (0..64)
        .map(|_| Packet::new(TileId::new(0, 0), TileId::new(3, 7), 4096))
        .collect();
    let noc_stats = mesh.simulate(&packets);
    let noc_power = mesh.average_power(&noc_stats).get();
    t.push_row(vec![
        "NoC (router + link)".to_string(),
        format!("{noc_power:.3} W"),
        "0.095 W".to_string(),
        format!("{NOC_AREA_MM2:.2} mm2"),
        "1.44 mm2".to_string(),
    ]);
    t.push_row(vec![
        "TSVs".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{TSV_AREA_MM2:.2} mm2"),
        "1.75 mm2".to_string(),
    ]);
    print!("{t}");

    section("totals");
    // Accelerators never run simultaneously (they share the 510 GB/s),
    // so the layer budget is the most power-hungry accelerator + NoC.
    let total_power = max_power + noc_power;
    let total_area = total_layer_area(NOC_AREA_MM2);
    println!("total power: {total_power:.2} W   (paper: 23.85 W — max accelerator + NoC)");
    println!(
        "total area:  {total_area:.2} mm2 = {:.1}% of the {LAYER_AREA_BUDGET_MM2:.0} mm2 layer   (paper: 41.77 mm2 = 61.43%)",
        100.0 * total_area / LAYER_AREA_BUDGET_MM2
    );
    let mut summary = JsonSummary::new("table05_power_area");
    summary.metric("total_power_w", total_power);
    summary.metric("total_area_mm2", total_area);
    summary.metric("noc_power_w", noc_power);
    // Modeled Table 2 execution time per accelerator, back to back.
    write_profile(&opts, &gantt);
    summary.emit(&opts);
}
