//! Tenant-mix admission control — the MEA3xx certifier, measured.
//!
//! Builds multi-tenant session-set manifests from the evaluation
//! pipelines ([`mealib_workloads::sessions::pipeline_sessions`]): each
//! mix rebases 2–8 real pipeline sessions into disjoint partition
//! slots, staggers their arrivals, and runs the compositional
//! interference certifier end to end. Every verdict is then *checked*
//! against the tagged interleaved cycle simulation:
//!
//! * ADMIT — the merged run must stay inside the certified set-level
//!   bounds and every per-tenant interval must contain its
//!   measurement;
//! * REJECT — the measured run must actually violate the budget the
//!   MEA3xx diagnostic proves violated;
//! * UNKNOWN — only ever produced when the certifier was *denied*
//!   information (here: a tenant with no declared partition), never as
//!   an escape hatch on a fully-declared mix.
//!
//! `verdict_correctness` is the fraction of mixes whose verdict both
//! matches the constructed expectation and survives its simulation
//! check; the perf gate floors it at 1.0 — the certifier is only fast
//! if it is also right.

use std::time::Instant;

use mealib_bench::{banner, section, HarnessOpts, JsonSummary};
use mealib_memsim::{simulate_tenants, SimOptions};
use mealib_sim::TextTable;
use mealib_verify::interference::{
    certify_set, parse_session_set, resolved_set_config, tenant_streams,
};
use mealib_verify::{BoundsEnv, Verdict};
use mealib_workloads::sessions::{pipeline_sessions, rebase_session, session_span};

/// Partition slots are placed on this alignment so every mix keeps a
/// generous guard band between tenants regardless of session size.
const SLOT_ALIGN: u64 = 1 << 22;

/// One constructed admission request.
struct Mix {
    name: &'static str,
    /// Pipeline session names, one tenant each (repeats allowed).
    tenants: Vec<&'static str>,
    /// Set-level wall-time envelope, when the mix declares one.
    set_time_s: Option<f64>,
    /// Tenant index whose `PARTITION` is withheld, to force UNKNOWN.
    undeclared: Option<usize>,
    expect: Verdict,
}

/// Renders the session-set manifest for `mix` from the pipeline
/// session catalogue.
fn manifest(mix: &Mix, catalogue: &[(String, String)]) -> String {
    let mut src = String::new();
    if let Some(t) = mix.set_time_s {
        src.push_str(&format!("BUDGET TIME {t}\n"));
    }
    let mut cursor = 0u64;
    for (i, session_name) in mix.tenants.iter().enumerate() {
        let (_, body) = catalogue
            .iter()
            .find(|(n, _)| n == session_name)
            .unwrap_or_else(|| panic!("unknown pipeline session {session_name}"));
        let slot = session_span(body).next_power_of_two().max(SLOT_ALIGN);
        src.push_str(&format!("TENANT {session_name}.{i}\n"));
        if mix.undeclared != Some(i) {
            src.push_str(&format!("PARTITION 0x{cursor:x} 0x{slot:x}\n"));
        }
        if i > 0 {
            src.push_str(&format!("ARRIVAL {}\n", i as u64 * 97));
        }
        src.push_str(&rebase_session(body, cursor));
        cursor += slot;
    }
    src
}

fn mixes(small: bool) -> Vec<Mix> {
    let mut out = vec![
        Mix {
            name: "pair-tiny",
            tenants: vec!["stap-tiny", "sar-chain-256"],
            set_time_s: None,
            undeclared: None,
            expect: Verdict::Admit,
        },
        Mix {
            name: "quad",
            tenants: vec!["stap-tiny", "sar-chain-256", "sar-loop-256", "stap-tiny"],
            set_time_s: None,
            undeclared: None,
            expect: Verdict::Admit,
        },
        Mix {
            name: "flood",
            tenants: vec!["stap-tiny", "sar-chain-256", "sar-loop-256", "stap-tiny"],
            set_time_s: Some(1e-9),
            undeclared: None,
            expect: Verdict::Reject,
        },
        Mix {
            name: "opaque",
            tenants: vec!["stap-tiny", "sar-chain-256"],
            set_time_s: None,
            undeclared: Some(1),
            expect: Verdict::Unknown,
        },
    ];
    if !small {
        out.push(Mix {
            name: "hex",
            tenants: vec![
                "stap-tiny",
                "stap-small",
                "sar-chain-256",
                "sar-chain-1024",
                "sar-loop-256",
                "stap-tiny",
            ],
            set_time_s: None,
            undeclared: None,
            expect: Verdict::Admit,
        });
        out.push(Mix {
            name: "oct",
            tenants: vec![
                "stap-tiny",
                "stap-small",
                "sar-chain-256",
                "sar-chain-1024",
                "sar-loop-256",
                "stap-tiny",
                "sar-chain-256",
                "sar-loop-256",
            ],
            set_time_s: None,
            undeclared: None,
            expect: Verdict::Admit,
        });
    }
    out
}

fn main() {
    let opts = HarnessOpts::from_env();
    banner(
        "tenant_mix",
        "compositional MEA3xx admission control certifies multi-tenant \
         mixes without simulating them — and every verdict holds up \
         when the interleaved mix actually runs",
    );

    let catalogue = pipeline_sessions();
    let env = BoundsEnv::default();
    let all = mixes(opts.small);

    let mut table = TextTable::new(vec![
        "mix",
        "tenants",
        "verdict",
        "expected",
        "confirmed",
        "certify_ms",
        "simulate_ms",
    ]);
    let (mut admitted, mut rejected, mut unknown) = (0u32, 0u32, 0u32);
    let mut correct = 0u32;
    let mut tenants_total = 0u32;
    let (mut certify_wall, mut simulate_wall) = (0.0f64, 0.0f64);
    let mut tightness_sum = 0.0f64;
    let mut tightness_n = 0u32;

    section("certifying and replaying mixes");
    for mix in &all {
        let src = manifest(mix, &catalogue);
        let set = parse_session_set(&src).expect("constructed manifests parse");
        tenants_total += mix.tenants.len() as u32;

        let t0 = Instant::now();
        let cert = certify_set(&set, &env).expect("preset env validates");
        let certify_s = t0.elapsed().as_secs_f64();
        certify_wall += certify_s;

        match cert.verdict {
            Verdict::Admit => admitted += 1,
            Verdict::Reject => rejected += 1,
            Verdict::Unknown => unknown += 1,
        }

        // Replay the interleaved mix and hold the verdict to account.
        let cfg = resolved_set_config(&set, &env);
        let t0 = Instant::now();
        let run = simulate_tenants(&cfg, &tenant_streams(&set), &SimOptions::default())
            .expect("merged replay succeeds");
        let simulate_s = t0.elapsed().as_secs_f64();
        simulate_wall += simulate_s;

        let contained = cert.bounds.set.check_contains(&run.stats).is_none()
            && cert.bounds.tenants.iter().zip(&run.tenants).all(|(tb, m)| {
                tb.elapsed.contains(m.elapsed.get()) && tb.energy.contains(m.energy.get())
            });
        let confirmed = cert.verdict == mix.expect
            && contained
            && match cert.verdict {
                // No budgets are declared on the admitted mixes, so
                // containment *is* the admission promise here.
                Verdict::Admit | Verdict::Unknown => true,
                Verdict::Reject => mix.set_time_s.is_some_and(|b| run.stats.elapsed.get() > b),
            };
        if confirmed {
            correct += 1;
        }
        if cert.bounds.set.elapsed.hi > 0.0 {
            tightness_sum += run.stats.elapsed.get() / cert.bounds.set.elapsed.hi;
            tightness_n += 1;
        }

        table.push_row(vec![
            mix.name.to_string(),
            mix.tenants.len().to_string(),
            cert.verdict.to_string(),
            mix.expect.to_string(),
            if confirmed { "yes".into() } else { "NO".into() },
            format!("{:.2}", certify_s * 1e3),
            format!("{:.2}", simulate_s * 1e3),
        ]);
    }
    print!("{table}");

    let correctness = f64::from(correct) / all.len() as f64;
    let tightness = if tightness_n > 0 {
        tightness_sum / f64::from(tightness_n)
    } else {
        0.0
    };
    println!(
        "\nverdicts: {admitted} admitted, {rejected} rejected, {unknown} unknown \
         ({correct}/{} confirmed by interleaved replay)",
        all.len()
    );
    println!(
        "certify {:.1} ms total vs replay {:.1} ms total; mean set elapsed tightness {:.3}",
        certify_wall * 1e3,
        simulate_wall * 1e3,
        tightness
    );

    let mut summary = JsonSummary::new("tenant_mix");
    summary.metric("mixes", all.len() as f64);
    summary.metric("tenants_total", f64::from(tenants_total));
    summary.metric("admitted", f64::from(admitted));
    summary.metric("rejected", f64::from(rejected));
    summary.metric("unknown", f64::from(unknown));
    summary.metric("verdict_correctness", correctness);
    summary.metric("bound_tightness", tightness);
    summary.metric("certify_wall_s", certify_wall);
    summary.metric("simulate_wall_s", simulate_wall);
    summary.emit(&opts);

    assert!(
        (correctness - 1.0).abs() < f64::EPSILON,
        "tenant_mix: a verdict failed its simulation check"
    );
}
