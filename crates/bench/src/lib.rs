//! Shared helpers for the experiment harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index); this library provides
//! the common header/footer formatting so their outputs read uniformly,
//! plus the [`perf`] comparison gate behind the `meaperf` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;

use std::path::PathBuf;

use mealib_obs::json::Object;
use mealib_obs::Profile;

/// Command-line options shared by every harness binary.
///
/// * `--json`  — append a one-line machine-readable summary (the
///   `BENCH_*.json` record format) as the final stdout line;
/// * `--small` — run at reduced problem sizes (smoke-test mode);
/// * `--trace <path>` — write the instrumentation trace as JSONL to
///   `path` (binaries that support tracing document it in their help);
/// * `--profile <path>` — write a time-resolved profile of the run as
///   Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`);
/// * `--jobs <N>` — worker threads for the parallel sweep paths
///   (default 1 = serial; `0` = one per available core, the
///   workspace-wide [`mealib_types::auto_jobs`] convention). Modeled
///   results are identical for any `N`; only wall-clock time changes.
/// * `--prune` — let the static-bounds certifier skip provably-dominated
///   design points before the cycle-engine replay (harnesses that sweep
///   a design space honor it; the Pareto frontier is unchanged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessOpts {
    /// Emit the JSON summary line.
    pub json: bool,
    /// Reduced problem sizes.
    pub small: bool,
    /// JSONL trace destination, when requested.
    pub trace: Option<PathBuf>,
    /// Chrome trace-event profile destination, when requested.
    pub profile: Option<PathBuf>,
    /// Worker threads for parallel sweeps (1 = serial, 0 = auto:
    /// resolved to the available cores at parse time).
    pub jobs: usize,
    /// Prune dominated design points via the static-bounds certifier.
    pub prune: bool,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        Self {
            json: false,
            small: false,
            trace: None,
            profile: None,
            jobs: 1,
            prune: false,
        }
    }
}

impl HarnessOpts {
    /// Parses options from the process arguments. Unknown flags are
    /// ignored so harnesses stay forward-compatible.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses options from an explicit argument list.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = Self::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => opts.json = true,
                "--small" => opts.small = true,
                "--prune" => opts.prune = true,
                "--trace" => {
                    opts.trace = args.next().map(PathBuf::from);
                }
                "--profile" => {
                    opts.profile = args.next().map(PathBuf::from);
                }
                "--jobs" => {
                    // An unparseable or missing count falls back to
                    // serial rather than aborting the harness; an
                    // explicit 0 resolves to the machine's cores.
                    opts.jobs = mealib_types::auto_jobs(
                        args.next().and_then(|v| v.parse().ok()).unwrap_or(1),
                    );
                }
                _ => {}
            }
        }
        opts
    }
}

/// A `BENCH_*.json`-compatible summary record: one JSON object per
/// harness run, `{"bench": <name>, "metrics": {<key>: <number>, ...}}`.
#[derive(Debug, Clone)]
pub struct JsonSummary {
    name: String,
    metrics: Vec<(String, f64)>,
}

impl JsonSummary {
    /// Starts a summary for the named experiment.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            metrics: Vec::new(),
        }
    }

    /// Records one scalar metric.
    pub fn metric(&mut self, key: &str, value: f64) {
        self.metrics.push((key.to_string(), value));
    }

    /// Renders the record as a single JSON line.
    pub fn render(&self) -> String {
        let mut metrics = Object::new();
        for (k, v) in &self.metrics {
            metrics.num(k, *v);
        }
        let mut obj = Object::new();
        obj.str("bench", &self.name);
        obj.raw("metrics", metrics.render());
        obj.render()
    }

    /// Prints the record as the final stdout line when `opts.json` is
    /// set; otherwise does nothing.
    pub fn emit(&self, opts: &HarnessOpts) {
        if opts.json {
            println!("{}", self.render());
        }
    }
}

/// Writes `profile` to `opts.profile` (when `--profile <path>` was
/// passed) as Chrome trace-event JSON, after checking it round-trips
/// through [`mealib_obs::validate_chrome_trace`]. Prints one status
/// line on success.
///
/// # Panics
///
/// Panics if the emitted document fails its own round-trip check (a
/// harness bug, not an input problem) or the file cannot be written.
pub fn write_profile(opts: &HarnessOpts, profile: &Profile) {
    let Some(path) = &opts.profile else { return };
    let doc = profile.to_chrome_trace();
    let summary = mealib_obs::validate_chrome_trace(&doc).expect("emitted profile must round-trip");
    std::fs::write(path, &doc)
        .unwrap_or_else(|e| panic!("cannot write profile {}: {e}", path.display()));
    println!(
        "profile: wrote {} ({} spans, {} counter samples, {} tracks)",
        path.display(),
        summary.spans,
        summary.counters,
        summary.tracks
    );
}

/// Prints a harness banner naming the experiment being regenerated.
pub fn banner(experiment: &str, paper_claim: &str) {
    println!("==============================================================");
    println!("MEALib reproduction — {experiment}");
    println!("paper: {paper_claim}");
    println!("==============================================================");
}

/// Prints a section divider.
pub fn section(title: &str) {
    println!();
    println!("--- {title} ---");
}

/// Formats a gain the way the paper's figures label bars.
pub fn fmt_gain(x: f64) -> String {
    mealib_sim::report::ratio(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_formatting_delegates() {
        assert_eq!(fmt_gain(38.12), "38.1x");
    }

    #[test]
    fn opts_parse_flags_in_any_order() {
        let opts = HarnessOpts::parse(
            [
                "--small",
                "--trace",
                "/tmp/t.jsonl",
                "--profile",
                "/tmp/p.trace.json",
                "--jobs",
                "4",
                "--json",
                "--prune",
            ]
            .map(String::from),
        );
        assert!(opts.json && opts.small && opts.prune);
        assert!(!HarnessOpts::parse(Vec::new()).prune);
        assert_eq!(
            opts.trace.as_deref(),
            Some(std::path::Path::new("/tmp/t.jsonl"))
        );
        assert_eq!(
            opts.profile.as_deref(),
            Some(std::path::Path::new("/tmp/p.trace.json"))
        );
        assert_eq!(opts.jobs, 4);
        assert_eq!(HarnessOpts::parse(Vec::new()), HarnessOpts::default());
    }

    #[test]
    fn jobs_flag_defaults_to_serial_on_bad_input() {
        assert_eq!(HarnessOpts::parse(Vec::new()).jobs, 1);
        assert_eq!(
            HarnessOpts::parse(["--jobs", "zero"].map(String::from)).jobs,
            1
        );
        // An explicit 0 is the auto convention: one worker per core.
        assert_eq!(
            HarnessOpts::parse(["--jobs", "0"].map(String::from)).jobs,
            mealib_types::auto_jobs(0)
        );
        assert!(HarnessOpts::parse(["--jobs", "0"].map(String::from)).jobs >= 1);
        assert_eq!(HarnessOpts::parse(["--jobs"].map(String::from)).jobs, 1);
    }

    #[test]
    fn summary_renders_parseable_json() {
        let mut s = JsonSummary::new("fig09_performance");
        s.metric("avg_speedup", 38.125);
        s.metric("workloads", 7.0);
        let v = mealib_obs::json::parse(&s.render()).expect("valid JSON");
        let obj = v.as_object().expect("object");
        assert_eq!(obj["bench"].as_str(), Some("fig09_performance"));
        let metrics = obj["metrics"].as_object().expect("metrics object");
        assert_eq!(metrics["workloads"].as_f64(), Some(7.0));
        assert!((metrics["avg_speedup"].as_f64().unwrap() - 38.125).abs() < 1e-12);
    }
}
