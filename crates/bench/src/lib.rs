//! Shared helpers for the experiment harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index); this library provides
//! the common header/footer formatting so their outputs read uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints a harness banner naming the experiment being regenerated.
pub fn banner(experiment: &str, paper_claim: &str) {
    println!("==============================================================");
    println!("MEALib reproduction — {experiment}");
    println!("paper: {paper_claim}");
    println!("==============================================================");
}

/// Prints a section divider.
pub fn section(title: &str) {
    println!();
    println!("--- {title} ---");
}

/// Formats a gain the way the paper's figures label bars.
pub fn fmt_gain(x: f64) -> String {
    mealib_sim::report::ratio(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_formatting_delegates() {
        assert_eq!(fmt_gain(38.12), "38.1x");
    }
}
