//! The perf-trajectory gate behind the `meaperf` binary.
//!
//! [`compare`] diffs two schema-versioned `BENCH_*.json` summaries
//! (see [`mealib_obs::bench_schema`]) metric by metric and classifies
//! each delta against configurable thresholds. Modeled metrics gate
//! hard; wall-clock metrics (`*wall_s`, `speedup_wall`, per-record
//! `wall_s`) get their own, looser threshold and can be demoted to
//! report-only — the smoke container has one CPU, so wall time is noisy
//! in ways modeled time never is.
//!
//! Whether a drop or a rise is bad depends on the metric:
//! gains/speedups/bandwidth are better bigger, times/energy/EDP are
//! better smaller, and a metric the heuristic cannot place regresses on
//! *any* drift beyond the threshold (modeled outputs are deterministic,
//! so unexplained movement is a model change that needs a look).

use mealib_obs::bench_schema::{BenchRecord, BenchSummary};
use mealib_obs::json::{array, Object};

/// Which direction of movement improves a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger is better (speedups, gains, bandwidth, throughput).
    BiggerBetter,
    /// Smaller is better (times, energy, EDP, overheads).
    SmallerBetter,
    /// Unknown: any drift beyond the threshold is flagged.
    Unknown,
}

/// Classifies a metric key by name.
pub fn metric_direction(key: &str) -> Direction {
    let k = key.to_ascii_lowercase();
    const BIGGER: [&str; 9] = [
        "gain",
        "speedup",
        "bandwidth",
        "gbps",
        "gflops",
        "hit",
        "coverage",
        "throughput",
        "per_sec",
    ];
    const SMALLER: [&str; 6] = ["time", "edp", "energy", "wall", "overhead", "latency"];
    if BIGGER.iter().any(|m| k.contains(m)) {
        Direction::BiggerBetter
    } else if SMALLER.iter().any(|m| k.contains(m)) {
        Direction::SmallerBetter
    } else {
        Direction::Unknown
    }
}

/// Thresholds for [`compare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateOptions {
    /// Allowed worsening of a modeled metric, percent.
    pub metric_threshold_pct: f64,
    /// Allowed worsening of a wall-clock metric, percent.
    pub wall_threshold_pct: f64,
    /// When set, wall-clock regressions are reported but never fail
    /// the gate (the right setting for single-CPU smoke containers).
    pub wall_report_only: bool,
}

impl Default for GateOptions {
    fn default() -> Self {
        Self {
            metric_threshold_pct: 5.0,
            wall_threshold_pct: 20.0,
            wall_report_only: false,
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Harness the metric belongs to.
    pub bench: String,
    /// Metric key (`"wall_s"` for the per-record wall time).
    pub key: String,
    /// Value in the older summary.
    pub before: f64,
    /// Value in the newer summary.
    pub after: f64,
    /// Signed relative change in percent, `(after - before) / before`.
    pub delta_pct: f64,
    /// True for wall-clock metrics.
    pub wall: bool,
    /// True when the delta worsens the metric beyond its threshold.
    pub regressed: bool,
}

/// The result of one [`compare`] call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateReport {
    /// Every compared metric, document order.
    pub deltas: Vec<MetricDelta>,
    /// `bench.key` names present in only one of the two summaries
    /// (reported, never gated — schema evolution is expected).
    pub missing: Vec<String>,
}

impl GateReport {
    /// Deltas that worsened beyond their threshold, hard-gated or not.
    pub fn regressions(&self) -> impl Iterator<Item = &MetricDelta> {
        self.deltas.iter().filter(|d| d.regressed)
    }

    /// True when the gate should fail the build: at least one regressed
    /// metric that is not demoted to report-only.
    pub fn failed(&self, gate: &GateOptions) -> bool {
        self.regressions()
            .any(|d| !(d.wall && gate.wall_report_only))
    }

    /// Human-readable report, one line per finding plus a verdict.
    pub fn render(&self, gate: &GateOptions) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            if !d.regressed && d.delta_pct.abs() < 1e-9 {
                continue; // unchanged metrics stay quiet
            }
            let status = if !d.regressed {
                "ok  "
            } else if d.wall && gate.wall_report_only {
                "WARN"
            } else {
                "FAIL"
            };
            out.push_str(&format!(
                "{status} {:<46} {:>14.6} -> {:>14.6}  ({:+.2}%)\n",
                format!("{}.{}", d.bench, d.key),
                d.before,
                d.after,
                d.delta_pct
            ));
        }
        for m in &self.missing {
            out.push_str(&format!("note {m}: present in only one summary\n"));
        }
        let regressions = self.regressions().count();
        out.push_str(&format!(
            "{} metrics compared, {} regressed — {}\n",
            self.deltas.len(),
            regressions,
            if self.failed(gate) {
                "GATE FAILED"
            } else {
                "gate passed"
            }
        ));
        out
    }

    /// Machine-readable report.
    pub fn to_json(&self, gate: &GateOptions) -> String {
        let deltas: Vec<String> = self
            .deltas
            .iter()
            .map(|d| {
                let mut o = Object::new();
                o.str("bench", &d.bench);
                o.str("key", &d.key);
                o.num("before", d.before);
                o.num("after", d.after);
                o.num("delta_pct", d.delta_pct);
                o.bool("wall", d.wall);
                o.bool("regressed", d.regressed);
                o.render()
            })
            .collect();
        let missing: Vec<String> = self
            .missing
            .iter()
            .map(|m| format!("\"{}\"", mealib_obs::json::escape(m)))
            .collect();
        let mut o = Object::new();
        o.bool("failed", self.failed(gate));
        o.int("compared", self.deltas.len() as u64);
        o.int("regressed", self.regressions().count() as u64);
        o.raw("deltas", array(&deltas));
        o.raw("missing", array(&missing));
        o.render()
    }
}

fn classify(bench: &str, key: &str, before: f64, after: f64, gate: &GateOptions) -> MetricDelta {
    let wall = key == "wall_s" || BenchRecord::is_wall_metric(key);
    let delta_pct = if before != 0.0 {
        (after - before) / before * 100.0
    } else if after == 0.0 {
        0.0
    } else {
        f64::INFINITY
    };
    let threshold = if wall {
        gate.wall_threshold_pct
    } else {
        gate.metric_threshold_pct
    };
    // Name-based direction wins even for wall metrics: a measured
    // throughput (`*per_sec*`) or `speedup_wall` is better *bigger*
    // despite being wall-derived. Only direction-less wall metrics
    // default to smaller-is-better (they are elapsed times).
    let direction = match metric_direction(key) {
        Direction::Unknown if wall => Direction::SmallerBetter,
        d => d,
    };
    let regressed = match direction {
        Direction::BiggerBetter => delta_pct < -threshold,
        Direction::SmallerBetter => delta_pct > threshold,
        Direction::Unknown => delta_pct.abs() > threshold,
    };
    MetricDelta {
        bench: bench.to_string(),
        key: key.to_string(),
        before,
        after,
        delta_pct,
        wall,
        regressed,
    }
}

/// Compares `after` against the `before` baseline.
///
/// Metrics present in both summaries are classified; metrics (or whole
/// benches) present in only one side are listed in
/// [`GateReport::missing`]. Per-record `wall_s` fields are compared as a
/// wall metric under that key.
pub fn compare(before: &BenchSummary, after: &BenchSummary, gate: &GateOptions) -> GateReport {
    let mut report = GateReport::default();
    for b in &before.benches {
        let Some(a) = after.bench(&b.bench) else {
            report.missing.push(format!("{}.*", b.bench));
            continue;
        };
        for (key, old) in &b.metrics {
            match a.metric(key) {
                Some(new) => report.deltas.push(classify(&b.bench, key, *old, new, gate)),
                None => report.missing.push(format!("{}.{key}", b.bench)),
            }
        }
        for (key, _) in &a.metrics {
            if b.metric(key).is_none() {
                report.missing.push(format!("{}.{key}", b.bench));
            }
        }
        if let (Some(old), Some(new)) = (b.wall_s, a.wall_s) {
            report
                .deltas
                .push(classify(&b.bench, "wall_s", old, new, gate));
        }
    }
    for a in &after.benches {
        if before.bench(&a.bench).is_none() {
            report.missing.push(format!("{}.*", a.bench));
        }
    }
    report
}

/// An absolute floor on one metric of a summary: `bench.key >= min`.
///
/// Floors complement the relative trajectory gate: a wall-derived
/// throughput can be demoted to report-only for *drift* while still
/// hard-failing when it falls below a required multiple (e.g. the fast
/// engine must stay >= 5x the cycle engine's burst rate).
#[derive(Debug, Clone, PartialEq)]
pub struct MinRule {
    /// Harness the metric belongs to.
    pub bench: String,
    /// Metric key within the harness record.
    pub key: String,
    /// Inclusive lower bound the metric must meet.
    pub min: f64,
}

impl MinRule {
    /// Parses `bench.key=N` (as accepted by `meaperf --min`).
    pub fn parse(spec: &str) -> Option<Self> {
        let (name, min) = spec.split_once('=')?;
        let (bench, key) = name.split_once('.')?;
        if bench.is_empty() || key.is_empty() {
            return None;
        }
        Some(Self {
            bench: bench.to_string(),
            key: key.to_string(),
            min: min.trim().parse().ok()?,
        })
    }
}

/// Checks `rules` against `summary`, returning one violation message
/// per rule that fails. A missing bench or metric is a violation — an
/// absent number must not silently pass a floor.
pub fn check_minimums(summary: &BenchSummary, rules: &[MinRule]) -> Vec<String> {
    let mut out = Vec::new();
    for r in rules {
        match summary.bench(&r.bench).and_then(|b| b.metric(&r.key)) {
            Some(v) if v >= r.min => {}
            Some(v) => out.push(format!(
                "MIN  {}.{} = {v:.6} < required {:.6}",
                r.bench, r.key, r.min
            )),
            None => out.push(format!(
                "MIN  {}.{} missing (required >= {:.6})",
                r.bench, r.key, r.min
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(pairs: &[(&str, &[(&str, f64)])]) -> BenchSummary {
        let mut s = BenchSummary::new("test");
        for (bench, metrics) in pairs {
            s.benches.push(BenchRecord {
                bench: bench.to_string(),
                metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
                wall_s: None,
            });
        }
        s
    }

    #[test]
    fn direction_heuristics_cover_the_repo_metrics() {
        assert_eq!(metric_direction("avg_speedup"), Direction::BiggerBetter);
        assert_eq!(metric_direction("ee_gain"), Direction::BiggerBetter);
        assert_eq!(
            metric_direction("best_bandwidth_gbps"),
            Direction::BiggerBetter
        );
        assert_eq!(metric_direction("total_time_s"), Direction::SmallerBetter);
        assert_eq!(metric_direction("edp_gain"), Direction::BiggerBetter);
        assert_eq!(
            metric_direction("invocation_overhead"),
            Direction::SmallerBetter
        );
        assert_eq!(metric_direction("workloads"), Direction::Unknown);
    }

    #[test]
    fn bandwidth_drop_beyond_threshold_fails_the_gate() {
        let before = summary(&[("fig09", &[("speedup_fft", 38.0)])]);
        let after = summary(&[("fig09", &[("speedup_fft", 34.0)])]); // -10.5%
        let gate = GateOptions::default();
        let report = compare(&before, &after, &gate);
        assert_eq!(report.regressions().count(), 1);
        assert!(report.failed(&gate));
        // The same drop within a 15% threshold passes.
        let loose = GateOptions {
            metric_threshold_pct: 15.0,
            ..gate
        };
        assert!(!compare(&before, &after, &loose).failed(&loose));
    }

    #[test]
    fn improvements_never_fail() {
        let before = summary(&[("b", &[("speedup", 10.0), ("total_time_s", 4.0)])]);
        let after = summary(&[("b", &[("speedup", 20.0), ("total_time_s", 2.0)])]);
        let gate = GateOptions::default();
        assert!(!compare(&before, &after, &gate).failed(&gate));
    }

    #[test]
    fn wall_metrics_use_their_own_threshold_and_can_be_report_only() {
        let before = summary(&[("b", &[("jobs1_wall_s", 1.0)])]);
        let after = summary(&[("b", &[("jobs1_wall_s", 1.5)])]); // +50%
        let gate = GateOptions::default();
        let report = compare(&before, &after, &gate);
        assert!(report.failed(&gate), "50% wall regression over 20% gate");
        let demoted = GateOptions {
            wall_report_only: true,
            ..gate
        };
        assert!(!report.failed(&demoted));
        assert_eq!(report.regressions().count(), 1, "still reported");
    }

    #[test]
    fn missing_metrics_are_noted_not_gated() {
        let before = summary(&[("a", &[("speedup", 1.0)]), ("gone", &[("x", 1.0)])]);
        let after = summary(&[("a", &[("renamed_speedup", 1.0)])]);
        let gate = GateOptions::default();
        let report = compare(&before, &after, &gate);
        assert!(!report.failed(&gate));
        assert_eq!(report.deltas.len(), 0);
        assert!(report.missing.contains(&"a.speedup".to_string()));
        assert!(report.missing.contains(&"a.renamed_speedup".to_string()));
        assert!(report.missing.contains(&"gone.*".to_string()));
    }

    #[test]
    fn per_record_wall_times_compare_as_wall() {
        let mut before = summary(&[("b", &[("speedup", 1.0)])]);
        before.benches[0].wall_s = Some(1.0);
        let mut after = summary(&[("b", &[("speedup", 1.0)])]);
        after.benches[0].wall_s = Some(1.1); // +10% < 20% wall threshold
        let gate = GateOptions::default();
        let report = compare(&before, &after, &gate);
        assert_eq!(report.deltas.len(), 2);
        assert!(!report.failed(&gate));
        let wall = report.deltas.iter().find(|d| d.key == "wall_s").unwrap();
        assert!(wall.wall && !wall.regressed);
    }

    #[test]
    fn unknown_metrics_gate_on_any_drift() {
        let before = summary(&[("b", &[("workloads", 7.0)])]);
        let after = summary(&[("b", &[("workloads", 6.0)])]); // -14%
        let gate = GateOptions::default();
        assert!(compare(&before, &after, &gate).failed(&gate));
    }

    #[test]
    fn wall_derived_throughput_gates_on_drops_not_rises() {
        // bursts_per_sec_per_core is wall-derived (loose threshold,
        // demotable) but bigger-is-better: a rise must never regress.
        let before = summary(&[("engine", &[("fast_bursts_per_sec_per_core", 1.0e6)])]);
        let faster = summary(&[("engine", &[("fast_bursts_per_sec_per_core", 2.0e6)])]);
        let slower = summary(&[("engine", &[("fast_bursts_per_sec_per_core", 0.5e6)])]);
        let gate = GateOptions::default();
        assert!(!compare(&before, &faster, &gate).failed(&gate));
        let report = compare(&before, &slower, &gate);
        assert!(report.failed(&gate), "-50% throughput over 20% wall gate");
        let d = &report.deltas[0];
        assert!(d.wall, "throughput is wall-derived");
        let demoted = GateOptions {
            wall_report_only: true,
            ..gate
        };
        assert!(!report.failed(&demoted), "and therefore demotable");
        // speedup_wall keeps its bigger-is-better name direction too.
        let before = summary(&[("b", &[("speedup_wall", 2.0)])]);
        let after = summary(&[("b", &[("speedup_wall", 4.0)])]);
        assert!(!compare(&before, &after, &gate).failed(&gate));
    }

    #[test]
    fn min_rules_parse_and_floor_the_newer_summary() {
        let r = MinRule::parse("engine.fast_over_cycle=5").expect("valid spec");
        assert_eq!(
            r,
            MinRule {
                bench: "engine".into(),
                key: "fast_over_cycle".into(),
                min: 5.0
            }
        );
        assert!(MinRule::parse("no-equals").is_none());
        assert!(MinRule::parse("nodot=5").is_none());
        assert!(MinRule::parse("a.b=notanumber").is_none());

        let s = summary(&[("engine", &[("fast_over_cycle", 7.5)])]);
        assert!(check_minimums(&s, std::slice::from_ref(&r)).is_empty());
        let low = summary(&[("engine", &[("fast_over_cycle", 3.0)])]);
        let violations = check_minimums(&low, std::slice::from_ref(&r));
        assert_eq!(violations.len(), 1);
        assert!(
            violations[0].contains("engine.fast_over_cycle"),
            "{violations:?}"
        );
        // A missing metric is a violation, not a silent pass.
        let missing = summary(&[("other", &[("x", 1.0)])]);
        assert_eq!(check_minimums(&missing, &[r]).len(), 1);
    }

    #[test]
    fn report_renders_and_json_parses() {
        let before = summary(&[("b", &[("speedup", 10.0), ("stable", 1.0)])]);
        let after = summary(&[("b", &[("speedup", 5.0), ("stable", 1.0)])]);
        let gate = GateOptions::default();
        let report = compare(&before, &after, &gate);
        let text = report.render(&gate);
        assert!(text.contains("FAIL"), "{text}");
        assert!(text.contains("GATE FAILED"), "{text}");
        let v = mealib_obs::json::parse(&report.to_json(&gate)).expect("valid JSON");
        assert_eq!(v.get("failed"), Some(&mealib_obs::json::Value::Bool(true)));
        assert_eq!(v.get("regressed").and_then(|x| x.as_f64()), Some(1.0));
    }
}
