//! Pass 1: library-call identification (§3.4).
//!
//! Walks the translation unit in order, recognizing the MKL/FFTW entry
//! points of Table 1, resolving the buffers behind their pointer
//! arguments, fusing chainable neighbours into one `PASS`, and compacting
//! loop nests of calls into `LOOP` blocks. The result is a set of
//! [`GeneratedTdl`] descriptors plus the bookkeeping Pass 2 needs to
//! rewrite the source.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use mealib_tdl::{AcceleratorKind, CompBlock, LoopBlock, PassBlock, TdlItem, TdlProgram};
use mealib_verify::{fusion_legal, AliasOracle, FusionStage};

use crate::ast::{Decl, Expr, ForInit, Stmt, TranslationUnit};
use crate::{CompileStats, GeneratedTdl};

/// A recognized library entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LibApi {
    /// `cblas_saxpy(n, alpha, x, incx, y, incy)`
    Saxpy,
    /// `cblas_sdot(n, x, incx, y, incy)`
    Sdot,
    /// `cblas_cdotc_sub(n, x, incx, y, incy, result)`
    CdotcSub,
    /// `cblas_sgemv(order, trans, m, n, alpha, a, lda, x, incx, beta, y, incy)`
    Sgemv,
    /// `mkl_scsrgemv(transa, m, a, ia, ja, x, y)`
    ScsrGemv,
    /// `dfsInterpolate1D(in, n_in, out, n_out)` (simplified data-fitting API)
    Interpolate1d,
    /// `mkl_simatcopy(ordering, trans, rows, cols, alpha, ab, lda, ldb)`
    Simatcopy,
    /// `fftwf_plan_guru_dft(rank, dims, hm_rank, hm_dims, in, out, sign, flags)`
    PlanGuruDft,
    /// `fftwf_execute(plan)`
    FftwExecute,
    /// `cblas_cherk(...)` — compute-bounded, stays on the host.
    Cherk,
    /// `cblas_ctrsm(...)` — compute-bounded, stays on the host.
    Ctrsm,
}

impl LibApi {
    /// Maps a callee name to its API, if known.
    pub fn classify(callee: &str) -> Option<LibApi> {
        Some(match callee {
            "cblas_saxpy" => LibApi::Saxpy,
            "cblas_sdot" => LibApi::Sdot,
            "cblas_cdotc_sub" => LibApi::CdotcSub,
            "cblas_sgemv" => LibApi::Sgemv,
            "mkl_scsrgemv" => LibApi::ScsrGemv,
            "dfsInterpolate1D" => LibApi::Interpolate1d,
            "mkl_simatcopy" => LibApi::Simatcopy,
            "fftwf_plan_guru_dft" => LibApi::PlanGuruDft,
            "fftwf_execute" => LibApi::FftwExecute,
            "cblas_cherk" => LibApi::Cherk,
            "cblas_ctrsm" => LibApi::Ctrsm,
            _ => return None,
        })
    }

    /// The accelerator serving this API directly (`None` for
    /// compute-bounded APIs and the plan/execute indirection).
    pub fn accelerator(self) -> Option<AcceleratorKind> {
        Some(match self {
            LibApi::Saxpy => AcceleratorKind::Axpy,
            LibApi::Sdot | LibApi::CdotcSub => AcceleratorKind::Dot,
            LibApi::Sgemv => AcceleratorKind::Gemv,
            LibApi::ScsrGemv => AcceleratorKind::Spmv,
            LibApi::Interpolate1d => AcceleratorKind::Resmp,
            LibApi::Simatcopy => AcceleratorKind::Reshp,
            LibApi::PlanGuruDft | LibApi::FftwExecute | LibApi::Cherk | LibApi::Ctrsm => {
                return None
            }
        })
    }

    /// Argument positions of the (input, output) buffers for directly
    /// accelerable APIs.
    fn buffer_positions(self) -> Option<(usize, usize)> {
        Some(match self {
            LibApi::Saxpy => (2, 4),
            LibApi::Sdot => (1, 3),
            LibApi::CdotcSub => (1, 5),
            LibApi::Sgemv => (5, 10),
            LibApi::ScsrGemv => (2, 6),
            LibApi::Interpolate1d => (0, 2),
            LibApi::Simatcopy => (5, 5),
            _ => return None,
        })
    }

    /// Representative Table-2-scale parameters for this API's
    /// accelerator, used by the placement model to compute the kernel's
    /// arithmetic intensity. `None` for APIs with no accelerator.
    fn reference_params(self) -> Option<mealib_accel::AccelParams> {
        use mealib_accel::AccelParams;
        Some(match self.accelerator()? {
            AcceleratorKind::Axpy => AccelParams::Axpy {
                n: 1 << 26,
                alpha: 2.0,
                incx: 1,
                incy: 1,
            },
            AcceleratorKind::Dot => AccelParams::Dot {
                n: 1 << 26,
                incx: 1,
                incy: 1,
                complex: matches!(self, LibApi::CdotcSub),
            },
            AcceleratorKind::Gemv => AccelParams::Gemv { m: 8192, n: 8192 },
            AcceleratorKind::Spmv => AccelParams::Spmv {
                rows: 1 << 20,
                cols: 1 << 20,
                nnz: 13 << 20,
            },
            AcceleratorKind::Resmp => AccelParams::Resmp {
                blocks: 4096,
                in_per_block: 4096,
                out_per_block: 4096,
            },
            AcceleratorKind::Fft => AccelParams::Fft {
                n: 8192,
                batch: 8192,
            },
            AcceleratorKind::Reshp => AccelParams::Reshp {
                rows: 16384,
                cols: 16384,
                elem_bytes: 4,
            },
        })
    }

    /// Bounds-driven placement decision: compares the kernel's
    /// arithmetic intensity (FLOPs per byte, from the accelerator
    /// model's closed forms) against the ridge point of `host`'s
    /// roofline. A kernel below the ridge is bandwidth-starved on the
    /// host, so near-memory placement wins; a kernel at or above it is
    /// compute-bound and stays on the host cores — as do APIs with no
    /// accelerator at all.
    pub fn placement(self, host: &mealib_host::Platform) -> Placement {
        let (Some(kind), Some(params)) = (self.accelerator(), self.reference_params()) else {
            return Placement::Host;
        };
        let model = mealib_accel::AccelModel::new(kind);
        let hw = mealib_accel::AccelHwConfig::mealib_default();
        let bytes = model.access_pattern(&params, &hw).useful_bytes();
        let flops = model.flops(&params);
        // Pure data movement (RESHP) has zero intensity: always below
        // any ridge, always worth placing next to the memory.
        let intensity = flops as f64 / bytes.max(1) as f64;
        let ridge = host.peak_flops() / host.peak_bandwidth().get();
        if intensity < ridge {
            Placement::Accelerator
        } else {
            Placement::Host
        }
    }

    /// *All* pointer-argument positions (every buffer the accelerator
    /// touches must live in MEALib-managed contiguous memory, not just
    /// the pass input/output).
    fn buffer_args(self) -> &'static [usize] {
        match self {
            LibApi::Saxpy => &[2, 4],
            LibApi::Sdot => &[1, 3],
            LibApi::CdotcSub => &[1, 3, 5],
            LibApi::Sgemv => &[5, 7, 10],
            LibApi::ScsrGemv => &[2, 3, 4, 5, 6],
            LibApi::Interpolate1d => &[0, 2],
            LibApi::Simatcopy => &[5],
            LibApi::PlanGuruDft => &[4, 5],
            LibApi::FftwExecute | LibApi::Cherk | LibApi::Ctrsm => &[],
        }
    }
}

/// Where a recognized library call should execute, as decided by
/// [`LibApi::placement`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Offload to the in-stack accelerator layer.
    Accelerator,
    /// Keep on the host cores (compute-bound, or no accelerator).
    Host,
}

/// A semantic error the compiler cannot recover from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// `fftwf_execute` of a plan that was never created.
    UnknownPlan {
        /// The plan variable.
        name: String,
    },
    /// A buffer argument of an accelerable call is not a simple
    /// identifier-rooted expression.
    OpaqueBuffer {
        /// The call this happened in.
        callee: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnknownPlan { name } => {
                write!(f, "fftwf_execute of unknown plan `{name}`")
            }
            AnalysisError::OpaqueBuffer { callee } => {
                write!(f, "cannot resolve a buffer argument of `{callee}`")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// One descriptor-replacement site in the original source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Top-level statement index where the runtime calls are emitted.
    pub anchor: usize,
    /// All top-level statement indices this descriptor replaces.
    pub consumed: BTreeSet<usize>,
    /// Name of the generated plan variable.
    pub plan_name: String,
    /// Input buffer of the first pass.
    pub input: String,
    /// Output buffer of the last pass.
    pub output: String,
}

/// Everything Pass 2 and the code generator need.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformPlan {
    /// Generated descriptors, in source order.
    pub tdl: Vec<GeneratedTdl>,
    /// Replacement sites.
    pub segments: Vec<Segment>,
    /// Buffers that must live in MEALib-managed contiguous memory.
    pub accel_buffers: BTreeSet<String>,
    /// Explicit stack placements from `#pragma mealib stack(N)`
    /// annotations on allocation statements (buffer → stack id).
    pub placements: BTreeMap<String, usize>,
    /// Statistics.
    pub stats: CompileStats,
}

/// Parses a `mealib stack(N)` pragma body, returning `N`.
fn placement_pragma(text: &str) -> Option<usize> {
    let rest = text.strip_prefix("mealib")?.trim();
    let inner = rest.strip_prefix("stack(")?.strip_suffix(')')?;
    inner.trim().parse().ok()
}

/// One accelerable invocation discovered in source order.
#[derive(Debug, Clone)]
struct Event {
    accel: AcceleratorKind,
    input: String,
    output: String,
    /// Rendered non-pointer arguments (the parameter-file payload).
    param_args: Vec<String>,
    /// Dynamic repetitions (loop-nest trip-count product).
    loop_count: u64,
    /// Top-level statements this event consumes.
    consumed: BTreeSet<usize>,
    /// Every buffer the call touches (for allocation rewriting).
    buffers: Vec<String>,
}

/// The fusion-legality view of one event: streamed input/output plus
/// every buffer argument the call touches.
fn fusion_stage(e: &Event) -> FusionStage {
    FusionStage::new(e.input.clone(), e.output.clone(), e.buffers.clone())
}

/// The already-fused chain, as stages, for `fusion_legal`.
fn fusion_stages(group: &[Event]) -> Vec<FusionStage> {
    group.iter().map(fusion_stage).collect()
}

#[derive(Debug, Clone)]
struct PlanInfo {
    kind: AcceleratorKind,
    input: String,
    output: String,
    param_args: Vec<String>,
    creation_stmt: usize,
}

/// Runs Pass 1 over a translation unit.
///
/// # Errors
///
/// Returns an [`AnalysisError`] for unresolvable plans or buffers.
pub fn analyze(unit: &TranslationUnit) -> Result<TransformPlan, AnalysisError> {
    let mut consts: BTreeMap<String, i64> = BTreeMap::new();
    let mut plans: BTreeMap<String, PlanInfo> = BTreeMap::new();
    let mut accel_buffers: BTreeSet<String> = BTreeSet::new();
    let mut placements: BTreeMap<String, usize> = BTreeMap::new();
    let mut events: Vec<Event> = Vec::new();

    for (idx, stmt) in unit.stmts.iter().enumerate() {
        // `#pragma mealib stack(N)` attached (as a comment block) to an
        // allocation assignment pins the buffer to memory stack N.
        if let Stmt::Block(parts) = stmt {
            if let [Stmt::Comment(text), Stmt::Expr(e)] = parts.as_slice() {
                if let (Some(stack), Some(target)) = (
                    text.strip_prefix("#pragma ").and_then(placement_pragma),
                    e.assign_target(),
                ) {
                    placements.insert(target.to_string(), stack);
                }
            }
        }
        match stmt {
            Stmt::Decl(Decl {
                name,
                init: Some(Expr::Int(v)),
                ..
            }) => {
                consts.insert(name.clone(), *v);
            }
            Stmt::Decl(Decl {
                name,
                init: Some(init),
                ..
            }) => {
                scan_assignment(name, init, idx, &mut plans, &mut events, &consts)?;
            }
            Stmt::Expr(e) => {
                if let (Some(target), Some(_)) = (e.assign_target(), e.as_call()) {
                    if let Expr::Assign { rhs, .. } = e {
                        scan_assignment(target, rhs, idx, &mut plans, &mut events, &consts)?;
                    }
                } else if let Expr::Call { callee, args } = e {
                    scan_call(callee, args, idx, 1, &plans, &mut events)?;
                }
            }
            // A pragma-annotated allocation parses as a comment+expr block.
            Stmt::Block(parts) => {
                if let [Stmt::Comment(_), Stmt::Expr(e)] = parts.as_slice() {
                    if let (Some(target), Some(_)) = (e.assign_target(), e.as_call()) {
                        if let Expr::Assign { rhs, .. } = e {
                            scan_assignment(target, rhs, idx, &mut plans, &mut events, &consts)?;
                        }
                    }
                }
            }
            Stmt::For { .. } => {
                if let Some((count, Expr::Call { callee, args })) = single_call_loop(stmt, &consts)
                {
                    scan_call(callee, args, idx, count, &plans, &mut events)?;
                }
            }
            _ => {}
        }
    }

    // Record every buffer any event touches.
    for e in &events {
        accel_buffers.insert(e.input.clone());
        accel_buffers.insert(e.output.clone());
        accel_buffers.extend(e.buffers.iter().cloned());
    }

    // Group events into descriptors: a loop event stands alone; adjacent
    // single events chain when the dataflow connects AND the fusion is
    // memory-sound — a name-matching pair like `saxpy(x,y); sgemv(A,y,x)`
    // streams y but clobbers x, which the first stage still reads, so the
    // alias oracle must approve every extension.
    let oracle = AliasOracle::new();
    let mut groups: Vec<Vec<Event>> = Vec::new();
    for event in events {
        let next_stage = fusion_stage(&event);
        let chainable = event.loop_count == 1
            && groups.last().is_some_and(|g| {
                !g.is_empty()
                    && g[0].loop_count == 1
                    && g.last().expect("nonempty group").output == event.input
                    && fusion_legal(&fusion_stages(g), &next_stage, &oracle)
            });
        if chainable {
            groups.last_mut().expect("checked above").push(event);
        } else {
            groups.push(vec![event]);
        }
    }

    let mut stats = CompileStats::default();
    let mut tdl = Vec::new();
    let mut segments = Vec::new();
    for (gi, group) in groups.iter().enumerate() {
        let plan_name = format!("plan_{gi}");
        let mut param_files = Vec::new();
        let comps: Vec<CompBlock> = group
            .iter()
            .enumerate()
            .map(|(ci, e)| {
                let file = format!("{}_{gi}_{ci}.para", e.accel.keyword().to_lowercase());
                param_files.push((file.clone(), e.param_args.clone()));
                CompBlock::new(e.accel, file)
            })
            .collect();
        let input = group[0].input.clone();
        let output = group.last().expect("nonempty group").output.clone();
        let loop_count = group[0].loop_count;
        let pass = PassBlock::new(input.clone(), output.clone(), comps);
        let program = if loop_count > 1 {
            TdlProgram::new(vec![TdlItem::Loop(LoopBlock::new(loop_count, vec![pass]))])
        } else {
            TdlProgram::new(vec![TdlItem::Pass(pass)])
        };
        let calls = group.len() as u64 * loop_count;
        stats.accelerable_calls += group.len() as u64;
        stats.dynamic_calls += calls;
        stats.descriptors += 1;
        if group.len() > 1 {
            stats.chained_calls += group.len() as u64;
        }
        let consumed: BTreeSet<usize> = group
            .iter()
            .flat_map(|e| e.consumed.iter().copied())
            .collect();
        let anchor = *consumed.iter().max().expect("events consume statements");
        tdl.push(GeneratedTdl {
            plan_name: plan_name.clone(),
            text: program.to_string(),
            calls_compacted: calls,
            params: param_files
                .into_iter()
                .map(|(file, args)| crate::ParamFile { file, args })
                .collect(),
        });
        segments.push(Segment {
            anchor,
            consumed,
            plan_name,
            input,
            output,
        });
    }

    stats.allocations_rewritten = accel_buffers.len() as u64;
    Ok(TransformPlan {
        tdl,
        segments,
        accel_buffers,
        placements,
        stats,
    })
}

fn scan_assignment(
    target: &str,
    rhs: &Expr,
    idx: usize,
    plans: &mut BTreeMap<String, PlanInfo>,
    events: &mut Vec<Event>,
    _consts: &BTreeMap<String, i64>,
) -> Result<(), AnalysisError> {
    let Some((callee, args)) = rhs.as_call() else {
        return Ok(());
    };
    if LibApi::classify(callee) == Some(LibApi::PlanGuruDft) {
        let kind = match args.first() {
            Some(Expr::Int(0)) => AcceleratorKind::Reshp,
            _ => AcceleratorKind::Fft,
        };
        let input = buffer_arg(args, 4, callee)?;
        let output = buffer_arg(args, 5, callee)?;
        let param_args = args
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 4 && *i != 5)
            .map(|(_, a)| a.to_string())
            .collect();
        plans.insert(
            target.to_string(),
            PlanInfo {
                kind,
                input,
                output,
                param_args,
                creation_stmt: idx,
            },
        );
    } else {
        // An assignment whose RHS is a direct accelerable call (e.g.
        // `r = cblas_sdot(...)`).
        scan_call(callee, args, idx, 1, plans, events)?;
    }
    Ok(())
}

fn scan_call(
    callee: &str,
    args: &[Expr],
    idx: usize,
    loop_count: u64,
    plans: &BTreeMap<String, PlanInfo>,
    events: &mut Vec<Event>,
) -> Result<(), AnalysisError> {
    let Some(api) = LibApi::classify(callee) else {
        return Ok(());
    };
    if api == LibApi::FftwExecute {
        let name =
            args.first()
                .and_then(Expr::base_ident)
                .ok_or_else(|| AnalysisError::OpaqueBuffer {
                    callee: callee.to_string(),
                })?;
        let info = plans.get(name).ok_or_else(|| AnalysisError::UnknownPlan {
            name: name.to_string(),
        })?;
        let mut consumed = BTreeSet::from([idx, info.creation_stmt]);
        consumed.insert(idx);
        events.push(Event {
            accel: info.kind,
            input: info.input.clone(),
            output: info.output.clone(),
            param_args: info.param_args.clone(),
            loop_count,
            consumed,
            buffers: vec![info.input.clone(), info.output.clone()],
        });
        return Ok(());
    }
    let Some(kind) = api.accelerator() else {
        return Ok(()); // no accelerator: stays on the host
    };
    if api.placement(&mealib_host::Platform::haswell()) == Placement::Host {
        return Ok(()); // compute-bounded on the host roofline
    }
    let (in_pos, out_pos) = api
        .buffer_positions()
        .expect("accelerable APIs have positions");
    let buffer_positions = api.buffer_args();
    let input = buffer_arg(args, in_pos, callee)?;
    let output = buffer_arg(args, out_pos, callee)?;
    let buffers = buffer_positions
        .iter()
        .filter_map(|&p| args.get(p).and_then(Expr::base_ident).map(str::to_string))
        .collect();
    let param_args = args
        .iter()
        .enumerate()
        .filter(|(i, _)| !buffer_positions.contains(i))
        .map(|(_, a)| a.to_string())
        .collect();
    events.push(Event {
        accel: kind,
        input,
        output,
        param_args,
        loop_count,
        consumed: BTreeSet::from([idx]),
        buffers,
    });
    Ok(())
}

fn buffer_arg(args: &[Expr], pos: usize, callee: &str) -> Result<String, AnalysisError> {
    args.get(pos)
        .and_then(Expr::base_ident)
        .map(str::to_string)
        .ok_or_else(|| AnalysisError::OpaqueBuffer {
            callee: callee.to_string(),
        })
}

/// If `stmt` is a perfect loop nest whose innermost body is exactly one
/// accelerable-looking call, returns the trip-count product and the call.
fn single_call_loop<'a>(stmt: &'a Stmt, consts: &BTreeMap<String, i64>) -> Option<(u64, &'a Expr)> {
    match stmt {
        Stmt::For {
            init,
            cond,
            step: _,
            body,
            ..
        } => {
            let trip = trip_count(init, cond, consts)?;
            let inner = single_stmt(body)?;
            match inner {
                Stmt::For { .. } => {
                    let (rest, call) = single_call_loop(inner, consts)?;
                    Some((trip * rest, call))
                }
                Stmt::Expr(e @ Expr::Call { callee, .. })
                    if LibApi::classify(callee)
                        .and_then(LibApi::accelerator)
                        .is_some() =>
                {
                    Some((trip, e))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Unwraps single-statement blocks.
fn single_stmt(stmt: &Stmt) -> Option<&Stmt> {
    match stmt {
        Stmt::Block(stmts) if stmts.len() == 1 => single_stmt(&stmts[0]),
        Stmt::Block(_) => None,
        other => Some(other),
    }
}

/// Trip count of `for (i = lo; i < hi; ++i)` with constant or
/// symbol-table-resolved bounds.
fn trip_count(init: &ForInit, cond: &Expr, consts: &BTreeMap<String, i64>) -> Option<u64> {
    let lo = match init {
        ForInit::Expr(Expr::Assign { rhs, .. }) => const_eval(rhs, consts)?,
        ForInit::Decl(Decl { init: Some(e), .. }) => const_eval(e, consts)?,
        _ => return None,
    };
    let (op_le, hi) = match cond {
        Expr::Binary {
            op: crate::ast::BinOp::Lt,
            rhs,
            ..
        } => (false, const_eval(rhs, consts)?),
        Expr::Binary {
            op: crate::ast::BinOp::Le,
            rhs,
            ..
        } => (true, const_eval(rhs, consts)?),
        _ => return None,
    };
    let count = hi - lo + i64::from(op_le);
    (count > 0).then_some(count as u64)
}

fn const_eval(e: &Expr, consts: &BTreeMap<String, i64>) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        Expr::Ident(name) => consts.get(name).copied(),
        Expr::Binary { op, lhs, rhs } => {
            let l = const_eval(lhs, consts)?;
            let r = const_eval(rhs, consts)?;
            match op {
                crate::ast::BinOp::Add => Some(l + r),
                crate::ast::BinOp::Sub => Some(l - r),
                crate::ast::BinOp::Mul => Some(l * r),
                crate::ast::BinOp::Div => (r != 0).then(|| l / r),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parser::parse;

    fn analyze_src(src: &str) -> TransformPlan {
        analyze(&parse(tokenize(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn recognizes_direct_blas_call() {
        let plan = analyze_src("cblas_saxpy(1024, 2.0, x, 1, y, 1);");
        assert_eq!(plan.stats.accelerable_calls, 1);
        assert_eq!(plan.stats.descriptors, 1);
        assert!(plan.tdl[0].text.contains("COMP AXPY"));
        assert!(plan.tdl[0].text.contains("in=x out=y"));
        assert_eq!(plan.accel_buffers, BTreeSet::from(["x".into(), "y".into()]));
        // Non-buffer args land in the parameter file.
        assert_eq!(plan.tdl[0].params[0].args, vec!["1024", "2.0", "1", "1"]);
    }

    #[test]
    fn fftw_plan_execute_resolves_through_plan_variable() {
        let plan = analyze_src(
            "plan_fft = fftwf_plan_guru_dft(1, dims, 2, hm, datacube, doppler, FFTW_FORWARD, FLAGS);\n\
             fftwf_execute(plan_fft);",
        );
        assert_eq!(plan.stats.descriptors, 1);
        assert!(plan.tdl[0].text.contains("COMP FFT"));
        assert!(plan.tdl[0].text.contains("in=datacube out=doppler"));
        // Both the execute and the plan creation are consumed.
        assert_eq!(plan.segments[0].consumed.len(), 2);
    }

    #[test]
    fn rank0_guru_plan_is_a_reshape() {
        let plan = analyze_src(
            "plan_ct = fftwf_plan_guru_dft(0, NULL, 3, hm, a, b, FWD, FLAGS);\n\
             fftwf_execute(plan_ct);",
        );
        assert!(plan.tdl[0].text.contains("COMP RESHP"));
    }

    #[test]
    fn chains_reshape_into_fft() {
        // Listing 1's copy + FFT pair fuses into one PASS.
        let plan = analyze_src(
            "plan_ct = fftwf_plan_guru_dft(0, NULL, 3, hm1, datacube, padded, FWD, FLAGS);\n\
             plan_fft = fftwf_plan_guru_dft(1, dims, 2, hm2, padded, doppler, FWD, FLAGS);\n\
             fftwf_execute(plan_ct);\n\
             fftwf_execute(plan_fft);",
        );
        assert_eq!(plan.stats.descriptors, 1, "chained into one descriptor");
        assert_eq!(plan.stats.chained_calls, 2);
        let text = &plan.tdl[0].text;
        assert!(text.contains("COMP RESHP"));
        assert!(text.contains("COMP FFT"));
        assert!(text.contains("in=datacube out=doppler"));
    }

    #[test]
    fn buffer_reusing_pair_is_not_fused() {
        // saxpy(x, y); saxpy(y, x): the outputs connect by name, but the
        // second call stores to x while the fused datapath still reads
        // it — fusing would change what the call sequence leaves in
        // memory, so these must stay two descriptors.
        let plan = analyze_src(
            "cblas_saxpy(1024, 2.0, x, 1, y, 1);\n\
             cblas_saxpy(1024, 2.0, y, 1, x, 1);",
        );
        assert_eq!(plan.stats.descriptors, 2, "unsound fusion rejected");
        assert_eq!(plan.stats.chained_calls, 0);
    }

    #[test]
    fn aux_operand_reuse_blocks_fusion() {
        // The sgemv's vector operand rereads `b`, an intermediate of the
        // fused saxpy pair. Inside a fused PASS that store never
        // materializes, so the sgemv would read stale memory: the saxpy
        // pair fuses, the sgemv stays its own descriptor.
        let plan = analyze_src(
            "cblas_saxpy(64, 1.0, a, 1, b, 1);\n\
             cblas_saxpy(64, 1.0, b, 1, c, 1);\n\
             cblas_sgemv(ORDER, TRANS, m, n, 1.0, c, lda, b, 1, 0.0, d, 1);",
        );
        assert_eq!(plan.stats.descriptors, 2, "aux reuse rejected");
        assert_eq!(plan.stats.chained_calls, 2, "the saxpy pair still fuses");
    }

    #[test]
    fn compacts_omp_loop_nest_into_loop_block() {
        let plan = analyze_src(
            "int N_DOP = 256;\nint N_SV = 64;\n\
             #pragma omp parallel for num_threads(4)\n\
             for (dop = 0; dop < N_DOP; ++dop)\n\
               for (sv = 0; sv < N_SV; ++sv)\n\
                 cblas_cdotc_sub(1024, &w[dop][sv][0], 1, &s[dop][0], 64, &p[dop][sv]);",
        );
        assert_eq!(plan.stats.descriptors, 1);
        assert_eq!(plan.stats.dynamic_calls, 256 * 64);
        assert!(plan.tdl[0].text.contains("LOOP 16384"));
        assert!(plan.tdl[0].text.contains("in=w out=p"));
    }

    #[test]
    fn non_constant_loop_bound_is_left_on_the_host() {
        let plan =
            analyze_src("for (i = 0; i < runtime_n; ++i)\n  cblas_saxpy(64, 1.0, x, 1, y, 1);");
        assert_eq!(
            plan.stats.descriptors, 0,
            "unknowable trip count stays untouched"
        );
    }

    #[test]
    fn compute_bound_calls_stay_on_host() {
        let plan = analyze_src("cblas_cherk(ORDER, UPLO, TRANS, n, k, 1.0, a, n, 0.0, c, n);");
        assert_eq!(plan.stats.accelerable_calls, 0);
        assert!(plan.tdl.is_empty());
    }

    #[test]
    fn execute_of_unknown_plan_is_an_error() {
        let unit = parse(tokenize("fftwf_execute(ghost);").unwrap()).unwrap();
        let err = analyze(&unit).unwrap_err();
        assert_eq!(
            err,
            AnalysisError::UnknownPlan {
                name: "ghost".into()
            }
        );
    }

    #[test]
    fn le_bounds_and_decl_inits_count_correctly() {
        let plan = analyze_src("for (int i = 2; i <= 9; ++i)\n  cblas_saxpy(64, 1.0, x, 1, y, 1);");
        assert_eq!(plan.stats.dynamic_calls, 8);
        assert!(plan.tdl[0].text.contains("LOOP 8"));
    }

    #[test]
    fn loop_with_extra_statements_is_not_compacted() {
        let plan =
            analyze_src("for (i = 0; i < 4; ++i) { helper(i); cblas_saxpy(64, 1.0, x, 1, y, 1); }");
        assert_eq!(plan.stats.descriptors, 0);
    }

    #[test]
    fn placement_pragma_is_recorded() {
        let plan = analyze_src(
            "#pragma mealib stack(2)\n             x = malloc(sizeof(float) * 64);\n             cblas_saxpy(64, 1.0, x, 1, y, 1);",
        );
        assert_eq!(plan.placements.get("x"), Some(&2));
        assert!(plan.accel_buffers.contains("x"));
    }

    #[test]
    fn malformed_placement_pragmas_are_ignored() {
        for text in [
            "mealib stack()",
            "mealib stack(a)",
            "mealib shelf(1)",
            "omp simd",
        ] {
            assert_eq!(placement_pragma(text), None, "{text}");
        }
        assert_eq!(placement_pragma("mealib stack(3)"), Some(3));
        assert_eq!(placement_pragma("mealib stack( 11 )"), Some(11));
    }

    #[test]
    fn placement_offloads_memory_bound_apis_and_keeps_compute_bound_home() {
        let host = mealib_host::Platform::haswell();
        for api in [
            LibApi::Saxpy,
            LibApi::Sdot,
            LibApi::CdotcSub,
            LibApi::Sgemv,
            LibApi::ScsrGemv,
            LibApi::Interpolate1d,
            LibApi::Simatcopy,
        ] {
            assert_eq!(
                api.placement(&host),
                Placement::Accelerator,
                "{api:?} sits below the Haswell ridge point"
            );
        }
        for api in [LibApi::Cherk, LibApi::Ctrsm, LibApi::PlanGuruDft] {
            assert_eq!(api.placement(&host), Placement::Host, "{api:?}");
        }
    }

    #[test]
    fn placement_follows_the_host_roofline() {
        // A bandwidth-rich, compute-starved host drops its ridge point
        // below every kernel's intensity: nothing is worth offloading.
        let mut host = mealib_host::Platform::haswell();
        host.flops_per_cycle = 1e-6;
        host.mem = mealib_memsim::MemoryConfig::hmc_stack();
        assert_eq!(LibApi::Saxpy.placement(&host), Placement::Host);
        assert_eq!(LibApi::Sgemv.placement(&host), Placement::Host);
        // RESHP moves data without computing: zero intensity beats any
        // positive ridge.
        assert_eq!(LibApi::Simatcopy.placement(&host), Placement::Accelerator);
    }

    #[test]
    fn const_eval_handles_arithmetic() {
        let consts = BTreeMap::from([("N".to_string(), 8i64)]);
        let e = Expr::Binary {
            op: crate::ast::BinOp::Mul,
            lhs: Box::new(Expr::Ident("N".into())),
            rhs: Box::new(Expr::Int(4)),
        };
        assert_eq!(const_eval(&e, &consts), Some(32));
        assert_eq!(const_eval(&Expr::Ident("missing".into()), &consts), None);
    }
}
