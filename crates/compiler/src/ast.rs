//! Abstract syntax of the supported C subset.
//!
//! The subset is what the paper's Listing 1 needs: declarations (with
//! pointers), assignments, calls, `sizeof`, index chains, `for` nests,
//! and `#pragma omp parallel for` annotations. `Display` implementations
//! render source text; the code generator reuses them.

use core::fmt;

/// A C type in the subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// `int`
    Int,
    /// `float`
    Float,
    /// `complex` (the MKL/FFTW single-precision complex)
    Complex,
    /// `void`
    Void,
    /// A named typedef (e.g. `fftwf_plan`, `acc_plan`).
    Named(String),
    /// Pointer to another type.
    Ptr(Box<Type>),
}

impl Type {
    /// Wraps this type in a pointer.
    pub fn ptr(self) -> Type {
        Type::Ptr(Box::new(self))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => f.write_str("int"),
            Type::Float => f.write_str("float"),
            Type::Complex => f.write_str("complex"),
            Type::Void => f.write_str("void"),
            Type::Named(n) => f.write_str(n),
            Type::Ptr(inner) => write!(f, "{inner}*"),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `&expr`
    AddrOf,
    /// `*expr`
    Deref,
    /// `-expr`
    Neg,
    /// `++expr` (also used to represent `expr++` in loop steps)
    Incr,
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnaryOp::AddrOf => "&",
            UnaryOp::Deref => "*",
            UnaryOp::Neg => "-",
            UnaryOp::Incr => "++",
        })
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
        })
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// An identifier.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A string literal.
    Str(String),
    /// A function call.
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `base[index]`
    Index {
        /// The indexed expression.
        base: Box<Expr>,
        /// The index.
        index: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `lhs = rhs`
    Assign {
        /// Assignment target.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
    },
    /// `sizeof(type)`
    Sizeof(Type),
}

impl Expr {
    /// The base identifier of a pointer-ish expression: `x` for `x`,
    /// `&x[i][j]`, `x + 4`, `*x`. This is how the analysis finds the
    /// buffer behind a call argument.
    pub fn base_ident(&self) -> Option<&str> {
        match self {
            Expr::Ident(n) => Some(n),
            Expr::Index { base, .. } => base.base_ident(),
            Expr::Unary { expr, .. } => expr.base_ident(),
            Expr::Binary {
                op: BinOp::Add | BinOp::Sub,
                lhs,
                ..
            } => lhs.base_ident(),
            _ => None,
        }
    }

    /// Returns the call (callee, args) if this expression is a direct
    /// call or an assignment whose right side is one.
    pub fn as_call(&self) -> Option<(&str, &[Expr])> {
        match self {
            Expr::Call { callee, args } => Some((callee, args)),
            Expr::Assign { rhs, .. } => rhs.as_call(),
            _ => None,
        }
    }

    /// Returns the assignment target identifier if this is `ident = ...`.
    pub fn assign_target(&self) -> Option<&str> {
        match self {
            Expr::Assign { lhs, .. } => match lhs.as_ref() {
                Expr::Ident(n) => Some(n),
                _ => None,
            },
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Ident(n) => f.write_str(n),
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Expr::Str(s) => {
                write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
            }
            Expr::Call { callee, args } => {
                write!(f, "{callee}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Index { base, index } => write!(f, "{base}[{index}]"),
            Expr::Unary { op, expr } => write!(f, "{op}{expr}"),
            Expr::Binary { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Expr::Assign { lhs, rhs } => write!(f, "{lhs} = {rhs}"),
            Expr::Sizeof(t) => write!(f, "sizeof({t})"),
        }
    }
}

/// A declaration: `type name = init;`.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Declared type.
    pub ty: Type,
    /// Declared name.
    pub name: String,
    /// Optional initializer.
    pub init: Option<Expr>,
}

impl fmt::Display for Decl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.init {
            Some(init) => write!(f, "{} {} = {}", self.ty, self.name, init),
            None => write!(f, "{} {}", self.ty, self.name),
        }
    }
}

/// The initializer clause of a `for` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ForInit {
    /// `int i = 0`
    Decl(Decl),
    /// `i = 0`
    Expr(Expr),
    /// empty
    Empty,
}

impl fmt::Display for ForInit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForInit::Decl(d) => d.fmt(f),
            ForInit::Expr(e) => e.fmt(f),
            ForInit::Empty => Ok(()),
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A declaration statement.
    Decl(Decl),
    /// An expression statement.
    Expr(Expr),
    /// A `for` loop, optionally annotated with a `#pragma` line.
    For {
        /// Attached `#pragma` text (without the `#pragma` prefix), if any.
        pragma: Option<String>,
        /// Initializer clause.
        init: ForInit,
        /// Condition.
        cond: Expr,
        /// Step expression.
        step: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// A braced block.
    Block(Vec<Stmt>),
    /// A comment line (used by the transformer to annotate output).
    Comment(String),
}

impl Stmt {
    /// Writes the statement with the given indentation depth.
    pub fn write_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "    ".repeat(depth);
        match self {
            Stmt::Decl(d) => writeln!(f, "{pad}{d};"),
            Stmt::Expr(e) => writeln!(f, "{pad}{e};"),
            Stmt::For {
                pragma,
                init,
                cond,
                step,
                body,
            } => {
                if let Some(p) = pragma {
                    writeln!(f, "{pad}#pragma {p}")?;
                }
                writeln!(f, "{pad}for ({init}; {cond}; {step})")?;
                match body.as_ref() {
                    Stmt::Block(_) => body.write_indented(f, depth),
                    other => other.write_indented(f, depth + 1),
                }
            }
            Stmt::Block(stmts) => {
                writeln!(f, "{pad}{{")?;
                for s in stmts {
                    s.write_indented(f, depth + 1)?;
                }
                writeln!(f, "{pad}}}")
            }
            Stmt::Comment(text) => writeln!(f, "{pad}/* {text} */"),
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_indented(f, 0)
    }
}

/// A whole input: a sequence of top-level statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TranslationUnit {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

impl fmt::Display for TranslationUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.stmts {
            s.write_indented(f, 0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_ident_unwraps_pointer_shapes() {
        // &weights[dop][0]
        let e = Expr::Unary {
            op: UnaryOp::AddrOf,
            expr: Box::new(Expr::Index {
                base: Box::new(Expr::Index {
                    base: Box::new(Expr::Ident("weights".into())),
                    index: Box::new(Expr::Ident("dop".into())),
                }),
                index: Box::new(Expr::Int(0)),
            }),
        };
        assert_eq!(e.base_ident(), Some("weights"));
        assert_eq!(Expr::Ident("x".into()).base_ident(), Some("x"));
        let offset = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Ident("x".into())),
            rhs: Box::new(Expr::Int(4)),
        };
        assert_eq!(offset.base_ident(), Some("x"));
        assert_eq!(Expr::Int(3).base_ident(), None);
    }

    #[test]
    fn as_call_sees_through_assignment() {
        let call = Expr::Call {
            callee: "malloc".into(),
            args: vec![Expr::Int(8)],
        };
        let assign = Expr::Assign {
            lhs: Box::new(Expr::Ident("x".into())),
            rhs: Box::new(call.clone()),
        };
        assert_eq!(assign.as_call().map(|(c, _)| c), Some("malloc"));
        assert_eq!(assign.assign_target(), Some("x"));
        assert_eq!(call.assign_target(), None);
    }

    #[test]
    fn display_round_trips_visually() {
        let s = Stmt::For {
            pragma: Some("omp parallel for".into()),
            init: ForInit::Expr(Expr::Assign {
                lhs: Box::new(Expr::Ident("i".into())),
                rhs: Box::new(Expr::Int(0)),
            }),
            cond: Expr::Binary {
                op: BinOp::Lt,
                lhs: Box::new(Expr::Ident("i".into())),
                rhs: Box::new(Expr::Ident("N".into())),
            },
            step: Expr::Unary {
                op: UnaryOp::Incr,
                expr: Box::new(Expr::Ident("i".into())),
            },
            body: Box::new(Stmt::Block(vec![Stmt::Expr(Expr::Call {
                callee: "f".into(),
                args: vec![Expr::Ident("i".into())],
            })])),
        };
        let text = s.to_string();
        assert!(text.contains("#pragma omp parallel for"));
        assert!(text.contains("for (i = 0; i < N; ++i)"));
        assert!(text.contains("f(i);"));
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Float.ptr().to_string(), "float*");
        assert_eq!(Type::Named("fftwf_plan".into()).to_string(), "fftwf_plan");
    }
}
