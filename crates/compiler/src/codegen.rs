//! Code emission: renders the transformed AST back to C-subset source.

use crate::ast::TranslationUnit;

/// Emits the transformed translation unit as source text, with a
/// provenance header.
pub fn emit(unit: &TranslationUnit) -> String {
    let mut out =
        String::from("/* Translated for MEALib: link with the MEALib runtime library. */\n");
    out.push_str(&unit.to_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Decl, Expr, Stmt, Type};

    #[test]
    fn emit_prepends_header() {
        let unit = TranslationUnit {
            stmts: vec![Stmt::Decl(Decl {
                ty: Type::Int,
                name: "x".into(),
                init: Some(Expr::Int(1)),
            })],
        };
        let text = emit(&unit);
        assert!(text.starts_with("/* Translated for MEALib"));
        assert!(text.contains("int x = 1;"));
    }
}
