//! Lexer for the C subset.

use core::fmt;

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: Tok,
    /// Source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (quotes stripped).
    Str(String),
    /// A `#pragma ...` line (text after `#pragma`).
    Pragma(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `++`
    PlusPlus,
    /// `+=`
    PlusAssign,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `&`
    Amp,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Pragma(p) => write!(f, "#pragma {p}"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Assign => f.write_str("`=`"),
            Tok::EqEq => f.write_str("`==`"),
            Tok::Ne => f.write_str("`!=`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::Plus => f.write_str("`+`"),
            Tok::PlusPlus => f.write_str("`++`"),
            Tok::PlusAssign => f.write_str("`+=`"),
            Tok::Minus => f.write_str("`-`"),
            Tok::Star => f.write_str("`*`"),
            Tok::Slash => f.write_str("`/`"),
            Tok::Amp => f.write_str("`&`"),
        }
    }
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexError {
    /// A character outside the subset's alphabet.
    UnexpectedChar {
        /// The character.
        ch: char,
        /// Its line.
        line: usize,
    },
    /// An unterminated string or block comment.
    Unterminated {
        /// What was left open.
        what: &'static str,
        /// Line it started on.
        line: usize,
    },
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnexpectedChar { ch, line } => {
                write!(f, "unexpected character {ch:?} on line {line}")
            }
            LexError::Unterminated { what, line } => {
                write!(f, "unterminated {what} starting on line {line}")
            }
        }
    }
}

impl std::error::Error for LexError {}

/// Tokenizes source text. Handles `//` and `/* */` comments and
/// `#pragma` lines; other `#` directives are skipped.
///
/// # Errors
///
/// Returns a [`LexError`] for characters outside the subset.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                let start = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError::Unterminated {
                            what: "block comment",
                            line: start,
                        });
                    }
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '#' => {
                // Collect the directive line.
                let start = i;
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if let Some(rest) = text.strip_prefix("#pragma") {
                    out.push(Token {
                        kind: Tok::Pragma(rest.trim().to_string()),
                        line,
                    });
                }
                // Other directives (#include, #define) are skipped.
            }
            '"' => {
                let start = line;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None | Some('\n') => {
                            return Err(LexError::Unterminated {
                                what: "string",
                                line: start,
                            })
                        }
                        Some('\\') => {
                            // Escape sequence: store the escaped character
                            // unescaped (the printer re-escapes on output).
                            match bytes.get(i + 1) {
                                Some(&esc) => {
                                    s.push(match esc {
                                        'n' => '\n',
                                        't' => '\t',
                                        other => other,
                                    });
                                    i += 2;
                                }
                                None => {
                                    return Err(LexError::Unterminated {
                                        what: "string",
                                        line: start,
                                    })
                                }
                            }
                        }
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    kind: Tok::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    i += 1;
                }
                // Scientific suffix (e.g. 1e9).
                if i < bytes.len() && (bytes[i] == 'e' || bytes[i] == 'E') {
                    i += 1;
                    if i < bytes.len() && (bytes[i] == '+' || bytes[i] == '-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // Trailing f suffix.
                let text: String = bytes[start..i].iter().collect();
                if i < bytes.len() && (bytes[i] == 'f' || bytes[i] == 'F') {
                    i += 1;
                }
                let kind = if text.contains(['.', 'e', 'E']) {
                    Tok::Float(text.parse().unwrap_or(0.0))
                } else {
                    Tok::Int(text.parse().unwrap_or(0))
                };
                out.push(Token { kind, line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                out.push(Token {
                    kind: Tok::Ident(text),
                    line,
                });
            }
            _ => {
                let (kind, advance) = match (c, bytes.get(i + 1)) {
                    ('=', Some('=')) => (Tok::EqEq, 2),
                    ('=', _) => (Tok::Assign, 1),
                    ('!', Some('=')) => (Tok::Ne, 2),
                    ('<', Some('=')) => (Tok::Le, 2),
                    ('<', _) => (Tok::Lt, 1),
                    ('>', Some('=')) => (Tok::Ge, 2),
                    ('>', _) => (Tok::Gt, 1),
                    ('+', Some('+')) => (Tok::PlusPlus, 2),
                    ('+', Some('=')) => (Tok::PlusAssign, 2),
                    ('+', _) => (Tok::Plus, 1),
                    ('-', _) => (Tok::Minus, 1),
                    ('*', _) => (Tok::Star, 1),
                    ('/', _) => (Tok::Slash, 1),
                    ('&', _) => (Tok::Amp, 1),
                    ('(', _) => (Tok::LParen, 1),
                    (')', _) => (Tok::RParen, 1),
                    ('[', _) => (Tok::LBracket, 1),
                    (']', _) => (Tok::RBracket, 1),
                    ('{', _) => (Tok::LBrace, 1),
                    ('}', _) => (Tok::RBrace, 1),
                    (';', _) => (Tok::Semi, 1),
                    (',', _) => (Tok::Comma, 1),
                    (ch, _) => return Err(LexError::UnexpectedChar { ch, line }),
                };
                out.push(Token { kind, line });
                i += advance;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration_and_call() {
        let toks = kinds("float *x; x = malloc(sizeof(float) * 8);");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("float".into()),
                Tok::Star,
                Tok::Ident("x".into()),
                Tok::Semi,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Ident("malloc".into()),
                Tok::LParen,
                Tok::Ident("sizeof".into()),
                Tok::LParen,
                Tok::Ident("float".into()),
                Tok::RParen,
                Tok::Star,
                Tok::Int(8),
                Tok::RParen,
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn lexes_pragma_and_skips_include() {
        let toks = kinds("#include <mkl.h>\n#pragma omp parallel for num_threads(4)\nint x;");
        assert_eq!(
            toks[0],
            Tok::Pragma("omp parallel for num_threads(4)".into())
        );
        assert_eq!(toks[1], Tok::Ident("int".into()));
    }

    #[test]
    fn lexes_comments_and_operators() {
        let toks = kinds("// line\n/* block\nspanning */ i <= N; ++i; a += 2");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("i".into()),
                Tok::Le,
                Tok::Ident("N".into()),
                Tok::Semi,
                Tok::PlusPlus,
                Tok::Ident("i".into()),
                Tok::Semi,
                Tok::Ident("a".into()),
                Tok::PlusAssign,
                Tok::Int(2),
            ]
        );
    }

    #[test]
    fn lexes_escaped_strings() {
        let toks = kinds(r#"s = "a \"quoted\" path";"#);
        assert_eq!(
            toks,
            vec![
                Tok::Ident("s".into()),
                Tok::Assign,
                Tok::Str("a \"quoted\" path".into()),
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn lexes_float_literals() {
        assert_eq!(kinds("2.0f"), vec![Tok::Float(2.0)]);
        assert_eq!(kinds("1e3"), vec![Tok::Float(1000.0)]);
        assert_eq!(kinds("42"), vec![Tok::Int(42)]);
    }

    #[test]
    fn tracks_lines() {
        let toks = tokenize("a\n\nb").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(matches!(
            tokenize("int $x;"),
            Err(LexError::UnexpectedChar { ch: '$', .. })
        ));
    }

    #[test]
    fn rejects_unterminated_constructs() {
        assert!(matches!(
            tokenize("\"abc"),
            Err(LexError::Unterminated { what: "string", .. })
        ));
        assert!(matches!(
            tokenize("/* never closed"),
            Err(LexError::Unterminated {
                what: "block comment",
                ..
            })
        ));
    }
}
