//! The MEALib source-to-source compiler (§3.4).
//!
//! "A source-to-source compiler is crucial for portable energy efficiency
//! using MEALib. It is built to recognize library calls (possibly
//! annotated with OpenMP directives) that can be accelerated using our
//! memory-side accelerators. The associated memory allocation/free
//! functions are also translated into MEALib runtime routines."
//!
//! The compiler consumes a C subset rich enough for the paper's Listing 1
//! (declarations, `malloc`/`free`, MKL/FFTW calls, `for` nests with
//! `#pragma omp parallel for`) and works in the paper's two passes:
//!
//! * **Pass 1 — library-call identification** ([`analysis`]): find
//!   accelerable calls, determine their input/output buffers, chain
//!   adjacent calls whose dataflow connects (the `RESHP`+`FFT` fusion of
//!   Listing 1), and compact OpenMP loop nests of calls into TDL `LOOP`
//!   blocks — turning millions of library calls into one descriptor.
//! * **Pass 2 — allocation transformation** ([`transform`]): rewrite
//!   `malloc`/`free` of accelerator-visible buffers into
//!   `mealib_mem_alloc`/`mealib_mem_free`.
//!
//! [`compile`] runs both passes and emits ([`codegen`]) the transformed
//! C source plus the generated TDL strings.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//!     float *x; float *y;
//!     x = malloc(sizeof(float) * 1024);
//!     y = malloc(sizeof(float) * 1024);
//!     cblas_saxpy(1024, 2.0, x, 1, y, 1);
//!     free(x);
//!     free(y);
//! "#;
//! let out = mealib_compiler::compile(src)?;
//! assert_eq!(out.stats.accelerable_calls, 1);
//! assert!(out.source.contains("mealib_mem_alloc"));
//! assert!(out.tdl[0].text.contains("COMP AXPY"));
//! # Ok::<(), mealib_compiler::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod parser;
pub mod transform;

use core::fmt;

/// A generated parameter file: the non-buffer API arguments of one
/// `COMP`, in call order (the paper's `reshape.para`/`fft.para`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamFile {
    /// File name referenced by the TDL `COMP params="…"` clause.
    pub file: String,
    /// Rendered argument expressions.
    pub args: Vec<String>,
}

/// A generated TDL descriptor program with its identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedTdl {
    /// Name of the generated plan variable in the output source.
    pub plan_name: String,
    /// The TDL text (parseable by `mealib_tdl::parse`).
    pub text: String,
    /// Dynamic library calls this descriptor replaces.
    pub calls_compacted: u64,
    /// Parameter files referenced by the TDL, in `COMP` order.
    pub params: Vec<ParamFile>,
}

/// Aggregate statistics of one compilation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Accelerable (memory-bounded) library calls found, statically.
    pub accelerable_calls: u64,
    /// Dynamic library-call executions those statically represent
    /// (loop-nest trip counts multiplied through).
    pub dynamic_calls: u64,
    /// Accelerator descriptors generated.
    pub descriptors: u64,
    /// Calls fused by hardware chaining.
    pub chained_calls: u64,
    /// `malloc`/`free` sites rewritten.
    pub allocations_rewritten: u64,
}

/// The result of a successful compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileOutput {
    /// The transformed C-subset source.
    pub source: String,
    /// The generated TDL descriptor programs, in plan order.
    pub tdl: Vec<GeneratedTdl>,
    /// Compilation statistics.
    pub stats: CompileStats,
}

/// A compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Lexical error.
    Lex(lexer::LexError),
    /// Syntax error.
    Parse(parser::ParseError),
    /// Semantic error (unknown buffer, non-constant loop bound, ...).
    Analysis(analysis::AnalysisError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Lex(e) => write!(f, "lexical error: {e}"),
            CompileError::Parse(e) => write!(f, "syntax error: {e}"),
            CompileError::Analysis(e) => write!(f, "analysis error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<lexer::LexError> for CompileError {
    fn from(e: lexer::LexError) -> Self {
        CompileError::Lex(e)
    }
}

impl From<parser::ParseError> for CompileError {
    fn from(e: parser::ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<analysis::AnalysisError> for CompileError {
    fn from(e: analysis::AnalysisError) -> Self {
        CompileError::Analysis(e)
    }
}

/// Compiles a C-subset source: identifies accelerable library calls,
/// generates TDL descriptors, and rewrites allocations.
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first lexical, syntactic, or
/// semantic problem.
pub fn compile(source: &str) -> Result<CompileOutput, CompileError> {
    let tokens = lexer::tokenize(source)?;
    let unit = parser::parse(tokens)?;
    let plan = analysis::analyze(&unit)?;
    let transformed = transform::apply(&unit, &plan);
    let source = codegen::emit(&transformed);
    Ok(CompileOutput {
        source,
        tdl: plan.tdl,
        stats: plan.stats,
    })
}
