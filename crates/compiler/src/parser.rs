//! Recursive-descent parser for the C subset.
//!
//! One deliberate ambiguity resolution: a statement that starts with two
//! identifiers (`fftwf_plan plan;`) or an identifier followed by `*` and
//! another identifier (`complex *buf;`) is a declaration with a named
//! type. A bare multiplication used as a statement is therefore not
//! representable — it has no effect anyway.

use core::fmt;

use crate::ast::{BinOp, Decl, Expr, ForInit, Stmt, TranslationUnit, Type, UnaryOp};
use crate::lexer::{Tok, Token};

/// A syntax error.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// An unexpected token.
    Unexpected {
        /// What the parser wanted.
        expected: String,
        /// What it found.
        found: String,
        /// Source line.
        line: usize,
    },
    /// Input ended mid-construct.
    Eof {
        /// What the parser wanted.
        expected: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Unexpected {
                expected,
                found,
                line,
            } => {
                write!(f, "expected {expected}, found {found} on line {line}")
            }
            ParseError::Eof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses a token stream into a translation unit.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse(tokens: Vec<Token>) -> Result<TranslationUnit, ParseError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.stmt()?);
    }
    Ok(TranslationUnit { stmts })
}

const TYPE_KEYWORDS: [&str; 4] = ["int", "float", "complex", "void"];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek_at(&self, offset: usize) -> Option<&Tok> {
        self.tokens.get(self.pos + offset).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn bump(&mut self, expected: &str) -> Result<Token, ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| ParseError::Eof {
                expected: expected.into(),
            })?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, tok: &Tok, expected: &str) -> Result<(), ParseError> {
        let t = self.bump(expected)?;
        if &t.kind == tok {
            Ok(())
        } else {
            Err(ParseError::Unexpected {
                expected: expected.into(),
                found: t.kind.to_string(),
                line: t.line,
            })
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self, expected: &str) -> Result<String, ParseError> {
        let t = self.bump(expected)?;
        match t.kind {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError::Unexpected {
                expected: expected.into(),
                found: other.to_string(),
                line: t.line,
            }),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Tok::Pragma(_)) => {
                let t = self.bump("pragma")?;
                let text = match t.kind {
                    Tok::Pragma(p) => p,
                    _ => unreachable!("peeked pragma"),
                };
                // A pragma must annotate the following for loop.
                match self.stmt()? {
                    Stmt::For {
                        init,
                        cond,
                        step,
                        body,
                        ..
                    } => Ok(Stmt::For {
                        pragma: Some(text),
                        init,
                        cond,
                        step,
                        body,
                    }),
                    other => {
                        // Non-loop pragmas are kept as comments.
                        Ok(Stmt::Block(vec![
                            Stmt::Comment(format!("#pragma {text}")),
                            other,
                        ]))
                    }
                }
            }
            Some(Tok::LBrace) => {
                self.pos += 1;
                let mut stmts = Vec::new();
                while self.peek() != Some(&Tok::RBrace) {
                    if self.at_end() {
                        return Err(ParseError::Eof {
                            expected: "`}`".into(),
                        });
                    }
                    stmts.push(self.stmt()?);
                }
                self.pos += 1;
                Ok(Stmt::Block(stmts))
            }
            Some(Tok::Ident(name)) if name == "for" => self.for_stmt(),
            _ if self.looks_like_decl() => {
                let d = self.decl()?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Decl(d))
            }
            _ => {
                let e = self.expr()?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// Declaration starts: `type-keyword ...`, `Ident Ident`, or
    /// `Ident '*'+ Ident`.
    fn looks_like_decl(&self) -> bool {
        let first = match self.peek() {
            Some(Tok::Ident(n)) => n,
            _ => return false,
        };
        if first == "for" || first == "sizeof" {
            return false;
        }
        if first == "const" || TYPE_KEYWORDS.contains(&first.as_str()) {
            return true;
        }
        // Named-type declarations: `acc_plan p;` or `complex *x;`-like.
        let mut k = 1;
        while self.peek_at(k) == Some(&Tok::Star) {
            k += 1;
        }
        matches!((k, self.peek_at(k)), (_, Some(Tok::Ident(_))) if k >= 1)
            && !matches!(self.peek_at(1), Some(Tok::LParen) | Some(Tok::Assign))
    }

    fn type_name(&mut self) -> Result<Type, ParseError> {
        let mut name = self.ident("type name")?;
        if name == "const" {
            // Fold the qualifier into the (named) type.
            let base = self.ident("type name")?;
            name = format!("const {base}");
        }
        let mut ty = match name.as_str() {
            "int" => Type::Int,
            "float" => Type::Float,
            "complex" => Type::Complex,
            "void" => Type::Void,
            other => Type::Named(other.to_string()),
        };
        while self.eat(&Tok::Star) {
            ty = ty.ptr();
        }
        Ok(ty)
    }

    fn decl(&mut self) -> Result<Decl, ParseError> {
        let ty = self.type_name()?;
        let name = self.ident("declared name")?;
        let init = if self.eat(&Tok::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Decl { ty, name, init })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Tok::Ident("for".into()), "`for`")?;
        self.expect(&Tok::LParen, "`(`")?;
        let init = if self.peek() == Some(&Tok::Semi) {
            ForInit::Empty
        } else if self.looks_like_decl() {
            ForInit::Decl(self.decl()?)
        } else {
            ForInit::Expr(self.expr()?)
        };
        self.expect(&Tok::Semi, "`;`")?;
        let cond = self.expr()?;
        self.expect(&Tok::Semi, "`;`")?;
        let step = self.expr()?;
        self.expect(&Tok::RParen, "`)`")?;
        let body = self.stmt()?;
        Ok(Stmt::For {
            pragma: None,
            init,
            cond,
            step,
            body: Box::new(body),
        })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assign()
    }

    fn assign(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.comparison()?;
        if self.eat(&Tok::Assign) {
            let rhs = self.assign()?;
            return Ok(Expr::Assign {
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        if self.eat(&Tok::PlusAssign) {
            let rhs = self.assign()?;
            // Desugar `a += b` into `a = a + b`.
            return Ok(Expr::Assign {
                lhs: Box::new(lhs.clone()),
                rhs: Box::new(Expr::Binary {
                    op: BinOp::Add,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                }),
            });
        }
        Ok(lhs)
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            Some(Tok::EqEq) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.additive()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            Some(Tok::Amp) => Some(UnaryOp::AddrOf),
            Some(Tok::Star) => Some(UnaryOp::Deref),
            Some(Tok::Minus) => Some(UnaryOp::Neg),
            Some(Tok::PlusPlus) => Some(UnaryOp::Incr),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let expr = self.unary()?;
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
            });
        }
        let mut e = self.postfix()?;
        // Postfix increment normalizes to the same `Incr` node.
        if self.eat(&Tok::PlusPlus) {
            e = Expr::Unary {
                op: UnaryOp::Incr,
                expr: Box::new(e),
            };
        }
        Ok(e)
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.eat(&Tok::LBracket) {
            let index = self.expr()?;
            self.expect(&Tok::RBracket, "`]`")?;
            e = Expr::Index {
                base: Box::new(e),
                index: Box::new(index),
            };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        let t = self.bump("expression")?;
        match t.kind {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) if name == "sizeof" => {
                self.expect(&Tok::LParen, "`(`")?;
                let ty = self.type_name()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(Expr::Sizeof(ty))
            }
            Tok::Ident(name) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen, "`)`")?;
                    Ok(Expr::Call { callee: name, args })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            other => Err(ParseError::Unexpected {
                expected: "expression".into(),
                found: other.to_string(),
                line,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse_src(src: &str) -> TranslationUnit {
        parse(tokenize(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_declarations() {
        let u = parse_src("float *x; int n = 4; fftwf_plan plan_ct; complex *buf;");
        assert_eq!(u.stmts.len(), 4);
        match &u.stmts[0] {
            Stmt::Decl(d) => {
                assert_eq!(d.ty, Type::Float.ptr());
                assert_eq!(d.name, "x");
            }
            other => panic!("expected decl, got {other:?}"),
        }
        match &u.stmts[2] {
            Stmt::Decl(d) => assert_eq!(d.ty, Type::Named("fftwf_plan".into())),
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn parses_malloc_assignment() {
        let u = parse_src("x = malloc(sizeof(complex) * num_elems);");
        match &u.stmts[0] {
            Stmt::Expr(e) => {
                assert_eq!(e.assign_target(), Some("x"));
                let (callee, args) = e.as_call().unwrap();
                assert_eq!(callee, "malloc");
                assert!(matches!(&args[0], Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("expected expr, got {other:?}"),
        }
    }

    #[test]
    fn parses_nested_for_with_pragma() {
        let u = parse_src(
            "#pragma omp parallel for num_threads(4)\n\
             for (dop = 0; dop < N_DOP; ++dop)\n\
               for (sv = 0; sv < N_SV; sv++)\n\
                 cblas_cdotc_sub(64, &w[dop][sv][0], 1, &s[dop], TBS, &p[dop][sv]);",
        );
        match &u.stmts[0] {
            Stmt::For { pragma, body, .. } => {
                assert_eq!(pragma.as_deref(), Some("omp parallel for num_threads(4)"));
                match body.as_ref() {
                    Stmt::For { pragma: inner, .. } => assert!(inner.is_none()),
                    other => panic!("expected nested for, got {other:?}"),
                }
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_address_of_multidim_index() {
        let u = parse_src("f(&a[i][j][0]);");
        match &u.stmts[0] {
            Stmt::Expr(Expr::Call { args, .. }) => {
                assert_eq!(args[0].base_ident(), Some("a"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_for_with_decl_init_and_plus_assign() {
        let u = parse_src("for (int i = 0; i <= n; i += 2) { x = x + 1; }");
        match &u.stmts[0] {
            Stmt::For {
                init, cond, step, ..
            } => {
                assert!(matches!(init, ForInit::Decl(_)));
                assert!(matches!(cond, Expr::Binary { op: BinOp::Le, .. }));
                // i += 2 desugars to i = i + 2.
                assert!(matches!(step, Expr::Assign { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add_over_cmp() {
        let u = parse_src("x = a + b * c < d;");
        // Parses as x = ((a + (b*c)) < d)
        match &u.stmts[0] {
            Stmt::Expr(Expr::Assign { rhs, .. }) => match rhs.as_ref() {
                Expr::Binary {
                    op: BinOp::Lt, lhs, ..
                } => match lhs.as_ref() {
                    Expr::Binary {
                        op: BinOp::Add,
                        rhs: addr,
                        ..
                    } => {
                        assert!(matches!(addr.as_ref(), Expr::Binary { op: BinOp::Mul, .. }));
                    }
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_reports_missing_semicolon() {
        let err = parse(tokenize("int x = 3").unwrap()).unwrap_err();
        assert!(matches!(err, ParseError::Eof { .. }), "{err}");
    }

    #[test]
    fn error_reports_unclosed_block() {
        let err = parse(tokenize("{ int x; ").unwrap()).unwrap_err();
        assert!(matches!(err, ParseError::Eof { .. }), "{err}");
    }

    #[test]
    fn parses_const_qualified_declarations() {
        let u = parse_src("const char *tdl_0 = \"PASS\";");
        match &u.stmts[0] {
            Stmt::Decl(d) => {
                assert_eq!(d.ty, Type::Named("const char".into()).ptr());
                assert_eq!(d.name, "tdl_0");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn source_round_trip_through_display() {
        let src = "float *x;\nx = malloc(sizeof(float) * 16);\nfree(x);\n";
        let u = parse_src(src);
        let printed = u.to_string();
        let reparsed = parse_src(&printed);
        assert_eq!(u, reparsed);
    }
}
