//! Property tests for the source-to-source compiler: on arbitrary
//! (generated) programs in the subset, compilation never panics, the
//! emitted source re-parses, and generated TDL is always valid.

use mealib_compiler::{compile, lexer, parser};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

/// Generates syntactically valid programs in the subset, mixing
/// declarations, mallocs, accelerable calls, loops, and frees.
fn program() -> impl Strategy<Value = String> {
    let stmt = prop_oneof![
        ident().prop_map(|v| format!("float *{v};")),
        (ident(), 1u32..1_000_000)
            .prop_map(|(v, n)| format!("{v} = malloc(sizeof(float) * {n});")),
        (ident(), ident(), 1u32..100_000)
            .prop_map(|(x, y, n)| format!("cblas_saxpy({n}, 2.0, {x}, 1, {y}, 1);")),
        (ident(), ident(), 1u32..100_000)
            .prop_map(|(x, y, n)| format!("cblas_sdot({n}, {x}, 1, {y}, 1);")),
        (ident(), ident(), 1u32..64, 1u32..4096).prop_map(|(x, y, c, n)| {
            format!("for (i = 0; i < {c}; ++i) cblas_saxpy({n}, 1.0, {x}, 1, {y}, 1);")
        }),
        (ident(), ident(), ident()).prop_map(|(p, a, b)| {
            format!(
                "{p} = fftwf_plan_guru_dft(1, dims, 2, hm, {a}, {b}, FWD, FLAGS);\nfftwf_execute({p});"
            )
        }),
        ident().prop_map(|v| format!("free({v});")),
        (ident(), 0i64..1000).prop_map(|(v, n)| format!("int {v} = {n};")),
        (ident(), ident()).prop_map(|(f, a)| format!("{f}({a});")),
    ];
    proptest::collection::vec(stmt, 0..12).prop_map(|stmts| stmts.join("\n"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn compile_never_panics_and_output_reparses(src in program()) {
        // Some generated programs are semantically invalid (e.g. an
        // execute of a reused plan variable); those must surface as
        // Err, never as a panic.
        if let Ok(out) = compile(&src) {
            // The transformed source must lex and parse in the same
            // subset (strings and comments included).
            let tokens = lexer::tokenize(&out.source).expect("emitted source lexes");
            parser::parse(tokens).expect("emitted source parses");
            // Every generated TDL must parse and agree on call counts.
            let mut total = 0u64;
            for gen in &out.tdl {
                let program = mealib_tdl::parse(&gen.text).expect("generated TDL parses");
                prop_assert_eq!(program.total_invocations(), gen.calls_compacted);
                total += gen.calls_compacted;
            }
            prop_assert_eq!(total, out.stats.dynamic_calls);
            prop_assert_eq!(out.tdl.len() as u64, out.stats.descriptors);
        }
    }

    #[test]
    fn compilation_is_deterministic(src in program()) {
        let a = compile(&src);
        let b = compile(&src);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            other => panic!("nondeterministic outcome: {other:?}"),
        }
    }

    #[test]
    fn lexer_never_panics_on_arbitrary_input(src in "\\PC{0,200}") {
        let _ = lexer::tokenize(&src);
    }

    #[test]
    fn parser_never_panics_on_token_soup(src in "[a-z(){};=<>+*&,0-9\\\" .]{0,120}") {
        if let Ok(tokens) = lexer::tokenize(&src) {
            let _ = parser::parse(tokens);
        }
    }
}
