//! End-to-end compilation of the paper's Listing 1 (the STAP fragment):
//! data allocation, FFTW guru data copy + batched FFT, and the OpenMP
//! loop nest of 16M `cblas_cdotc_sub` calls.

use mealib_compiler::compile;

const STAP_SOURCE: &str = r#"
    // dataset geometry (PERFECT STAP "small"-like constants)
    int N_DOP = 256;
    int N_BLOCKS = 64;
    int N_STEERING = 16;
    int TBS = 64;
    int TDOF = 3;
    int N_CHAN = 4;

    complex *datacube;
    complex *datacube_pulse_major_padded;
    complex *datacube_doppler_major;
    complex *adaptive_weights;
    complex *snapshots;
    complex *prods;

    // data allocation
    datacube = malloc(sizeof(complex) * num_datacube_elements);
    datacube_pulse_major_padded = malloc(sizeof(complex) * num_padded_elements);
    datacube_doppler_major = malloc(sizeof(complex) * num_datacube_elements);
    adaptive_weights = malloc(sizeof(complex) * num_weight_elements);
    snapshots = malloc(sizeof(complex) * num_snapshot_elements);
    prods = malloc(sizeof(complex) * num_prod_elements);

    // data copy (rank-0 guru plan = layout transform)
    plan_ct = fftwf_plan_guru_dft(0, NULL, 3, howmany_dims_ct,
        datacube, datacube_pulse_major_padded, FFTW_FORWARD, FFTW_WISDOM_ONLY);

    // FFT operation
    plan_fft = fftwf_plan_guru_dft(1, dims, 2, howmany_dims,
        datacube_pulse_major_padded, datacube_doppler_major,
        FFTW_FORWARD, FFTW_WISDOM_ONLY);

    fftwf_execute(plan_ct);
    fftwf_execute(plan_fft);

    // multiple parallel inner products
    #pragma omp parallel for num_threads(4)
    for (dop = 0; dop < N_DOP; ++dop)
        for (block = 0; block < N_BLOCKS; ++block)
            for (sv = 0; sv < N_STEERING; ++sv)
                for (cell = 0; cell < TBS; ++cell)
                    cblas_cdotc_sub(TDOF * N_CHAN,
                        &adaptive_weights[dop][block][sv][0], 1,
                        &snapshots[dop][block][cell], TBS,
                        &prods[dop][block][sv][cell]);

    // weight application
    for (dop = 0; dop < N_DOP; ++dop)
        cblas_saxpy(4096, 1.0, prods, 1, datacube_doppler_major, 1);

    free(datacube);
    free(datacube_pulse_major_padded);
    free(datacube_doppler_major);
    free(adaptive_weights);
    free(snapshots);
    free(prods);
"#;

#[test]
fn compiles_listing1_into_three_descriptors() {
    let out = compile(STAP_SOURCE).expect("Listing 1 must compile");
    // Chained RESHP+FFT, the cdotc loop, and the saxpy loop.
    assert_eq!(out.stats.descriptors, 3, "{:#?}", out.stats);
    assert_eq!(out.stats.chained_calls, 2);
    // 2 (chain) + 256*64*16*64 cdotc + 256 saxpy.
    assert_eq!(out.stats.dynamic_calls, 2 + 256 * 64 * 16 * 64 + 256);
}

#[test]
fn listing1_loop_compaction_matches_paper_claim() {
    // "more than 16M function calls of cblas_cdotc_sub are finally
    // translated into only one accelerator invocation" (§3.4).
    let out = compile(STAP_SOURCE).unwrap();
    let cdotc = out
        .tdl
        .iter()
        .find(|t| t.text.contains("COMP DOT"))
        .expect("cdotc descriptor present");
    assert_eq!(cdotc.calls_compacted, 256 * 64 * 16 * 64);
    assert!(cdotc.text.contains(&format!("LOOP {}", 256 * 64 * 16 * 64)));
}

#[test]
fn listing1_generated_tdl_all_parses() {
    let out = compile(STAP_SOURCE).unwrap();
    for gen in &out.tdl {
        let program = mealib_tdl::parse(&gen.text)
            .unwrap_or_else(|e| panic!("TDL for {} must parse: {e}", gen.plan_name));
        assert_eq!(program.total_invocations(), gen.calls_compacted);
    }
}

#[test]
fn listing1_allocations_are_rewritten() {
    let out = compile(STAP_SOURCE).unwrap();
    // Buffers used by accelerators move to MEALib memory...
    for buf in [
        "datacube",
        "datacube_pulse_major_padded",
        "datacube_doppler_major",
        "adaptive_weights",
        "snapshots",
        "prods",
    ] {
        assert!(
            out.source.contains(&format!("{buf} = mealib_mem_alloc(")),
            "{buf} must be rewritten\n{}",
            out.source
        );
        assert!(out.source.contains(&format!("mealib_mem_free({buf});")));
    }
    assert!(!out.source.contains(" = malloc("));
    assert!(!out.source.contains("fftwf_execute"));
}

#[test]
fn listing1_emits_runtime_calls_in_order() {
    let out = compile(STAP_SOURCE).unwrap();
    let p0 = out.source.find("mealib_acc_plan(tdl_0").expect("plan 0");
    let p1 = out.source.find("mealib_acc_plan(tdl_1").expect("plan 1");
    let p2 = out.source.find("mealib_acc_plan(tdl_2").expect("plan 2");
    assert!(p0 < p1 && p1 < p2, "descriptors emitted in source order");
    assert_eq!(out.source.matches("mealib_acc_execute(").count(), 3);
    assert_eq!(out.source.matches("mealib_acc_destroy(").count(), 3);
}

#[test]
fn output_is_stable_under_recompilation() {
    let a = compile(STAP_SOURCE).unwrap();
    let b = compile(STAP_SOURCE).unwrap();
    assert_eq!(a, b);
}
