//! Byte-level marshaling between host types and the simulated data space.

use mealib_types::Complex32;

/// Encodes `f32` values as little-endian bytes.
pub fn f32_to_bytes(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes little-endian bytes into `f32` values.
///
/// # Panics
///
/// Panics if the byte length is not a multiple of 4.
pub fn bytes_to_f32(bytes: &[u8]) -> Vec<f32> {
    assert!(
        bytes.len().is_multiple_of(4),
        "byte length must be a multiple of 4"
    );
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect()
}

/// Encodes interleaved complex values (re, im) as little-endian bytes —
/// MKL's `MKL_Complex8` layout.
pub fn c32_to_bytes(values: &[Complex32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.re.to_le_bytes());
        out.extend_from_slice(&v.im.to_le_bytes());
    }
    out
}

/// Decodes little-endian bytes into interleaved complex values.
///
/// # Panics
///
/// Panics if the byte length is not a multiple of 8.
pub fn bytes_to_c32(bytes: &[u8]) -> Vec<Complex32> {
    assert!(
        bytes.len().is_multiple_of(8),
        "byte length must be a multiple of 8"
    );
    bytes
        .chunks_exact(8)
        .map(|c| {
            Complex32::new(
                f32::from_le_bytes(c[0..4].try_into().expect("4 bytes")),
                f32::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_round_trip() {
        let v = vec![0.0, -1.5, f32::MAX, f32::MIN_POSITIVE];
        assert_eq!(bytes_to_f32(&f32_to_bytes(&v)), v);
    }

    #[test]
    fn c32_round_trip() {
        let v = vec![Complex32::new(1.0, -2.0), Complex32::I, Complex32::ZERO];
        assert_eq!(bytes_to_c32(&c32_to_bytes(&v)), v);
    }

    #[test]
    fn interleaved_layout_matches_mkl() {
        let bytes = c32_to_bytes(&[Complex32::new(1.0, 2.0)]);
        assert_eq!(&bytes[0..4], &1.0_f32.to_le_bytes());
        assert_eq!(&bytes[4..8], &2.0_f32.to_le_bytes());
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn misaligned_f32_rejected() {
        let _ = bytes_to_f32(&[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn misaligned_c32_rejected() {
        let _ = bytes_to_c32(&[0; 12]);
    }
}
