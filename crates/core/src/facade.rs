//! The [`Mealib`] handle: buffer management + descriptor invocation.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use mealib_accel::AccelParams;
use mealib_obs::{Breakdown, Obs, Recorder};
use mealib_runtime::{AccPlan, RunReport, Runtime, RuntimeError, Sanitizer, StackId, VerifyMode};
use mealib_tdl::ParamBag;
use mealib_types::{Bytes, Complex32, Gflops, Joules, Seconds, Watts};

use crate::buffers;

/// Errors surfaced by the MEALib public API.
#[derive(Debug)]
#[non_exhaustive]
pub enum MealibError {
    /// Underlying runtime failure (allocation, TDL, descriptor, CU).
    Runtime(RuntimeError),
    /// A named buffer does not exist.
    UnknownBuffer {
        /// The missing name.
        name: String,
    },
    /// Data does not fit the named buffer.
    SizeMismatch {
        /// The buffer.
        name: String,
        /// Bytes required.
        needed: u64,
        /// Bytes available.
        have: u64,
    },
}

impl fmt::Display for MealibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MealibError::Runtime(e) => e.fmt(f),
            MealibError::UnknownBuffer { name } => write!(f, "no buffer named `{name}`"),
            MealibError::SizeMismatch { name, needed, have } => {
                write!(
                    f,
                    "buffer `{name}` holds {have} bytes but {needed} are required"
                )
            }
        }
    }
}

impl std::error::Error for MealibError {}

impl From<RuntimeError> for MealibError {
    fn from(e: RuntimeError) -> Self {
        MealibError::Runtime(e)
    }
}

/// The modeled cost of one library operation.
#[derive(Debug, Clone, PartialEq)]
pub struct OpReport {
    run: RunReport,
}

impl OpReport {
    pub(crate) fn new(run: RunReport) -> Self {
        Self { run }
    }

    /// End-to-end modeled time (invocation overhead + CU + accelerators).
    pub fn time(&self) -> Seconds {
        self.run.total_time()
    }

    /// End-to-end modeled energy.
    pub fn energy(&self) -> Joules {
        self.run.total_energy()
    }

    /// Average power.
    pub fn power(&self) -> Watts {
        self.energy().over(self.time())
    }

    /// Achieved throughput over the accelerated work.
    pub fn gflops(&self) -> Gflops {
        let flops = self.run.run.execution().map_or(0, |e| e.flops);
        Gflops::from_flops(flops as f64, self.time())
    }

    /// Phase/counter itemization of the invocation. The breakdown's
    /// time and energy totals equal [`OpReport::time`] /
    /// [`OpReport::energy`] exactly.
    pub fn breakdown(&self) -> &Breakdown {
        &self.run.breakdown
    }

    /// Windowed roofline attribution of the invocation: which resource
    /// (bandwidth, compute, overhead, idle) bound each slice of modeled
    /// time. Windows cover 100% of [`OpReport::time`].
    pub fn attribution(&self) -> &mealib_obs::Attribution {
        &self.run.attribution
    }

    /// The time-resolved phase-interval profile of the invocation
    /// (exportable via [`mealib_obs::Profile::to_chrome_trace`]).
    pub fn profile(&self) -> mealib_obs::Profile {
        self.run.profile()
    }

    /// The underlying runtime report (breakdowns, invocation overheads).
    pub fn run(&self) -> &RunReport {
        &self.run
    }
}

/// Configures and builds a [`Mealib`] handle.
///
/// Obtained from [`Mealib::builder`]; every knob is optional and
/// defaults match the paper's shipping configuration (one 32-vault
/// stack, [`VerifyMode::Enforce`], instrumentation off, plan cache of
/// [`mealib_runtime::DEFAULT_PLAN_CACHE_CAPACITY`] entries).
///
/// ```
/// use mealib::Mealib;
///
/// let ml = Mealib::builder().stacks(2).build();
/// assert_eq!(ml.runtime().driver().stack_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct MealibBuilder {
    runtime: Option<Runtime>,
    stacks: Option<usize>,
    verify: Option<VerifyMode>,
    obs: Option<Obs>,
    plan_cache_capacity: Option<usize>,
    sanitizer: Option<Sanitizer>,
}

impl MealibBuilder {
    /// Uses an explicit, pre-configured runtime. Takes precedence over
    /// [`MealibBuilder::stacks`]; the other knobs still apply on top.
    pub fn runtime(mut self, rt: Runtime) -> Self {
        self.runtime = Some(rt);
        self
    }

    /// Number of memory stacks (stack 0 is the accelerators' LMS).
    pub fn stacks(mut self, stacks: usize) -> Self {
        self.stacks = Some(stacks);
        self
    }

    /// Static-verification policy for `acc_plan`.
    pub fn verify(mut self, mode: VerifyMode) -> Self {
        self.verify = Some(mode);
        self
    }

    /// Instrumentation sink for spans and counters.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Installs a recorder (shorthand for `obs(Obs::new(recorder))`).
    pub fn recorder(self, recorder: Arc<dyn Recorder + Send + Sync>) -> Self {
        self.obs(Obs::new(recorder))
    }

    /// Capacity of the `plan_cached` FIFO (0 disables caching).
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan_cache_capacity = Some(capacity);
        self
    }

    /// Installs a shadow-memory sanitizer ([`Sanitizer::active`]) that
    /// records every host access, flush, and descriptor execution and
    /// raises the MEA1xx dataflow diagnostics dynamically. Keep a clone
    /// of the handle to query [`Sanitizer::report`] afterwards.
    pub fn sanitizer(mut self, san: Sanitizer) -> Self {
        self.sanitizer = Some(san);
        self
    }

    /// Builds the handle.
    pub fn build(self) -> Mealib {
        let mut rt = match (self.runtime, self.stacks) {
            (Some(rt), _) => rt,
            (None, Some(stacks)) => Runtime::with_stack_count(stacks),
            (None, None) => Runtime::new(),
        };
        if let Some(mode) = self.verify {
            rt.set_verify_mode(mode);
        }
        if let Some(obs) = self.obs {
            rt.set_obs(obs);
        }
        if let Some(capacity) = self.plan_cache_capacity {
            rt.set_plan_cache_capacity(capacity);
        }
        if let Some(san) = self.sanitizer {
            rt.set_sanitizer(san);
        }
        Mealib {
            rt,
            logical: BTreeMap::new(),
            next_param: 0,
        }
    }
}

/// The MEALib library handle.
///
/// See the crate-level documentation for the usage flow.
#[derive(Debug, Clone)]
pub struct Mealib {
    rt: Runtime,
    /// Requested (logical) byte length of each buffer; allocations are
    /// page-rounded underneath.
    logical: BTreeMap<String, u64>,
    next_param: u64,
}

impl Mealib {
    /// Starts configuring a handle. `Mealib::builder().build()` yields
    /// the default configuration (32-vault stack, Haswell-class host).
    pub fn builder() -> MealibBuilder {
        MealibBuilder::default()
    }

    /// Creates a handle over the default runtime (32-vault stack,
    /// Haswell-class host).
    #[deprecated(since = "0.2.0", note = "use `Mealib::builder().build()`")]
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Creates a handle over an explicit runtime (custom layer or memory
    /// configuration).
    #[deprecated(since = "0.2.0", note = "use `Mealib::builder().runtime(rt).build()`")]
    pub fn with_runtime(rt: Runtime) -> Self {
        Self::builder().runtime(rt).build()
    }

    /// The underlying runtime (counters, driver, layer).
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// Allocates a named buffer of `len` `f32` elements.
    ///
    /// # Errors
    ///
    /// Returns a [`MealibError::Runtime`] on allocation failure.
    pub fn alloc_f32(&mut self, name: &str, len: usize) -> Result<(), MealibError> {
        self.alloc_bytes(name, len as u64 * 4)
    }

    /// Allocates a named buffer of `len` complex elements.
    ///
    /// # Errors
    ///
    /// Returns a [`MealibError::Runtime`] on allocation failure.
    pub fn alloc_c32(&mut self, name: &str, len: usize) -> Result<(), MealibError> {
        self.alloc_bytes(name, len as u64 * 8)
    }

    /// Allocates a named raw buffer.
    ///
    /// # Errors
    ///
    /// Returns a [`MealibError::Runtime`] on allocation failure.
    pub fn alloc_bytes(&mut self, name: &str, bytes: u64) -> Result<(), MealibError> {
        self.rt.mem_alloc(name, Bytes::new(bytes))?;
        self.logical.insert(name.to_string(), bytes);
        Ok(())
    }

    /// Allocates a named `f32` buffer on an explicit memory stack
    /// (stack 0 is the accelerators' LMS; remote placements execute over
    /// the inter-stack links at reduced bandwidth, §3.3).
    ///
    /// # Errors
    ///
    /// Returns a [`MealibError::Runtime`] for unknown stacks or
    /// allocation failure.
    pub fn alloc_f32_on(
        &mut self,
        name: &str,
        len: usize,
        stack: StackId,
    ) -> Result<(), MealibError> {
        let bytes = len as u64 * 4;
        self.rt.mem_alloc_on(name, Bytes::new(bytes), stack)?;
        self.logical.insert(name.to_string(), bytes);
        Ok(())
    }

    /// Frees a named buffer.
    ///
    /// # Errors
    ///
    /// Returns a [`MealibError::Runtime`] for unknown buffers.
    pub fn free(&mut self, name: &str) -> Result<(), MealibError> {
        self.rt.mem_free(name)?;
        self.logical.remove(name);
        Ok(())
    }

    /// Writes `f32` data into a buffer from offset zero.
    ///
    /// # Errors
    ///
    /// Returns [`MealibError::SizeMismatch`] if the data does not fit.
    pub fn write_f32(&mut self, name: &str, data: &[f32]) -> Result<(), MealibError> {
        self.write_raw(name, &buffers::f32_to_bytes(data))
    }

    /// Writes complex data into a buffer from offset zero.
    ///
    /// # Errors
    ///
    /// Returns [`MealibError::SizeMismatch`] if the data does not fit.
    pub fn write_c32(&mut self, name: &str, data: &[Complex32]) -> Result<(), MealibError> {
        self.write_raw(name, &buffers::c32_to_bytes(data))
    }

    /// Reads the whole logical extent of a buffer as `f32`s.
    ///
    /// # Errors
    ///
    /// Returns [`MealibError::UnknownBuffer`] for unknown names.
    pub fn read_f32(&self, name: &str) -> Result<Vec<f32>, MealibError> {
        Ok(buffers::bytes_to_f32(&self.read_raw(name)?))
    }

    /// Reads the whole logical extent of a buffer as complex values.
    ///
    /// # Errors
    ///
    /// Returns [`MealibError::UnknownBuffer`] for unknown names.
    pub fn read_c32(&self, name: &str) -> Result<Vec<Complex32>, MealibError> {
        Ok(buffers::bytes_to_c32(&self.read_raw(name)?))
    }

    /// Logical element count of a buffer, in `f32` units.
    ///
    /// # Errors
    ///
    /// Returns [`MealibError::UnknownBuffer`] for unknown names.
    pub fn len_f32(&self, name: &str) -> Result<usize, MealibError> {
        Ok(self.logical_bytes(name)? as usize / 4)
    }

    /// Logical element count of a buffer, in complex units.
    ///
    /// # Errors
    ///
    /// Returns [`MealibError::UnknownBuffer`] for unknown names.
    pub fn len_c32(&self, name: &str) -> Result<usize, MealibError> {
        Ok(self.logical_bytes(name)? as usize / 8)
    }

    /// Builds a plan from raw TDL and a parameter bag — the
    /// `mealib_acc_plan` entry point for compiler-generated code.
    ///
    /// # Errors
    ///
    /// Returns runtime errors for malformed TDL or unresolved buffers.
    pub fn plan(&mut self, tdl: &str, params: &ParamBag) -> Result<AccPlan, MealibError> {
        Ok(self.rt.acc_plan(tdl, params)?)
    }

    /// Like [`Mealib::plan`] but reuses a cached plan for identical
    /// (TDL, parameters) pairs — the descriptor-reuse pattern of
    /// Listing 2.
    ///
    /// # Errors
    ///
    /// Returns runtime errors for malformed TDL or unresolved buffers.
    pub fn plan_cached(&mut self, tdl: &str, params: &ParamBag) -> Result<AccPlan, MealibError> {
        Ok(self.rt.acc_plan_cached(tdl, params)?)
    }

    /// Writes back and invalidates the host cache (`wbinvd`), making
    /// accelerator stores visible to subsequent host reads. Returns the
    /// modeled flush time. Required between an operation and a host
    /// read-back for the access sequence to be coherence-clean under an
    /// installed [`Sanitizer`].
    pub fn sync(&mut self) -> Seconds {
        self.rt.cache_sync()
    }

    /// Executes a previously built plan (`mealib_acc_execute`), returning
    /// only the modeled cost — functional semantics for raw plans are the
    /// caller's business.
    ///
    /// # Errors
    ///
    /// Returns runtime errors (destroyed plan, CU failures).
    pub fn execute(&mut self, plan: &AccPlan) -> Result<RunReport, MealibError> {
        Ok(self.rt.acc_execute(plan)?)
    }

    pub(crate) fn write_raw(&mut self, name: &str, bytes: &[u8]) -> Result<(), MealibError> {
        let have = self.logical_bytes(name)?;
        if bytes.len() as u64 > have {
            return Err(MealibError::SizeMismatch {
                name: name.to_string(),
                needed: bytes.len() as u64,
                have,
            });
        }
        self.rt
            .driver_mut()
            .write(name, 0, bytes)
            .map_err(|e| MealibError::Runtime(RuntimeError::Driver(e)))
    }

    pub(crate) fn read_raw(&self, name: &str) -> Result<Vec<u8>, MealibError> {
        let len = self.logical_bytes(name)?;
        self.rt
            .driver()
            .read(name, 0, len)
            .map(<[u8]>::to_vec)
            .map_err(|e| MealibError::Runtime(RuntimeError::Driver(e)))
    }

    pub(crate) fn logical_bytes(&self, name: &str) -> Result<u64, MealibError> {
        self.logical
            .get(name)
            .copied()
            .ok_or_else(|| MealibError::UnknownBuffer {
                name: name.to_string(),
            })
    }

    /// Builds and executes a single-pass descriptor for one accelerator
    /// invocation, returning its modeled cost.
    ///
    /// This is the raw pricing entry point: unlike the typed operations
    /// ([`Mealib::saxpy`], [`Mealib::fft`], …) it does *not* compute
    /// functional results on the buffer contents — use it to cost
    /// hypothetical invocations or placements.
    ///
    /// # Errors
    ///
    /// Returns runtime errors (unknown buffers, malformed parameters).
    pub fn invoke(
        &mut self,
        params: AccelParams,
        input: &str,
        output: &str,
    ) -> Result<OpReport, MealibError> {
        self.invoke_chain(&[params], input, output)
    }

    /// Builds and executes one pass chaining several accelerators
    /// (modeled cost only; see [`Mealib::invoke`]).
    ///
    /// # Errors
    ///
    /// Returns runtime errors (unknown buffers, malformed parameters).
    pub fn invoke_chain(
        &mut self,
        stages: &[AccelParams],
        input: &str,
        output: &str,
    ) -> Result<OpReport, MealibError> {
        let mut bag = ParamBag::new();
        let mut comps = String::new();
        for (i, p) in stages.iter().enumerate() {
            let file = format!("p{}_{i}.para", self.next_param);
            comps.push_str(&format!(" COMP {} params=\"{file}\"", p.kind().keyword()));
            bag.insert(file, p.to_bytes());
        }
        self.next_param += 1;
        let tdl = format!("PASS in={input} out={output} {{{comps} }}");
        let plan = self.rt.acc_plan(&tdl, &bag)?;
        let run = self.rt.acc_execute(&plan)?;
        Ok(OpReport::new(run))
    }
}

impl Default for Mealib {
    fn default() -> Self {
        Self::builder().build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_round_trip() {
        let mut ml = Mealib::builder().build();
        ml.alloc_f32("x", 100).unwrap();
        let data: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        ml.write_f32("x", &data).unwrap();
        assert_eq!(ml.read_f32("x").unwrap(), data);
        assert_eq!(ml.len_f32("x").unwrap(), 100);
        ml.free("x").unwrap();
        assert!(matches!(
            ml.read_f32("x"),
            Err(MealibError::UnknownBuffer { .. })
        ));
    }

    #[test]
    fn complex_buffers_round_trip() {
        let mut ml = Mealib::builder().build();
        ml.alloc_c32("z", 8).unwrap();
        let data: Vec<Complex32> = (0..8).map(|i| Complex32::new(i as f32, -1.0)).collect();
        ml.write_c32("z", &data).unwrap();
        assert_eq!(ml.read_c32("z").unwrap(), data);
        assert_eq!(ml.len_c32("z").unwrap(), 8);
    }

    #[test]
    fn oversized_write_is_rejected() {
        let mut ml = Mealib::builder().build();
        ml.alloc_f32("x", 4).unwrap();
        let err = ml.write_f32("x", &[0.0; 5]).unwrap_err();
        assert!(matches!(
            err,
            MealibError::SizeMismatch {
                needed: 20,
                have: 16,
                ..
            }
        ));
    }

    #[test]
    fn remote_placement_is_visible_and_slower() {
        let mut ml = Mealib::builder().stacks(2).build();
        ml.alloc_f32("x", 1 << 22).unwrap();
        ml.alloc_f32_on("xr", 1 << 22, StackId(1)).unwrap();
        ml.alloc_f32("y", 1 << 22).unwrap();
        ml.alloc_f32_on("yr", 1 << 22, StackId(1)).unwrap();
        let op = AccelParams::Axpy {
            n: 1 << 22,
            alpha: 1.0,
            incx: 1,
            incy: 1,
        };
        let local = ml.invoke(op, "x", "y").unwrap();
        let remote = ml.invoke(op, "xr", "yr").unwrap();
        assert!(
            remote.time().get() > local.time().get(),
            "remote {} vs local {}",
            remote.time(),
            local.time()
        );
    }

    #[test]
    fn invoke_produces_nonzero_cost() {
        let mut ml = Mealib::builder().build();
        ml.alloc_f32("x", 1 << 16).unwrap();
        ml.alloc_f32("y", 1 << 16).unwrap();
        let report = ml
            .invoke(
                AccelParams::Axpy {
                    n: 1 << 16,
                    alpha: 1.0,
                    incx: 1,
                    incy: 1,
                },
                "x",
                "y",
            )
            .unwrap();
        assert!(report.time().get() > 0.0);
        assert!(report.energy().get() > 0.0);
        assert!(report.power().get() > 0.0);
        assert_eq!(ml.runtime().counters().executions, 1);
        // Time-resolved views ride along on every report.
        assert_eq!(report.attribution().coverage(), 1.0);
        let p = report.profile();
        assert!((p.end_time().get() - report.time().get()).abs() <= 1e-9 * report.time().get());
        mealib_obs::validate_chrome_trace(&p.to_chrome_trace()).expect("exportable");
    }

    #[test]
    fn builder_knobs_reach_the_runtime() {
        let rec = mealib_obs::TraceRecorder::shared();
        let mut ml = Mealib::builder()
            .verify(VerifyMode::Warn)
            .recorder(rec.clone())
            .plan_cache_capacity(4)
            .build();
        assert_eq!(ml.runtime().verify_mode(), VerifyMode::Warn);
        assert_eq!(ml.runtime().plan_cache_capacity(), 4);
        assert!(ml.runtime().obs().enabled());

        ml.alloc_f32("x", 1 << 12).unwrap();
        ml.alloc_f32("y", 1 << 12).unwrap();
        let report = ml
            .invoke(
                AccelParams::Axpy {
                    n: 1 << 12,
                    alpha: 1.0,
                    incx: 1,
                    incy: 1,
                },
                "x",
                "y",
            )
            .unwrap();

        // The invocation's breakdown reconciles with the report totals
        // and reaches the installed recorder.
        let bd = report.breakdown();
        assert!((bd.total_time().get() - report.time().get()).abs() <= 1e-12);
        assert!((bd.total_energy().get() - report.energy().get()).abs() <= 1e-9);
        let seen = rec.breakdown();
        assert!(seen.counter(mealib_obs::Counter::AllocBytes) >= 2 * (4 << 12));
        assert!(seen.counter(mealib_obs::Counter::CacheFlushes) >= 1);
    }

    #[test]
    fn sanitizer_knob_shadows_the_whole_flow() {
        let san = Sanitizer::active();
        let mut ml = Mealib::builder().sanitizer(san.clone()).build();
        ml.alloc_f32("x", 256).unwrap();
        ml.alloc_f32("y", 256).unwrap();
        ml.write_f32("x", &vec![1.0; 256]).unwrap();
        ml.write_f32("y", &vec![10.0; 256]).unwrap();
        ml.saxpy(2.0, "x", "y").unwrap();
        // Device wrote `y`; syncing before the read-back keeps the host
        // out of its stale cached lines.
        ml.sync();
        assert!(ml.read_f32("y").unwrap().iter().all(|&v| v == 12.0));
        let report = san.final_report();
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn sanitizer_flags_unsynced_read_back() {
        let san = Sanitizer::active();
        let mut ml = Mealib::builder().sanitizer(san.clone()).build();
        ml.alloc_f32("x", 64).unwrap();
        ml.alloc_f32("y", 64).unwrap();
        ml.write_f32("x", &vec![1.0; 64]).unwrap();
        ml.write_f32("y", &vec![0.0; 64]).unwrap();
        ml.saxpy(1.0, "x", "y").unwrap();
        // No sync: the host may observe pre-accelerator bytes.
        let _ = ml.read_f32("y").unwrap();
        assert!(san.report().has_code(mealib_types::ErrorCode::DfStaleRead));
    }

    #[test]
    fn raw_plan_interface_works() {
        let mut ml = Mealib::builder().build();
        ml.alloc_c32("a", 4096).unwrap();
        ml.alloc_c32("b", 4096).unwrap();
        let mut bag = ParamBag::new();
        bag.insert(
            "fft.para".into(),
            AccelParams::Fft { n: 1024, batch: 4 }.to_bytes(),
        );
        let plan = ml
            .plan("PASS in=a out=b { COMP FFT params=\"fft.para\" }", &bag)
            .unwrap();
        let run = ml.execute(&plan).unwrap();
        assert!(run.total_time().get() > 0.0);
    }
}
