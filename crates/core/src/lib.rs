//! # MEALib — MEmory Accelerated Library
//!
//! The public API of the MEALib reproduction (MICRO-48 2015): library
//! operations with MKL-shaped semantics that execute *functionally* on
//! simulated accelerator-managed memory while every invocation is priced
//! by the full hardware model (3D-stacked DRAM + tiled accelerator layer
//! + configuration unit + host-side invocation overheads).
//!
//! The flow mirrors the paper's Figure 7:
//!
//! 1. allocate named buffers in the physically contiguous data space
//!    ([`Mealib::alloc_f32`] / [`Mealib::alloc_c32`]) and initialize them
//!    from the host ([`Mealib::write_f32`] …);
//! 2. call a library operation ([`Mealib::saxpy`], [`Mealib::fft`], …):
//!    the runtime builds the TDL descriptor, flushes the cache, writes
//!    the command space, and the Configuration Unit model executes it;
//! 3. read results back ([`Mealib::read_f32`] …) and inspect the
//!    [`OpReport`] for modeled time, energy, and throughput.
//!
//! # Examples
//!
//! ```
//! use mealib::Mealib;
//!
//! let mut ml = Mealib::builder().build();
//! ml.alloc_f32("x", 1024)?;
//! ml.alloc_f32("y", 1024)?;
//! ml.write_f32("x", &vec![1.0; 1024])?;
//! ml.write_f32("y", &vec![2.0; 1024])?;
//! let report = ml.saxpy(3.0, "x", "y")?;
//! assert_eq!(ml.read_f32("y")?[0], 5.0);
//! assert!(report.time().get() > 0.0);
//! # Ok::<(), mealib::MealibError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffers;
mod facade;
mod ops;

pub use facade::{Mealib, MealibBuilder, MealibError, OpReport};
pub use mealib_accel::AccelParams;
pub use mealib_obs::{Breakdown, Counter, Obs, Phase, Recorder, TraceRecorder};
pub use mealib_runtime::{AccPlan, RunReport, Sanitizer, StackId, VerifyMode};
pub use mealib_types::Complex32;

/// Convenience re-exports for downstream code.
pub mod prelude {
    pub use crate::{Mealib, MealibBuilder, MealibError, OpReport};
    pub use mealib_kernels::CsrMatrix;
    pub use mealib_obs::{Breakdown, Obs, TraceRecorder};
    pub use mealib_types::{Bytes, Complex32, Joules, Seconds, Watts};
}
