//! Typed library operations: MKL-shaped semantics, functional results on
//! the simulated data space, modeled accelerator cost.

use mealib_accel::AccelParams;
use mealib_kernels::{blas1, blas2, fft, resample, reshape, CsrMatrix};
use mealib_types::Complex32;

use crate::facade::{Mealib, MealibError, OpReport};

impl Mealib {
    /// `y ← α·x + y` (`cblas_saxpy`). Both buffers must hold the same
    /// number of `f32` elements.
    ///
    /// # Errors
    ///
    /// Returns buffer or runtime errors.
    pub fn saxpy(&mut self, alpha: f32, x: &str, y: &str) -> Result<OpReport, MealibError> {
        let xv = self.read_f32(x)?;
        let mut yv = self.read_f32(y)?;
        self.expect_len(y, yv.len(), xv.len())?;
        blas1::saxpy(alpha, &xv, &mut yv);
        self.write_f32(y, &yv)?;
        self.invoke(
            AccelParams::Axpy {
                n: xv.len() as u64,
                alpha,
                incx: 1,
                incy: 1,
            },
            x,
            y,
        )
    }

    /// Dot product (`cblas_sdot`), returning the scalar and the cost.
    ///
    /// # Errors
    ///
    /// Returns buffer or runtime errors.
    pub fn sdot(&mut self, x: &str, y: &str) -> Result<(f32, OpReport), MealibError> {
        let xv = self.read_f32(x)?;
        let yv = self.read_f32(y)?;
        self.expect_len(y, yv.len(), xv.len())?;
        let value = blas1::sdot(&xv, &yv);
        let report = self.invoke(
            AccelParams::Dot {
                n: xv.len() as u64,
                incx: 1,
                incy: 1,
                complex: false,
            },
            x,
            y,
        )?;
        Ok((value, report))
    }

    /// Conjugated complex dot product (`cblas_cdotc_sub`).
    ///
    /// # Errors
    ///
    /// Returns buffer or runtime errors.
    pub fn cdotc(&mut self, x: &str, y: &str) -> Result<(Complex32, OpReport), MealibError> {
        let xv = self.read_c32(x)?;
        let yv = self.read_c32(y)?;
        self.expect_len(y, yv.len(), xv.len())?;
        let value = blas1::cdotc(&xv, &yv);
        let report = self.invoke(
            AccelParams::Dot {
                n: xv.len() as u64,
                incx: 1,
                incy: 1,
                complex: true,
            },
            x,
            y,
        )?;
        Ok((value, report))
    }

    /// `y ← A·x` (`cblas_sgemv`, no transpose): `a` holds `m × n`
    /// row-major, `x` holds `n`, `y` receives `m`.
    ///
    /// # Errors
    ///
    /// Returns buffer or runtime errors.
    pub fn sgemv(
        &mut self,
        a: &str,
        x: &str,
        y: &str,
        m: usize,
        n: usize,
    ) -> Result<OpReport, MealibError> {
        let av = self.read_f32(a)?;
        let xv = self.read_f32(x)?;
        self.expect_len(a, av.len(), m * n)?;
        self.expect_len(x, xv.len(), n)?;
        self.expect_len(y, self.len_f32(y)?, m)?;
        let view = blas2::MatrixRef::dense(&av[..m * n], m, n);
        let mut yv = vec![0.0f32; m];
        blas2::sgemv(1.0, view, &xv[..n], 0.0, &mut yv);
        self.write_f32(y, &yv)?;
        self.invoke(
            AccelParams::Gemv {
                m: m as u64,
                n: n as u64,
            },
            a,
            y,
        )
    }

    /// Sparse `y ← A·x` (`mkl_scsrgemv`). The CSR matrix is provided by
    /// reference; its arrays are modeled as accelerator-resident.
    ///
    /// # Errors
    ///
    /// Returns buffer or runtime errors.
    pub fn spmv(&mut self, a: &CsrMatrix, x: &str, y: &str) -> Result<OpReport, MealibError> {
        let xv = self.read_f32(x)?;
        self.expect_len(x, xv.len(), a.cols())?;
        self.expect_len(y, self.len_f32(y)?, a.rows())?;
        let yv = a.spmv(&xv[..a.cols()]);
        self.write_f32(y, &yv)?;
        self.invoke(
            AccelParams::Spmv {
                rows: a.rows() as u64,
                cols: a.cols() as u64,
                nnz: a.nnz() as u64,
            },
            x,
            y,
        )
    }

    /// Batched complex FFT (`fftwf_execute`): `count` transforms of
    /// length `n` stored back to back in `input`, written to `output`.
    ///
    /// # Errors
    ///
    /// Returns buffer or runtime errors.
    pub fn fft(
        &mut self,
        input: &str,
        output: &str,
        n: usize,
        count: usize,
        dir: fft::Direction,
    ) -> Result<OpReport, MealibError> {
        let mut data = self.read_c32(input)?;
        self.expect_len(input, data.len(), n * count)?;
        data.truncate(n * count);
        let plan = fft::FftPlan::new(n);
        plan.execute_batch(&mut data, count, dir);
        self.write_c32(output, &data)?;
        self.invoke(
            AccelParams::Fft {
                n: n as u64,
                batch: count as u64,
            },
            input,
            output,
        )
    }

    /// Matrix transpose (`mkl_simatcopy`-style, out of place): `input`
    /// holds `rows × cols` row-major `f32`, `output` receives the
    /// transpose.
    ///
    /// # Errors
    ///
    /// Returns buffer or runtime errors.
    pub fn transpose(
        &mut self,
        input: &str,
        output: &str,
        rows: usize,
        cols: usize,
    ) -> Result<OpReport, MealibError> {
        let data = self.read_f32(input)?;
        self.expect_len(input, data.len(), rows * cols)?;
        let t = reshape::transpose(&data[..rows * cols], rows, cols);
        self.write_f32(output, &t)?;
        self.invoke(
            AccelParams::Reshp {
                rows: rows as u64,
                cols: cols as u64,
                elem_bytes: 4,
            },
            input,
            output,
        )
    }

    /// Block resampling (`dfsInterpolate1D` batched): each of `blocks`
    /// contiguous blocks of `in_per_block` samples is linearly resampled
    /// to `out_per_block` samples.
    ///
    /// # Errors
    ///
    /// Returns buffer or runtime errors.
    pub fn resample(
        &mut self,
        input: &str,
        output: &str,
        blocks: usize,
        in_per_block: usize,
        out_per_block: usize,
    ) -> Result<OpReport, MealibError> {
        let data = self.read_f32(input)?;
        self.expect_len(input, data.len(), blocks * in_per_block)?;
        let out = resample::resample_blocks(&data[..blocks * in_per_block], blocks, out_per_block);
        self.write_f32(output, &out)?;
        self.invoke(
            AccelParams::Resmp {
                blocks: blocks as u64,
                in_per_block: in_per_block as u64,
                out_per_block: out_per_block as u64,
            },
            input,
            output,
        )
    }

    /// Chained resample → FFT in one hardware pass (the SAR datapath of
    /// §5.4): resamples each block, then FFTs each resampled block
    /// (lengths must be powers of two).
    ///
    /// # Errors
    ///
    /// Returns buffer or runtime errors.
    pub fn resample_fft_chained(
        &mut self,
        input: &str,
        output: &str,
        blocks: usize,
        in_per_block: usize,
        out_per_block: usize,
    ) -> Result<OpReport, MealibError> {
        let data = self.read_c32(input)?;
        self.expect_len(input, data.len(), blocks * in_per_block)?;
        // Functional: per-block complex resample, then per-block FFT.
        let mut out: Vec<Complex32> = Vec::with_capacity(blocks * out_per_block);
        let positions: Vec<f32> = (0..out_per_block)
            .map(|i| {
                i as f32 * (in_per_block.saturating_sub(1)) as f32
                    / (out_per_block - 1).max(1) as f32
            })
            .collect();
        for b in 0..blocks {
            let chunk = &data[b * in_per_block..(b + 1) * in_per_block];
            out.extend(resample::interpolate1d_complex(chunk, &positions));
        }
        let plan = fft::FftPlan::new(out_per_block);
        plan.execute_batch(&mut out, blocks, fft::Direction::Forward);
        self.write_c32(output, &out)?;
        self.invoke_chain(
            &[
                AccelParams::Resmp {
                    blocks: blocks as u64,
                    in_per_block: in_per_block as u64,
                    out_per_block: out_per_block as u64,
                },
                AccelParams::Fft {
                    n: out_per_block as u64,
                    batch: blocks as u64,
                },
            ],
            input,
            output,
        )
    }

    /// A batch of independent conjugated dot products through one
    /// hardware `LOOP` descriptor — the compacted form the compiler
    /// produces for STAP's weight-application nest (§3.4).
    ///
    /// `x` holds `count` vectors of `n` complex elements back to back;
    /// `y` likewise; the result vector holds `count` products. Returns
    /// the products and the cost of the single descriptor that replaces
    /// `count` library calls.
    ///
    /// # Errors
    ///
    /// Returns buffer or runtime errors.
    pub fn batch_cdotc(
        &mut self,
        x: &str,
        y: &str,
        n: usize,
        count: usize,
    ) -> Result<(Vec<Complex32>, OpReport), MealibError> {
        let xv = self.read_c32(x)?;
        let yv = self.read_c32(y)?;
        self.expect_len(x, xv.len(), n * count)?;
        self.expect_len(y, yv.len(), n * count)?;
        let products: Vec<Complex32> = (0..count)
            .map(|i| blas1::cdotc(&xv[i * n..(i + 1) * n], &yv[i * n..(i + 1) * n]))
            .collect();

        // One LOOP descriptor compacting all `count` invocations.
        let params = AccelParams::Dot {
            n: n as u64,
            incx: 1,
            incy: 1,
            complex: true,
        };
        let mut bag = mealib_tdl::ParamBag::new();
        bag.insert("dot.para".into(), params.to_bytes());
        let tdl =
            format!("LOOP {count} {{ PASS in={x} out={y} {{ COMP DOT params=\"dot.para\" }} }}");
        let plan = self.plan(&tdl, &bag)?;
        let run = self.execute(&plan)?;
        Ok((products, OpReport::new(run)))
    }

    /// A batch of independent `saxpy` updates through one hardware
    /// `LOOP` descriptor: `count` segments of `n` elements each,
    /// `y[i] ← α·x[i] + y[i]`.
    ///
    /// # Errors
    ///
    /// Returns buffer or runtime errors.
    pub fn batch_saxpy(
        &mut self,
        alpha: f32,
        x: &str,
        y: &str,
        n: usize,
        count: usize,
    ) -> Result<OpReport, MealibError> {
        let xv = self.read_f32(x)?;
        let mut yv = self.read_f32(y)?;
        self.expect_len(x, xv.len(), n * count)?;
        self.expect_len(y, yv.len(), n * count)?;
        for i in 0..count {
            blas1::saxpy(alpha, &xv[i * n..(i + 1) * n], &mut yv[i * n..(i + 1) * n]);
        }
        self.write_f32(y, &yv)?;
        let params = AccelParams::Axpy {
            n: n as u64,
            alpha,
            incx: 1,
            incy: 1,
        };
        let mut bag = mealib_tdl::ParamBag::new();
        bag.insert("axpy.para".into(), params.to_bytes());
        let tdl =
            format!("LOOP {count} {{ PASS in={x} out={y} {{ COMP AXPY params=\"axpy.para\" }} }}");
        let plan = self.plan(&tdl, &bag)?;
        let run = self.execute(&plan)?;
        Ok(OpReport::new(run))
    }

    fn expect_len(&self, name: &str, have: usize, need: usize) -> Result<(), MealibError> {
        if have < need {
            return Err(MealibError::SizeMismatch {
                name: name.to_string(),
                needed: need as u64,
                have: have as u64,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_kernels::fft::Direction;

    fn ml_with(pairs: &[(&str, usize)]) -> Mealib {
        let mut ml = Mealib::builder().build();
        for (name, len) in pairs {
            ml.alloc_f32(name, *len).unwrap();
        }
        ml
    }

    #[test]
    fn saxpy_computes_and_prices() {
        let mut ml = ml_with(&[("x", 256), ("y", 256)]);
        ml.write_f32("x", &vec![1.0; 256]).unwrap();
        ml.write_f32("y", &vec![10.0; 256]).unwrap();
        let r = ml.saxpy(2.0, "x", "y").unwrap();
        assert!(ml.read_f32("y").unwrap().iter().all(|&v| v == 12.0));
        assert!(r.time().get() > 0.0);
    }

    #[test]
    fn sdot_matches_kernel() {
        let mut ml = ml_with(&[("x", 64), ("y", 64)]);
        let xv: Vec<f32> = (0..64).map(|i| i as f32).collect();
        ml.write_f32("x", &xv).unwrap();
        ml.write_f32("y", &vec![2.0; 64]).unwrap();
        let (value, _) = ml.sdot("x", "y").unwrap();
        let want: f32 = xv.iter().map(|v| v * 2.0).sum();
        assert!((value - want).abs() < 1e-3);
    }

    #[test]
    fn cdotc_conjugates() {
        let mut ml = Mealib::builder().build();
        ml.alloc_c32("x", 4).unwrap();
        ml.alloc_c32("y", 4).unwrap();
        ml.write_c32("x", &[Complex32::I; 4]).unwrap();
        ml.write_c32("y", &[Complex32::I; 4]).unwrap();
        let (value, _) = ml.cdotc("x", "y").unwrap();
        assert!((value - Complex32::new(4.0, 0.0)).abs() < 1e-5);
    }

    #[test]
    fn gemv_multiplies() {
        let mut ml = ml_with(&[("a", 6), ("x", 3), ("y", 2)]);
        ml.write_f32("a", &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        ml.write_f32("x", &[1.0, 1.0, 1.0]).unwrap();
        ml.sgemv("a", "x", "y", 2, 3).unwrap();
        assert_eq!(ml.read_f32("y").unwrap(), vec![6.0, 15.0]);
    }

    #[test]
    fn spmv_multiplies() {
        let mut ml = ml_with(&[("x", 3), ("y", 2)]);
        ml.write_f32("x", &[1.0, 2.0, 3.0]).unwrap();
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 1.0), (1, 1, 5.0)]);
        ml.spmv(&a, "x", "y").unwrap();
        assert_eq!(ml.read_f32("y").unwrap(), vec![4.0, 10.0]);
    }

    #[test]
    fn fft_round_trips_through_buffers() {
        let mut ml = Mealib::builder().build();
        ml.alloc_c32("t", 64).unwrap();
        ml.alloc_c32("f", 64).unwrap();
        let signal: Vec<Complex32> = (0..64)
            .map(|i| Complex32::new((i as f32 * 0.3).sin(), 0.0))
            .collect();
        ml.write_c32("t", &signal).unwrap();
        ml.fft("t", "f", 64, 1, Direction::Forward).unwrap();
        ml.fft("f", "t", 64, 1, Direction::Inverse).unwrap();
        let back = ml.read_c32("t").unwrap();
        for (a, b) in back.iter().zip(&signal) {
            assert!((*a - *b).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_transposes() {
        let mut ml = ml_with(&[("in", 6), ("out", 6)]);
        ml.write_f32("in", &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        ml.transpose("in", "out", 2, 3).unwrap();
        assert_eq!(
            ml.read_f32("out").unwrap(),
            vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]
        );
    }

    #[test]
    fn resample_preserves_block_endpoints() {
        let mut ml = ml_with(&[("in", 8), ("out", 16)]);
        ml.write_f32("in", &[0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0])
            .unwrap();
        ml.resample("in", "out", 2, 4, 8).unwrap();
        let out = ml.read_f32("out").unwrap();
        assert_eq!(out[0], 0.0);
        assert!((out[7] - 3.0).abs() < 1e-5);
        assert_eq!(out[8], 10.0);
        assert!((out[15] - 13.0).abs() < 1e-5);
    }

    #[test]
    fn chained_resample_fft_is_cheaper_than_separate() {
        let mut ml = Mealib::builder().build();
        for name in ["in", "mid", "out"] {
            ml.alloc_c32(name, 256 * 256).unwrap();
        }
        let data: Vec<Complex32> = (0..256 * 256)
            .map(|i| Complex32::new((i % 97) as f32, 0.0))
            .collect();
        ml.write_c32("in", &data).unwrap();
        let chained = ml.resample_fft_chained("in", "out", 256, 256, 256).unwrap();

        // Separate: resample into mid (complex treated per-component via
        // two invocations priced separately here) then FFT.
        let r1 = ml
            .invoke(
                AccelParams::Resmp {
                    blocks: 256,
                    in_per_block: 256,
                    out_per_block: 256,
                },
                "in",
                "mid",
            )
            .unwrap();
        let r2 = ml
            .invoke(AccelParams::Fft { n: 256, batch: 256 }, "mid", "out")
            .unwrap();
        let separate = r1.time() + r2.time();
        assert!(
            separate.get() > chained.time().get(),
            "separate {} vs chained {}",
            separate,
            chained.time()
        );
    }

    #[test]
    fn batch_cdotc_matches_per_call_results() {
        let mut ml = Mealib::builder().build();
        let (n, count) = (12, 64);
        ml.alloc_c32("w", n * count).unwrap();
        ml.alloc_c32("s", n * count).unwrap();
        let w: Vec<Complex32> = (0..n * count)
            .map(|i| Complex32::new((i as f32 * 0.13).sin(), (i as f32 * 0.07).cos()))
            .collect();
        let s: Vec<Complex32> = (0..n * count)
            .map(|i| Complex32::new(1.0, i as f32 * 0.01))
            .collect();
        ml.write_c32("w", &w).unwrap();
        ml.write_c32("s", &s).unwrap();
        let (products, report) = ml.batch_cdotc("w", "s", n, count).unwrap();
        assert_eq!(products.len(), count);
        for i in 0..count {
            let want = mealib_kernels::blas1::cdotc(&w[i * n..(i + 1) * n], &s[i * n..(i + 1) * n]);
            assert!((products[i] - want).abs() < 1e-4);
        }
        // One descriptor, `count` invocations.
        assert_eq!(ml.runtime().counters().executions, 1);
        assert_eq!(ml.runtime().counters().invocations, count as u64);
        assert!(report.time().get() > 0.0);
    }

    #[test]
    fn batch_saxpy_updates_every_segment() {
        let mut ml = ml_with(&[("x", 4 * 8), ("y", 4 * 8)]);
        ml.write_f32("x", &[1.0; 32]).unwrap();
        ml.write_f32("y", &[10.0; 32]).unwrap();
        ml.batch_saxpy(0.5, "x", "y", 4, 8).unwrap();
        assert!(ml.read_f32("y").unwrap().iter().all(|&v| v == 10.5));
        assert_eq!(ml.runtime().counters().invocations, 8);
    }

    #[test]
    fn batch_is_cheaper_than_individual_calls() {
        let (n, count) = (12usize, 4096usize);
        let data = vec![Complex32::ONE; n * count];

        let mut batched = Mealib::builder().build();
        batched.alloc_c32("w", n * count).unwrap();
        batched.alloc_c32("s", n * count).unwrap();
        batched.write_c32("w", &data).unwrap();
        batched.write_c32("s", &data).unwrap();
        let (_, report) = batched.batch_cdotc("w", "s", n, count).unwrap();

        let mut singly = Mealib::builder().build();
        singly.alloc_c32("w", n).unwrap();
        singly.alloc_c32("s", n).unwrap();
        singly.write_c32("w", &data[..n]).unwrap();
        singly.write_c32("s", &data[..n]).unwrap();
        let (_, one) = singly.cdotc("w", "s").unwrap();
        let total_singly = one.time() * count as f64;

        assert!(
            total_singly.get() > 20.0 * report.time().get(),
            "batched {} vs {} singly",
            report.time(),
            total_singly
        );
    }

    #[test]
    fn shape_errors_are_reported() {
        let mut ml = ml_with(&[("a", 4), ("x", 2), ("y", 2)]);
        assert!(matches!(
            ml.sgemv("a", "x", "y", 4, 4),
            Err(MealibError::SizeMismatch { .. })
        ));
    }
}
