//! Roofline execution of library operations on a host platform.

use mealib_accel::AccelParams;
use mealib_memsim::{analytic, AccessPattern};
use mealib_types::{Gflops, Joules, Seconds, Watts};

use crate::platform::Platform;
use crate::profiles::{self, OpEfficiency};

pub use crate::profiles::CodeFlavor;

/// Result of one host-side execution.
#[derive(Debug, Clone, PartialEq)]
pub struct HostReport {
    /// Platform name.
    pub platform: String,
    /// End-to-end time.
    pub time: Seconds,
    /// Memory time in isolation.
    pub mem_time: Seconds,
    /// Compute time in isolation.
    pub compute_time: Seconds,
    /// Package + DRAM energy.
    pub energy: Joules,
    /// FLOPs executed.
    pub flops: u64,
    /// DRAM bytes moved.
    pub bytes: u64,
}

impl HostReport {
    /// Achieved floating-point throughput.
    pub fn gflops(&self) -> Gflops {
        Gflops::from_flops(self.flops as f64, self.time)
    }

    /// Average power over the execution.
    pub fn power(&self) -> Watts {
        self.energy.over(self.time)
    }

    /// Energy efficiency in GFLOPS/W.
    pub fn gflops_per_watt(&self) -> f64 {
        self.gflops().per_watt(self.power())
    }

    /// Useful data rate (the paper's RESHP metric), GB/s.
    pub fn gbytes_per_sec(&self) -> f64 {
        self.bytes as f64 / self.time.get() * 1e-9
    }

    /// Sequential composition.
    pub fn then(&self, other: &HostReport) -> HostReport {
        HostReport {
            platform: self.platform.clone(),
            time: self.time + other.time,
            mem_time: self.mem_time + other.mem_time,
            compute_time: self.compute_time + other.compute_time,
            energy: self.energy + other.energy,
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
        }
    }

    /// `count` back-to-back repetitions.
    pub fn repeat(&self, count: u64) -> HostReport {
        let n = count as f64;
        HostReport {
            platform: self.platform.clone(),
            time: self.time * n,
            mem_time: self.mem_time * n,
            compute_time: self.compute_time * n,
            energy: self.energy * n,
            flops: self.flops * count,
            bytes: self.bytes * count,
        }
    }

    /// Splits this roofline interval into `compute` (the
    /// compute-limited portion) and `dma` (the remainder the memory
    /// system keeps the core waiting for), with energy attributed
    /// proportionally. The phase sums equal `time` / `energy` exactly.
    pub fn breakdown(&self) -> mealib_obs::Breakdown {
        use mealib_obs::Phase;
        let mut bd = mealib_obs::Breakdown::new();
        let compute = self.compute_time.min(self.time);
        let dma = self.time - compute;
        let compute_energy = if self.time.get() > 0.0 {
            self.energy * (compute.get() / self.time.get())
        } else {
            Joules::ZERO
        };
        bd.add_phase(Phase::Compute, compute, compute_energy);
        bd.add_phase(Phase::Dma, dma, self.energy - compute_energy);
        bd
    }

    /// Records this run's roofline phase costs and host counters into
    /// an observability handle. A no-op when recording is off.
    pub fn record_into(&self, obs: &mealib_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        obs.record_breakdown(&self.breakdown(), &self.platform);
        obs.count(mealib_obs::Counter::HostFlops, self.flops);
        obs.count(mealib_obs::Counter::HostBytes, self.bytes);
    }
}

/// Runs `op` on `platform` with the given code flavour.
///
/// Time is the roofline maximum of the memory and compute times; energy
/// is RAPL-style package power over the interval plus DRAM energy from
/// the memory model.
pub fn run_op(platform: &Platform, op: &AccelParams, flavor: CodeFlavor) -> HostReport {
    op.validate().expect("invalid operation parameters");
    let OpEfficiency {
        bw_fraction,
        compute_fraction,
    } = profiles::efficiency(platform.class, op.kind(), flavor);

    let bytes = profiles::traffic_bytes(op, flavor);
    let flops = profiles::flops(op);

    let bw = platform.peak_bandwidth().get() * bw_fraction;
    let mem_time = Seconds::new(bytes as f64 / bw);

    let thread_factor = match flavor {
        CodeFlavor::Library => platform.thread_efficiency.max(1.0 / platform.cores as f64),
        CodeFlavor::Naive => 1.0 / platform.cores as f64,
    };
    let compute_time = if flops == 0 {
        Seconds::ZERO
    } else {
        Seconds::new(flops as f64 / (platform.peak_flops() * compute_fraction * thread_factor))
    };

    let time = mem_time.max(compute_time);

    // Package power: memory-bound phases keep the cores partly busy
    // (stalled but clocked); compute-bound phases run flat out.
    let util = if time.is_zero() {
        0.0
    } else {
        let compute_share = compute_time / time;
        let threads_share = match flavor {
            CodeFlavor::Library => 1.0,
            CodeFlavor::Naive => 1.0 / platform.cores as f64,
        };
        (compute_share * 1.0 + (1.0 - compute_share) * 0.55) * threads_share
    };
    let package_energy = platform.package.at_utilization(util).for_duration(time);

    // DRAM energy for the same traffic.
    let dram = analytic::try_estimate(&platform.mem, &AccessPattern::sequential_read(bytes))
        .expect("validated platform memory config");
    let dram_energy = platform
        .mem
        .energy
        .trace_energy(dram.activations, bytes, time);

    HostReport {
        platform: platform.name.clone(),
        time,
        mem_time,
        compute_time,
        energy: package_energy + dram_energy,
        flops,
        bytes,
    }
}

/// Prices a custom host job from first principles: `flops` of arithmetic
/// and `bytes` of DRAM traffic at the given sustained fractions of the
/// platform peaks, plus `calls` invocations of fixed `per_call` overhead
/// (function-call and loop bookkeeping for fine-grained library calls).
///
/// Used by workloads whose phases are not Table 1 operations (e.g.
/// STAP's `cherk`/`ctrsm`, or host-side loops of millions of tiny
/// `cdotc` calls).
pub fn run_custom(
    platform: &Platform,
    flops: u64,
    bytes: u64,
    compute_fraction: f64,
    bw_fraction: f64,
    calls: u64,
    per_call: Seconds,
) -> HostReport {
    assert!(
        compute_fraction > 0.0 && bw_fraction > 0.0,
        "fractions must be positive"
    );
    let mem_time = Seconds::new(bytes as f64 / (platform.peak_bandwidth().get() * bw_fraction));
    let compute_time = if flops == 0 {
        Seconds::ZERO
    } else {
        Seconds::new(
            flops as f64 / (platform.peak_flops() * compute_fraction * platform.thread_efficiency),
        )
    };
    let overhead = per_call * calls as f64;
    let time = mem_time.max(compute_time) + overhead;
    let util = if time.is_zero() {
        0.0
    } else {
        let compute_share = compute_time / time;
        compute_share + (1.0 - compute_share) * 0.55
    };
    let package_energy = platform.package.at_utilization(util).for_duration(time);
    let dram = analytic::try_estimate(&platform.mem, &AccessPattern::sequential_read(bytes))
        .expect("validated platform memory config");
    let dram_energy = platform
        .mem
        .energy
        .trace_energy(dram.activations, bytes, time);
    HostReport {
        platform: platform.name.clone(),
        time,
        mem_time,
        compute_time,
        energy: package_energy + dram_energy,
        flops,
        bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axpy(n: u64) -> AccelParams {
        AccelParams::Axpy {
            n,
            alpha: 2.0,
            incx: 1,
            incy: 1,
        }
    }

    #[test]
    fn breakdown_partitions_the_roofline_interval() {
        use mealib_obs::{Counter, Obs, Phase, TraceRecorder};
        let r = run_op(&Platform::haswell(), &axpy(1 << 24), CodeFlavor::Library);
        let bd = r.breakdown();
        let t = bd.phase(Phase::Compute).time + bd.phase(Phase::Dma).time;
        let e = bd.phase(Phase::Compute).energy + bd.phase(Phase::Dma).energy;
        assert!((t.get() - r.time.get()).abs() <= 1e-12 * r.time.get());
        assert!((e.get() - r.energy.get()).abs() <= 1e-9 * r.energy.get());
        // AXPY is bandwidth-bound on the host: dma dominates.
        assert!(bd.phase(Phase::Dma).time > bd.phase(Phase::Compute).time);

        let rec = TraceRecorder::shared();
        r.record_into(&Obs::new(rec.clone()));
        let got = rec.breakdown();
        assert_eq!(got.counter(Counter::HostFlops), r.flops);
        assert_eq!(got.counter(Counter::HostBytes), r.bytes);
    }

    #[test]
    fn memory_bound_ops_are_bandwidth_limited_on_haswell() {
        let h = Platform::haswell();
        let r = run_op(&h, &axpy(1 << 28), CodeFlavor::Library);
        assert!(r.mem_time > r.compute_time, "AXPY is memory-bound");
        // ~3 GB at ~22.5 GB/s ≈ 0.14 s.
        assert!((0.05..0.5).contains(&r.time.get()), "{}", r.time);
    }

    #[test]
    fn library_beats_naive_substantially() {
        let h = Platform::haswell();
        // A compute-heavy op shows the full SIMD+threads gap (Fig. 1).
        let op = AccelParams::Fft {
            n: 8192,
            batch: 8192,
        };
        let lib = run_op(&h, &op, CodeFlavor::Library);
        let naive = run_op(&h, &op, CodeFlavor::Naive);
        let speedup = naive.time / lib.time;
        assert!(
            (4.0..80.0).contains(&speedup),
            "library speedup {speedup:.1}x out of Fig 1 range"
        );
    }

    #[test]
    fn haswell_fft_power_is_tens_of_watts() {
        let h = Platform::haswell();
        let r = run_op(
            &h,
            &AccelParams::Fft {
                n: 8192,
                batch: 8192,
            },
            CodeFlavor::Library,
        );
        let p = r.power().get();
        // Paper: 48 W for the FFT operation on Haswell.
        assert!((25.0..70.0).contains(&p), "Haswell FFT power {p:.1} W");
    }

    #[test]
    fn xeon_phi_draws_more_power_than_haswell() {
        let op = AccelParams::Fft {
            n: 8192,
            batch: 8192,
        };
        let h = run_op(&Platform::haswell(), &op, CodeFlavor::Library);
        let p = run_op(&Platform::xeon_phi(), &op, CodeFlavor::Library);
        assert!(
            p.power().get() > 1.5 * h.power().get(),
            "Phi {} vs Haswell {}",
            p.power(),
            h.power()
        );
    }

    #[test]
    fn phi_modestly_beats_haswell_on_axpy() {
        // Paper: 2.23x, the best Phi result.
        let op = axpy(1 << 28);
        let h = run_op(&Platform::haswell(), &op, CodeFlavor::Library);
        let p = run_op(&Platform::xeon_phi(), &op, CodeFlavor::Library);
        let ratio = h.time / p.time;
        assert!((1.2..4.0).contains(&ratio), "Phi AXPY speedup {ratio:.2}");
    }

    #[test]
    fn phi_loses_badly_on_reshp() {
        // Paper: Phi RESHP at 2.4% of Haswell.
        let op = AccelParams::Reshp {
            rows: 16384,
            cols: 16384,
            elem_bytes: 4,
        };
        let h = run_op(&Platform::haswell(), &op, CodeFlavor::Library);
        let p = run_op(&Platform::xeon_phi(), &op, CodeFlavor::Library);
        let relative = h.time / p.time;
        assert!(relative < 0.1, "Phi RESHP relative perf {relative:.3}");
    }

    #[test]
    fn report_algebra() {
        let h = Platform::haswell();
        let r = run_op(&h, &axpy(1 << 20), CodeFlavor::Library);
        let twice = r.repeat(2);
        assert!((twice.time.get() - 2.0 * r.time.get()).abs() < 1e-12);
        assert_eq!(twice.flops, 2 * r.flops);
        let chained = r.then(&r);
        assert_eq!(chained.bytes, twice.bytes);
    }

    #[test]
    fn run_custom_adds_call_overhead() {
        let h = Platform::haswell();
        let base = run_custom(&h, 1 << 20, 1 << 20, 0.5, 0.5, 0, Seconds::ZERO);
        let calls = run_custom(
            &h,
            1 << 20,
            1 << 20,
            0.5,
            0.5,
            1_000_000,
            Seconds::from_nanos(50.0),
        );
        assert!((calls.time.get() - base.time.get() - 0.05).abs() < 1e-6);
        assert!(calls.energy.get() > base.energy.get());
    }

    #[test]
    fn time_grows_with_problem_size() {
        let h = Platform::haswell();
        for (small, large) in [
            (axpy(1 << 20), axpy(1 << 24)),
            (
                AccelParams::Fft { n: 1024, batch: 64 },
                AccelParams::Fft {
                    n: 1024,
                    batch: 1024,
                },
            ),
            (
                AccelParams::Gemv { m: 1024, n: 1024 },
                AccelParams::Gemv { m: 8192, n: 8192 },
            ),
        ] {
            let ts = run_op(&h, &small, CodeFlavor::Library).time;
            let tl = run_op(&h, &large, CodeFlavor::Library).time;
            assert!(tl > ts, "{:?}: {tl} !> {ts}", large.kind());
        }
    }

    #[test]
    fn naive_never_beats_the_library() {
        let h = Platform::haswell();
        for op in [
            axpy(1 << 22),
            AccelParams::Dot {
                n: 1 << 22,
                incx: 1,
                incy: 1,
                complex: false,
            },
            AccelParams::Gemv { m: 4096, n: 4096 },
            AccelParams::Spmv {
                rows: 1 << 18,
                cols: 1 << 18,
                nnz: 13 << 18,
            },
            AccelParams::Resmp {
                blocks: 1024,
                in_per_block: 1024,
                out_per_block: 1024,
            },
            AccelParams::Fft {
                n: 4096,
                batch: 256,
            },
            AccelParams::Reshp {
                rows: 4096,
                cols: 4096,
                elem_bytes: 4,
            },
        ] {
            let lib = run_op(&h, &op, CodeFlavor::Library).time;
            let naive = run_op(&h, &op, CodeFlavor::Naive).time;
            assert!(naive.get() >= lib.get(), "{:?}", op.kind());
        }
    }

    #[test]
    fn reshp_reports_gbps_not_gflops() {
        let h = Platform::haswell();
        let op = AccelParams::Reshp {
            rows: 16384,
            cols: 16384,
            elem_bytes: 4,
        };
        let r = run_op(&h, &op, CodeFlavor::Library);
        assert_eq!(r.flops, 0);
        assert_eq!(r.gflops(), Gflops::ZERO);
        let gbs = r.gbytes_per_sec();
        assert!(
            (1.0..10.0).contains(&gbs),
            "Haswell transpose {gbs:.1} GB/s"
        );
    }
}
