//! Host CPU platform models.
//!
//! The paper measures the Intel Haswell i7-4770K and Xeon Phi 5110P
//! natively (PAPI counters + RAPL power, §4.2). This crate replaces the
//! native runs with roofline models: execution time is
//! `max(compute time, memory time)` where memory time comes from the
//! same DRAM analytic model the accelerators use, and compute time from
//! the platform's peak FLOP/s derated by per-operation library
//! efficiencies. Package power follows a RAPL-style
//! `idle + utilization × (max − idle)` model.
//!
//! Two library flavours are modeled per operation — the vendor-optimized
//! library (MKL/FFTW class) and the naive "original code" a programmer
//! would write — which is exactly the comparison of the paper's
//! Figure 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod platform;
pub mod profiles;

pub use exec::{run_custom, run_op, CodeFlavor, HostReport};
pub use platform::{PackagePower, Platform};
