//! Platform descriptions (Table 3).

use mealib_memsim::MemoryConfig;
use mealib_types::{BytesPerSec, Hertz, Watts};

use crate::profiles::PlatformClass;

/// RAPL-style package power envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct PackagePower {
    /// Idle package power.
    pub idle: Watts,
    /// Fully loaded package power.
    pub max_active: Watts,
}

impl PackagePower {
    /// Power at a given utilization in `[0, 1]`.
    pub fn at_utilization(&self, util: f64) -> Watts {
        let u = util.clamp(0.0, 1.0);
        self.idle + (self.max_active - self.idle) * u
    }
}

/// A host CPU platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Platform name for reports.
    pub name: String,
    /// Efficiency-table family.
    pub class: PlatformClass,
    /// Physical cores.
    pub cores: u32,
    /// Core clock.
    pub frequency: Hertz,
    /// Peak f32 FLOPs per cycle per core with the widest SIMD the
    /// library uses.
    pub flops_per_cycle: f64,
    /// The attached memory system.
    pub mem: MemoryConfig,
    /// Package power envelope.
    pub package: PackagePower,
    /// Multithreaded scaling efficiency of library code on this machine
    /// (1.0 = perfect scaling across `cores`).
    pub thread_efficiency: f64,
}

impl Platform {
    /// Intel Haswell i7-4770K: 4 cores @ 3.5 GHz, dual-channel DDR3
    /// (25.6 GB/s), 112 GFLOPS peak per the paper's footnote.
    pub fn haswell() -> Self {
        Self {
            name: "Haswell i7-4770K".into(),
            class: PlatformClass::Haswell,
            cores: 4,
            frequency: Hertz::from_ghz(3.5),
            flops_per_cycle: 8.0,
            mem: MemoryConfig::ddr_dual_channel(),
            package: PackagePower {
                idle: Watts::new(14.0),
                max_active: Watts::new(62.0),
            },
            thread_efficiency: 0.85,
        }
    }

    /// Intel Xeon Phi 5110P: 60 cores @ ~1 GHz, GDDR5 at 320 GB/s, but
    /// poor per-thread efficiency on modest working sets (the paper
    /// observes it barely beating Haswell with the evaluated MKL).
    pub fn xeon_phi() -> Self {
        let mut mem = MemoryConfig::msas_dram();
        mem.name = "xeon-phi-gddr5".into();
        // Scale the channel count up so aggregate peak is ~320 GB/s.
        mem.mapping = mealib_memsim::AddressMapping::Interleaved {
            units: 25,
            banks_per_unit: 16,
            row_bytes: 2048,
            line_bytes: 64,
        };
        Self {
            name: "Xeon Phi 5110P".into(),
            class: PlatformClass::XeonPhi,
            cores: 60,
            frequency: Hertz::from_ghz(1.0),
            flops_per_cycle: 32.0,
            mem,
            package: PackagePower {
                idle: Watts::new(62.0),
                max_active: Watts::new(185.0),
            },
            thread_efficiency: 0.22,
        }
    }

    /// Peak f32 throughput of the whole package.
    pub fn peak_flops(&self) -> f64 {
        self.cores as f64 * self.frequency.get() * self.flops_per_cycle
    }

    /// Peak memory bandwidth.
    pub fn peak_bandwidth(&self) -> BytesPerSec {
        self.mem.peak_bandwidth()
    }

    /// The platform roofline (peak bandwidth × peak FLOP/s) the
    /// bottleneck attributor classifies profiled runs against.
    pub fn roofline(&self) -> mealib_obs::Roofline {
        mealib_obs::Roofline::new(self.peak_bandwidth(), self.peak_flops())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_matches_paper_footnote() {
        let h = Platform::haswell();
        // "a Haswell system with 112 GFLOPS peak performance (at 3.5 GHz)
        // … only has 25.6 GB/s memory bandwidth."
        assert!((h.peak_flops() - 112e9).abs() < 1e9);
        assert!((h.peak_bandwidth().as_gb_per_sec() - 25.6).abs() < 0.2);
    }

    #[test]
    fn roofline_mirrors_platform_peaks() {
        let h = Platform::haswell();
        let r = h.roofline();
        assert_eq!(r.peak_flops, h.peak_flops());
        assert_eq!(r.peak_bandwidth, h.peak_bandwidth());
        // Ridge point: ~4.4 FLOP/byte for the paper's Haswell.
        assert!((r.ridge_intensity() - 4.375).abs() < 0.2);
    }

    #[test]
    fn xeon_phi_matches_table3() {
        let p = Platform::xeon_phi();
        assert_eq!(p.cores, 60);
        let bw = p.peak_bandwidth().as_gb_per_sec();
        assert!((bw - 320.0).abs() < 10.0, "{bw}");
        assert!(p.peak_flops() > 1.5e12, "Phi is a ~2 TFLOPS part");
    }

    #[test]
    fn package_power_interpolates() {
        let p = PackagePower {
            idle: Watts::new(10.0),
            max_active: Watts::new(60.0),
        };
        assert_eq!(p.at_utilization(0.0), Watts::new(10.0));
        assert_eq!(p.at_utilization(1.0), Watts::new(60.0));
        assert_eq!(p.at_utilization(0.5), Watts::new(35.0));
        assert_eq!(p.at_utilization(7.0), Watts::new(60.0), "clamped");
    }
}
