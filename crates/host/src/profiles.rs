//! Measured-style library efficiency profiles.
//!
//! The original evaluation *measures* MKL on real machines; a
//! reproduction without the machines replaces those measurements with
//! calibrated efficiency tables: for each (platform, operation, code
//! flavour) the fraction of peak bandwidth and peak FLOP/s the code
//! sustains. Values are set from public STREAM/MKL behaviour and the
//! paper's own observations (e.g. Xeon Phi's RESHP collapsing to 2.4% of
//! Haswell, §5.1), and are the single calibration surface of the host
//! model — everything else is computed.

use mealib_accel::AccelParams;
use mealib_tdl::AcceleratorKind;

/// Which implementation of the operation runs on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeFlavor {
    /// Vendor-optimized library (MKL/FFTW class): SIMD + all cores.
    Library,
    /// Naive "original" code: scalar, single-threaded, cache-oblivious.
    Naive,
}

/// Host platform families with distinct efficiency tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformClass {
    /// Out-of-order big cores, dual-channel DDR (i7-4770K class).
    Haswell,
    /// Many small in-order cores, wide SIMD, GDDR (Xeon Phi 5110P class).
    XeonPhi,
}

/// Sustained fractions of platform peaks for one operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpEfficiency {
    /// Fraction of peak memory bandwidth sustained.
    pub bw_fraction: f64,
    /// Fraction of peak FLOP/s sustained.
    pub compute_fraction: f64,
}

/// Returns the efficiency of `kind` on `class` with the given flavour.
pub fn efficiency(class: PlatformClass, kind: AcceleratorKind, flavor: CodeFlavor) -> OpEfficiency {
    use AcceleratorKind as K;
    let (bw, comp) = match (class, flavor) {
        (PlatformClass::Haswell, CodeFlavor::Library) => match kind {
            K::Axpy => (0.88, 0.85),
            K::Dot => (0.90, 0.85),
            K::Gemv => (0.85, 0.80),
            K::Spmv => (0.26, 0.50),
            K::Resmp => (0.30, 0.12),
            K::Fft => (0.50, 0.48),
            K::Reshp => (0.20, 1.00),
        },
        (PlatformClass::Haswell, CodeFlavor::Naive) => match kind {
            // Single scalar thread: ~1/32 of the SIMD+multicore peak,
            // and one core cannot saturate the channels.
            K::Axpy => (0.34, 0.031),
            K::Dot => (0.35, 0.031),
            K::Gemv => (0.08, 0.031), // column-order walk thrashes rows
            K::Spmv => (0.05, 0.031),
            K::Resmp => (0.25, 0.020),
            K::Fft => (0.10, 0.030),   // textbook recursive FFT
            K::Reshp => (0.045, 1.00), // element-wise strided transpose
        },
        (PlatformClass::XeonPhi, CodeFlavor::Library) => match kind {
            // The paper: "Xeon Phi (with 32 threads) cannot significantly
            // outperform Haswell … data sets might not be large enough to
            // exploit a large number of hardware threads."
            K::Axpy => (0.178, 0.30),
            K::Dot => (0.150, 0.30),
            K::Gemv => (0.120, 0.25),
            K::Spmv => (0.012, 0.20),
            K::Resmp => (0.080, 0.20),
            K::Fft => (0.060, 0.15),
            K::Reshp => (0.0004, 1.00), // 2.4% of Haswell (§5.1)
        },
        (PlatformClass::XeonPhi, CodeFlavor::Naive) => (0.02, 0.002),
    };
    OpEfficiency {
        bw_fraction: bw,
        compute_fraction: comp,
    }
}

/// DRAM traffic of one host-side execution of `op`, in bytes.
///
/// Naive flavours move extra traffic (no blocking: matrices re-read,
/// write-allocate waste).
pub fn traffic_bytes(op: &AccelParams, flavor: CodeFlavor) -> u64 {
    let base = match *op {
        AccelParams::Axpy { n, .. } => 12 * n,
        AccelParams::Dot { n, complex, .. } => {
            if complex {
                16 * n
            } else {
                8 * n
            }
        }
        AccelParams::Gemv { m, n } => 4 * (m * n + n + 2 * m),
        AccelParams::Spmv { rows, nnz, .. } => 12 * nnz + 8 * rows,
        AccelParams::Resmp {
            blocks,
            in_per_block,
            out_per_block,
        } => 4 * blocks * (in_per_block + out_per_block),
        // One read + one write pass over the working set (cache-blocked
        // 1D FFTs that fit in LLC).
        AccelParams::Fft { n, batch } => 16 * n * batch,
        AccelParams::Reshp {
            rows,
            cols,
            elem_bytes,
        } => 2 * rows * cols * elem_bytes as u64,
    };
    match flavor {
        CodeFlavor::Library => base,
        // Unblocked code typically re-touches data ~1.5-2x.
        CodeFlavor::Naive => base * 2,
    }
}

/// FLOPs of one host execution (same arithmetic as the accelerator).
pub fn flops(op: &AccelParams) -> u64 {
    mealib_accel::model::AccelModel::new(op.kind()).flops(op)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_always_beats_naive_in_efficiency() {
        for kind in AcceleratorKind::ALL {
            let lib = efficiency(PlatformClass::Haswell, kind, CodeFlavor::Library);
            let naive = efficiency(PlatformClass::Haswell, kind, CodeFlavor::Naive);
            assert!(
                lib.bw_fraction >= naive.bw_fraction,
                "{kind}: library bw must not lose"
            );
            assert!(lib.compute_fraction >= naive.compute_fraction, "{kind}");
        }
    }

    #[test]
    fn phi_reshp_collapses_as_the_paper_observes() {
        let phi = efficiency(
            PlatformClass::XeonPhi,
            AcceleratorKind::Reshp,
            CodeFlavor::Library,
        );
        let has = efficiency(
            PlatformClass::Haswell,
            AcceleratorKind::Reshp,
            CodeFlavor::Library,
        );
        // Phi peak bandwidth is 12.5x Haswell's, so the fraction ratio
        // must be far below 1/12.5 for Phi to land under Haswell.
        assert!(phi.bw_fraction * 12.5 < has.bw_fraction * 0.5);
    }

    #[test]
    fn traffic_counts() {
        let axpy = AccelParams::Axpy {
            n: 100,
            alpha: 1.0,
            incx: 1,
            incy: 1,
        };
        assert_eq!(traffic_bytes(&axpy, CodeFlavor::Library), 1200);
        assert_eq!(traffic_bytes(&axpy, CodeFlavor::Naive), 2400);
        let reshp = AccelParams::Reshp {
            rows: 8,
            cols: 4,
            elem_bytes: 4,
        };
        assert_eq!(traffic_bytes(&reshp, CodeFlavor::Library), 256);
    }

    #[test]
    fn flops_delegates_to_accel_model() {
        let fft = AccelParams::Fft { n: 8, batch: 2 };
        assert_eq!(flops(&fft), 5 * 8 * 3 * 2);
    }

    #[test]
    fn all_efficiencies_are_fractions() {
        for class in [PlatformClass::Haswell, PlatformClass::XeonPhi] {
            for kind in AcceleratorKind::ALL {
                for flavor in [CodeFlavor::Library, CodeFlavor::Naive] {
                    let e = efficiency(class, kind, flavor);
                    assert!(e.bw_fraction > 0.0 && e.bw_fraction <= 1.0);
                    assert!(e.compute_fraction > 0.0 && e.compute_fraction <= 1.0);
                }
            }
        }
    }
}
