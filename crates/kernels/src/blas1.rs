//! Level-1 BLAS: vector-vector operations.
//!
//! Covers the MKL entry points the paper accelerates or uses in STAP:
//! `cblas_saxpy`, `cblas_sdot`, and `cblas_cdotc_sub`, together with
//! strided variants (MKL's `incx`/`incy` parameters map onto the
//! accelerator API's "access stride" configuration field, §2.2).

use mealib_types::Complex32;

/// `y ← α·x + y` over contiguous slices.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn saxpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "saxpy operands must have equal length");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Strided `y ← α·x + y`, MKL-style: processes `n` logical elements where
/// element `i` of `x` lives at `x[i * incx]` and likewise for `y`.
///
/// # Panics
///
/// Panics if either stride is zero or a slice is too short for `n`
/// elements at its stride.
pub fn saxpy_strided(n: usize, alpha: f32, x: &[f32], incx: usize, y: &mut [f32], incy: usize) {
    check_strided(n, x.len(), incx, "x");
    check_strided(n, y.len(), incy, "y");
    for i in 0..n {
        y[i * incy] += alpha * x[i * incx];
    }
}

/// Dot product `xᵀ·y` over contiguous slices.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn sdot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "sdot operands must have equal length");
    // Eight-way partial sums: mirrors how a vectorized library (and the DOT
    // accelerator's PE array) reduces, and keeps the rounding behaviour
    // stable across input orderings.
    let mut acc = [0.0_f32; 8];
    let chunks = x.len() / 8;
    for c in 0..chunks {
        #[allow(clippy::needless_range_loop)] // lane indexing mirrors the SIMD shape
        for lane in 0..8 {
            let i = c * 8 + lane;
            acc[lane] += x[i] * y[i];
        }
    }
    let mut tail = 0.0;
    for i in chunks * 8..x.len() {
        tail += x[i] * y[i];
    }
    acc.iter().sum::<f32>() + tail
}

/// Strided dot product of `n` logical elements.
///
/// # Panics
///
/// Panics if either stride is zero or a slice is too short.
pub fn sdot_strided(n: usize, x: &[f32], incx: usize, y: &[f32], incy: usize) -> f32 {
    check_strided(n, x.len(), incx, "x");
    check_strided(n, y.len(), incy, "y");
    (0..n).map(|i| x[i * incx] * y[i * incy]).sum()
}

/// Conjugated complex dot product `Σ conj(x[i])·y[i]` — MKL's
/// `cblas_cdotc_sub`, the kernel that dominates STAP (Fig. 14b).
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn cdotc(x: &[Complex32], y: &[Complex32]) -> Complex32 {
    assert_eq!(x.len(), y.len(), "cdotc operands must have equal length");
    x.iter().zip(y).map(|(a, b)| a.conj() * *b).sum()
}

/// Strided conjugated complex dot product of `n` logical elements.
///
/// In STAP's adaptive-weight application the snapshot vector is accessed
/// with a large stride (`TBS` in Listing 1), which is why the accelerator
/// API keeps stride as a first-class parameter.
///
/// # Panics
///
/// Panics if either stride is zero or a slice is too short.
pub fn cdotc_strided(
    n: usize,
    x: &[Complex32],
    incx: usize,
    y: &[Complex32],
    incy: usize,
) -> Complex32 {
    check_strided(n, x.len(), incx, "x");
    check_strided(n, y.len(), incy, "y");
    (0..n).map(|i| x[i * incx].conj() * y[i * incy]).sum()
}

/// Unconjugated complex dot product `Σ x[i]·y[i]`.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn cdotu(x: &[Complex32], y: &[Complex32]) -> Complex32 {
    assert_eq!(x.len(), y.len(), "cdotu operands must have equal length");
    x.iter().zip(y).map(|(a, b)| *a * *b).sum()
}

/// Complex `y ← α·x + y`.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn caxpy(alpha: Complex32, x: &[Complex32], y: &mut [Complex32]) {
    assert_eq!(x.len(), y.len(), "caxpy operands must have equal length");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * *xi;
    }
}

/// Scales a real vector in place: `x ← α·x`.
pub fn sscal(alpha: f32, x: &mut [f32]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Naive single-accumulator dot product — the "original code" baseline of
/// Figure 1 (sequential, no partial sums, no vectorization model).
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn sdot_naive(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "sdot operands must have equal length");
    let mut acc = 0.0;
    for i in 0..x.len() {
        acc += x[i] * y[i];
    }
    acc
}

/// FLOP count of an `n`-element AXPY (one multiply and one add per
/// element).
pub fn axpy_flops(n: usize) -> u64 {
    2 * n as u64
}

/// FLOP count of an `n`-element real dot product.
pub fn dot_flops(n: usize) -> u64 {
    2 * n as u64
}

/// FLOP count of an `n`-element conjugated complex dot product: each
/// element is one complex multiply (6 real FLOPs) plus one complex add
/// (2 real FLOPs).
pub fn cdotc_flops(n: usize) -> u64 {
    8 * n as u64
}

fn check_strided(n: usize, len: usize, inc: usize, name: &str) {
    assert!(inc > 0, "stride of `{name}` must be nonzero");
    if n > 0 {
        assert!(
            (n - 1) * inc < len,
            "slice `{name}` too short: need index {} but len is {len}",
            (n - 1) * inc
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saxpy_matches_definition() {
        let x = [1.0, -2.0, 0.5];
        let mut y = [1.0, 1.0, 1.0];
        saxpy(3.0, &x, &mut y);
        assert_eq!(y, [4.0, -5.0, 2.5]);
    }

    #[test]
    fn saxpy_strided_touches_only_strided_elements() {
        let x = [1.0, 9.0, 2.0, 9.0];
        let mut y = [0.0; 6];
        saxpy_strided(2, 1.0, &x, 2, &mut y, 3);
        assert_eq!(y, [1.0, 0.0, 0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn sdot_agrees_with_naive_on_small_inputs() {
        let x: Vec<f32> = (0..37).map(|i| (i as f32 * 0.37).sin()).collect();
        let y: Vec<f32> = (0..37).map(|i| (i as f32 * 0.11).cos()).collect();
        let fast = sdot(&x, &y);
        let slow = sdot_naive(&x, &y);
        assert!((fast - slow).abs() < 1e-4, "{fast} vs {slow}");
    }

    #[test]
    fn sdot_empty_is_zero() {
        assert_eq!(sdot(&[], &[]), 0.0);
        assert_eq!(sdot_strided(0, &[], 1, &[], 1), 0.0);
    }

    #[test]
    fn cdotc_conjugates_first_argument() {
        let x = [Complex32::new(0.0, 1.0)];
        let y = [Complex32::new(0.0, 1.0)];
        // conj(i) * i = -i * i = 1
        assert_eq!(cdotc(&x, &y), Complex32::ONE);
        // unconjugated: i * i = -1
        assert_eq!(cdotu(&x, &y), Complex32::new(-1.0, 0.0));
    }

    #[test]
    fn cdotc_strided_matches_gathered_dense() {
        let x: Vec<Complex32> = (0..12)
            .map(|i| Complex32::new(i as f32, -(i as f32)))
            .collect();
        let y: Vec<Complex32> = (0..12)
            .map(|i| Complex32::new(1.0, i as f32 * 0.5))
            .collect();
        let strided = cdotc_strided(4, &x, 3, &y, 2);
        let xg: Vec<Complex32> = (0..4).map(|i| x[i * 3]).collect();
        let yg: Vec<Complex32> = (0..4).map(|i| y[i * 2]).collect();
        let dense = cdotc(&xg, &yg);
        assert!((strided - dense).abs() < 1e-5);
    }

    #[test]
    fn caxpy_and_sscal() {
        let mut y = [Complex32::ONE, Complex32::I];
        caxpy(Complex32::I, &[Complex32::ONE, Complex32::ONE], &mut y);
        assert_eq!(y[0], Complex32::new(1.0, 1.0));
        assert_eq!(y[1], Complex32::new(0.0, 2.0));

        let mut x = [2.0, -4.0];
        sscal(0.5, &mut x);
        assert_eq!(x, [1.0, -2.0]);
    }

    #[test]
    fn flop_counts() {
        assert_eq!(axpy_flops(10), 20);
        assert_eq!(dot_flops(10), 20);
        assert_eq!(cdotc_flops(10), 80);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn saxpy_length_mismatch_panics() {
        let mut y = [0.0; 2];
        saxpy(1.0, &[1.0; 3], &mut y);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn strided_bounds_check() {
        let _ = sdot_strided(3, &[1.0; 4], 2, &[1.0; 8], 1);
    }

    #[test]
    #[should_panic(expected = "stride of `x` must be nonzero")]
    fn zero_stride_rejected() {
        let _ = sdot_strided(1, &[1.0], 0, &[1.0], 1);
    }
}
