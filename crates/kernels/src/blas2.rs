//! Level-2 BLAS: matrix-vector operations (`cblas_sgemv`).

/// Row-major dense matrix view used by the Level-2/Level-3 kernels.
///
/// The view borrows its backing storage, so callers decide allocation and
/// placement (C-CALLER-CONTROL). `lda` (leading dimension) may exceed
/// `cols` to describe a padded or sub-matrix, exactly as in the CBLAS
/// interface.
#[derive(Debug, Clone, Copy)]
pub struct MatrixRef<'a, T> {
    data: &'a [T],
    rows: usize,
    cols: usize,
    lda: usize,
}

impl<'a, T: Copy> MatrixRef<'a, T> {
    /// Wraps a row-major slice as an `rows × cols` matrix with leading
    /// dimension `lda`.
    ///
    /// # Panics
    ///
    /// Panics if `lda < cols` or the slice is too short to hold the
    /// described matrix.
    pub fn new(data: &'a [T], rows: usize, cols: usize, lda: usize) -> Self {
        assert!(lda >= cols, "leading dimension smaller than column count");
        if rows > 0 {
            assert!(
                (rows - 1) * lda + cols <= data.len(),
                "slice too short for {rows}x{cols} matrix with lda {lda}"
            );
        }
        Self {
            data,
            rows,
            cols,
            lda,
        }
    }

    /// Wraps a dense row-major slice (`lda == cols`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn dense(data: &'a [T], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "dense matrix length mismatch");
        Self::new(data, rows, cols, cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> T {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.lda + col]
    }

    /// The `row`-th row as a contiguous slice of `cols` elements.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[inline]
    pub fn row(&self, row: usize) -> &'a [T] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.lda..row * self.lda + self.cols]
    }
}

/// `y ← α·A·x + β·y` for a row-major matrix `A` (no transpose).
///
/// # Panics
///
/// Panics if `x.len() != a.cols()` or `y.len() != a.rows()`.
pub fn sgemv(alpha: f32, a: MatrixRef<'_, f32>, x: &[f32], beta: f32, y: &mut [f32]) {
    assert_eq!(x.len(), a.cols(), "x length must equal column count");
    assert_eq!(y.len(), a.rows(), "y length must equal row count");
    for (i, yi) in y.iter_mut().enumerate() {
        let row = a.row(i);
        let dot = crate::blas1::sdot(row, x);
        *yi = alpha * dot + beta * *yi;
    }
}

/// `y ← α·Aᵀ·x + β·y` for a row-major matrix `A`.
///
/// Walks `A` row by row (streaming access, the layout the accelerator
/// prefers) rather than column by column.
///
/// # Panics
///
/// Panics if `x.len() != a.rows()` or `y.len() != a.cols()`.
pub fn sgemv_trans(alpha: f32, a: MatrixRef<'_, f32>, x: &[f32], beta: f32, y: &mut [f32]) {
    assert_eq!(x.len(), a.rows(), "x length must equal row count");
    assert_eq!(y.len(), a.cols(), "y length must equal column count");
    for yi in y.iter_mut() {
        *yi *= beta;
    }
    for (i, &xi) in x.iter().enumerate() {
        let row = a.row(i);
        let scaled = alpha * xi;
        for (yj, &aij) in y.iter_mut().zip(row) {
            *yj += scaled * aij;
        }
    }
}

/// Naive column-major-order GEMV over a row-major matrix — the
/// cache-hostile "original code" baseline used in the Figure 1 experiment.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn sgemv_naive(alpha: f32, a: MatrixRef<'_, f32>, x: &[f32], beta: f32, y: &mut [f32]) {
    assert_eq!(x.len(), a.cols(), "x length must equal column count");
    assert_eq!(y.len(), a.rows(), "y length must equal row count");
    for yi in y.iter_mut() {
        *yi *= beta;
    }
    // Column-outer loop: strides through memory by `lda` on every access.
    #[allow(clippy::needless_range_loop)] // deliberately cache-hostile index order
    for j in 0..a.cols() {
        #[allow(clippy::needless_range_loop)]
        for i in 0..a.rows() {
            y[i] += alpha * a.at(i, j) * x[j];
        }
    }
}

/// FLOP count of an `m × n` GEMV: one multiply-add per element plus the
/// `α`/`β` scaling.
pub fn gemv_flops(m: usize, n: usize) -> u64 {
    (2 * m * n + 3 * m) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<f32>, Vec<f32>) {
        // A = [[1,2,3],[4,5,6]]  x = [1,1,1]
        (vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![1.0, 1.0, 1.0])
    }

    #[test]
    fn gemv_no_trans() {
        let (a, x) = sample();
        let a = MatrixRef::dense(&a, 2, 3);
        let mut y = vec![1.0, 1.0];
        sgemv(1.0, a, &x, 0.5, &mut y);
        assert_eq!(y, vec![6.5, 15.5]);
    }

    #[test]
    fn gemv_trans() {
        let (a, _) = sample();
        let a = MatrixRef::dense(&a, 2, 3);
        let x = vec![1.0, 2.0];
        let mut y = vec![0.0; 3];
        sgemv_trans(1.0, a, &x, 0.0, &mut y);
        assert_eq!(y, vec![9.0, 12.0, 15.0]);
    }

    #[test]
    fn naive_matches_optimized() {
        let n = 17;
        let m = 13;
        let a: Vec<f32> = (0..m * n).map(|i| ((i * 7 % 23) as f32) - 11.0).collect();
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3).sin()).collect();
        let view = MatrixRef::dense(&a, m, n);
        let mut y1 = vec![0.5; m];
        let mut y2 = vec![0.5; m];
        sgemv(2.0, view, &x, -1.0, &mut y1);
        sgemv_naive(2.0, view, &x, -1.0, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn padded_lda_reads_correct_elements() {
        // 2x2 matrix embedded in rows of length 4.
        let data = vec![1.0, 2.0, 9.0, 9.0, 3.0, 4.0, 9.0, 9.0];
        let a = MatrixRef::new(&data, 2, 2, 4);
        assert_eq!(a.at(1, 0), 3.0);
        let mut y = vec![0.0; 2];
        sgemv(1.0, a, &[1.0, 1.0], 0.0, &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn zero_row_matrix_is_noop() {
        let a = MatrixRef::dense(&[], 0, 3);
        let mut y: Vec<f32> = vec![];
        sgemv(1.0, a, &[1.0, 2.0, 3.0], 0.0, &mut y);
        assert!(y.is_empty());
    }

    #[test]
    #[should_panic(expected = "leading dimension")]
    fn lda_smaller_than_cols_panics() {
        let _ = MatrixRef::new(&[0.0; 8], 2, 4, 3);
    }

    #[test]
    #[should_panic(expected = "slice too short")]
    fn short_slice_panics() {
        let _ = MatrixRef::new(&[0.0; 5], 2, 3, 3);
    }

    #[test]
    fn flops() {
        assert_eq!(gemv_flops(2, 3), 18);
    }
}
