//! Level-3 BLAS subset used by STAP: `cblas_cherk` and `cblas_ctrsm`.
//!
//! These are the *compute-bounded* routines of Table 4 — in the MEALib
//! system they stay on the host CPU, but the reproduction still needs
//! functional implementations so the STAP pipeline produces real numbers.

use mealib_types::Complex32;

/// Hermitian rank-k update on the lower triangle:
/// `C ← α·A·Aᴴ + β·C` where `A` is `n × k` row-major and `C` is `n × n`
/// row-major Hermitian.
///
/// Only the lower triangle of `C` is referenced and written, then mirrored
/// into the upper triangle (so the returned `C` is a full Hermitian
/// matrix, which simplifies the downstream solver).
///
/// # Panics
///
/// Panics if `a.len() != n * k` or `c.len() != n * n`.
pub fn cherk(n: usize, k: usize, alpha: f32, a: &[Complex32], beta: f32, c: &mut [Complex32]) {
    assert_eq!(a.len(), n * k, "A must be n x k");
    assert_eq!(c.len(), n * n, "C must be n x n");
    for i in 0..n {
        let ai = &a[i * k..(i + 1) * k];
        for j in 0..=i {
            let aj = &a[j * k..(j + 1) * k];
            // (A Aᴴ)[i][j] = Σ_p a[i][p] * conj(a[j][p])
            let mut acc = Complex32::ZERO;
            for p in 0..k {
                acc += ai[p] * aj[p].conj();
            }
            let old = c[i * n + j];
            c[i * n + j] = acc.scale(alpha) + old.scale(beta);
        }
        // The diagonal of a Hermitian product is real; clamp rounding dust.
        c[i * n + i].im = 0.0;
    }
    for i in 0..n {
        for j in i + 1..n {
            c[i * n + j] = c[j * n + i].conj();
        }
    }
}

/// Which side of the triangular matrix `A` appears on in `ctrsm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Solve `A·X = α·B`.
    Left,
    /// Solve `X·A = α·B`.
    Right,
}

/// Which triangle of `A` holds the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triangle {
    /// `A` is lower triangular.
    Lower,
    /// `A` is upper triangular.
    Upper,
}

/// Triangular solve with multiple right-hand sides:
/// `X ← α·op(A)⁻¹·B` (left side) or `X ← α·B·op(A)⁻¹` (right side),
/// overwriting `B` with `X`. `A` is `n × n` row-major triangular
/// (non-unit diagonal); `B` is `rows × cols` row-major where the
/// triangular dimension matches the chosen side.
///
/// # Panics
///
/// Panics if dimensions are inconsistent or a diagonal element is zero.
pub fn ctrsm(
    side: Side,
    tri: Triangle,
    n: usize,
    alpha: Complex32,
    a: &[Complex32],
    b: &mut [Complex32],
    rhs: usize,
) {
    assert_eq!(a.len(), n * n, "A must be n x n");
    assert_eq!(b.len(), n * rhs, "B must be n x rhs (row-major)");
    for x in b.iter_mut() {
        *x *= alpha;
    }
    match (side, tri) {
        (Side::Left, Triangle::Lower) => {
            // Forward substitution, row i solved after rows < i.
            for i in 0..n {
                let diag = a[i * n + i];
                assert!(diag.norm_sqr() > 0.0, "singular triangular matrix");
                for j in 0..i {
                    let lij = a[i * n + j];
                    for col in 0..rhs {
                        let upd = lij * b[j * rhs + col];
                        b[i * rhs + col] -= upd;
                    }
                }
                for col in 0..rhs {
                    b[i * rhs + col] = b[i * rhs + col] / diag;
                }
            }
        }
        (Side::Left, Triangle::Upper) => {
            // Backward substitution.
            for i in (0..n).rev() {
                let diag = a[i * n + i];
                assert!(diag.norm_sqr() > 0.0, "singular triangular matrix");
                for j in i + 1..n {
                    let uij = a[i * n + j];
                    for col in 0..rhs {
                        let upd = uij * b[j * rhs + col];
                        b[i * rhs + col] -= upd;
                    }
                }
                for col in 0..rhs {
                    b[i * rhs + col] = b[i * rhs + col] / diag;
                }
            }
        }
        (Side::Right, Triangle::Lower) => {
            // X·A = B with A lower: solve columns from the last to first.
            for j in (0..n).rev() {
                let diag = a[j * n + j];
                assert!(diag.norm_sqr() > 0.0, "singular triangular matrix");
                for row in 0..rhs {
                    b[row * n + j] = b[row * n + j] / diag;
                }
                for i in 0..j {
                    let aji = a[j * n + i];
                    for row in 0..rhs {
                        let upd = b[row * n + j] * aji;
                        b[row * n + i] -= upd;
                    }
                }
            }
        }
        (Side::Right, Triangle::Upper) => {
            for j in 0..n {
                let diag = a[j * n + j];
                assert!(diag.norm_sqr() > 0.0, "singular triangular matrix");
                for row in 0..rhs {
                    b[row * n + j] = b[row * n + j] / diag;
                }
                for i in j + 1..n {
                    let aji = a[j * n + i];
                    for row in 0..rhs {
                        let upd = b[row * n + j] * aji;
                        b[row * n + i] -= upd;
                    }
                }
            }
        }
    }
}

/// Blocked single-precision matrix multiply `C ← α·A·B + β·C`
/// (`cblas_sgemm`, row-major, no transposes) — the canonical
/// *compute-bounded* operation the paper's introduction contrasts with
/// the memory-bounded ones MEALib targets.
///
/// # Panics
///
/// Panics if buffer lengths disagree with `m × k`, `k × n`, `m × n`.
#[allow(clippy::too_many_arguments)] // mirrors the CBLAS signature
pub fn sgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "A must be m x k");
    assert_eq!(b.len(), k * n, "B must be k x n");
    assert_eq!(c.len(), m * n, "C must be m x n");
    for ci in c.iter_mut() {
        *ci *= beta;
    }
    const BLOCK: usize = 32;
    let mut ib = 0;
    while ib < m {
        let ie = (ib + BLOCK).min(m);
        let mut pb = 0;
        while pb < k {
            let pe = (pb + BLOCK).min(k);
            let mut jb = 0;
            while jb < n {
                let je = (jb + BLOCK).min(n);
                for i in ib..ie {
                    for p in pb..pe {
                        let aip = alpha * a[i * k + p];
                        for j in jb..je {
                            c[i * n + j] += aip * b[p * n + j];
                        }
                    }
                }
                jb = je;
            }
            pb = pe;
        }
        ib = ie;
    }
}

/// FLOP count of an `m × n × k` GEMM.
pub fn sgemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// Cholesky factorization of a Hermitian positive-definite matrix into
/// `L·Lᴴ`, returning the lower-triangular `L` (row-major, other entries
/// zeroed). STAP uses this between `cherk` and the two `ctrsm` solves.
///
/// # Panics
///
/// Panics if `c.len() != n * n` or the matrix is not positive definite.
pub fn cpotrf(n: usize, c: &[Complex32]) -> Vec<Complex32> {
    assert_eq!(c.len(), n * n, "C must be n x n");
    let mut l = vec![Complex32::ZERO; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut acc = c[i * n + j];
            for p in 0..j {
                acc -= l[i * n + p] * l[j * n + p].conj();
            }
            if i == j {
                assert!(acc.re > 0.0, "matrix is not positive definite");
                l[i * n + i] = Complex32::new(acc.re.sqrt(), 0.0);
            } else {
                l[i * n + j] = acc / l[j * n + j];
            }
        }
    }
    l
}

/// FLOP count of an `n × n` rank-`k` Hermitian update (4 real FLOPs per
/// complex multiply-add on the touched triangle).
pub fn cherk_flops(n: usize, k: usize) -> u64 {
    4 * (n * (n + 1) / 2) as u64 * k as u64
}

/// FLOP count of an `n × n` triangular solve with `rhs` right-hand sides.
pub fn ctrsm_flops(n: usize, rhs: usize) -> u64 {
    4 * (n * n) as u64 * rhs as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matvec(n: usize, a: &[Complex32], x: &[Complex32]) -> Vec<Complex32> {
        (0..n)
            .map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum())
            .collect()
    }

    fn hermitian_spd(n: usize) -> Vec<Complex32> {
        // A·Aᴴ + n·I is Hermitian positive definite.
        let a: Vec<Complex32> = (0..n * n)
            .map(|i| Complex32::new(((i * 13 % 7) as f32) - 3.0, ((i * 5 % 11) as f32) - 5.0))
            .collect();
        let mut c = vec![Complex32::ZERO; n * n];
        cherk(n, n, 1.0, &a, 0.0, &mut c);
        for i in 0..n {
            c[i * n + i] += Complex32::new((n * n) as f32, 0.0);
        }
        c
    }

    #[test]
    fn cherk_produces_hermitian_result() {
        let n = 5;
        let k = 3;
        let a: Vec<Complex32> = (0..n * k)
            .map(|i| Complex32::new(i as f32 * 0.3, -(i as f32) * 0.1))
            .collect();
        let mut c = vec![Complex32::new(1.0, 0.0); n * n];
        cherk(n, k, 2.0, &a, 0.5, &mut c);
        for i in 0..n {
            assert_eq!(c[i * n + i].im, 0.0, "diagonal must be real");
            for j in 0..n {
                let cij = c[i * n + j];
                let cji = c[j * n + i];
                assert!(
                    (cij - cji.conj()).abs() < 1e-3,
                    "not Hermitian at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn cherk_matches_explicit_product() {
        // A = [[1, i], [2, 0]]; A·Aᴴ = [[2, 2], [2, 4]] (with [0][1] = 2
        // since conj pairs cancel the imaginary parts here).
        let a = [
            Complex32::ONE,
            Complex32::I,
            Complex32::new(2.0, 0.0),
            Complex32::ZERO,
        ];
        let mut c = vec![Complex32::ZERO; 4];
        cherk(2, 2, 1.0, &a, 0.0, &mut c);
        assert!((c[0] - Complex32::new(2.0, 0.0)).abs() < 1e-6);
        assert!((c[3] - Complex32::new(4.0, 0.0)).abs() < 1e-6);
        assert!((c[1] - c[2].conj()).abs() < 1e-6);
    }

    #[test]
    fn trsm_left_lower_solves_system() {
        let n = 4;
        let rhs = 3;
        let c = hermitian_spd(n);
        let l = cpotrf(n, &c);
        // Pick X, compute B = L X, then solve and compare.
        let x: Vec<Complex32> = (0..n * rhs)
            .map(|i| Complex32::new((i % 5) as f32 - 2.0, (i % 3) as f32))
            .collect();
        let mut b = vec![Complex32::ZERO; n * rhs];
        for i in 0..n {
            for col in 0..rhs {
                let mut acc = Complex32::ZERO;
                for j in 0..=i {
                    acc += l[i * n + j] * x[j * rhs + col];
                }
                b[i * rhs + col] = acc;
            }
        }
        ctrsm(
            Side::Left,
            Triangle::Lower,
            n,
            Complex32::ONE,
            &l,
            &mut b,
            rhs,
        );
        for (got, want) in b.iter().zip(&x) {
            assert!((got.re - want.re).abs() < 1e-3 && (got.im - want.im).abs() < 1e-3);
        }
    }

    #[test]
    fn trsm_left_upper_solves_system() {
        let n = 3;
        // Upper triangular U.
        let u = [
            Complex32::new(2.0, 0.0),
            Complex32::new(1.0, 1.0),
            Complex32::new(0.0, -1.0),
            Complex32::ZERO,
            Complex32::new(3.0, 0.0),
            Complex32::new(0.5, 0.0),
            Complex32::ZERO,
            Complex32::ZERO,
            Complex32::new(1.5, 0.0),
        ];
        let x = [Complex32::ONE, Complex32::I, Complex32::new(2.0, -1.0)];
        let mut b: Vec<Complex32> = (0..3)
            .map(|i| (0..3).map(|j| u[i * 3 + j] * x[j]).sum())
            .collect();
        ctrsm(
            Side::Left,
            Triangle::Upper,
            n,
            Complex32::ONE,
            &u,
            &mut b,
            1,
        );
        for (got, want) in b.iter().zip(&x) {
            assert!((*got - *want).abs() < 1e-4);
        }
    }

    #[test]
    fn trsm_right_lower_solves_system() {
        let n = 3;
        let rhs = 2;
        let c = hermitian_spd(n);
        let l = cpotrf(n, &c);
        let x: Vec<Complex32> = (0..rhs * n)
            .map(|i| Complex32::new(i as f32, 1.0 - i as f32))
            .collect();
        // B = X L (rhs x n)
        let mut b = vec![Complex32::ZERO; rhs * n];
        for row in 0..rhs {
            for j in 0..n {
                let mut acc = Complex32::ZERO;
                for p in j..n {
                    acc += x[row * n + p] * l[p * n + j];
                }
                b[row * n + j] = acc;
            }
        }
        ctrsm(
            Side::Right,
            Triangle::Lower,
            n,
            Complex32::ONE,
            &l,
            &mut b,
            rhs,
        );
        for (got, want) in b.iter().zip(&x) {
            assert!((*got - *want).abs() < 1e-3);
        }
    }

    #[test]
    fn cholesky_reconstructs_input() {
        let n = 6;
        let c = hermitian_spd(n);
        let l = cpotrf(n, &c);
        // L must satisfy (L Lᴴ) x = C x for a probe vector.
        let x: Vec<Complex32> = (0..n).map(|i| Complex32::new(1.0, i as f32)).collect();
        let cx = matvec(n, &c, &x);
        // y = Lᴴ x, then z = L y
        let mut lh = vec![Complex32::ZERO; n * n];
        for i in 0..n {
            for j in 0..n {
                lh[i * n + j] = l[j * n + i].conj();
            }
        }
        let y = matvec(n, &lh, &x);
        let z = matvec(n, &l, &y);
        for (a, b) in z.iter().zip(&cx) {
            let scale = b.abs().max(1.0);
            assert!((*a - *b).abs() / scale < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn trsm_applies_alpha() {
        let a = [Complex32::new(2.0, 0.0)];
        let mut b = [Complex32::new(4.0, 0.0)];
        ctrsm(
            Side::Left,
            Triangle::Lower,
            1,
            Complex32::new(0.5, 0.0),
            &a,
            &mut b,
            1,
        );
        assert!((b[0] - Complex32::ONE).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "not positive definite")]
    fn cholesky_rejects_indefinite() {
        let c = vec![
            Complex32::new(-1.0, 0.0),
            Complex32::ZERO,
            Complex32::ZERO,
            Complex32::new(1.0, 0.0),
        ];
        let _ = cpotrf(2, &c);
    }

    #[test]
    fn sgemm_matches_naive_triple_loop() {
        let (m, n, k) = (13, 17, 19);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7 % 11) as f32) - 5.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 5 % 13) as f32) - 6.0).collect();
        let mut c = vec![1.0f32; m * n];
        let mut want = c.clone();
        sgemm(m, n, k, 0.5, &a, &b, -1.0, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                want[i * n + j] = 0.5 * acc - want[i * n + j];
            }
        }
        for (got, want) in c.iter().zip(&want) {
            assert!((got - want).abs() < 1e-2, "{got} vs {want}");
        }
    }

    #[test]
    fn sgemm_identity_is_scaled_copy() {
        let n = 8;
        let mut ident = vec![0.0f32; n * n];
        for i in 0..n {
            ident[i * n + i] = 1.0;
        }
        let b: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
        let mut c = vec![0.0f32; n * n];
        sgemm(n, n, n, 2.0, &ident, &b, 0.0, &mut c);
        for (ci, bi) in c.iter().zip(&b) {
            assert_eq!(*ci, 2.0 * bi);
        }
    }

    #[test]
    fn flops_counts() {
        assert_eq!(cherk_flops(2, 3), 4 * 3 * 3);
        assert_eq!(ctrsm_flops(2, 5), 80);
        assert_eq!(sgemm_flops(2, 3, 4), 48);
    }
}
