//! Fast Fourier transform (the `FFT` accelerator's functional model and
//! the host-side FFTW/MKL stand-in).
//!
//! Implements an iterative radix-2 Cooley-Tukey FFT with precomputed
//! bit-reversal and twiddle tables, mirroring FFTW's plan/execute split
//! (`fftwf_plan_guru_dft` / `fftwf_execute` in Listing 1): a [`FftPlan`]
//! is created once for a size and executed many times — exactly the reuse
//! pattern the accelerator descriptor exploits.

use core::f32::consts::PI;
use core::fmt;

use mealib_types::Complex32;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `FFTW_FORWARD`: negative exponent sign.
    Forward,
    /// `FFTW_BACKWARD`: positive exponent sign, scaled by `1/n` so that
    /// `inverse(forward(x)) == x`.
    Inverse,
}

/// A reusable FFT plan for a fixed power-of-two size.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    log2n: u32,
    rev: Vec<u32>,
    // Twiddles for the forward transform, one per butterfly angle:
    // twiddle[k] = e^{-2πik/n} for k in 0..n/2.
    twiddle: Vec<Complex32>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is zero.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n > 0,
            "FFT size must be a power of two"
        );
        let log2n = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - log2n.max(1)))
            .collect::<Vec<_>>();
        let rev = if n == 1 { vec![0] } else { rev };
        let twiddle = (0..n / 2)
            .map(|k| Complex32::from_polar_unit(-2.0 * PI * k as f32 / n as f32))
            .collect();
        Self {
            n,
            log2n,
            rev,
            twiddle,
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the degenerate length-1 plan.
    pub fn is_empty(&self) -> bool {
        self.n == 1
    }

    /// Executes the transform in place.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan length.
    pub fn execute(&self, data: &mut [Complex32], dir: Direction) {
        assert_eq!(data.len(), self.n, "buffer length must match plan size");
        if self.n == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Iterative butterflies.
        for stage in 1..=self.log2n {
            let half = 1usize << (stage - 1);
            let step = self.n >> stage; // twiddle index stride
            let mut base = 0;
            while base < self.n {
                for k in 0..half {
                    let mut w = self.twiddle[k * step];
                    if dir == Direction::Inverse {
                        w = w.conj();
                    }
                    let a = data[base + k];
                    let b = data[base + k + half] * w;
                    data[base + k] = a + b;
                    data[base + k + half] = a - b;
                }
                base += half * 2;
            }
        }
        if dir == Direction::Inverse {
            let scale = 1.0 / self.n as f32;
            for x in data.iter_mut() {
                *x = x.scale(scale);
            }
        }
    }

    /// Executes the transform over `count` contiguous signals stored back
    /// to back — the "batched FFT" / `howmany` interface of the FFTW guru
    /// API that STAP's Doppler processing uses.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != count * self.len()`.
    pub fn execute_batch(&self, data: &mut [Complex32], count: usize, dir: Direction) {
        assert_eq!(
            data.len(),
            count * self.n,
            "batch buffer must hold count * n elements"
        );
        for chunk in data.chunks_mut(self.n) {
            self.execute(chunk, dir);
        }
    }
}

impl fmt::Display for FftPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FftPlan(n={})", self.n)
    }
}

/// 2D FFT over a row-major `rows × cols` image: transforms every row,
/// transposes, transforms every (former) column, and transposes back.
/// Both dimensions must be powers of two.
///
/// This is the decomposition the paper's chained `RESHP → FFT` datapath
/// implements in hardware for SAR (§5.4).
///
/// # Panics
///
/// Panics if `data.len() != rows * cols` or a dimension is not a power of
/// two.
pub fn fft_2d(data: &mut Vec<Complex32>, rows: usize, cols: usize, dir: Direction) {
    assert_eq!(data.len(), rows * cols, "image buffer length mismatch");
    let row_plan = FftPlan::new(cols);
    row_plan.execute_batch(data, rows, dir);
    let mut t = crate::reshape::transpose(data, rows, cols);
    let col_plan = FftPlan::new(rows);
    col_plan.execute_batch(&mut t, cols, dir);
    *data = crate::reshape::transpose(&t, cols, rows);
}

/// Forward FFT of a real signal of even length `n`, returning the
/// `n/2 + 1` non-redundant spectrum bins (the rest follow from conjugate
/// symmetry `X[n-k] = conj(X[k])`).
///
/// Implemented with the classic half-length complex transform: the even
/// samples ride the real lane and the odd samples the imaginary lane of
/// one `n/2`-point FFT, then a split/twiddle pass separates them. This
/// is how a radar front-end feeds real ADC samples to the FFT
/// accelerator at half the bandwidth of a naive complex transform.
///
/// # Panics
///
/// Panics if `n` is not a power of two or is smaller than 2.
pub fn rfft(input: &[f32]) -> Vec<Complex32> {
    let n = input.len();
    assert!(
        n.is_power_of_two() && n >= 2,
        "rfft length must be a power of two >= 2"
    );
    let half = n / 2;
    let mut packed: Vec<Complex32> = (0..half)
        .map(|i| Complex32::new(input[2 * i], input[2 * i + 1]))
        .collect();
    FftPlan::new(half).execute(&mut packed, Direction::Forward);

    let mut out = vec![Complex32::ZERO; half + 1];
    out[0] = Complex32::new(packed[0].re + packed[0].im, 0.0);
    out[half] = Complex32::new(packed[0].re - packed[0].im, 0.0);
    for k in 1..half {
        let a = packed[k];
        let b = packed[half - k].conj();
        let even = (a + b).scale(0.5);
        let odd = (a - b).scale(0.5);
        // odd/i = -i*odd
        let odd = Complex32::new(odd.im, -odd.re);
        let w = Complex32::from_polar_unit(-2.0 * PI * k as f32 / n as f32);
        out[k] = even + w * odd;
    }
    out
}

/// Expands an `n/2 + 1`-bin [`rfft`] spectrum back to the full `n`-bin
/// complex spectrum using conjugate symmetry.
///
/// # Panics
///
/// Panics if `half_spectrum` has fewer than 2 bins.
pub fn expand_rfft(half_spectrum: &[Complex32]) -> Vec<Complex32> {
    assert!(
        half_spectrum.len() >= 2,
        "need at least DC and Nyquist bins"
    );
    let half = half_spectrum.len() - 1;
    let n = 2 * half;
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(half_spectrum);
    for k in (1..half).rev() {
        out.push(half_spectrum[k].conj());
    }
    out
}

/// Reference O(n²) DFT used to validate the fast transform in tests.
pub fn dft_naive(input: &[Complex32], dir: Direction) -> Vec<Complex32> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex32::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        for (j, &x) in input.iter().enumerate() {
            let angle = sign * 2.0 * PI * (k * j % n.max(1)) as f32 / n as f32;
            *o += x * Complex32::from_polar_unit(angle);
        }
        if dir == Direction::Inverse {
            *o = o.scale(1.0 / n as f32);
        }
    }
    out
}

/// Canonical FLOP count of a length-`n` complex FFT: `5·n·log2(n)`.
pub fn fft_flops(n: usize) -> u64 {
    assert!(
        n.is_power_of_two() && n > 0,
        "FFT size must be a power of two"
    );
    5 * n as u64 * n.trailing_zeros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<Complex32> {
        (0..n)
            .map(|i| Complex32::new((i as f32 * 0.71).sin() + 0.3, (i as f32 * 1.13).cos() - 0.1))
            .collect()
    }

    fn max_err(a: &[Complex32], b: &[Complex32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let x = signal(n);
            let want = dft_naive(&x, Direction::Forward);
            let mut got = x.clone();
            FftPlan::new(n).execute(&mut got, Direction::Forward);
            assert!(max_err(&got, &want) < 1e-3 * n as f32, "n={n}");
        }
    }

    #[test]
    fn inverse_recovers_input() {
        let n = 256;
        let x = signal(n);
        let plan = FftPlan::new(n);
        let mut y = x.clone();
        plan.execute(&mut y, Direction::Forward);
        plan.execute(&mut y, Direction::Inverse);
        assert!(max_err(&y, &x) < 1e-4);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 32;
        let mut x = vec![Complex32::ZERO; n];
        x[0] = Complex32::ONE;
        FftPlan::new(n).execute(&mut x, Direction::Forward);
        for v in &x {
            assert!((*v - Complex32::ONE).abs() < 1e-5);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let mut x: Vec<Complex32> = (0..n)
            .map(|i| Complex32::from_polar_unit(2.0 * PI * (k0 * i) as f32 / n as f32))
            .collect();
        FftPlan::new(n).execute(&mut x, Direction::Forward);
        for (k, v) in x.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f32).abs() < 1e-2);
            } else {
                assert!(v.abs() < 1e-2, "leakage at bin {k}: {}", v.abs());
            }
        }
    }

    #[test]
    fn linearity() {
        let n = 128;
        let a = signal(n);
        let b: Vec<Complex32> = signal(n).iter().map(|z| z.conj()).collect();
        let plan = FftPlan::new(n);
        let mut sum: Vec<Complex32> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        plan.execute(&mut sum, Direction::Forward);
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.execute(&mut fa, Direction::Forward);
        plan.execute(&mut fb, Direction::Forward);
        let combined: Vec<Complex32> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&sum, &combined) < 1e-2);
    }

    #[test]
    fn batch_equals_individual() {
        let n = 16;
        let count = 5;
        let plan = FftPlan::new(n);
        let mut batched = signal(n * count);
        let per_signal: Vec<Vec<Complex32>> = batched
            .chunks(n)
            .map(|c| {
                let mut v = c.to_vec();
                plan.execute(&mut v, Direction::Forward);
                v
            })
            .collect();
        plan.execute_batch(&mut batched, count, Direction::Forward);
        for (i, want) in per_signal.iter().enumerate() {
            assert!(max_err(&batched[i * n..(i + 1) * n], want) < 1e-6);
        }
    }

    #[test]
    fn fft_2d_round_trip() {
        let rows = 8;
        let cols = 16;
        let orig = signal(rows * cols);
        let mut img = orig.clone();
        fft_2d(&mut img, rows, cols, Direction::Forward);
        fft_2d(&mut img, rows, cols, Direction::Inverse);
        assert!(max_err(&img, &orig) < 1e-4);
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 512;
        let x = signal(n);
        let time_energy: f32 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut f = x.clone();
        FftPlan::new(n).execute(&mut f, Direction::Forward);
        let freq_energy: f32 = f.iter().map(|z| z.norm_sqr()).sum::<f32>() / n as f32;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = FftPlan::new(24);
    }

    #[test]
    #[should_panic(expected = "must match plan size")]
    fn wrong_buffer_size_rejected() {
        let plan = FftPlan::new(8);
        let mut data = vec![Complex32::ZERO; 4];
        plan.execute(&mut data, Direction::Forward);
    }

    #[test]
    fn rfft_matches_full_complex_fft() {
        for n in [2usize, 8, 64, 256] {
            let real: Vec<f32> = (0..n).map(|i| (i as f32 * 0.19).sin() + 0.25).collect();
            let half = rfft(&real);
            assert_eq!(half.len(), n / 2 + 1);
            let mut full: Vec<Complex32> = real.iter().map(|&r| Complex32::new(r, 0.0)).collect();
            FftPlan::new(n).execute(&mut full, Direction::Forward);
            for k in 0..=n / 2 {
                assert!(
                    (half[k] - full[k]).abs() < 1e-3 * n as f32,
                    "n={n} bin {k}: {} vs {}",
                    half[k],
                    full[k]
                );
            }
        }
    }

    #[test]
    fn rfft_dc_and_nyquist_are_real() {
        let real: Vec<f32> = (0..128).map(|i| (i as f32 * 0.7).cos()).collect();
        let half = rfft(&real);
        assert_eq!(half[0].im, 0.0);
        assert_eq!(half[64].im, 0.0);
    }

    #[test]
    fn expand_rfft_reconstructs_symmetric_spectrum() {
        let n = 64;
        let real: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).sin()).collect();
        let expanded = expand_rfft(&rfft(&real));
        assert_eq!(expanded.len(), n);
        let mut full: Vec<Complex32> = real.iter().map(|&r| Complex32::new(r, 0.0)).collect();
        FftPlan::new(n).execute(&mut full, Direction::Forward);
        for k in 0..n {
            assert!((expanded[k] - full[k]).abs() < 1e-2, "bin {k}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rfft_rejects_odd_lengths() {
        let _ = rfft(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn flops_formula() {
        assert_eq!(fft_flops(8), 5 * 8 * 3);
        assert_eq!(fft_flops(1), 0);
    }
}
