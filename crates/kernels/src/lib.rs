//! Reference numerical kernels for the MEALib reproduction.
//!
//! Table 1 of the paper lists the memory-bounded MKL operations that MEALib
//! accelerates: `AXPY`, `DOT`, `GEMV`, `SPMV`, `RESMP` (data resampling),
//! `FFT`, and `RESHP` (matrix transpose). Table 4 adds the compute-bounded
//! routines the STAP application keeps on the host: `CHERK` and `CTRSM`,
//! plus the complex inner product `CDOTC`.
//!
//! This crate implements every one of those operations from scratch, in two
//! flavours where it matters for the paper's Figure 1 experiment:
//!
//! * an **optimized** variant (blocked/stride-aware, the stand-in for the
//!   vendor library), and
//! * a **naive** variant (the "original code" a programmer would write
//!   before adopting a library).
//!
//! Both flavours are real functional implementations — they are what the
//! accelerator models in `mealib-accel` execute to produce results — while
//! the *performance* of each flavour on each platform is modeled by
//! `mealib-host`.
//!
//! Each module also exposes `*_flops` helpers giving the canonical
//! floating-point operation counts used by the roofline models.
//!
//! # Examples
//!
//! ```
//! use mealib_kernels::blas1::{saxpy, sdot};
//!
//! let x = vec![1.0_f32, 2.0, 3.0];
//! let mut y = vec![10.0_f32, 20.0, 30.0];
//! saxpy(2.0, &x, &mut y);
//! assert_eq!(y, vec![12.0, 24.0, 36.0]);
//! assert_eq!(sdot(&x, &y), 12.0 + 48.0 + 108.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blas1;
pub mod blas2;
pub mod blas3;
pub mod fft;
pub mod resample;
pub mod reshape;
pub mod sparse;

pub use fft::FftPlan;
pub use sparse::CsrMatrix;
