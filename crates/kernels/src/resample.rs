//! Data resampling (the `RESMP` accelerator / MKL `dfsInterpolate1D`).
//!
//! SAR image formation resamples range lines onto a new grid before the
//! azimuth FFT (§5.4); STAP-class radar pipelines use the same primitive.
//! We implement linear interpolation onto an arbitrary target grid plus a
//! block-resampling convenience mirroring the paper's "16384 blocks"
//! dataset (Table 2).

use mealib_types::Complex32;

/// Linearly interpolates `input` (samples at integer positions
/// `0..input.len()`) at each position in `positions`.
///
/// Positions outside `[0, len-1]` clamp to the boundary samples, the
/// convention MKL's data-fitting functions call "extrapolation by
/// nearest".
///
/// # Panics
///
/// Panics if `input` is empty.
pub fn interpolate1d(input: &[f32], positions: &[f32]) -> Vec<f32> {
    assert!(!input.is_empty(), "cannot resample an empty signal");
    positions.iter().map(|&p| sample_linear(input, p)).collect()
}

/// Complex variant of [`interpolate1d`], interpolating the real and
/// imaginary parts independently.
///
/// # Panics
///
/// Panics if `input` is empty.
pub fn interpolate1d_complex(input: &[Complex32], positions: &[f32]) -> Vec<Complex32> {
    assert!(!input.is_empty(), "cannot resample an empty signal");
    positions
        .iter()
        .map(|&p| {
            let p = p.clamp(0.0, (input.len() - 1) as f32);
            let i0 = p.floor() as usize;
            let i1 = (i0 + 1).min(input.len() - 1);
            let frac = p - i0 as f32;
            input[i0].scale(1.0 - frac) + input[i1].scale(frac)
        })
        .collect()
}

/// Resamples `input` to exactly `out_len` uniformly spaced samples that
/// span the same interval.
///
/// # Panics
///
/// Panics if `input` is empty or `out_len` is zero.
pub fn resample_uniform(input: &[f32], out_len: usize) -> Vec<f32> {
    assert!(!input.is_empty(), "cannot resample an empty signal");
    assert!(out_len > 0, "output length must be nonzero");
    if out_len == 1 {
        return vec![input[0]];
    }
    let scale = (input.len() - 1) as f32 / (out_len - 1) as f32;
    (0..out_len)
        .map(|i| sample_linear(input, i as f32 * scale))
        .collect()
}

/// Applies [`resample_uniform`] independently to `blocks` contiguous
/// blocks — the batched form of the `RESMP` accelerator invocation.
///
/// # Panics
///
/// Panics if `input.len()` is not a multiple of `blocks`, either length
/// is zero, or `out_per_block` is zero.
pub fn resample_blocks(input: &[f32], blocks: usize, out_per_block: usize) -> Vec<f32> {
    assert!(blocks > 0, "block count must be nonzero");
    assert!(
        input.len().is_multiple_of(blocks) && !input.is_empty(),
        "input length must be a positive multiple of the block count"
    );
    let in_per_block = input.len() / blocks;
    let mut out = Vec::with_capacity(blocks * out_per_block);
    for b in 0..blocks {
        let chunk = &input[b * in_per_block..(b + 1) * in_per_block];
        out.extend(resample_uniform(chunk, out_per_block));
    }
    out
}

/// FLOP count of interpolating `out_len` samples (one lerp = 2 multiplies
/// + 2 adds per output).
pub fn resample_flops(out_len: usize) -> u64 {
    4 * out_len as u64
}

fn sample_linear(input: &[f32], p: f32) -> f32 {
    let p = p.clamp(0.0, (input.len() - 1) as f32);
    let i0 = p.floor() as usize;
    let i1 = (i0 + 1).min(input.len() - 1);
    let frac = p - i0 as f32;
    input[i0] * (1.0 - frac) + input[i1] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_at_integer_positions_is_exact() {
        let x = [1.0, 4.0, 9.0, 16.0];
        let y = interpolate1d(&x, &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(y, x.to_vec());
    }

    #[test]
    fn midpoint_interpolation() {
        let x = [0.0, 10.0];
        assert_eq!(interpolate1d(&x, &[0.5]), vec![5.0]);
        assert_eq!(interpolate1d(&x, &[0.25]), vec![2.5]);
    }

    #[test]
    fn out_of_range_clamps() {
        let x = [3.0, 7.0];
        assert_eq!(interpolate1d(&x, &[-5.0, 99.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn uniform_upsampling_preserves_linear_signal() {
        // A linear ramp must resample exactly under linear interpolation.
        let x: Vec<f32> = (0..9).map(|i| 2.0 * i as f32 + 1.0).collect();
        let y = resample_uniform(&x, 17);
        for (i, v) in y.iter().enumerate() {
            let want = 1.0 + 16.0 * (i as f32 / 16.0);
            assert!((v - want).abs() < 1e-4, "{v} vs {want}");
        }
    }

    #[test]
    fn uniform_resample_preserves_endpoints() {
        let x = [5.0, -2.0, 8.0, 3.0, 1.0];
        for out_len in [2usize, 3, 7, 50] {
            let y = resample_uniform(&x, out_len);
            assert_eq!(y.len(), out_len);
            assert_eq!(y[0], 5.0);
            assert!((y[out_len - 1] - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn single_output_takes_first_sample() {
        assert_eq!(resample_uniform(&[9.0, 1.0], 1), vec![9.0]);
    }

    #[test]
    fn block_resampling_is_independent_per_block() {
        let input = [0.0, 2.0, /* block 2 */ 10.0, 30.0];
        let out = resample_blocks(&input, 2, 3);
        assert_eq!(out, vec![0.0, 1.0, 2.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn complex_interpolation_matches_componentwise() {
        let x = [Complex32::new(0.0, 4.0), Complex32::new(2.0, 0.0)];
        let y = interpolate1d_complex(&x, &[0.5]);
        assert_eq!(y[0], Complex32::new(1.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "empty signal")]
    fn empty_input_rejected() {
        let _ = interpolate1d(&[], &[0.0]);
    }

    #[test]
    #[should_panic(expected = "positive multiple")]
    fn block_mismatch_rejected() {
        let _ = resample_blocks(&[1.0, 2.0, 3.0], 2, 2);
    }

    #[test]
    fn flops() {
        assert_eq!(resample_flops(100), 400);
    }
}
