//! Data layout transforms (the `RESHP` accelerator / `mkl_simatcopy`).
//!
//! The paper places a *data reshape infrastructure* on the DRAM logic
//! layer (§2.1) because layout transforms — row-major ↔ column-major,
//! linear ↔ blocked — are needed both by applications (matrix transpose)
//! and by other accelerators (the FFT core wants blocked data). This
//! module provides the functional implementations; the bandwidth cost of
//! each transform on each platform is modeled elsewhere.

/// Out-of-place transpose of a row-major `rows × cols` matrix, returning
/// a row-major `cols × rows` matrix.
///
/// Uses cache blocking, the access pattern the paper's data-reshape unit
/// implements with row-buffer-sized tiles.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
pub fn transpose<T: Copy + Default>(data: &[T], rows: usize, cols: usize) -> Vec<T> {
    assert_eq!(data.len(), rows * cols, "matrix buffer length mismatch");
    const BLOCK: usize = 32;
    let mut out = vec![T::default(); data.len()];
    let mut bi = 0;
    while bi < rows {
        let bi_end = (bi + BLOCK).min(rows);
        let mut bj = 0;
        while bj < cols {
            let bj_end = (bj + BLOCK).min(cols);
            for i in bi..bi_end {
                for j in bj..bj_end {
                    out[j * rows + i] = data[i * cols + j];
                }
            }
            bj = bj_end;
        }
        bi = bi_end;
    }
    out
}

/// Naive element-by-element transpose (the Figure 1 "original code"
/// baseline: column-strided writes with no blocking).
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
pub fn transpose_naive<T: Copy + Default>(data: &[T], rows: usize, cols: usize) -> Vec<T> {
    assert_eq!(data.len(), rows * cols, "matrix buffer length mismatch");
    let mut out = vec![T::default(); data.len()];
    for i in 0..rows {
        for j in 0..cols {
            out[j * rows + i] = data[i * cols + j];
        }
    }
    out
}

/// In-place transpose of a square row-major matrix (`mkl_simatcopy` with
/// `rows == cols`).
///
/// # Panics
///
/// Panics if `data.len() != n * n`.
pub fn transpose_in_place<T>(data: &mut [T], n: usize) {
    assert_eq!(data.len(), n * n, "matrix buffer length mismatch");
    for i in 0..n {
        for j in i + 1..n {
            data.swap(i * n + j, j * n + i);
        }
    }
}

/// Converts a row-major `rows × cols` matrix into block-major layout with
/// `block × block` tiles stored contiguously (tiles in row-major order,
/// elements row-major within a tile).
///
/// This is the "linear-to-blocked" transform the DRAM-optimized FFT
/// accelerator requires of its inputs.
///
/// # Panics
///
/// Panics if `block` does not evenly divide both dimensions, or the
/// buffer length is wrong.
pub fn linear_to_blocked<T: Copy + Default>(
    data: &[T],
    rows: usize,
    cols: usize,
    block: usize,
) -> Vec<T> {
    assert_eq!(data.len(), rows * cols, "matrix buffer length mismatch");
    assert!(
        block > 0 && rows.is_multiple_of(block) && cols.is_multiple_of(block),
        "block size must divide both matrix dimensions"
    );
    let tiles_per_row = cols / block;
    let mut out = vec![T::default(); data.len()];
    for i in 0..rows {
        for j in 0..cols {
            let (ti, tj) = (i / block, j / block);
            let (oi, oj) = (i % block, j % block);
            let tile = ti * tiles_per_row + tj;
            out[tile * block * block + oi * block + oj] = data[i * cols + j];
        }
    }
    out
}

/// Inverse of [`linear_to_blocked`].
///
/// # Panics
///
/// Panics under the same conditions as [`linear_to_blocked`].
pub fn blocked_to_linear<T: Copy + Default>(
    data: &[T],
    rows: usize,
    cols: usize,
    block: usize,
) -> Vec<T> {
    assert_eq!(data.len(), rows * cols, "matrix buffer length mismatch");
    assert!(
        block > 0 && rows.is_multiple_of(block) && cols.is_multiple_of(block),
        "block size must divide both matrix dimensions"
    );
    let tiles_per_row = cols / block;
    let mut out = vec![T::default(); data.len()];
    for i in 0..rows {
        for j in 0..cols {
            let (ti, tj) = (i / block, j / block);
            let (oi, oj) = (i % block, j % block);
            let tile = ti * tiles_per_row + tj;
            out[i * cols + j] = data[tile * block * block + oi * block + oj];
        }
    }
    out
}

/// Bytes moved by a transpose of an `rows × cols` matrix of `elem_bytes`
/// elements (each element read once and written once).
pub fn reshape_bytes(rows: usize, cols: usize, elem_bytes: usize) -> u64 {
    2 * (rows * cols * elem_bytes) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn transpose_small_example() {
        // [[0,1,2],[3,4,5]] -> [[0,3],[1,4],[2,5]]
        let t = transpose(&iota(6), 2, 3);
        assert_eq!(t, vec![0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn transpose_round_trip_rectangular() {
        let m = iota(37 * 53);
        let t = transpose(&m, 37, 53);
        let back = transpose(&t, 53, 37);
        assert_eq!(m, back);
    }

    #[test]
    fn blocked_matches_naive() {
        let m = iota(64 * 48);
        assert_eq!(transpose(&m, 64, 48), transpose_naive(&m, 64, 48));
    }

    #[test]
    fn in_place_matches_out_of_place() {
        let n = 33;
        let m = iota(n * n);
        let mut ip = m.clone();
        transpose_in_place(&mut ip, n);
        assert_eq!(ip, transpose(&m, n, n));
    }

    #[test]
    fn in_place_is_involution() {
        let n = 16;
        let m = iota(n * n);
        let mut x = m.clone();
        transpose_in_place(&mut x, n);
        transpose_in_place(&mut x, n);
        assert_eq!(x, m);
    }

    #[test]
    fn blocked_layout_round_trip() {
        let m = iota(16 * 24);
        let b = linear_to_blocked(&m, 16, 24, 8);
        assert_eq!(blocked_to_linear(&b, 16, 24, 8), m);
    }

    #[test]
    fn blocked_layout_tile_contents() {
        // 4x4 matrix, 2x2 blocks: first tile must be [0,1,4,5].
        let m = iota(16);
        let b = linear_to_blocked(&m, 4, 4, 2);
        assert_eq!(&b[..4], &[0, 1, 4, 5]);
        assert_eq!(&b[4..8], &[2, 3, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "block size must divide")]
    fn blocked_rejects_nondividing_block() {
        let _ = linear_to_blocked(&iota(12), 3, 4, 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn transpose_rejects_bad_length() {
        let _ = transpose(&iota(5), 2, 3);
    }

    #[test]
    fn bytes_moved() {
        assert_eq!(reshape_bytes(4, 4, 4), 128);
    }
}
