//! Sparse matrices in CSR form and sparse matrix-vector multiplication
//! (the `SPMV` accelerator / `mkl_scsrgemv`).
//!
//! The paper evaluates SPMV on `rgg_n_2_20` from the UF Sparse Matrix
//! Collection; `mealib-workloads` synthesizes an equivalent
//! random-geometric-graph matrix using this type.

use std::fmt;

/// A compressed-sparse-row matrix of `f32` values.
///
/// Invariants (enforced at construction):
/// * `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`, monotonically
///   non-decreasing, and `row_ptr[rows] == nnz`;
/// * column indices are within bounds and strictly increasing within each
///   row (no duplicates).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

/// Error building a [`CsrMatrix`] from raw parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// `row_ptr` has the wrong length or is not monotone from zero to nnz.
    BadRowPtr,
    /// A column index is out of bounds or out of order within its row.
    BadColumnIndex {
        /// Row containing the offending entry.
        row: usize,
    },
    /// `col_idx` and `values` lengths disagree.
    LengthMismatch,
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrError::BadRowPtr => write!(f, "row pointer array is malformed"),
            CsrError::BadColumnIndex { row } => {
                write!(
                    f,
                    "column indices in row {row} are out of bounds or unsorted"
                )
            }
            CsrError::LengthMismatch => write!(f, "col_idx and values lengths differ"),
        }
    }
}

impl std::error::Error for CsrError {}

impl CsrMatrix {
    /// Builds a CSR matrix from raw arrays, validating every invariant.
    ///
    /// # Errors
    ///
    /// Returns a [`CsrError`] describing the first violated invariant.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f32>,
    ) -> Result<Self, CsrError> {
        if col_idx.len() != values.len() {
            return Err(CsrError::LengthMismatch);
        }
        if row_ptr.len() != rows + 1
            || row_ptr.first() != Some(&0)
            || *row_ptr.last().expect("row_ptr nonempty") != values.len()
            || row_ptr.windows(2).any(|w| w[0] > w[1])
        {
            return Err(CsrError::BadRowPtr);
        }
        for row in 0..rows {
            let cols_in_row = &col_idx[row_ptr[row]..row_ptr[row + 1]];
            let sorted = cols_in_row.windows(2).all(|w| w[0] < w[1]);
            if !sorted || cols_in_row.iter().any(|&c| c >= cols) {
                return Err(CsrError::BadColumnIndex { row });
            }
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds a CSR matrix from `(row, col, value)` triplets. Duplicate
    /// coordinates are summed; entries are sorted per row.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
        }
        let mut per_row: Vec<Vec<(usize, f32)>> = vec![Vec::new(); rows];
        for &(r, c, v) in triplets {
            per_row[r].push((c, v));
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        for entries in &mut per_row {
            entries.sort_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < entries.len() {
                let (c, mut v) = entries[i];
                let mut j = i + 1;
                while j < entries.len() && entries[j].0 == c {
                    v += entries[j].1;
                    j += 1;
                }
                col_idx.push(c);
                values.push(v);
                i = j;
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// An identity-like square matrix with ones on the diagonal.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Average non-zeros per row.
    pub fn avg_degree(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.rows as f64
        }
    }

    /// The `(col, value)` pairs of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        assert!(row < self.rows, "row index out of bounds");
        let span = self.row_ptr[row]..self.row_ptr[row + 1];
        self.col_idx[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// Sparse matrix-vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "x length must equal column count");
        let mut y = vec![0.0; self.rows];
        for (row, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yi = acc;
        }
        y
    }

    /// Converts to a dense row-major buffer (test/debug helper; intended
    /// for small matrices).
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.rows * self.cols];
        for row in 0..self.rows {
            for (col, v) in self.row_entries(row) {
                out[row * self.cols + col] = v;
            }
        }
        out
    }

    /// Bytes touched by one SPMV in CSR format, assuming 4-byte values and
    /// 4-byte indices: the standard traffic model the paper's SPMV
    /// accelerator analysis uses (values + column indices + row pointers +
    /// input gather + output write).
    pub fn spmv_bytes(&self) -> u64 {
        let nnz = self.nnz() as u64;
        let rows = self.rows as u64;
        // values (4B) + col indices (4B) per nnz; x gather 4B per nnz;
        // row_ptr 4B per row; y write 4B per row.
        nnz * 12 + rows * 8
    }
}

impl fmt::Display for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrMatrix({}x{}, nnz={}, avg_deg={:.2})",
            self.rows,
            self.cols,
            self.nnz(),
            self.avg_degree()
        )
    }
}

/// FLOP count of one CSR SPMV (a multiply and an add per stored entry).
pub fn spmv_flops(nnz: usize) -> u64 {
    2 * nnz as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 3, 0]]
        CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])
    }

    #[test]
    fn triplet_construction_and_spmv() {
        let m = small();
        assert_eq!(m.nnz(), 3);
        let y = m.spmv(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![3.0, 3.0]);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 1, 2.0), (0, 1, 5.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.spmv(&[0.0, 1.0]), vec![7.0]);
    }

    #[test]
    fn identity_spmv_is_identity() {
        let m = CsrMatrix::identity(5);
        let x = vec![1.0, -2.0, 3.0, 0.5, 9.0];
        assert_eq!(m.spmv(&x), x);
    }

    #[test]
    fn spmv_matches_dense_product() {
        let m = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 1, 2.0),
                (1, 0, -1.0),
                (1, 3, 4.0),
                (2, 2, 0.5),
                (3, 0, 1.0),
                (3, 1, 1.0),
                (3, 2, 1.0),
                (3, 3, 1.0),
            ],
        );
        let dense = m.to_dense();
        let x = [1.0, 2.0, 3.0, 4.0];
        let want: Vec<f32> = (0..4)
            .map(|i| (0..4).map(|j| dense[i * 4 + j] * x[j]).sum())
            .collect();
        assert_eq!(m.spmv(&x), want);
    }

    #[test]
    fn from_raw_validates() {
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        assert_eq!(
            CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]),
            Err(CsrError::BadRowPtr)
        );
        assert_eq!(
            CsrMatrix::from_raw(1, 2, vec![0, 2], vec![1, 0], vec![1.0, 2.0]),
            Err(CsrError::BadColumnIndex { row: 0 }),
        );
        assert_eq!(
            CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]),
            Err(CsrError::BadColumnIndex { row: 0 }),
        );
        assert_eq!(
            CsrMatrix::from_raw(1, 2, vec![0, 1], vec![0, 1], vec![1.0]),
            Err(CsrError::LengthMismatch)
        );
    }

    #[test]
    fn row_entries_iterates_in_order() {
        let m = small();
        let row0: Vec<_> = m.row_entries(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (2, 2.0)]);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::from_triplets(0, 0, &[]);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.avg_degree(), 0.0);
        assert!(m.spmv(&[]).is_empty());
    }

    #[test]
    fn traffic_and_flops() {
        let m = small();
        assert_eq!(m.spmv_bytes(), 3 * 12 + 2 * 8);
        assert_eq!(spmv_flops(m.nnz()), 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplet_out_of_bounds_panics() {
        let _ = CsrMatrix::from_triplets(1, 1, &[(0, 1, 1.0)]);
    }
}
