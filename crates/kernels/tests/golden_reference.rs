//! Golden-reference proptests: every public kernel in blas1/blas2/
//! sparse/reshape checked against a naive scalar reference implemented
//! *here*, independently of the kernel crate's own internals.
//!
//! Comparison discipline follows the numerics:
//!
//! * **Exact** (`==` on every element) where the reference performs the
//!   same floating-point operations in the same order — elementwise ops
//!   (`saxpy`, `sscal`, `caxpy`), in-order reductions (`sdot_strided`,
//!   `cdotc`, `cdotu`), and all data-movement ops (transpose, blocked
//!   layouts, CSR assembly), which must not perturb values at all.
//! * **Relative-error bounded** where the kernel deliberately uses a
//!   different accumulation order (`sdot`'s eight-way partial sums,
//!   `sgemv`/`sgemv_trans`/`spmv` row reductions): float addition is not
//!   associative, so the oracle bounds the drift instead.

use mealib_kernels::blas1::{
    caxpy, cdotc, cdotc_strided, cdotu, saxpy, saxpy_strided, sdot, sdot_strided, sscal,
};
use mealib_kernels::blas2::{sgemv, sgemv_naive, sgemv_trans, MatrixRef};
use mealib_kernels::reshape::{
    blocked_to_linear, linear_to_blocked, transpose, transpose_in_place, transpose_naive,
};
use mealib_kernels::sparse::CsrMatrix;
use mealib_types::Complex32;
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    (-1000i32..=1000).prop_map(|v| v as f32 / 16.0)
}

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(small_f32(), len)
}

fn vec_c32(len: usize) -> impl Strategy<Value = Vec<Complex32>> {
    proptest::collection::vec(
        (small_f32(), small_f32()).prop_map(|(r, i)| Complex32::new(r, i)),
        len,
    )
}

fn rel_close(got: f32, want: f32, tol: f32) -> bool {
    (got - want).abs() <= tol * want.abs().max(1.0)
}

proptest! {
    // ---- blas1: elementwise ops, exact ----

    #[test]
    fn golden_saxpy_exact(alpha in small_f32(), x in vec_f32(65), y0 in vec_f32(65)) {
        let mut y = y0.clone();
        saxpy(alpha, &x, &mut y);
        for i in 0..y.len() {
            prop_assert_eq!(y[i], y0[i] + alpha * x[i], "element {}", i);
        }
    }

    #[test]
    fn golden_saxpy_strided_exact(
        n in 0usize..=16,
        alpha in small_f32(),
        x in vec_f32(64),
        y0 in vec_f32(64),
        incx in 1usize..=3,
        incy in 1usize..=3,
    ) {
        let mut y = y0.clone();
        saxpy_strided(n, alpha, &x, incx, &mut y, incy);
        for i in 0..y.len() {
            // Only the n strided slots of y change; everything else is
            // untouched.
            let want = if incy > 0 && i % incy == 0 && i / incy < n {
                y0[i] + alpha * x[(i / incy) * incx]
            } else {
                y0[i]
            };
            prop_assert_eq!(y[i], want, "element {}", i);
        }
    }

    #[test]
    fn golden_sscal_exact(alpha in small_f32(), x0 in vec_f32(40)) {
        let mut x = x0.clone();
        sscal(alpha, &mut x);
        for i in 0..x.len() {
            prop_assert_eq!(x[i], alpha * x0[i], "element {}", i);
        }
    }

    #[test]
    fn golden_caxpy_exact(
        ar in small_f32(), ai in small_f32(),
        x in vec_c32(33), y0 in vec_c32(33),
    ) {
        let alpha = Complex32::new(ar, ai);
        let mut y = y0.clone();
        caxpy(alpha, &x, &mut y);
        for i in 0..y.len() {
            prop_assert_eq!(y[i], y0[i] + alpha * x[i], "element {}", i);
        }
    }

    // ---- blas1: reductions ----

    /// `sdot_strided` sums in index order, so a naive in-order loop is
    /// bit-identical.
    #[test]
    fn golden_sdot_strided_exact(
        n in 0usize..=20,
        x in vec_f32(64), y in vec_f32(64),
        incx in 1usize..=3, incy in 1usize..=3,
    ) {
        let mut want = 0.0f32;
        for i in 0..n {
            want += x[i * incx] * y[i * incy];
        }
        prop_assert_eq!(sdot_strided(n, &x, incx, &y, incy), want);
    }

    /// `sdot` reduces through eight partial sums — a different order
    /// than the naive loop, so the oracle bounds the relative drift.
    #[test]
    fn golden_sdot_bounded(x in vec_f32(100), y in vec_f32(100)) {
        let mut want = 0.0f32;
        for i in 0..x.len() {
            want += x[i] * y[i];
        }
        prop_assert!(
            rel_close(sdot(&x, &y), want, 1e-3),
            "sdot {} vs reference {}", sdot(&x, &y), want
        );
    }

    /// Complex dots fold in order from zero, matching the naive loop
    /// exactly.
    #[test]
    fn golden_complex_dots_exact(x in vec_c32(41), y in vec_c32(41)) {
        let mut want_c = Complex32::ZERO;
        let mut want_u = Complex32::ZERO;
        for i in 0..x.len() {
            want_c += x[i].conj() * y[i];
            want_u += x[i] * y[i];
        }
        prop_assert_eq!(cdotc(&x, &y), want_c);
        prop_assert_eq!(cdotu(&x, &y), want_u);
    }

    #[test]
    fn golden_cdotc_strided_exact(
        n in 0usize..=16,
        x in vec_c32(48), y in vec_c32(48),
        incx in 1usize..=3, incy in 1usize..=3,
    ) {
        let mut want = Complex32::ZERO;
        for i in 0..n {
            want += x[i * incx].conj() * y[i * incy];
        }
        prop_assert_eq!(cdotc_strided(n, &x, incx, &y, incy), want);
    }

    // ---- blas2: matrix-vector products, bounded ----

    #[test]
    fn golden_sgemv_bounded(
        rows in 1usize..=12, cols in 1usize..=12,
        data in vec_f32(144), x in vec_f32(12), y0 in vec_f32(12),
        alpha in small_f32(), beta in small_f32(),
    ) {
        let a = MatrixRef::dense(&data[..rows * cols], rows, cols);
        let mut y = y0[..rows].to_vec();
        sgemv(alpha, a, &x[..cols], beta, &mut y);
        for i in 0..rows {
            let mut dot = 0.0f32;
            for j in 0..cols {
                dot += data[i * cols + j] * x[j];
            }
            let want = alpha * dot + beta * y0[i];
            prop_assert!(rel_close(y[i], want, 1e-4), "row {}: {} vs {}", i, y[i], want);
        }
    }

    #[test]
    fn golden_sgemv_trans_bounded(
        rows in 1usize..=12, cols in 1usize..=12,
        data in vec_f32(144), x in vec_f32(12), y0 in vec_f32(12),
        alpha in small_f32(), beta in small_f32(),
    ) {
        let a = MatrixRef::dense(&data[..rows * cols], rows, cols);
        let mut y = y0[..cols].to_vec();
        sgemv_trans(alpha, a, &x[..rows], beta, &mut y);
        for j in 0..cols {
            let mut dot = 0.0f32;
            for i in 0..rows {
                dot += data[i * cols + j] * x[i];
            }
            let want = alpha * dot + beta * y0[j];
            prop_assert!(rel_close(y[j], want, 1e-4), "col {}: {} vs {}", j, y[j], want);
        }
    }

    /// The cache-hostile baseline must still compute GEMV.
    #[test]
    fn golden_sgemv_naive_bounded(
        rows in 1usize..=10, cols in 1usize..=10,
        data in vec_f32(100), x in vec_f32(10), y0 in vec_f32(10),
        alpha in small_f32(), beta in small_f32(),
    ) {
        let a = MatrixRef::dense(&data[..rows * cols], rows, cols);
        let mut y = y0[..rows].to_vec();
        sgemv_naive(alpha, a, &x[..cols], beta, &mut y);
        for i in 0..rows {
            let mut dot = 0.0f32;
            for j in 0..cols {
                dot += data[i * cols + j] * x[j];
            }
            let want = alpha * dot + beta * y0[i];
            prop_assert!(rel_close(y[i], want, 1e-4), "row {}: {} vs {}", i, y[i], want);
        }
    }

    // ---- sparse: CSR assembly exact, SpMV bounded ----

    #[test]
    fn golden_csr_from_triplets_exact(
        rows in 1usize..=12, cols in 1usize..=12,
        raw in proptest::collection::vec(
            (0usize..64, 0usize..64, small_f32()), 0..40),
    ) {
        let triplets: Vec<(usize, usize, f32)> =
            raw.iter().map(|&(r, c, v)| (r % rows, c % cols, v)).collect();
        let m = CsrMatrix::from_triplets(rows, cols, &triplets);
        // Reference dense assembly: accumulate in input order, which is
        // the summation order `from_triplets` guarantees for duplicates
        // (stable sort by column within each row).
        let mut dense = vec![0.0f32; rows * cols];
        for &(r, c, v) in &triplets {
            dense[r * cols + c] += v;
        }
        prop_assert_eq!(m.to_dense(), dense);
    }

    #[test]
    fn golden_spmv_bounded(
        rows in 1usize..=12, cols in 1usize..=12,
        raw in proptest::collection::vec(
            (0usize..64, 0usize..64, small_f32()), 0..40),
        x in vec_f32(12),
    ) {
        let triplets: Vec<(usize, usize, f32)> =
            raw.iter().map(|&(r, c, v)| (r % rows, c % cols, v)).collect();
        let m = CsrMatrix::from_triplets(rows, cols, &triplets);
        let mut dense = vec![0.0f32; rows * cols];
        for &(r, c, v) in &triplets {
            dense[r * cols + c] += v;
        }
        let y = m.spmv(&x[..cols]);
        prop_assert_eq!(y.len(), rows);
        for i in 0..rows {
            let mut want = 0.0f32;
            for j in 0..cols {
                want += dense[i * cols + j] * x[j];
            }
            prop_assert!(rel_close(y[i], want, 1e-4), "row {}: {} vs {}", i, y[i], want);
        }
    }

    // ---- reshape: data movement, exact ----

    #[test]
    fn golden_transpose_exact(
        rows in 1usize..=40, cols in 1usize..=40,
        data in vec_f32(1600),
    ) {
        let src = &data[..rows * cols];
        let got = transpose(src, rows, cols);
        let mut want = vec![0.0f32; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                want[j * rows + i] = src[i * cols + j];
            }
        }
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(transpose_naive(src, rows, cols), want);
    }

    #[test]
    fn golden_transpose_in_place_exact(n in 0usize..=20, data in vec_f32(400)) {
        let mut got = data[..n * n].to_vec();
        transpose_in_place(&mut got, n);
        prop_assert_eq!(got, transpose(&data[..n * n], n, n));
    }

    #[test]
    fn golden_blocked_layout_exact(
        block_pow in 0u32..=2, a in 1usize..=3, b in 1usize..=3,
        data in vec_f32(144),
    ) {
        let block = 1usize << block_pow; // 1, 2, or 4
        let (rows, cols) = (a * block, b * block);
        let src = &data[..rows * cols];
        let blocked = linear_to_blocked(src, rows, cols, block);
        // Golden index map: element (i, j) lives at
        // tile(i/block, j/block) · block² + (i%block)·block + (j%block).
        let tiles_per_row = cols / block;
        for i in 0..rows {
            for j in 0..cols {
                let tile = (i / block) * tiles_per_row + j / block;
                let off = tile * block * block + (i % block) * block + j % block;
                prop_assert_eq!(blocked[off], src[i * cols + j], "({}, {})", i, j);
            }
        }
        // And the inverse restores the linear layout exactly.
        prop_assert_eq!(blocked_to_linear(&blocked, rows, cols, block), src);
    }
}
