//! Property-based tests over the kernel invariants.

use mealib_kernels::blas1::{cdotc, saxpy, sdot, sdot_naive};
use mealib_kernels::fft::{dft_naive, Direction, FftPlan};
use mealib_kernels::resample::resample_uniform;
use mealib_kernels::reshape::{
    blocked_to_linear, linear_to_blocked, transpose, transpose_in_place,
};
use mealib_kernels::sparse::CsrMatrix;
use mealib_types::Complex32;
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    (-100i32..=100).prop_map(|v| v as f32 / 8.0)
}

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(small_f32(), len)
}

fn vec_c32(len: usize) -> impl Strategy<Value = Vec<Complex32>> {
    proptest::collection::vec(
        (small_f32(), small_f32()).prop_map(|(r, i)| Complex32::new(r, i)),
        len,
    )
}

proptest! {
    #[test]
    fn saxpy_with_zero_alpha_is_identity(x in vec_f32(64), y0 in vec_f32(64)) {
        let mut y = y0.clone();
        saxpy(0.0, &x, &mut y);
        prop_assert_eq!(y, y0);
    }

    #[test]
    fn sdot_is_commutative(x in vec_f32(48), y in vec_f32(48)) {
        prop_assert_eq!(sdot(&x, &y), sdot(&y, &x));
    }

    #[test]
    fn sdot_matches_naive(x in vec_f32(100), y in vec_f32(100)) {
        let fast = sdot(&x, &y);
        let slow = sdot_naive(&x, &y);
        let scale = slow.abs().max(1.0);
        prop_assert!((fast - slow).abs() / scale < 1e-3);
    }

    #[test]
    fn cdotc_of_self_is_real_nonnegative(x in vec_c32(32)) {
        let d = cdotc(&x, &x);
        prop_assert!(d.re >= 0.0);
        prop_assert!(d.im.abs() < 1e-3 * d.re.max(1.0));
    }

    #[test]
    fn fft_round_trip(x in vec_c32(64)) {
        let plan = FftPlan::new(64);
        let mut y = x.clone();
        plan.execute(&mut y, Direction::Forward);
        plan.execute(&mut y, Direction::Inverse);
        let max_in = x.iter().map(|z| z.abs()).fold(1.0_f32, f32::max);
        for (a, b) in y.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-3 * max_in);
        }
    }

    #[test]
    fn fft_matches_naive_dft(x in vec_c32(16)) {
        let want = dft_naive(&x, Direction::Forward);
        let mut got = x.clone();
        FftPlan::new(16).execute(&mut got, Direction::Forward);
        let scale = want.iter().map(|z| z.abs()).fold(1.0_f32, f32::max);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((*a - *b).abs() < 1e-3 * scale);
        }
    }

    #[test]
    fn transpose_is_involution(data in vec_f32(12 * 20)) {
        let t = transpose(&data, 12, 20);
        let back = transpose(&t, 20, 12);
        prop_assert_eq!(back, data);
    }

    #[test]
    fn in_place_transpose_matches_out_of_place(data in vec_f32(9 * 9)) {
        let mut ip = data.clone();
        transpose_in_place(&mut ip, 9);
        prop_assert_eq!(ip, transpose(&data, 9, 9));
    }

    #[test]
    fn blocked_layout_round_trips(data in vec_f32(16 * 8)) {
        let b = linear_to_blocked(&data, 16, 8, 4);
        prop_assert_eq!(blocked_to_linear(&b, 16, 8, 4), data);
    }

    #[test]
    fn resample_to_same_length_is_identity(data in vec_f32(33)) {
        let y = resample_uniform(&data, 33);
        for (a, b) in y.iter().zip(&data) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn resample_stays_within_input_range(data in vec_f32(17), out_len in 1usize..80) {
        let lo = data.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for v in resample_uniform(&data, out_len) {
            prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_from_triplets_matches_dense_spmv(
        triplets in proptest::collection::vec((0usize..8, 0usize..6, small_f32()), 0..40),
        x in vec_f32(6),
    ) {
        let m = CsrMatrix::from_triplets(8, 6, &triplets);
        let dense = m.to_dense();
        let got = m.spmv(&x);
        for (i, gi) in got.iter().enumerate() {
            let want: f32 = (0..6).map(|j| dense[i * 6 + j] * x[j]).sum();
            prop_assert!((gi - want).abs() < 1e-3);
        }
    }

    #[test]
    fn csr_nnz_never_exceeds_triplet_count(
        triplets in proptest::collection::vec((0usize..8, 0usize..6, small_f32()), 0..40),
    ) {
        let m = CsrMatrix::from_triplets(8, 6, &triplets);
        prop_assert!(m.nnz() <= triplets.len());
    }
}
