//! Physical address decoding.
//!
//! Modern systems interleave one physical page across channels at
//! cache-block granularity, which is exactly what the paper had to defeat
//! to dedicate one DIMM to the emulated stack: removing a DIMM switches
//! the controller to *asymmetric* mode, where the high address range is
//! served by a single channel (§4.2). Both modes are modeled here, plus
//! the vault interleaving used inside the stacked device.

use mealib_types::PhysAddr;

/// Where a physical address lands inside a memory device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// Channel (DIMM system) or vault (stacked device) index.
    pub unit: usize,
    /// Bank within the unit.
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
    /// Byte offset within the row.
    pub col_byte: u64,
}

/// A physical-address → device-location mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddressMapping {
    /// Cache-block-granularity interleaving across `units`
    /// channels/vaults; rows rotate across `banks_per_unit` banks.
    Interleaved {
        /// Number of channels or vaults.
        units: usize,
        /// Banks per channel/vault.
        banks_per_unit: usize,
        /// Row-buffer size in bytes.
        row_bytes: u64,
        /// Interleaving granularity (typically one cache line).
        line_bytes: u64,
    },
    /// Cache-block interleaving with XOR bank/channel hashing: the unit
    /// and bank indices are XOR-folded with higher address bits, breaking
    /// the power-of-two stride aliasing that pins strided walks to one
    /// channel (a standard controller technique; the ablation harness
    /// shows what it buys).
    XorInterleaved {
        /// Number of channels or vaults.
        units: usize,
        /// Banks per channel/vault.
        banks_per_unit: usize,
        /// Row-buffer size in bytes.
        row_bytes: u64,
        /// Interleaving granularity (typically one cache line).
        line_bytes: u64,
    },
    /// The asymmetric mode of §4.2: addresses below `split` interleave
    /// across the first `low_units` units; addresses at or above `split`
    /// map, contiguously, to the single unit `low_units` (the dedicated
    /// DIMM that emulates the memory stack).
    Asymmetric {
        /// Units serving the interleaved low region.
        low_units: usize,
        /// Banks per unit (same for all units).
        banks_per_unit: usize,
        /// Row-buffer size in bytes.
        row_bytes: u64,
        /// Interleaving granularity for the low region.
        line_bytes: u64,
        /// First address of the single-channel high region.
        split: PhysAddr,
    },
}

impl AddressMapping {
    /// Number of addressable units (channels/vaults).
    pub fn units(&self) -> usize {
        match *self {
            AddressMapping::Interleaved { units, .. }
            | AddressMapping::XorInterleaved { units, .. } => units,
            AddressMapping::Asymmetric { low_units, .. } => low_units + 1,
        }
    }

    /// Banks per unit.
    pub fn banks_per_unit(&self) -> usize {
        match *self {
            AddressMapping::Interleaved { banks_per_unit, .. }
            | AddressMapping::XorInterleaved { banks_per_unit, .. }
            | AddressMapping::Asymmetric { banks_per_unit, .. } => banks_per_unit,
        }
    }

    /// Row-buffer size in bytes.
    pub fn row_bytes(&self) -> u64 {
        match *self {
            AddressMapping::Interleaved { row_bytes, .. }
            | AddressMapping::XorInterleaved { row_bytes, .. }
            | AddressMapping::Asymmetric { row_bytes, .. } => row_bytes,
        }
    }

    /// Decodes a physical address into its device location.
    pub fn decode(&self, addr: PhysAddr) -> Location {
        match *self {
            AddressMapping::Interleaved {
                units,
                banks_per_unit,
                row_bytes,
                line_bytes,
            } => decode_interleaved(addr.get(), units, banks_per_unit, row_bytes, line_bytes),
            AddressMapping::XorInterleaved {
                units,
                banks_per_unit,
                row_bytes,
                line_bytes,
            } => {
                let mut loc =
                    decode_interleaved(addr.get(), units, banks_per_unit, row_bytes, line_bytes);
                // Fold higher address bits into the unit and bank
                // indices. Each fold must key only on coordinates it does
                // not itself move, or the mapping loses capacity: the
                // unit fold keys on the line index above the unit
                // selector (which fixes bank/row/col), the bank fold on
                // the row index. With power-of-two unit and bank counts
                // both folds are permutations, so the mapping stays
                // bijective — `mealib-verify`'s MEA024 proof checks this.
                let hash = addr.get() / line_bytes / units as u64;
                loc.unit = ((loc.unit as u64 ^ hash) % units as u64) as usize;
                loc.bank = ((loc.bank as u64 ^ loc.row) % banks_per_unit as u64) as usize;
                loc
            }
            AddressMapping::Asymmetric {
                low_units,
                banks_per_unit,
                row_bytes,
                line_bytes,
                split,
            } => {
                if addr < split {
                    decode_interleaved(addr.get(), low_units, banks_per_unit, row_bytes, line_bytes)
                } else {
                    let within = addr.get() - split.get();
                    let mut loc =
                        decode_interleaved(within, 1, banks_per_unit, row_bytes, line_bytes);
                    loc.unit = low_units;
                    loc
                }
            }
        }
    }

    /// Unit (channel/vault) index `addr` maps to. Shorthand for
    /// [`decode`](Self::decode)`.unit`, used when partitioning a trace
    /// across per-unit workers.
    pub fn unit_of(&self, addr: PhysAddr) -> usize {
        self.decode(addr).unit
    }

    /// Number of bytes starting at `addr` (inclusive) that are
    /// guaranteed to decode into one contiguous span of a single
    /// `(unit, bank, row)`: for every `d` below the returned value,
    /// `decode(addr + d)` has the same unit, bank, and row as
    /// `decode(addr)` and `col_byte` exactly `d` larger.
    ///
    /// This is the distance to the next interleave boundary (or row
    /// boundary, when a single unit serves the region, or the
    /// asymmetric split). The fast engine uses it to decode whole
    /// same-row runs with a single [`decode`](Self::decode) call; the
    /// guarantee above is what keeps that batched decode bit-exact
    /// with the per-burst decode, and is property-checked in tests.
    pub fn contiguous_run_bytes(&self, addr: PhysAddr) -> u64 {
        match *self {
            AddressMapping::Interleaved {
                units,
                row_bytes,
                line_bytes,
                ..
            }
            | AddressMapping::XorInterleaved {
                units,
                row_bytes,
                line_bytes,
                ..
            } => {
                // A single unit keeps contiguous addresses in one row
                // until the row boundary; interleaving breaks the span
                // at the next line boundary.
                if units == 1 {
                    row_bytes - addr.get() % row_bytes
                } else {
                    line_bytes - addr.get() % line_bytes
                }
            }
            AddressMapping::Asymmetric {
                low_units,
                row_bytes,
                line_bytes,
                split,
                ..
            } => {
                if addr < split {
                    let span = if low_units == 1 {
                        row_bytes - addr.get() % row_bytes
                    } else {
                        line_bytes - addr.get() % line_bytes
                    };
                    // A span must never cross the split: the high
                    // region decodes under a different scheme.
                    span.min(split.get() - addr.get())
                } else {
                    // The dedicated high region is a single contiguous
                    // unit addressed relative to the split.
                    let within = addr.get() - split.get();
                    row_bytes - within % row_bytes
                }
            }
        }
    }

    /// Returns `true` if `addr` falls in a region that is physically
    /// contiguous within a single unit (what the accelerators require).
    pub fn is_single_unit(&self, addr: PhysAddr) -> bool {
        match *self {
            AddressMapping::Interleaved { units, .. }
            | AddressMapping::XorInterleaved { units, .. } => units == 1,
            AddressMapping::Asymmetric { split, .. } => addr >= split,
        }
    }

    /// Validates structural parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`mealib_types::ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), mealib_types::ConfigError> {
        use mealib_types::ConfigError;
        let (units, banks, row, line) = match *self {
            AddressMapping::Interleaved {
                units,
                banks_per_unit,
                row_bytes,
                line_bytes,
            }
            | AddressMapping::XorInterleaved {
                units,
                banks_per_unit,
                row_bytes,
                line_bytes,
            } => (units, banks_per_unit, row_bytes, line_bytes),
            AddressMapping::Asymmetric {
                low_units,
                banks_per_unit,
                row_bytes,
                line_bytes,
                ..
            } => (low_units, banks_per_unit, row_bytes, line_bytes),
        };
        if units == 0 {
            return Err(ConfigError::new("units", "must be nonzero"));
        }
        if banks == 0 {
            return Err(ConfigError::new("banks_per_unit", "must be nonzero"));
        }
        if !row.is_power_of_two() {
            return Err(ConfigError::new("row_bytes", "must be a power of two"));
        }
        if !line.is_power_of_two() || line > row {
            return Err(ConfigError::new(
                "line_bytes",
                "must be a power of two no larger than row_bytes",
            ));
        }
        Ok(())
    }
}

fn decode_interleaved(
    addr: u64,
    units: usize,
    banks_per_unit: usize,
    row_bytes: u64,
    line_bytes: u64,
) -> Location {
    let line = addr / line_bytes;
    let unit = (line % units as u64) as usize;
    let within_unit = (line / units as u64) * line_bytes + addr % line_bytes;
    let global_row = within_unit / row_bytes;
    let bank = (global_row % banks_per_unit as u64) as usize;
    Location {
        unit,
        bank,
        row: global_row / banks_per_unit as u64,
        col_byte: within_unit % row_bytes,
    }
}

impl Location {
    /// Returns `true` if two locations share a bank (and therefore a row
    /// buffer).
    pub fn same_bank(&self, other: &Location) -> bool {
        self.unit == other.unit && self.bank == other.bank
    }
}

/// Convenience constructor for the interleaved dual-channel DIMM system
/// of the evaluation machine (2 channels, 8 banks, 8 KiB rows, 64 B
/// lines).
pub fn dual_channel_dimms() -> AddressMapping {
    AddressMapping::Interleaved {
        units: 2,
        banks_per_unit: 8,
        row_bytes: 8192,
        line_bytes: 64,
    }
}

/// Convenience constructor for the asymmetric-mode system of §4.2: two
/// interleaved DIMMs below `split`, one dedicated contiguous DIMM above.
pub fn asymmetric_dimms(split: PhysAddr) -> AddressMapping {
    AddressMapping::Asymmetric {
        low_units: 2,
        banks_per_unit: 8,
        row_bytes: 8192,
        line_bytes: 64,
        split,
    }
}

/// Convenience constructor for the 32-vault stacked device (256 B rows per
/// the DRAM-optimized accelerator literature the paper builds on).
pub fn hmc_vaults() -> AddressMapping {
    AddressMapping::Interleaved {
        units: 32,
        banks_per_unit: 8,
        row_bytes: 4096,
        line_bytes: 256,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_types::Bytes as B;

    #[test]
    fn consecutive_lines_alternate_channels() {
        let m = dual_channel_dimms();
        let a = m.decode(PhysAddr::new(0));
        let b = m.decode(PhysAddr::new(64));
        let c = m.decode(PhysAddr::new(128));
        assert_eq!(a.unit, 0);
        assert_eq!(b.unit, 1);
        assert_eq!(c.unit, 0);
    }

    #[test]
    fn bytes_within_a_line_stay_put() {
        let m = dual_channel_dimms();
        let a = m.decode(PhysAddr::new(64));
        let b = m.decode(PhysAddr::new(64 + 63));
        assert_eq!(a.unit, b.unit);
        assert_eq!(a.row, b.row);
        assert_eq!(b.col_byte, a.col_byte + 63);
    }

    #[test]
    fn sequential_addresses_fill_row_before_advancing() {
        let m = AddressMapping::Interleaved {
            units: 1,
            banks_per_unit: 2,
            row_bytes: 256,
            line_bytes: 64,
        };
        let first = m.decode(PhysAddr::new(0));
        let last_in_row = m.decode(PhysAddr::new(255));
        let next_row = m.decode(PhysAddr::new(256));
        assert_eq!(first.row, last_in_row.row);
        assert_eq!(first.bank, last_in_row.bank);
        // Next row rotates to the other bank.
        assert_ne!(next_row.bank, first.bank);
    }

    #[test]
    fn asymmetric_high_region_is_single_unit_and_contiguous() {
        let split = PhysAddr::new(8 << 30);
        let m = asymmetric_dimms(split);
        assert!(!m.is_single_unit(PhysAddr::new(0)));
        assert!(m.is_single_unit(split));
        let a = m.decode(split);
        let b = m.decode(split + B::from_kib(4));
        assert_eq!(a.unit, 2);
        assert_eq!(b.unit, 2);
        assert_eq!(a.row, 0);
        assert_eq!(a.col_byte, 0);
        // 4 KiB into an 8 KiB row: same row, same bank.
        assert_eq!(b.row, a.row);
        assert!(b.same_bank(&a));
    }

    #[test]
    fn asymmetric_low_region_still_interleaves() {
        let m = asymmetric_dimms(PhysAddr::new(1 << 30));
        assert_eq!(m.decode(PhysAddr::new(0)).unit, 0);
        assert_eq!(m.decode(PhysAddr::new(64)).unit, 1);
        assert_eq!(m.units(), 3);
    }

    #[test]
    fn unit_of_matches_decode() {
        let maps = [
            dual_channel_dimms(),
            asymmetric_dimms(PhysAddr::new(1 << 20)),
            hmc_vaults(),
        ];
        for m in &maps {
            for i in 0..4096u64 {
                let addr = PhysAddr::new(i * 97);
                assert_eq!(m.unit_of(addr), m.decode(addr).unit);
            }
        }
    }

    #[test]
    fn hmc_mapping_spreads_across_vaults() {
        let m = hmc_vaults();
        let units: std::collections::HashSet<usize> = (0..32u64)
            .map(|i| m.decode(PhysAddr::new(i * 256)).unit)
            .collect();
        assert_eq!(units.len(), 32, "32 consecutive blocks hit all 32 vaults");
    }

    #[test]
    fn xor_hashing_breaks_stride_aliasing() {
        // A stride equal to line*units pins the plain mapping to one
        // channel; the XOR mapping spreads it.
        let plain = dual_channel_dimms();
        let hashed = AddressMapping::XorInterleaved {
            units: 2,
            banks_per_unit: 8,
            row_bytes: 8192,
            line_bytes: 64,
        };
        let stride = 64 * 2; // aliases on the plain mapping
        let plain_units: std::collections::HashSet<usize> = (0..64u64)
            .map(|i| plain.decode(PhysAddr::new(i * stride)).unit)
            .collect();
        let hashed_units: std::collections::HashSet<usize> = (0..64u64)
            .map(|i| hashed.decode(PhysAddr::new(i * stride)).unit)
            .collect();
        assert_eq!(plain_units.len(), 1, "plain mapping aliases to one channel");
        assert_eq!(hashed_units.len(), 2, "XOR mapping uses both channels");
    }

    #[test]
    fn xor_mapping_is_a_valid_mapping() {
        let hashed = AddressMapping::XorInterleaved {
            units: 4,
            banks_per_unit: 8,
            row_bytes: 4096,
            line_bytes: 64,
        };
        assert!(hashed.validate().is_ok());
        assert_eq!(hashed.units(), 4);
        // Decoding stays in range over a large span.
        for i in 0..10_000u64 {
            let loc = hashed.decode(PhysAddr::new(i * 191));
            assert!(loc.unit < 4);
            assert!(loc.bank < 8);
        }
    }

    #[test]
    fn contiguous_runs_decode_contiguously() {
        // The guarantee the fast engine's batched decode rests on:
        // every byte inside the advertised span shares the first
        // byte's (unit, bank, row) and advances col_byte linearly.
        let maps = [
            dual_channel_dimms(),
            hmc_vaults(),
            asymmetric_dimms(PhysAddr::new((1 << 20) + 96)), // unaligned split
            AddressMapping::Interleaved {
                units: 1,
                banks_per_unit: 4,
                row_bytes: 1024,
                line_bytes: 64,
            },
            AddressMapping::XorInterleaved {
                units: 4,
                banks_per_unit: 8,
                row_bytes: 4096,
                line_bytes: 64,
            },
            AddressMapping::XorInterleaved {
                units: 1,
                banks_per_unit: 8,
                row_bytes: 4096,
                line_bytes: 64,
            },
        ];
        for m in &maps {
            for i in 0..2048u64 {
                // Sample addresses around the asymmetric split and at
                // odd offsets, not just line-aligned ones.
                let addr = PhysAddr::new((1 << 20) - 1024 + i * 37);
                let run = m.contiguous_run_bytes(addr);
                assert!(run >= 1, "{m:?}: empty run at {addr:?}");
                let base = m.decode(addr);
                for d in [1, run / 2, run - 1] {
                    if d == 0 || d >= run {
                        continue;
                    }
                    let loc = m.decode(PhysAddr::new(addr.get() + d));
                    assert_eq!(loc.unit, base.unit, "{m:?} at {addr:?} + {d}");
                    assert_eq!(loc.bank, base.bank, "{m:?} at {addr:?} + {d}");
                    assert_eq!(loc.row, base.row, "{m:?} at {addr:?} + {d}");
                    assert_eq!(loc.col_byte, base.col_byte + d, "{m:?} at {addr:?} + {d}");
                }
            }
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let m = AddressMapping::Interleaved {
            units: 0,
            banks_per_unit: 8,
            row_bytes: 4096,
            line_bytes: 64,
        };
        assert_eq!(m.validate().unwrap_err().parameter(), "units");
        let m = AddressMapping::Interleaved {
            units: 2,
            banks_per_unit: 8,
            row_bytes: 4096,
            line_bytes: 8192,
        };
        assert_eq!(m.validate().unwrap_err().parameter(), "line_bytes");
        assert!(dual_channel_dimms().validate().is_ok());
        assert!(hmc_vaults().validate().is_ok());
    }
}
