//! Closed-form performance/energy estimates for regular access patterns.
//!
//! Uses the same timing and energy constants as [`crate::engine`], so the
//! two paths agree on regular traffic (cross-validated in this module's
//! tests). The analytic path exists because the accelerators stream
//! gigabytes — pricing a 1 GiB AXPY through the cycle engine would replay
//! ~33 M bursts per run of every experiment.
//!
//! Conventions shared with the engine:
//! * reported `bytes_read`/`bytes_written` are *useful* bytes (what the
//!   requester asked for); fetch-granularity waste shows up as extra
//!   cycles, not extra bytes;
//! * energy is charged on useful bytes plus activations plus background
//!   power over the busy interval.

use mealib_types::{Bytes, Cycles, Hertz};

use crate::config::MemoryConfig;
use crate::pattern::AccessPattern;
use crate::stats::TraceStats;

/// Estimates the timing, row-buffer, and energy statistics of `pattern`
/// on the device described by `config`.
///
/// # Panics
///
/// Panics if `config` fails validation, which makes it unusable for
/// lint-time evaluation of arbitrary configurations — the bounds
/// analyzer and every in-tree caller go through [`try_estimate`]
/// instead.
#[deprecated(
    since = "0.1.0",
    note = "panics on configs try_estimate rejects; call try_estimate and handle the ConfigError"
)]
pub fn estimate(config: &MemoryConfig, pattern: &AccessPattern) -> TraceStats {
    try_estimate(config, pattern).unwrap_or_else(|e| panic!("invalid memory configuration: {e}"))
}

/// Like [`estimate`], but reports an invalid configuration as a typed
/// error instead of panicking.
///
/// # Errors
///
/// Returns the first [`mealib_types::ConfigError`] found in `config`.
pub fn try_estimate(
    config: &MemoryConfig,
    pattern: &AccessPattern,
) -> Result<TraceStats, mealib_types::ConfigError> {
    config.validate()?;
    Ok(estimate_validated(config, pattern))
}

fn estimate_validated(config: &MemoryConfig, pattern: &AccessPattern) -> TraceStats {
    match pattern {
        AccessPattern::Sequential { read, written } => {
            let mut s = estimate_stream(config, read + written);
            s.bytes_read = Bytes::new(*read);
            s.bytes_written = Bytes::new(*written);
            finish(config, s)
        }
        AccessPattern::Strided {
            stride,
            elem_bytes,
            count,
            write,
        } => {
            let s = estimate_strided(config, *stride, *elem_bytes, *count);
            let mut s = s;
            if *write {
                s.bytes_written = Bytes::new(elem_bytes * count);
                s.bytes_read = Bytes::ZERO;
            } else {
                s.bytes_read = Bytes::new(elem_bytes * count);
                s.bytes_written = Bytes::ZERO;
            }
            finish(config, s)
        }
        AccessPattern::Random {
            elem_bytes,
            count,
            region_bytes,
        } => {
            let mut s = estimate_random(config, *elem_bytes, *count, *region_bytes);
            s.bytes_read = Bytes::new(elem_bytes * count);
            finish(config, s)
        }
        // Recurse through the already-validated path: re-validating per
        // part was both wasted work and, historically, the panic route
        // `try_estimate` callers could still hit on nested patterns.
        AccessPattern::Then(parts) => parts
            .iter()
            .map(|p| estimate_validated(config, p))
            .fold(TraceStats::default(), |acc, s| acc.merge_sequential(&s)),
    }
}

/// Effective sustainable bandwidth of `pattern` on `config` — a
/// convenience wrapper many accelerator models use directly.
///
/// # Errors
///
/// Returns the first [`mealib_types::ConfigError`] found in `config`.
pub fn try_effective_bandwidth(
    config: &MemoryConfig,
    pattern: &AccessPattern,
) -> Result<mealib_types::BytesPerSec, mealib_types::ConfigError> {
    Ok(try_estimate(config, pattern)?.achieved_bandwidth())
}

/// Effective sustainable bandwidth of `pattern` on `config`.
///
/// # Panics
///
/// Panics if `config` fails validation; use
/// [`try_effective_bandwidth`] at lint time.
pub fn effective_bandwidth(
    config: &MemoryConfig,
    pattern: &AccessPattern,
) -> mealib_types::BytesPerSec {
    try_effective_bandwidth(config, pattern)
        .unwrap_or_else(|e| panic!("invalid memory configuration: {e}"))
}

fn startup_cycles(config: &MemoryConfig) -> u64 {
    let t = &config.timing;
    t.t_rcd + t.t_cl + t.t_burst
}

/// Cycles per activation when `banks` banks overlap their row cycles,
/// floored by the four-activation window (tFAW/4 per ACT).
fn cycles_per_act(t: &crate::timing::DramTiming, banks: u64) -> u64 {
    (t.t_rc() / banks).max(t.t_faw / 4).max(1)
}

fn estimate_stream(config: &MemoryConfig, total_bytes: u64) -> TraceStats {
    let t = &config.timing;
    let m = &config.mapping;
    if total_bytes == 0 {
        return TraceStats::default();
    }
    let units = m.units() as u64;
    let banks = m.banks_per_unit() as u64;
    let row_bytes = m.row_bytes();

    let bytes_per_unit = total_bytes.div_ceil(units);
    let bursts_u = bytes_per_unit.div_ceil(t.burst_bytes);
    let bus_cycles = bursts_u * t.t_burst;
    let rows_u = bytes_per_unit.div_ceil(row_bytes);
    let act_cycles = rows_u * cycles_per_act(t, banks);

    let cycles = bus_cycles.max(act_cycles) + startup_cycles(config);
    let activations = total_bytes.div_ceil(row_bytes);
    let total_bursts = total_bytes.div_ceil(t.burst_bytes);

    TraceStats {
        cycles: Cycles::new(cycles),
        activations,
        row_hits: total_bursts.saturating_sub(activations),
        row_misses: activations,
        ..TraceStats::default()
    }
}

fn estimate_strided(config: &MemoryConfig, stride: u64, elem_bytes: u64, count: u64) -> TraceStats {
    let t = &config.timing;
    let m = &config.mapping;
    if count == 0 || elem_bytes == 0 {
        return TraceStats::default();
    }
    if stride <= t.burst_bytes {
        // Dense enough that the stream consumes whole bursts: price it as
        // a sequential sweep over the touched footprint.
        return estimate_stream(config, stride * count);
    }
    let units = m.units() as u64;
    let banks = m.banks_per_unit() as u64;
    let row_bytes = m.row_bytes();
    let line = match &m {
        crate::address::AddressMapping::Interleaved { line_bytes, .. }
        | crate::address::AddressMapping::XorInterleaved { line_bytes, .. }
        | crate::address::AddressMapping::Asymmetric { line_bytes, .. } => *line_bytes,
    };

    // XOR hashing defeats the stride-aliasing orbit below.
    let hashed = matches!(&m, crate::address::AddressMapping::XorInterleaved { .. });

    // How many units does the strided walk actually visit? If the stride
    // is a multiple of the interleave line, address i*stride visits unit
    // (i * stride/line) mod units: an orbit of size units / gcd(units, s).
    let units_used = if !hashed && stride.is_multiple_of(line) {
        let s = stride / line;
        units / gcd(units, s)
    } else {
        units
    };

    let accesses_u = count.div_ceil(units_used);
    let bursts_per_access = elem_bytes.div_ceil(t.burst_bytes).max(1);
    let bus_cycles = accesses_u * bursts_per_access * t.t_burst;

    let (rows_u, misses, hits) = if stride >= row_bytes {
        // Every access lands in a fresh row.
        (accesses_u, count, count * bursts_per_access - count)
    } else {
        let accesses_per_row = (row_bytes / stride).max(1);
        let rows_u = accesses_u.div_ceil(accesses_per_row);
        let misses = rows_u * units_used;
        (
            rows_u,
            misses,
            (count * bursts_per_access).saturating_sub(misses),
        )
    };
    let act_cycles = rows_u * cycles_per_act(t, banks);

    TraceStats {
        cycles: Cycles::new(bus_cycles.max(act_cycles) + startup_cycles(config)),
        activations: misses,
        row_hits: hits,
        row_misses: misses,
        ..TraceStats::default()
    }
}

fn estimate_random(
    config: &MemoryConfig,
    elem_bytes: u64,
    count: u64,
    region_bytes: u64,
) -> TraceStats {
    let t = &config.timing;
    let m = &config.mapping;
    if count == 0 || elem_bytes == 0 {
        return TraceStats::default();
    }
    let units = m.units() as u64;
    let banks = m.banks_per_unit() as u64;
    let row_bytes = m.row_bytes();

    // Probability that a random access hits a row left open by an earlier
    // access: with `units*banks` row buffers covering a `region_bytes`
    // working set, the covered fraction is the hit rate (clamped).
    let open_coverage = (units * banks * row_bytes) as f64 / region_bytes.max(1) as f64;
    let hit_rate = open_coverage.min(0.9);
    let misses = ((count as f64) * (1.0 - hit_rate)).round() as u64;
    let hits = count - misses;

    let accesses_u = count.div_ceil(units);
    let bursts_per_access = elem_bytes.div_ceil(t.burst_bytes).max(1);
    let bus_cycles = accesses_u * bursts_per_access * t.t_burst;
    let act_cycles = misses.div_ceil(units) * cycles_per_act(t, banks);

    TraceStats {
        cycles: Cycles::new(bus_cycles.max(act_cycles) + startup_cycles(config)),
        activations: misses,
        row_hits: hits,
        row_misses: misses,
        ..TraceStats::default()
    }
}

fn finish(config: &MemoryConfig, mut s: TraceStats) -> TraceStats {
    let t = &config.timing;
    // Periodic refresh steals tRFC out of every tREFI on each unit.
    let refresh_factor = 1.0 + t.t_rfc as f64 / t.t_refi as f64;
    let cycles = (s.cycles.get() as f64 * refresh_factor).round() as u64;
    s.refreshes = cycles / t.t_refi * config.mapping.units() as u64;
    // Every opened row is eventually closed again.
    s.precharges = s.activations;
    s.cycles = Cycles::new(cycles);
    s.elapsed = s.cycles.at(Hertz::new(1.0 / t.t_ck.get()));
    s.energy = config
        .energy
        .trace_energy(s.activations, s.bytes_moved().get(), s.elapsed);
    s
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{self, Op};

    /// Shadows the deprecated panicking entry point: every test config
    /// validates, so the typed error path is just unwrapped.
    fn estimate(config: &MemoryConfig, pattern: &AccessPattern) -> TraceStats {
        try_estimate(config, pattern).expect("test configs validate")
    }

    fn single_channel_config() -> MemoryConfig {
        let mut c = MemoryConfig::ddr_dual_channel();
        c.mapping = crate::address::AddressMapping::Interleaved {
            units: 1,
            banks_per_unit: 8,
            row_bytes: 8192,
            line_bytes: 64,
        };
        c
    }

    fn ratio(a: f64, b: f64) -> f64 {
        a / b
    }

    #[test]
    fn sequential_estimate_matches_engine() {
        let c = single_channel_config();
        let bytes = 4u64 << 20;
        let est = estimate(&c, &AccessPattern::sequential_read(bytes));
        let trace = engine::sequential_trace(0, bytes, 64, Op::Read);
        let sim = engine::simulate(&c, &trace, &engine::SimOptions::dual_check())
            .unwrap()
            .stats;
        let r = ratio(est.elapsed.get(), sim.elapsed.get());
        assert!((0.8..=1.25).contains(&r), "sequential time ratio {r}");
        // The engine reopens rows after periodic refreshes, so it sees a
        // few more activations than the closed-form count.
        assert!(
            sim.activations >= est.activations
                && sim.activations <= est.activations + est.activations / 6,
            "activations: sim {} vs est {}",
            sim.activations,
            est.activations
        );
    }

    #[test]
    fn strided_estimate_matches_engine() {
        let c = single_channel_config();
        let est = estimate(
            &c,
            &AccessPattern::Strided {
                stride: 8192,
                elem_bytes: 64,
                count: 4096,
                write: false,
            },
        );
        let trace = engine::strided_trace(0, 8192, 64, 4096, Op::Read);
        let sim = engine::simulate(&c, &trace, &engine::SimOptions::dual_check())
            .unwrap()
            .stats;
        let r = ratio(est.elapsed.get(), sim.elapsed.get());
        assert!((0.5..=2.0).contains(&r), "strided time ratio {r}");
        assert_eq!(est.row_hit_rate(), Some(0.0));
        assert_eq!(sim.row_hit_rate(), Some(0.0));
    }

    #[test]
    fn hmc_sequential_estimate_matches_engine() {
        let c = MemoryConfig::hmc_stack();
        let bytes = 32u64 << 20;
        let est = estimate(&c, &AccessPattern::sequential_read(bytes));
        let trace = engine::sequential_trace(0, bytes, 256, Op::Read);
        let sim = engine::simulate(&c, &trace, &engine::SimOptions::dual_check())
            .unwrap()
            .stats;
        let r = ratio(est.elapsed.get(), sim.elapsed.get());
        assert!((0.7..=1.4).contains(&r), "hmc sequential ratio {r}");
    }

    #[test]
    fn sequential_read_hits_peak_bandwidth_at_scale() {
        let c = MemoryConfig::hmc_stack();
        let s = estimate(&c, &AccessPattern::sequential_read(1 << 30));
        let frac = s.achieved_bandwidth().get() / c.peak_bandwidth().get();
        assert!(frac > 0.95, "large stream should saturate: {frac}");
    }

    #[test]
    fn strided_walk_on_interleave_multiple_uses_one_unit() {
        // Stride = line * units keeps hitting the same channel.
        let c = MemoryConfig::ddr_dual_channel(); // 2 units, 64B lines
        let narrow = estimate(
            &c,
            &AccessPattern::Strided {
                stride: 128,
                elem_bytes: 64,
                count: 65536,
                write: false,
            },
        );
        let spread = estimate(
            &c,
            &AccessPattern::Strided {
                stride: 192,
                elem_bytes: 64,
                count: 65536,
                write: false,
            },
        );
        assert!(
            narrow.elapsed.get() > 1.5 * spread.elapsed.get(),
            "stride aliasing to one channel must be slower: {} vs {}",
            narrow.elapsed,
            spread.elapsed
        );
    }

    #[test]
    fn random_gather_is_slower_than_sequential() {
        let c = MemoryConfig::hmc_stack();
        let n = 1u64 << 22; // 4M gathers of 4B
        let gather = estimate(
            &c,
            &AccessPattern::Random {
                elem_bytes: 4,
                count: n,
                region_bytes: 1 << 30,
            },
        );
        let seq = estimate(&c, &AccessPattern::sequential_read(4 * n));
        assert!(gather.elapsed.get() > 4.0 * seq.elapsed.get());
        assert!(gather.row_hit_rate().unwrap() < 0.2);
    }

    #[test]
    fn then_composes_sequentially() {
        let c = MemoryConfig::hmc_stack();
        let a = estimate(&c, &AccessPattern::sequential_read(1 << 20));
        let b = estimate(&c, &AccessPattern::sequential_write(1 << 20));
        let both = estimate(
            &c,
            &AccessPattern::Then(vec![
                AccessPattern::sequential_read(1 << 20),
                AccessPattern::sequential_write(1 << 20),
            ]),
        );
        let sum = a.elapsed + b.elapsed;
        assert!((both.elapsed.get() - sum.get()).abs() < 1e-12);
        assert_eq!(both.bytes_read.get(), 1 << 20);
        assert_eq!(both.bytes_written.get(), 1 << 20);
    }

    #[test]
    fn empty_patterns_cost_nothing() {
        let c = MemoryConfig::hmc_stack();
        for p in [
            AccessPattern::sequential_read(0),
            AccessPattern::Strided {
                stride: 64,
                elem_bytes: 0,
                count: 0,
                write: false,
            },
            AccessPattern::Random {
                elem_bytes: 4,
                count: 0,
                region_bytes: 1 << 20,
            },
            AccessPattern::Then(vec![]),
        ] {
            let s = estimate(&c, &p);
            assert_eq!(s.bytes_moved(), Bytes::ZERO, "{p:?}");
            assert!(s.elapsed.is_zero(), "{p:?}");
        }
    }

    #[test]
    fn gcd_helper() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(0, 0), 1);
    }

    // ----- regression: degenerate configs must error, never panic -----

    #[test]
    fn zero_row_config_is_a_typed_error() {
        let mut c = MemoryConfig::ddr_dual_channel();
        c.mapping = crate::address::AddressMapping::Interleaved {
            units: 2,
            banks_per_unit: 8,
            row_bytes: 0,
            line_bytes: 64,
        };
        let err = try_estimate(&c, &AccessPattern::sequential_read(1 << 20));
        assert!(err.is_err(), "zero-row mapping must be rejected");
        // The historical panic path: a nested Then re-validated per part
        // inside the already-validated body. The typed path must reject
        // the whole pattern up front instead.
        let nested = AccessPattern::Then(vec![
            AccessPattern::sequential_read(1 << 20),
            AccessPattern::sequential_write(1 << 20),
        ]);
        assert!(try_estimate(&c, &nested).is_err());
        assert!(try_effective_bandwidth(&c, &nested).is_err());
    }

    #[test]
    fn single_vault_config_estimates_fine() {
        let mut c = MemoryConfig::hmc_stack();
        c.mapping = crate::address::AddressMapping::Interleaved {
            units: 1,
            banks_per_unit: 8,
            row_bytes: 4096,
            line_bytes: 256,
        };
        let s = try_estimate(&c, &AccessPattern::sequential_read(8 << 20)).expect("single vault");
        assert!(s.elapsed.get() > 0.0);
        assert_eq!(s.bytes_read.get(), 8 << 20);
    }

    #[test]
    fn asymmetric_split_edges_error_or_estimate_never_panic() {
        // Sweep the split across alignment edges: every outcome must be
        // a value or a typed error.
        for split in [0u64, 1, 63, 64, 4096, (1 << 30) - 1, 1 << 30] {
            let mut c = MemoryConfig::ddr_dual_channel();
            c.mapping = crate::address::AddressMapping::Asymmetric {
                low_units: 2,
                banks_per_unit: 8,
                row_bytes: 8192,
                line_bytes: 64,
                split: mealib_types::PhysAddr::new(split),
            };
            let _ = try_estimate(&c, &AccessPattern::sequential_read(1 << 20));
        }
    }

    #[test]
    fn then_with_invalid_part_shape_still_sums_validated_parts() {
        // Nested Then patterns price identically to their flattening.
        let c = MemoryConfig::hmc_stack();
        let flat = estimate(
            &c,
            &AccessPattern::Then(vec![
                AccessPattern::sequential_read(1 << 20),
                AccessPattern::sequential_write(1 << 20),
            ]),
        );
        let nested = estimate(
            &c,
            &AccessPattern::Then(vec![AccessPattern::Then(vec![
                AccessPattern::sequential_read(1 << 20),
                AccessPattern::sequential_write(1 << 20),
            ])]),
        );
        assert_eq!(flat.bytes_moved(), nested.bytes_moved());
        assert!((flat.elapsed.get() - nested.elapsed.get()).abs() < 1e-12);
    }
}
