//! Certified static bounds on what the cycle engine will measure.
//!
//! [`trace_bounds`] walks a request trace through exactly the burst
//! splitting and address decoding the engine uses
//! ([`crate::engine::simulate`]), but instead of replaying DRAM
//! timing it derives closed [`Interval`] bounds on every counter the
//! engine reports. The guarantee — for every valid config and every
//! trace, `lo <= measured <= hi` on bytes, RD/WR bursts, activations,
//! cycles, and energy — is what `mealib-verify::bounds` certifies and
//! what the differential harness and the soundness proptests check
//! against the engine on every corpus program and workload pipeline.
//!
//! Where the bounds come from (each anchored to an engine invariant):
//!
//! * **bytes, RD/WR bursts, per-unit traffic** — exact. The burst
//!   stream is a pure function of the trace and the mapping; no timing
//!   is involved.
//! * **activations** — the row-buffer automaton without refresh is
//!   deterministic, giving an exact miss count `base`; refresh only
//!   *closes* rows, so it can only add activations: at most
//!   `banks` per refresh window, and never more than one per burst.
//!   Hence `base <= ACT <= min(bursts, base + refresh_hi * banks)`.
//! * **cycles** — lower: each burst occupies the unit data bus for
//!   `t_burst` and the first burst of a unit pays `t_rcd + t_cl`;
//!   consecutive activations of one bank are `t_rc` apart. Upper: a
//!   burst advances the unit's bus-free pointer by at most
//!   `max(t_rc, t_faw) + t_rcd + t_cl + t_burst`, and refresh steals
//!   `t_rfc` out of every `t_refi` — a geometric fixed point that
//!   `DramTiming::validate`'s `t_refi > t_rfc` keeps finite.
//! * **energy** — `DramEnergy::trace_energy` is monotone in
//!   activations, bytes, and elapsed time, so the interval endpoints
//!   map through it soundly.

use mealib_types::{Interval, PhysAddr, Seconds};

use crate::config::MemoryConfig;
use crate::engine::Op;
use crate::stats::TraceStats;
use crate::trace::TraceBuffer;

/// Certified bounds on the engine counters of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBounds {
    /// Bytes read (exact).
    pub bytes_read: Interval,
    /// Bytes written (exact).
    pub bytes_written: Interval,
    /// READ bursts issued (exact).
    pub read_bursts: Interval,
    /// WRITE bursts issued (exact).
    pub write_bursts: Interval,
    /// Row activations.
    pub activations: Interval,
    /// Device cycles busy.
    pub cycles: Interval,
    /// Wall-clock busy time in seconds.
    pub elapsed: Interval,
    /// Total energy in joules.
    pub energy: Interval,
    /// Exact burst count per unit (channel/vault) — the static vault
    /// traffic distribution the skew diagnostic inspects.
    pub unit_bursts: Vec<u64>,
}

impl TraceBounds {
    /// Total bursts across all units.
    pub fn total_bursts(&self) -> u64 {
        self.unit_bursts.iter().sum()
    }

    /// Units that receive any traffic at all.
    pub fn units_touched(&self) -> usize {
        self.unit_bursts.iter().filter(|&&n| n > 0).count()
    }

    /// Checks every certified counter against an engine measurement;
    /// returns the first violated counter by name. The differential
    /// harness fails on `Some`.
    pub fn check_contains(&self, measured: &TraceStats) -> Option<String> {
        let checks = [
            (
                "bytes_read",
                self.bytes_read,
                measured.bytes_read.get() as f64,
            ),
            (
                "bytes_written",
                self.bytes_written,
                measured.bytes_written.get() as f64,
            ),
            ("activations", self.activations, measured.activations as f64),
            ("cycles", self.cycles, measured.cycles.get() as f64),
            ("elapsed", self.elapsed, measured.elapsed.get()),
            ("energy", self.energy, measured.energy.get()),
        ];
        for (name, bound, value) in checks {
            if !bound.contains(value) {
                return Some(format!(
                    "{name}: measured {value} outside certified {bound}"
                ));
            }
        }
        None
    }
}

/// Per-unit accumulator for the timing-free replay.
struct UnitBounds {
    /// Open row per bank in the refresh-free automaton.
    rows: Vec<Option<u64>>,
    /// Misses of the refresh-free automaton, per bank.
    bank_misses: Vec<u64>,
    bursts: u64,
    read_bursts: u64,
    write_bursts: u64,
}

/// Derives certified bounds for `trace` on `config`.
///
/// # Errors
///
/// Returns the first [`mealib_types::ConfigError`] found in `config` —
/// the same rejection surface as [`crate::analytic::try_estimate`] and
/// [`crate::engine::simulate`].
pub fn trace_bounds(
    config: &MemoryConfig,
    trace: &TraceBuffer,
) -> Result<TraceBounds, mealib_types::ConfigError> {
    config.validate()?;
    let t = &config.timing;
    let m = &config.mapping;
    let units = m.units();
    let banks = m.banks_per_unit();

    let mut per_unit: Vec<UnitBounds> = (0..units)
        .map(|_| UnitBounds {
            rows: vec![None; banks],
            bank_misses: vec![0; banks],
            bursts: 0,
            read_bursts: 0,
            write_bursts: 0,
        })
        .collect();
    let mut bytes_read = 0u64;
    let mut bytes_written = 0u64;

    // The engine's burst splitting, verbatim: burst-aligned chunks.
    for req in trace.iter() {
        let mut remaining = req.bytes;
        let mut addr = req.addr.get();
        while remaining > 0 {
            let offset_in_burst = addr % t.burst_bytes;
            let take = (t.burst_bytes - offset_in_burst).min(remaining);
            let loc = m.decode(PhysAddr::new(addr));
            let u = &mut per_unit[loc.unit];
            u.bursts += 1;
            match req.op {
                Op::Read => {
                    u.read_bursts += 1;
                    bytes_read += take;
                }
                Op::Write => {
                    u.write_bursts += 1;
                    bytes_written += take;
                }
            }
            // Refresh-free row automaton: exact lower bound on misses.
            if u.rows[loc.bank] != Some(loc.row) {
                u.bank_misses[loc.bank] += 1;
                u.rows[loc.bank] = Some(loc.row);
            }
            addr += take;
            remaining -= take;
        }
    }

    // Worst-case bus advance of a single burst (conflict + tFAW stall).
    let delta = t.t_rc().max(t.t_faw) + t.t_rcd + t.t_cl + t.t_burst;
    // Refresh steals t_rfc per t_refi; validate() guarantees the
    // denominator is positive.
    let refresh_stretch = 1.0 / (1.0 - t.t_rfc as f64 / t.t_refi as f64);

    let mut cycles_lo = 0u64;
    let mut cycles_hi = 0u64;
    let mut act_lo = 0u64;
    let mut act_hi = 0u64;
    for u in &per_unit {
        if u.bursts == 0 {
            continue;
        }
        let base_misses: u64 = u.bank_misses.iter().sum();

        // Lower bound: data-bus occupancy plus the first access's
        // ACT-to-data latency...
        let lo_bus = t.t_rcd + t.t_cl + u.bursts * t.t_burst;
        // ...and the per-bank activation spacing (t_rc between ACTs).
        let lo_bank = u
            .bank_misses
            .iter()
            .filter(|&&mis| mis > 0)
            .map(|&mis| (mis - 1) * t.t_rc() + t.t_rcd + t.t_cl + t.t_burst)
            .max()
            .unwrap_or(0);
        cycles_lo = cycles_lo.max(lo_bus.max(lo_bank));

        // Upper bound: every burst pays the full conflict path, then the
        // whole schedule is stretched by refresh; one extra t_rfc covers
        // a refresh landing after the final burst's due computation.
        let hi_u = ((u.bursts * delta) as f64 * refresh_stretch).ceil() as u64 + t.t_rfc;
        cycles_hi = cycles_hi.max(hi_u);

        // Activation interval (see module docs for the soundness
        // argument).
        act_lo += base_misses;
        let refresh_hi = hi_u / t.t_refi;
        act_hi += u
            .bursts
            .min(base_misses + refresh_hi.saturating_mul(banks as u64));
    }

    let cycles = Interval::new(cycles_lo as f64, cycles_hi as f64);
    let elapsed = cycles.scale(t.t_ck.get());
    let bytes_moved = bytes_read + bytes_written;
    // trace_energy is monotone in all three arguments, so mapping the
    // endpoints through it bounds the engine's energy.
    let energy_lo = config
        .energy
        .trace_energy(act_lo, bytes_moved, Seconds::new(elapsed.lo));
    let energy_hi = config
        .energy
        .trace_energy(act_hi, bytes_moved, Seconds::new(elapsed.hi));

    Ok(TraceBounds {
        bytes_read: Interval::exact(bytes_read as f64),
        bytes_written: Interval::exact(bytes_written as f64),
        read_bursts: Interval::exact(per_unit.iter().map(|u| u.read_bursts).sum::<u64>() as f64),
        write_bursts: Interval::exact(per_unit.iter().map(|u| u.write_bursts).sum::<u64>() as f64),
        activations: Interval::new(act_lo as f64, act_hi as f64),
        cycles,
        elapsed,
        energy: Interval::new(energy_lo.get(), energy_hi.get()),
        unit_bursts: per_unit.iter().map(|u| u.bursts).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{self, Op, Request, SimOptions};

    fn check(config: &MemoryConfig, trace: &TraceBuffer) -> TraceBounds {
        let bounds = trace_bounds(config, trace).expect("valid config");
        let measured = engine::simulate(config, trace, &SimOptions::dual_check())
            .expect("valid config")
            .stats;
        if let Some(violation) = bounds.check_contains(&measured) {
            panic!("{}: {violation}", config.name);
        }
        bounds
    }

    #[test]
    fn bounds_contain_engine_on_presets_sequential() {
        for config in [
            MemoryConfig::hmc_stack(),
            MemoryConfig::ddr_dual_channel(),
            MemoryConfig::msas_dram(),
        ] {
            let trace = engine::sequential_trace(0, 4 << 20, 256, Op::Read);
            let b = check(&config, &trace);
            assert!(b.bytes_read.is_exact());
            assert_eq!(b.bytes_read.lo, (4u64 << 20) as f64);
            assert_eq!(b.units_touched(), config.mapping.units());
        }
    }

    #[test]
    fn bounds_contain_engine_on_strided_and_mixed() {
        let config = MemoryConfig::hmc_stack();
        let mut trace = engine::strided_trace(0, 8192, 64, 4096, Op::Read);
        trace.extend(&engine::sequential_trace(1 << 26, 1 << 20, 256, Op::Write));
        let b = check(&config, &trace);
        assert!(b.read_bursts.is_exact() && b.write_bursts.is_exact());
        assert!(b.bytes_written.contains((1u64 << 20) as f64));
    }

    #[test]
    fn burst_counts_match_engine_vault_stats() {
        let config = MemoryConfig::hmc_stack();
        let trace = engine::sequential_trace(4096, 2 << 20, 256, Op::Read);
        let bounds = trace_bounds(&config, &trace).unwrap();
        let run = engine::simulate(&config, &trace, &SimOptions::default()).unwrap();
        let measured: Vec<u64> = run
            .vaults
            .iter()
            .map(|v| v.read_bursts + v.write_bursts)
            .collect();
        assert_eq!(bounds.unit_bursts, measured, "per-unit traffic is exact");
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let b = trace_bounds(&MemoryConfig::hmc_stack(), &TraceBuffer::new()).unwrap();
        assert_eq!(b.cycles, Interval::ZERO);
        assert_eq!(b.total_bursts(), 0);
        assert_eq!(b.energy, Interval::ZERO);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let mut c = MemoryConfig::ddr_dual_channel();
        c.mapping = crate::address::AddressMapping::Interleaved {
            units: 0,
            banks_per_unit: 8,
            row_bytes: 8192,
            line_bytes: 64,
        };
        let one = TraceBuffer::from(&[Request::read(0, 64)]);
        assert!(trace_bounds(&c, &one).is_err());
    }

    #[test]
    fn asymmetric_high_region_traffic_lands_on_one_unit() {
        let split = 1u64 << 30;
        let mut c = MemoryConfig::ddr_dual_channel();
        c.mapping = crate::address::AddressMapping::Asymmetric {
            low_units: 2,
            banks_per_unit: 8,
            row_bytes: 8192,
            line_bytes: 64,
            split: PhysAddr::new(split),
        };
        let trace = engine::sequential_trace(split, 1 << 20, 64, Op::Read);
        let b = check(&c, &trace);
        assert_eq!(b.units_touched(), 1, "high region is single-unit");
        assert_eq!(b.unit_bursts[2], b.total_bursts());
    }
}
