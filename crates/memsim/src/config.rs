//! Complete memory-device configurations (timing + energy + mapping).

use mealib_types::{BytesPerSec, ConfigError};

use crate::address::{self, AddressMapping};
use crate::energy::DramEnergy;
use crate::timing::DramTiming;

/// A fully specified memory device: per-unit timing, energy model, and
/// the address mapping that distributes traffic over units and banks.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryConfig {
    /// Human-readable device name for reports.
    pub name: String,
    /// Per-channel/vault timing.
    pub timing: DramTiming,
    /// Energy parameters.
    pub energy: DramEnergy,
    /// Address decoding.
    pub mapping: AddressMapping,
}

impl MemoryConfig {
    /// The 32-vault HMC-like stack as seen by *on-stack accelerators*
    /// (TSV-only transport): 510 GB/s class aggregate bandwidth.
    pub fn hmc_stack() -> Self {
        Self {
            name: "hmc-stack-internal".into(),
            timing: DramTiming::hmc_vault(),
            energy: DramEnergy::hmc_internal(),
            mapping: address::hmc_vaults(),
        }
    }

    /// The same stack as seen by the *host* over SerDes links.
    pub fn hmc_stack_external() -> Self {
        Self {
            name: "hmc-stack-external".into(),
            energy: DramEnergy::hmc_external(),
            ..Self::hmc_stack()
        }
    }

    /// A first-generation 16-vault stack (half the vaults, ~256 GB/s):
    /// the smaller sibling for bandwidth-scaling studies.
    pub fn hmc_stack_gen1() -> Self {
        Self {
            name: "hmc-stack-gen1".into(),
            timing: DramTiming::hmc_vault(),
            energy: DramEnergy::hmc_internal(),
            mapping: AddressMapping::Interleaved {
                units: 16,
                banks_per_unit: 8,
                row_bytes: 4096,
                line_bytes: 256,
            },
        }
    }

    /// A *remote* memory stack as seen by an accelerator on another
    /// stack (§3.3's RMS): every access crosses the inter-stack SerDes
    /// links, which serialize the wide TSV bursts (~128 GB/s aggregate)
    /// and charge link energy per byte.
    pub fn hmc_stack_remote() -> Self {
        let mut timing = DramTiming::hmc_vault();
        // The link, not the vault, paces data: 32 B per 8 cycles.
        timing.t_burst = 8;
        Self {
            name: "hmc-stack-remote".into(),
            timing,
            energy: DramEnergy::hmc_external(),
            mapping: address::hmc_vaults(),
        }
    }

    /// Dual-channel DDR3-1600 DIMM system (25.6 GB/s, the Haswell
    /// baseline of Table 3).
    pub fn ddr_dual_channel() -> Self {
        let mut energy = DramEnergy::ddr3_dimm();
        // Two DIMMs' worth of standby/refresh power.
        energy.p_background = mealib_types::Watts::new(3.0);
        Self {
            name: "ddr3-dual-channel".into(),
            timing: DramTiming::ddr3_1600(),
            energy,
            mapping: address::dual_channel_dimms(),
        }
    }

    /// Eight-channel planar DRAM (102.4 GB/s): the MSAS substrate, where
    /// accelerators sit atop conventional DRAM devices (NDA-style).
    pub fn msas_dram() -> Self {
        let mut energy = DramEnergy::ddr3_dimm();
        // Eight channels of devices idle together.
        energy.p_background = mealib_types::Watts::new(12.0);
        Self {
            name: "msas-8ch-ddr3".into(),
            timing: DramTiming::ddr3_1600(),
            energy,
            mapping: AddressMapping::Interleaved {
                units: 8,
                banks_per_unit: 8,
                row_bytes: 8192,
                line_bytes: 64,
            },
        }
    }

    /// Peak aggregate bandwidth across all units.
    pub fn peak_bandwidth(&self) -> BytesPerSec {
        self.timing.peak_bandwidth() * self.mapping.units() as f64
    }

    /// Validates every component.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found in the timing or mapping.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.timing.validate()?;
        self.mapping.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for c in [
            MemoryConfig::hmc_stack(),
            MemoryConfig::hmc_stack_external(),
            MemoryConfig::ddr_dual_channel(),
            MemoryConfig::msas_dram(),
        ] {
            assert!(c.validate().is_ok(), "{} failed validation", c.name);
        }
    }

    #[test]
    fn peak_bandwidths_match_table_3() {
        // Table 3: Haswell 25.6 GB/s, MSAS 102.4 GB/s, MEALib 510 GB/s.
        let haswell = MemoryConfig::ddr_dual_channel().peak_bandwidth();
        assert!((haswell.as_gb_per_sec() - 25.6).abs() < 0.1, "{haswell}");
        let msas = MemoryConfig::msas_dram().peak_bandwidth();
        assert!((msas.as_gb_per_sec() - 102.4).abs() < 0.5, "{msas}");
        let mealib = MemoryConfig::hmc_stack().peak_bandwidth();
        assert!((mealib.as_gb_per_sec() - 512.0).abs() < 5.0, "{mealib}");
    }

    #[test]
    fn gen1_stack_has_half_the_bandwidth() {
        let gen1 = MemoryConfig::hmc_stack_gen1().peak_bandwidth();
        let gen2 = MemoryConfig::hmc_stack().peak_bandwidth();
        assert!((gen2.get() / gen1.get() - 2.0).abs() < 0.01);
        assert!(MemoryConfig::hmc_stack_gen1().validate().is_ok());
    }

    #[test]
    fn remote_stack_is_slower_and_hungrier_than_local() {
        let local = MemoryConfig::hmc_stack();
        let remote = MemoryConfig::hmc_stack_remote();
        assert!(remote.peak_bandwidth().get() < 0.3 * local.peak_bandwidth().get());
        assert!(remote.energy.e_byte_link.get() > local.energy.e_byte_link.get());
        assert!(remote.validate().is_ok());
    }

    #[test]
    fn external_view_same_bandwidth_higher_energy() {
        let int = MemoryConfig::hmc_stack();
        let ext = MemoryConfig::hmc_stack_external();
        assert_eq!(int.peak_bandwidth(), ext.peak_bandwidth());
        assert!(ext.energy.e_byte_link.get() > int.energy.e_byte_link.get());
    }
}
