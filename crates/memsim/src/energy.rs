//! DRAM energy parameters (CACTI-3DD-flavoured constants).
//!
//! The model charges energy per row activation, per byte moved on the
//! data path, per byte crossing the TSVs (3D) or the off-package link
//! (host access), plus a background power for the whole device. Constants
//! are representative of 3x-nm DRAM and HMC gen-2 publications; the
//! reproduction cares that the stacked device moves bytes ~5-8x cheaper
//! than a DIMM behind a processor pin interface.

use mealib_types::{Joules, Seconds, Watts};

/// Per-event and background energy parameters of one memory device.
#[derive(Debug, Clone, PartialEq)]
pub struct DramEnergy {
    /// Energy of one row activation + precharge pair.
    pub e_act: Joules,
    /// Core array energy per byte read or written.
    pub e_byte_core: Joules,
    /// Transport energy per byte: TSV crossing for a stacked device,
    /// channel I/O (pins + PHY) for a DIMM.
    pub e_byte_transport: Joules,
    /// Additional per-byte energy for data leaving the package toward the
    /// host (SerDes links on HMC, zero extra for a DIMM whose channel I/O
    /// is already counted).
    pub e_byte_link: Joules,
    /// Background (standby + refresh + PLL) power for the whole device.
    pub p_background: Watts,
}

impl DramEnergy {
    /// DDR3 DIMM: large 8 KiB rows (expensive activations) and expensive
    /// pin/PHY I/O; all traffic leaves the package.
    pub fn ddr3_dimm() -> Self {
        Self {
            e_act: Joules::from_nanos(15.0),
            e_byte_core: Joules::from_picos(4.0),
            e_byte_transport: Joules::from_picos(40.0),
            e_byte_link: Joules::ZERO,
            p_background: Watts::new(1.5),
        }
    }

    /// HMC-like stack accessed *internally* by on-stack accelerators:
    /// small rows (cheap activations), traffic crosses TSVs only, never
    /// the SerDes links.
    pub fn hmc_internal() -> Self {
        Self {
            e_act: Joules::from_nanos(2.0),
            e_byte_core: Joules::from_picos(8.0),
            e_byte_transport: Joules::from_picos(2.0),
            e_byte_link: Joules::ZERO,
            p_background: Watts::new(3.0),
        }
    }

    /// HMC-like stack accessed by the *host* over the high-speed links:
    /// every byte additionally pays SerDes energy in both directions.
    pub fn hmc_external() -> Self {
        Self {
            e_byte_link: Joules::from_picos(30.0),
            ..Self::hmc_internal()
        }
    }

    /// Total energy of a trace with the given event counts.
    pub fn trace_energy(&self, activations: u64, bytes_moved: u64, elapsed: Seconds) -> Joules {
        self.e_act * activations as f64
            + (self.e_byte_core + self.e_byte_transport + self.e_byte_link) * bytes_moved as f64
            + self.p_background.for_duration(elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_access_is_cheaper_per_byte_than_dimm() {
        let dimm = DramEnergy::ddr3_dimm();
        let stack = DramEnergy::hmc_internal();
        let dimm_byte = dimm.e_byte_core + dimm.e_byte_transport + dimm.e_byte_link;
        let stack_byte = stack.e_byte_core + stack.e_byte_transport + stack.e_byte_link;
        assert!(
            dimm_byte.get() / stack_byte.get() > 3.0,
            "stacked access should be much cheaper per byte"
        );
    }

    #[test]
    fn external_stack_access_costs_more_than_internal() {
        let int = DramEnergy::hmc_internal();
        let ext = DramEnergy::hmc_external();
        let e_int = int.trace_energy(0, 1 << 20, Seconds::ZERO);
        let e_ext = ext.trace_energy(0, 1 << 20, Seconds::ZERO);
        assert!(e_ext.get() > e_int.get() * 2.0);
    }

    #[test]
    fn trace_energy_sums_components() {
        let e = DramEnergy {
            e_act: Joules::new(2.0),
            e_byte_core: Joules::new(1.0),
            e_byte_transport: Joules::new(0.5),
            e_byte_link: Joules::new(0.5),
            p_background: Watts::new(10.0),
        };
        let total = e.trace_energy(3, 4, Seconds::new(2.0));
        // 3*2 + 4*(1+0.5+0.5) + 10*2 = 6 + 8 + 20
        assert_eq!(total, Joules::new(34.0));
    }
}
