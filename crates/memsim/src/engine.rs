//! Dual-engine trace replay behind one [`simulate`] entry point.
//!
//! Two engines share one model. The **cycle engine** (this module)
//! replays an explicit request trace burst by burst against per-bank
//! state machines (open row, activate/precharge timing) and a per-unit
//! data bus — the same abstraction level as the "in-house cycle-accurate
//! 3D-stacked DRAM simulator" of §4.2: FCFS per unit, bank-level
//! parallelism, one command clock. The **fast engine**
//! ([`crate::fast`]) is an event-driven replay of the same model that
//! batches contiguous row-hit streaks analytically and skips straight to
//! the next bank/bus/refresh event; it is bit-exact against the cycle
//! engine by construction and by proptest, and
//! [`EngineKind::DualCheck`] runs both and diffs every statistic.
//!
//! Traces live in the SoA [`TraceBuffer`]; [`SimOptions`] selects the
//! engine, worker count, and optional cycle-windowed profiling.
//!
//! Writes share the read datapath model; write-recovery (`tWR`) is
//! folded into the precharge path, which is accurate enough for the
//! bandwidth/energy questions this reproduction asks.

use mealib_obs::timeline::{Timeline, WindowCounters};
use mealib_obs::{Counter, Obs};
use mealib_types::{Bytes, ConfigError, Cycles, PhysAddr};

use crate::address::{AddressMapping, Location};
use crate::config::MemoryConfig;
use crate::stats::TraceStats;
use crate::timing::DramTiming;
use crate::trace::TraceBuffer;

/// Direction of a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Data flows from DRAM to the requester.
    Read,
    /// Data flows from the requester to DRAM.
    Write,
}

/// One memory request: a contiguous byte range and a direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Starting physical address.
    pub addr: PhysAddr,
    /// Length in bytes.
    pub bytes: u64,
    /// Read or write.
    pub op: Op,
}

impl Request {
    /// Convenience read-request constructor.
    pub fn read(addr: u64, bytes: u64) -> Self {
        Self {
            addr: PhysAddr::new(addr),
            bytes,
            op: Op::Read,
        }
    }

    /// Convenience write-request constructor.
    pub fn write(addr: u64, bytes: u64) -> Self {
        Self {
            addr: PhysAddr::new(addr),
            bytes,
            op: Op::Write,
        }
    }
}

#[derive(Debug, Clone, Default)]
pub(crate) struct BankState {
    pub(crate) open_row: Option<u64>,
    /// Earliest cycle the bank can accept its next command.
    pub(crate) cmd_ready: u64,
    /// Cycle of the most recent activation (for tRAS/tRC).
    pub(crate) act_at: u64,
    pub(crate) has_activated: bool,
}

/// Sliding four-activation window per unit (tFAW enforcement).
#[derive(Debug, Clone, Default)]
pub(crate) struct ActWindow {
    recent: [u64; 4],
    next: usize,
}

impl ActWindow {
    /// Earliest cycle a new ACT may issue given the window constraint.
    fn earliest(&self, t_faw: u64) -> u64 {
        self.recent[self.next] + t_faw
    }

    fn record(&mut self, at: u64) {
        self.recent[self.next] = at;
        self.next = (self.next + 1) % 4;
    }
}

/// Log₂-bucketed histogram of per-burst access latencies (cycles from a
/// burst's turn in program order to its data completing).
///
/// Bucket `k` counts latencies in `[2^k, 2^(k+1))` cycles. The top
/// bucket ([`LatencyHistogram::SATURATION_BUCKET`]) *saturates*: every
/// latency at or above `2^31` cycles clamps into it, so its population
/// has no finite upper bound and [`LatencyHistogram::quantile_bound`]
/// reports [`u64::MAX`] for quantiles that land there.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// `buckets[k]` counts latencies in `[2^k, 2^(k+1))` cycles
    /// (bucket 0 also holds zero-latency completions; the last bucket
    /// additionally holds everything at or above `2^31`).
    buckets: [u64; 32],
    total: u64,
}

impl LatencyHistogram {
    /// Index of the saturating top bucket: it covers `[2^31, ∞)` cycles.
    pub const SATURATION_BUCKET: usize = 31;

    /// Bucket index a latency lands in — the shared binning rule, so the
    /// fast engine's batched [`LatencyHistogram::record_n`] and the
    /// cycle engine's per-burst [`LatencyHistogram::record`] agree
    /// bucket-for-bucket.
    pub(crate) fn bucket_of(latency_cycles: u64) -> usize {
        (64 - latency_cycles.leading_zeros())
            .saturating_sub(1)
            .min(Self::SATURATION_BUCKET as u32) as usize
    }

    fn record(&mut self, latency_cycles: u64) {
        self.buckets[Self::bucket_of(latency_cycles)] += 1;
        self.total += 1;
    }

    /// Records `n` latencies that all land in `bucket` — the fast
    /// engine's analytic batch path for a streak of identical per-burst
    /// latencies.
    pub(crate) fn record_n(&mut self, bucket: usize, n: u64) {
        self.buckets[bucket] += n;
        self.total += n;
    }

    /// Folds another histogram into this one. Buckets and totals are
    /// plain sums, so merging is commutative and associative — the
    /// property the parallel engine's reduction relies on.
    fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Number of bursts recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Bucket counts (`buckets[k]` covers `[2^k, 2^(k+1))` cycles; the
    /// last bucket saturates and also covers everything above).
    pub fn buckets(&self) -> &[u64; 32] {
        &self.buckets
    }

    /// Upper bound (cycles) of the bucket containing the given quantile
    /// (`0.0..=1.0`), or `None` when empty.
    ///
    /// When the quantile falls in the saturating top bucket the bound is
    /// [`u64::MAX`]: that bucket holds every latency at or above `2^31`
    /// cycles, so any finite power-of-two bound would misrepresent the
    /// clamped tail.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if k >= Self::SATURATION_BUCKET {
                    Some(u64::MAX)
                } else {
                    Some(1u64 << (k + 1))
                };
            }
        }
        Some(u64::MAX)
    }
}

/// Per-vault (per-unit) command counts collected by [`simulate`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VaultStats {
    /// Read bursts serviced by this vault.
    pub read_bursts: u64,
    /// Write bursts serviced by this vault.
    pub write_bursts: u64,
    /// ACT commands issued.
    pub activations: u64,
    /// PRE commands issued (explicit conflicts + refresh row closes).
    pub precharges: u64,
    /// Column accesses hitting an open row.
    pub row_hits: u64,
    /// Column accesses that opened a row.
    pub row_misses: u64,
    /// All-bank refreshes performed.
    pub refreshes: u64,
}

/// Per-tenant slice of a tagged replay (see [`simulate_tagged`]).
///
/// Byte and burst tallies are the tenant's own traffic exactly. An
/// activation is attributed to the tenant whose burst triggered it —
/// under shared banks a co-tenant can open (or close) a row the tenant
/// then touches, so attribution reflects the interleaved schedule, not
/// the tenant in isolation. `cycles`/`elapsed` measure from cycle 0 to
/// the completion of the tenant's *last* burst, which is the quantity a
/// per-tenant latency budget constrains: it includes every queueing
/// delay co-tenants imposed. `energy` prices the tenant's attributed
/// activations and bytes plus background power over its own completion
/// window; tenant energies therefore overlap in background terms and
/// are an attribution, not a partition of [`TraceStats::energy`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantStats {
    /// Bytes this tenant read from the array.
    pub bytes_read: Bytes,
    /// Bytes this tenant wrote to the array.
    pub bytes_written: Bytes,
    /// Read bursts belonging to this tenant.
    pub read_bursts: u64,
    /// Write bursts belonging to this tenant.
    pub write_bursts: u64,
    /// Row activations triggered by this tenant's bursts.
    pub activations: u64,
    /// Completion cycle of the tenant's last burst (command clock).
    pub cycles: Cycles,
    /// `cycles` in wall-clock time.
    pub elapsed: mealib_types::Seconds,
    /// Completion cycle of the tenant's *first* burst (zero when the
    /// tenant issued no bursts). With `cycles` this brackets the
    /// tenant's busy window; the serving telemetry marks it on the
    /// lifecycle trace as time-to-first-burst.
    pub first_cycles: Cycles,
    /// `first_cycles` in wall-clock time.
    pub first_elapsed: mealib_types::Seconds,
    /// Modeled energy attributed to this tenant (activations + bytes +
    /// background power over its completion window).
    pub energy: mealib_types::Joules,
}

/// Full output of one engine replay: the aggregate statistics, the
/// per-burst latency histogram, per-vault command counts, and — when
/// [`SimOptions::profile`] requested it — the cycle-windowed per-vault
/// timeline.
///
/// `PartialEq` compares every field — including the derived `f64`
/// time/energy values — exactly, which is what the determinism suite
/// and [`EngineKind::DualCheck`] use to hold runs bit-for-bit equal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineRun {
    /// Aggregate timing / row-buffer / energy statistics.
    pub stats: TraceStats,
    /// Per-burst latency histogram (empty when the run was configured
    /// with `latencies: false`).
    pub latencies: LatencyHistogram,
    /// Command counts per vault (index = unit number in the mapping).
    pub vaults: Vec<VaultStats>,
    /// Per-tenant attribution; non-empty exactly when the replay was
    /// tagged (see [`simulate_tagged`] / [`crate::tenancy`]). Index =
    /// tenant tag.
    pub tenants: Vec<TenantStats>,
    /// Cycle-windowed per-vault counters; `Some` exactly when
    /// [`SimOptions::profile`] was `Some(window_cycles)`. Window `w`
    /// covers completion cycles `[w·W, (w+1)·W)`.
    pub timeline: Option<Timeline>,
}

impl EngineRun {
    /// Records the aggregate DRAM counters plus one lane per vault into
    /// an observability handle. A no-op when recording is off.
    pub fn record_into(&self, obs: &Obs) {
        if !obs.enabled() {
            return;
        }
        self.stats.record_into(obs);
        for (unit, v) in self.vaults.iter().enumerate() {
            let lane = unit as u16;
            obs.count_lane(Counter::DramAct, lane, v.activations);
            obs.count_lane(Counter::DramPre, lane, v.precharges);
            obs.count_lane(Counter::DramRowHit, lane, v.row_hits);
            obs.count_lane(Counter::DramRowMiss, lane, v.row_misses);
            obs.count_lane(Counter::DramRefresh, lane, v.refreshes);
        }
    }
}

/// Which replay engine [`simulate`] runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineKind {
    /// The cycle-accurate oracle: every burst steps the per-bank state
    /// machines individually.
    #[default]
    Cycle,
    /// The event-driven epoch-skipping engine: contiguous row-hit burst
    /// streaks are batched analytically and dead time is skipped to the
    /// next bank/bus/refresh event. Bit-exact against [`Cycle`]
    /// (`EngineKind::Cycle`) for every statistic.
    Fast,
    /// Runs both engines and diffs the results; returns
    /// [`SimError::EngineDivergence`] on any mismatch. The validation
    /// mode — roughly the cost of both engines combined.
    DualCheck,
}

/// Options for one [`simulate`] call.
///
/// The `Default` is the cycle-accurate oracle, serial, with latency
/// collection on and profiling off.
///
/// # `jobs` semantics
///
/// One convention across every parallel path in the workspace
/// (normalized through [`mealib_types::auto_jobs`]):
///
/// * `0` ⇒ **auto** — one worker per available hardware thread;
/// * `1` ⇒ the **exact serial path** on the calling thread (no shard
///   allocation, no worker pool);
/// * `n > 1` ⇒ the vault-sharded replay on up to `n` workers.
///
/// Modeled results are bit-identical for every value; only wall-clock
/// time changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOptions {
    /// Replay engine ([`EngineKind::Cycle`] by default).
    pub engine: EngineKind,
    /// Worker threads: `0` = auto, `1` = exact serial path, `n` = up to
    /// `n` workers (vault-sharded).
    pub jobs: usize,
    /// Collect the per-burst latency histogram (`true` by default).
    /// When `false` the returned [`EngineRun::latencies`] is empty.
    pub latencies: bool,
    /// `Some(window_cycles)` additionally accumulates the cycle-windowed
    /// per-vault [`Timeline`] into [`EngineRun::timeline`]. Profiling
    /// charges every burst individually, so it forces the per-burst
    /// cycle-accurate accounting path on any engine kind (the fast
    /// engine's streak batching is bypassed; results are unchanged).
    pub profile: Option<u64>,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            engine: EngineKind::Cycle,
            jobs: 1,
            latencies: true,
            profile: None,
        }
    }
}

impl SimOptions {
    /// Cycle-accurate oracle engine (same as `Default`).
    pub fn cycle() -> Self {
        Self::default()
    }

    /// Event-driven epoch-skipping engine.
    pub fn fast() -> Self {
        Self {
            engine: EngineKind::Fast,
            ..Self::default()
        }
    }

    /// Run both engines and diff every statistic.
    pub fn dual_check() -> Self {
        Self {
            engine: EngineKind::DualCheck,
            ..Self::default()
        }
    }

    /// Sets the worker count (`0` = auto, `1` = serial, `n` = up to `n`).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Enables or disables latency-histogram collection.
    pub fn latencies(mut self, collect: bool) -> Self {
        self.latencies = collect;
        self
    }

    /// Requests the cycle-windowed per-vault timeline with windows of
    /// `window_cycles` command-clock cycles.
    pub fn profile(mut self, window_cycles: u64) -> Self {
        self.profile = Some(window_cycles);
        self
    }
}

/// Error from [`simulate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The memory configuration failed validation.
    Config(ConfigError),
    /// `SimOptions::profile` was `Some(0)`; the timeline window must be
    /// a positive cycle count.
    ZeroWindow,
    /// [`simulate_tagged`] was given a tag column whose length differs
    /// from the trace's request count.
    TagLength {
        /// Number of tenant tags supplied.
        tags: usize,
        /// Number of requests in the trace.
        requests: usize,
    },
    /// [`EngineKind::DualCheck`] found the fast engine disagreeing with
    /// the cycle oracle. The payload names the differing fields — this
    /// is always an engine bug, never an input problem.
    EngineDivergence(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid memory configuration: {e}"),
            Self::ZeroWindow => write!(f, "profile window must be a positive cycle count"),
            Self::TagLength { tags, requests } => write!(
                f,
                "tenant tag column has {tags} entries for a {requests}-request trace"
            ),
            Self::EngineDivergence(what) => {
                write!(f, "fast engine diverged from the cycle oracle: {what}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

/// Replays `trace` in program order against the device described by
/// `config` — the one entry point for every engine, threading, latency,
/// and profiling combination (see [`SimOptions`]).
///
/// Requests longer than one burst are split into burst-sized accesses at
/// burst-aligned boundaries, exactly as a vault controller would issue
/// them. Modeled results are bit-identical across engine kinds and
/// worker counts; [`EngineKind::DualCheck`] enforces that equality at
/// run time.
///
/// # Errors
///
/// * [`SimError::Config`] when `config` fails validation;
/// * [`SimError::ZeroWindow`] when `opts.profile == Some(0)`;
/// * [`SimError::EngineDivergence`] when `DualCheck` finds a mismatch
///   (an engine bug, not an input problem).
///
/// # Examples
///
/// ```
/// use mealib_memsim::config::MemoryConfig;
/// use mealib_memsim::engine::{sequential_trace, simulate, Op, SimOptions};
///
/// let config = MemoryConfig::hmc_stack();
/// let trace = sequential_trace(0, 1 << 20, 256, Op::Read);
/// let run = simulate(&config, &trace, &SimOptions::fast()).unwrap();
/// assert_eq!(run.stats.bytes_read.get(), 1 << 20);
/// ```
pub fn simulate(
    config: &MemoryConfig,
    trace: &TraceBuffer,
    opts: &SimOptions,
) -> Result<EngineRun, SimError> {
    dispatch(config, trace, None, opts)
}

/// Replays a *tagged* trace: `tags[i]` names the tenant owning request
/// `i`, and the returned [`EngineRun::tenants`] carries one
/// [`TenantStats`] slice per tenant (`0..=max(tags)`). Build the tagged
/// trace from per-tenant streams with
/// [`crate::tenancy::interleave_tenants`], or call
/// [`crate::tenancy::simulate_tenants`] to do both steps at once.
///
/// Attribution charges every burst individually, so the fast engine's
/// streak batching is bypassed (the tagged replay runs the cycle path
/// on any engine kind; results are unchanged by construction and
/// [`EngineKind::DualCheck`] still diffs both calls). Everything except
/// the new `tenants` field is bit-identical to the untagged
/// [`simulate`] of the same trace.
///
/// # Errors
///
/// Everything [`simulate`] reports, plus [`SimError::TagLength`] when
/// `tags.len() != trace.len()`.
pub fn simulate_tagged(
    config: &MemoryConfig,
    trace: &TraceBuffer,
    tags: &[u16],
    opts: &SimOptions,
) -> Result<EngineRun, SimError> {
    if tags.len() != trace.len() {
        return Err(SimError::TagLength {
            tags: tags.len(),
            requests: trace.len(),
        });
    }
    let n_tenants = tags.iter().map(|&t| t as usize + 1).max().unwrap_or(0);
    dispatch(config, trace, Some((tags, n_tenants)), opts)
}

/// Per-request tenant tags plus the tenant count the run reports.
pub(crate) type Tenancy<'a> = Option<(&'a [u16], usize)>;

/// Shared body of [`simulate`] and [`simulate_tagged`].
fn dispatch(
    config: &MemoryConfig,
    trace: &TraceBuffer,
    tags: Tenancy<'_>,
    opts: &SimOptions,
) -> Result<EngineRun, SimError> {
    config.validate()?;
    if opts.profile == Some(0) {
        return Err(SimError::ZeroWindow);
    }
    let jobs = mealib_types::auto_jobs(opts.jobs);
    let mut run = match opts.engine {
        EngineKind::Cycle => run_cycle(config, trace, jobs, opts.profile, tags),
        EngineKind::Fast => crate::fast::run_fast(config, trace, jobs, opts.profile, tags),
        EngineKind::DualCheck => {
            let cycle = run_cycle(config, trace, jobs, opts.profile, tags);
            let fast = crate::fast::run_fast(config, trace, jobs, opts.profile, tags);
            if fast != cycle {
                return Err(SimError::EngineDivergence(divergence_report(&cycle, &fast)));
            }
            cycle
        }
    };
    if !opts.latencies {
        run.latencies = LatencyHistogram::default();
    }
    Ok(run)
}

/// Names the fields where two runs disagree, with a one-line numeric
/// sketch for the aggregates — enough to localize an engine bug without
/// dumping whole histograms.
fn divergence_report(cycle: &EngineRun, fast: &EngineRun) -> String {
    let mut parts = Vec::new();
    if cycle.stats != fast.stats {
        parts.push(format!(
            "stats (cycle: {} cycles, {} acts, {} hits; fast: {} cycles, {} acts, {} hits)",
            cycle.stats.cycles.get(),
            cycle.stats.activations,
            cycle.stats.row_hits,
            fast.stats.cycles.get(),
            fast.stats.activations,
            fast.stats.row_hits,
        ));
    }
    if cycle.latencies != fast.latencies {
        parts.push(format!(
            "latency histogram (cycle: {} recorded; fast: {})",
            cycle.latencies.count(),
            fast.latencies.count()
        ));
    }
    if cycle.vaults != fast.vaults {
        let unit = cycle
            .vaults
            .iter()
            .zip(&fast.vaults)
            .position(|(c, f)| c != f);
        match unit {
            Some(u) => parts.push(format!("vault stats (first divergent unit: {u})")),
            None => parts.push("vault stats (unit count differs)".to_string()),
        }
    }
    if cycle.tenants != fast.tenants {
        parts.push("tenant stats".to_string());
    }
    if cycle.timeline != fast.timeline {
        parts.push("timeline".to_string());
    }
    if parts.is_empty() {
        // Unreachable in practice: the caller only builds a report when
        // the runs compare unequal.
        parts.push("unknown field".to_string());
    }
    parts.join("; ")
}

/// The cycle-accurate oracle replay: serial when `jobs <= 1`, otherwise
/// vault-sharded across up to `jobs` workers.
///
/// The trace is partitioned at *burst* granularity — consecutive bursts
/// of one request land on different units under interleaving, so whole
/// requests cannot be assigned to a shard — via the mapping's decode,
/// preserving per-unit program order. Each unit's FCFS stream then
/// replays on its own [`UnitEngine`], which is sound because the serial
/// engine's state is already partitioned per unit: a burst decoded to
/// unit `u` reads and writes the banks, bus, activation window, refresh
/// counter, and issue pointer of `u` and nothing else. The merge is a
/// deterministic order-independent reduction (total cycles = max over
/// units; command counts, byte counts, and histogram buckets are
/// commutative `u64` sums), so the result is **bit-for-bit identical**
/// to the serial run for every statistic, including the derived `f64`
/// time and energy.
///
/// Expects a pre-validated `config` and a pre-normalized `jobs`.
pub(crate) fn run_cycle(
    config: &MemoryConfig,
    trace: &TraceBuffer,
    jobs: usize,
    profile: Option<u64>,
    tags: Tenancy<'_>,
) -> EngineRun {
    let t = &config.timing;
    let mapping = &config.mapping;
    let banks = mapping.banks_per_unit();
    let make = || {
        let mut unit = match profile {
            Some(w) => UnitEngine::with_timeline(banks, w),
            None => UnitEngine::new(banks),
        };
        if let Some((_, n)) = tags {
            unit.tenants = Some(vec![TenantAccum::default(); n]);
        }
        unit
    };
    let tag_col = tags.map(|(col, _)| col);
    let mut units: Vec<UnitEngine> = if jobs <= 1 {
        let mut units: Vec<UnitEngine> = (0..mapping.units()).map(|_| make()).collect();
        for_each_burst_tagged(t, mapping, trace, tag_col, |b| {
            units[b.loc.unit].burst(t, &b)
        });
        units
    } else {
        let mut shards: Vec<Vec<Burst>> = vec![Vec::new(); mapping.units()];
        for_each_burst_tagged(t, mapping, trace, tag_col, |b| shards[b.loc.unit].push(b));
        mealib_types::par_map(&shards, jobs, |shard| {
            let mut unit = make();
            for b in shard {
                unit.burst(t, b);
            }
            unit
        })
    };
    let timeline = profile.map(|w| collect_timeline(w, &mut units));
    let mut run = finish_run(config, units);
    run.timeline = timeline;
    run
}

/// Folds the per-unit window maps into one [`Timeline`], assigning each
/// unit its index as the lane. `par_map` returns units in shard order
/// regardless of completion order, and cell insertion is a commutative
/// sum, so the fold is order-independent.
pub(crate) fn collect_timeline(window_cycles: u64, units: &mut [UnitEngine]) -> Timeline {
    let mut timeline = Timeline::new(window_cycles);
    for (unit, u) in units.iter_mut().enumerate() {
        if let Some(ut) = u.timeline.take() {
            for (w, counters) in &ut.windows {
                timeline.add_cell(*w, unit as u16, counters);
            }
        }
    }
    timeline
}

/// One decoded burst-sized access, in program order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Burst {
    pub(crate) loc: Location,
    pub(crate) bytes: u64,
    pub(crate) op: Op,
    /// Owning tenant; `0` on untagged replays.
    pub(crate) tenant: u16,
}

/// Splits `trace` into burst-sized accesses at burst-aligned boundaries
/// and decodes each one, exactly as a vault controller would issue them.
/// The optional per-request tenant tag column marks every burst of
/// request `i` with `tags[i]`; `None` tags everything tenant 0.
pub(crate) fn for_each_burst_tagged(
    t: &DramTiming,
    mapping: &AddressMapping,
    trace: &TraceBuffer,
    tags: Option<&[u16]>,
    mut f: impl FnMut(Burst),
) {
    let (addrs, bytes, ops) = (trace.addrs(), trace.bytes(), trace.ops());
    for i in 0..trace.len() {
        let mut remaining = bytes[i];
        let mut addr = addrs[i];
        let op = ops[i];
        let tenant = tags.map_or(0, |col| col[i]);
        while remaining > 0 {
            let offset_in_burst = addr % t.burst_bytes;
            let take = (t.burst_bytes - offset_in_burst).min(remaining);
            let loc = mapping.decode(PhysAddr::new(addr));
            f(Burst {
                loc,
                bytes: take,
                op,
                tenant,
            });
            addr += take;
            remaining -= take;
        }
    }
}

/// Per-unit cycle-windowed counter accumulation (the profiled replay
/// path). The lane index is implicit — it is assigned when the per-unit
/// maps are folded into one [`Timeline`] at finish time.
#[derive(Debug, Clone)]
pub(crate) struct UnitTimeline {
    window_cycles: u64,
    windows: std::collections::BTreeMap<u64, WindowCounters>,
}

impl UnitTimeline {
    fn new(window_cycles: u64) -> Self {
        assert!(window_cycles > 0, "window_cycles must be positive");
        Self {
            window_cycles,
            windows: std::collections::BTreeMap::new(),
        }
    }
}

/// One tenant's integer accumulators on one unit. Merging across units
/// is a commutative sum (plus a max on the completion cycle), mirroring
/// [`finish_run`]'s aggregate reduction, so tagged parallel replays stay
/// bit-exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct TenantAccum {
    pub(crate) bytes_read: u64,
    pub(crate) bytes_written: u64,
    pub(crate) read_bursts: u64,
    pub(crate) write_bursts: u64,
    pub(crate) activations: u64,
    /// Completion cycle of the tenant's last burst on this unit.
    pub(crate) last_done: u64,
    /// Completion cycle of the tenant's first burst on this unit
    /// (zero = the tenant never issued here; a serviced burst always
    /// completes after cycle zero, so zero is a safe sentinel).
    pub(crate) first_done: u64,
}

impl TenantAccum {
    fn merge(&mut self, other: &TenantAccum) {
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.read_bursts += other.read_bursts;
        self.write_bursts += other.write_bursts;
        self.activations += other.activations;
        self.last_done = self.last_done.max(other.last_done);
        // First-burst completion is a min over units that saw the
        // tenant at all — commutative, so sharded merges stay
        // bit-exact.
        if other.first_done != 0 {
            self.first_done = if self.first_done == 0 {
                other.first_done
            } else {
                self.first_done.min(other.first_done)
            };
        }
    }
}

/// The complete replay state of one unit (channel or vault): banks, data
/// bus, tFAW window, refresh progress, the FCFS issue pointer, and the
/// unit's share of every statistic. Serial and parallel replays of both
/// engines run through this type; a burst decoded to unit `u` touches
/// the state of `u` and nothing else, which is what makes vault sharding
/// sound.
#[derive(Debug, Clone)]
pub(crate) struct UnitEngine {
    pub(crate) banks: Vec<BankState>,
    pub(crate) bus_free: u64,
    pub(crate) window: ActWindow,
    pub(crate) refreshes_done: u64,
    /// Program-order issue pointer: a burst's latency is measured from
    /// the completion of the previous burst on the same unit (FCFS).
    pub(crate) issued_at: u64,
    pub(crate) vault: VaultStats,
    pub(crate) latencies: LatencyHistogram,
    pub(crate) bytes_read: u64,
    pub(crate) bytes_written: u64,
    /// Windowed counter accumulation; `None` on the default (unprofiled)
    /// path, where [`UnitEngine::burst`] costs one discriminant check.
    pub(crate) timeline: Option<UnitTimeline>,
    /// Per-tenant accumulators; `Some` exactly on tagged replays.
    pub(crate) tenants: Option<Vec<TenantAccum>>,
}

impl UnitEngine {
    pub(crate) fn new(banks: usize) -> Self {
        Self {
            banks: vec![BankState::default(); banks],
            bus_free: 0,
            window: ActWindow::default(),
            refreshes_done: 0,
            issued_at: 0,
            vault: VaultStats::default(),
            latencies: LatencyHistogram::default(),
            bytes_read: 0,
            bytes_written: 0,
            timeline: None,
            tenants: None,
        }
    }

    pub(crate) fn with_timeline(banks: usize, window_cycles: u64) -> Self {
        let mut unit = Self::new(banks);
        unit.timeline = Some(UnitTimeline::new(window_cycles));
        unit
    }

    /// Services one burst, accumulating windowed counters and/or tenant
    /// attribution when those paths are on. The disabled path costs two
    /// `Option` discriminant checks on top of [`UnitEngine::burst_core`].
    pub(crate) fn burst(&mut self, t: &DramTiming, b: &Burst) {
        if self.timeline.is_none() && self.tenants.is_none() {
            self.burst_core(t, b);
            return;
        }
        // Snapshot-delta accumulation: everything `burst_core` charges to
        // this burst (including refresh debt paid before it) lands in the
        // window containing the burst's last data-bus cycle. The rule is
        // a pure function of the per-unit burst stream, so serial and
        // vault-sharded parallel replays bucket identically.
        let vault_before = self.vault;
        let read_before = self.bytes_read;
        let written_before = self.bytes_written;
        let issued_before = self.issued_at;
        self.burst_core(t, b);
        let done = self.bus_free;
        if let Some(tenants) = self.tenants.as_mut() {
            let acc = &mut tenants[b.tenant as usize];
            acc.bytes_read += self.bytes_read - read_before;
            acc.bytes_written += self.bytes_written - written_before;
            acc.read_bursts += self.vault.read_bursts - vault_before.read_bursts;
            acc.write_bursts += self.vault.write_bursts - vault_before.write_bursts;
            acc.activations += self.vault.activations - vault_before.activations;
            acc.last_done = acc.last_done.max(done);
            if acc.first_done == 0 {
                acc.first_done = done;
            }
        }
        if self.timeline.is_none() {
            return;
        }
        let delta = WindowCounters {
            bytes_read: self.bytes_read - read_before,
            bytes_written: self.bytes_written - written_before,
            activations: self.vault.activations - vault_before.activations,
            precharges: self.vault.precharges - vault_before.precharges,
            row_hits: self.vault.row_hits - vault_before.row_hits,
            row_misses: self.vault.row_misses - vault_before.row_misses,
            refreshes: self.vault.refreshes - vault_before.refreshes,
            bus_busy_cycles: t.t_burst,
            queue_wait_cycles: done - issued_before,
            noc_flits: 0,
            noc_credit_stalls: 0,
        };
        let tl = self.timeline.as_mut().expect("checked above");
        let w = done.saturating_sub(1) / tl.window_cycles;
        tl.windows.entry(w).or_default().merge(&delta);
    }

    /// Services one burst in FCFS order: refresh accounting, row-buffer
    /// logic, then a slot on the unit's data bus.
    ///
    /// This is the shared slow path: the fast engine calls it verbatim
    /// for every burst its analytic streak batching cannot cover, which
    /// is what keeps the two engines bit-exact on conflicts, refreshes,
    /// and activations.
    pub(crate) fn burst_core(&mut self, t: &DramTiming, b: &Burst) {
        // Periodic all-bank refresh (REFab): once per tREFI the whole
        // unit spends tRFC refreshing, closing every row buffer.
        let due = self.bus_free / t.t_refi;
        if due > self.refreshes_done {
            let owed = due - self.refreshes_done;
            self.refreshes_done = due;
            self.vault.refreshes += owed;
            self.bus_free += owed * t.t_rfc;
            for bank in self.banks.iter_mut() {
                if bank.open_row.is_some() {
                    // Refresh implicitly closes every open row.
                    self.vault.precharges += 1;
                }
                bank.open_row = None;
                bank.cmd_ready = bank.cmd_ready.max(self.bus_free);
            }
        }

        let bank = &mut self.banks[b.loc.bank];
        let data_start = match bank.open_row {
            Some(r) if r == b.loc.row => {
                self.vault.row_hits += 1;
                bank.cmd_ready + t.t_cl
            }
            Some(_) => {
                // Row conflict: precharge, then activate, then access.
                self.vault.row_misses += 1;
                self.vault.activations += 1;
                self.vault.precharges += 1;
                let pre = bank.cmd_ready.max(bank.act_at + t.t_ras);
                let act = (pre + t.t_rp)
                    .max(bank.act_at + t.t_rc())
                    .max(self.window.earliest(t.t_faw));
                self.window.record(act);
                bank.act_at = act;
                act + t.t_rcd + t.t_cl
            }
            None => {
                // Bank idle: activate, then access.
                self.vault.row_misses += 1;
                self.vault.activations += 1;
                let act = if bank.has_activated {
                    bank.cmd_ready.max(bank.act_at + t.t_rc())
                } else {
                    bank.cmd_ready
                }
                .max(self.window.earliest(t.t_faw));
                self.window.record(act);
                bank.act_at = act;
                bank.has_activated = true;
                act + t.t_rcd + t.t_cl
            }
        };
        let data_start = data_start.max(self.bus_free);
        let done = data_start + t.t_burst;
        self.bus_free = done;
        // Column commands can issue once per burst slot.
        bank.cmd_ready = done.saturating_sub(t.t_cl);
        bank.open_row = Some(b.loc.row);
        self.latencies.record(done - self.issued_at);
        self.issued_at = done;

        match b.op {
            Op::Read => {
                self.bytes_read += b.bytes;
                self.vault.read_bursts += 1;
            }
            Op::Write => {
                self.bytes_written += b.bytes;
                self.vault.write_bursts += 1;
            }
        }
    }
}

/// Folds per-unit replay results into one [`EngineRun`]. Every merged
/// quantity is either a commutative `u64` sum (bytes, commands,
/// histogram buckets) or a max (the end cycle); the derived `f64`
/// fields (`elapsed`, `energy`) are computed once here from the merged
/// integer totals, so parallel and serial runs — and the fast and cycle
/// engines — agree bit-for-bit.
pub(crate) fn finish_run(config: &MemoryConfig, units: Vec<UnitEngine>) -> EngineRun {
    let t = &config.timing;
    let hz = mealib_types::Hertz::new(1.0 / t.t_ck.get());
    let mut stats = TraceStats::default();
    let mut latencies = LatencyHistogram::default();
    let mut vaults = Vec::with_capacity(units.len());
    let mut accums: Vec<TenantAccum> = Vec::new();
    let mut end_cycle = 0u64;
    for u in units {
        end_cycle = end_cycle.max(u.bus_free);
        stats.bytes_read += Bytes::new(u.bytes_read);
        stats.bytes_written += Bytes::new(u.bytes_written);
        stats.activations += u.vault.activations;
        stats.precharges += u.vault.precharges;
        stats.row_hits += u.vault.row_hits;
        stats.row_misses += u.vault.row_misses;
        stats.refreshes += u.vault.refreshes;
        latencies.merge(&u.latencies);
        vaults.push(u.vault);
        if let Some(ts) = u.tenants {
            if accums.is_empty() {
                accums = ts;
            } else {
                for (mine, theirs) in accums.iter_mut().zip(&ts) {
                    mine.merge(theirs);
                }
            }
        }
    }
    stats.cycles = Cycles::new(end_cycle);
    stats.elapsed = stats.cycles.at(hz);
    stats.energy =
        config
            .energy
            .trace_energy(stats.activations, stats.bytes_moved().get(), stats.elapsed);
    // Tenant slices derive their `f64` fields once from the merged
    // integer accumulators, exactly like the aggregates above, so tagged
    // parallel replays stay bit-exact.
    let tenants = accums
        .iter()
        .map(|a| {
            let cycles = Cycles::new(a.last_done);
            let elapsed = cycles.at(hz);
            let energy =
                config
                    .energy
                    .trace_energy(a.activations, a.bytes_read + a.bytes_written, elapsed);
            let first_cycles = Cycles::new(a.first_done);
            TenantStats {
                bytes_read: Bytes::new(a.bytes_read),
                bytes_written: Bytes::new(a.bytes_written),
                read_bursts: a.read_bursts,
                write_bursts: a.write_bursts,
                activations: a.activations,
                cycles,
                elapsed,
                first_cycles,
                first_elapsed: first_cycles.at(hz),
                energy,
            }
        })
        .collect();
    EngineRun {
        stats,
        latencies,
        vaults,
        tenants,
        timeline: None,
    }
}

/// Builds a sequential trace covering `bytes` starting at `base`, one
/// request per `chunk` bytes.
pub fn sequential_trace(base: u64, bytes: u64, chunk: u64, op: Op) -> TraceBuffer {
    assert!(chunk > 0, "chunk must be nonzero");
    let mut out = TraceBuffer::with_capacity(bytes.div_ceil(chunk) as usize);
    let mut off = 0;
    while off < bytes {
        let take = chunk.min(bytes - off);
        out.push(Request {
            addr: PhysAddr::new(base + off),
            bytes: take,
            op,
        });
        off += take;
    }
    out
}

/// Builds a strided trace: `count` accesses of `elem_bytes` each,
/// `stride` bytes apart, starting at `base`.
pub fn strided_trace(base: u64, stride: u64, elem_bytes: u64, count: u64, op: Op) -> TraceBuffer {
    (0..count)
        .map(|i| Request {
            addr: PhysAddr::new(base + i * stride),
            bytes: elem_bytes,
            op,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_channel_config() -> MemoryConfig {
        let mut c = MemoryConfig::ddr_dual_channel();
        c.mapping = crate::address::AddressMapping::Interleaved {
            units: 1,
            banks_per_unit: 8,
            row_bytes: 8192,
            line_bytes: 64,
        };
        c
    }

    fn run(c: &MemoryConfig, trace: &TraceBuffer) -> EngineRun {
        simulate(c, trace, &SimOptions::default()).expect("valid config")
    }

    fn stats(c: &MemoryConfig, trace: &TraceBuffer) -> TraceStats {
        run(c, trace).stats
    }

    #[test]
    fn sequential_stream_approaches_peak_bandwidth() {
        let c = single_channel_config();
        let trace = sequential_trace(0, 4 << 20, 64, Op::Read);
        let s = stats(&c, &trace);
        let peak = c.timing.peak_bandwidth().as_gb_per_sec();
        let got = s.achieved_bandwidth().as_gb_per_sec();
        assert!(
            got > 0.85 * peak,
            "sequential {got:.1} GB/s vs peak {peak:.1}"
        );
    }

    #[test]
    fn sequential_stream_has_high_row_hit_rate() {
        let c = single_channel_config();
        let trace = sequential_trace(0, 1 << 20, 64, Op::Read);
        let s = stats(&c, &trace);
        assert!(s.row_hit_rate().unwrap() > 0.98);
        // One activation per 8 KiB row, plus a few reopened rows after
        // periodic refreshes.
        let base = (1u64 << 20) / 8192;
        assert!(
            (base..base + 16).contains(&s.activations),
            "activations {} vs base {base}",
            s.activations
        );
        assert!(s.refreshes > 0, "a megabyte stream crosses tREFI");
    }

    #[test]
    fn row_strided_access_is_much_slower_than_sequential() {
        let c = single_channel_config();
        let bytes_each = 64u64;
        let count = 4096u64;
        let seq = stats(&c, &sequential_trace(0, count * bytes_each, 64, Op::Read));
        // Stride of one row: every access opens a new row, but rotating
        // banks still hide most of the activation latency.
        let strided = stats(&c, &strided_trace(0, 8192, bytes_each, count, Op::Read));
        assert_eq!(strided.row_hit_rate(), Some(0.0));
        assert!(
            strided.elapsed.get() > 1.15 * seq.elapsed.get(),
            "row-thrashing must cost bandwidth: {} vs {}",
            strided.elapsed,
            seq.elapsed
        );
        // Stride of one row *within the same bank* (8 banks x 8 KiB):
        // every access pays the full row cycle, an order of magnitude.
        let same_bank = stats(&c, &strided_trace(0, 8192 * 8, bytes_each, count, Op::Read));
        assert!(
            same_bank.elapsed.get() > 5.0 * seq.elapsed.get(),
            "same-bank thrashing must serialize on tRC: {} vs {}",
            same_bank.elapsed,
            seq.elapsed
        );
    }

    #[test]
    fn xor_hashing_recovers_strided_bandwidth() {
        // A stride aliasing to one channel on the plain mapping spreads
        // across both channels under XOR hashing.
        let mut plain = MemoryConfig::ddr_dual_channel();
        plain.mapping = crate::address::AddressMapping::Interleaved {
            units: 2,
            banks_per_unit: 8,
            row_bytes: 8192,
            line_bytes: 64,
        };
        let mut hashed = plain.clone();
        hashed.mapping = crate::address::AddressMapping::XorInterleaved {
            units: 2,
            banks_per_unit: 8,
            row_bytes: 8192,
            line_bytes: 64,
        };
        let trace = strided_trace(0, 128, 64, 1 << 15, Op::Read);
        let t_plain = stats(&plain, &trace).elapsed;
        let t_hashed = stats(&hashed, &trace).elapsed;
        assert!(
            t_plain.get() > 1.5 * t_hashed.get(),
            "XOR hashing must break the aliasing: {t_plain} vs {t_hashed}"
        );
    }

    #[test]
    fn dual_channel_halves_time_of_single_channel() {
        let single = single_channel_config();
        let dual = MemoryConfig::ddr_dual_channel();
        let trace = sequential_trace(0, 8 << 20, 64, Op::Read);
        let t1 = stats(&single, &trace).elapsed;
        let t2 = stats(&dual, &trace).elapsed;
        let ratio = t1 / t2;
        assert!(
            (1.8..=2.2).contains(&ratio),
            "channel scaling ratio {ratio}"
        );
    }

    #[test]
    fn hmc_stack_streams_near_half_terabyte_per_second() {
        let c = MemoryConfig::hmc_stack();
        let trace = sequential_trace(0, 64 << 20, 256, Op::Read);
        let s = stats(&c, &trace);
        let bw = s.achieved_bandwidth().as_gb_per_sec();
        assert!(bw > 400.0, "stack bandwidth {bw:.0} GB/s");
    }

    #[test]
    fn writes_count_separately_from_reads() {
        let c = single_channel_config();
        let mut trace = sequential_trace(0, 1 << 16, 64, Op::Read);
        trace.extend(&sequential_trace(1 << 20, 1 << 16, 64, Op::Write));
        let s = stats(&c, &trace);
        assert_eq!(s.bytes_read.get(), 1 << 16);
        assert_eq!(s.bytes_written.get(), 1 << 16);
    }

    #[test]
    fn unaligned_request_splits_at_burst_boundary() {
        let c = single_channel_config();
        // 100 bytes starting at offset 30 crosses two 64B burst boundaries.
        let s = stats(&c, &TraceBuffer::from(&[Request::read(30, 100)]));
        assert_eq!(s.bytes_read.get(), 100);
        // 30..64, 64..128, 128..130 → 3 bursts, all same row: 1 activation.
        assert_eq!(s.activations, 1);
        assert_eq!(s.row_hits + s.row_misses, 3);
    }

    #[test]
    fn latency_histogram_counts_every_burst() {
        let c = single_channel_config();
        let trace = sequential_trace(0, 1 << 16, 64, Op::Read);
        let r = run(&c, &trace);
        let (stats, lat) = (&r.stats, &r.latencies);
        assert_eq!(lat.count(), stats.row_hits + stats.row_misses);
        // Steady-state sequential bursts complete one burst slot apart.
        let median = lat.quantile_bound(0.5).unwrap();
        assert!(median <= 8, "median latency bound {median} cycles");
        // The tail (first access, row openings) is slower than the median.
        assert!(lat.quantile_bound(1.0).unwrap() >= median);
    }

    #[test]
    fn latencies_off_returns_an_empty_histogram() {
        let c = single_channel_config();
        let trace = sequential_trace(0, 1 << 16, 64, Op::Read);
        let quiet = simulate(&c, &trace, &SimOptions::default().latencies(false)).unwrap();
        assert_eq!(quiet.latencies, LatencyHistogram::default());
        // Every other statistic is unchanged by the flag.
        let full = run(&c, &trace);
        assert_eq!(quiet.stats, full.stats);
        assert_eq!(quiet.vaults, full.vaults);
    }

    #[test]
    fn row_thrashing_shows_up_in_the_latency_tail() {
        let c = single_channel_config();
        let seq = run(&c, &sequential_trace(0, 1 << 16, 64, Op::Read)).latencies;
        let thrash = run(&c, &strided_trace(0, 8192 * 8, 64, 1024, Op::Read)).latencies;
        assert!(
            thrash.quantile_bound(0.5).unwrap() > seq.quantile_bound(0.5).unwrap(),
            "same-bank thrashing must raise the median latency"
        );
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_bound(0.5), None);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut one_by_one = LatencyHistogram::default();
        for _ in 0..1000 {
            one_by_one.record(13);
        }
        let mut batched = LatencyHistogram::default();
        batched.record_n(LatencyHistogram::bucket_of(13), 1000);
        assert_eq!(one_by_one, batched);
    }

    #[test]
    fn per_vault_counts_sum_to_aggregates() {
        let c = MemoryConfig::ddr_dual_channel();
        let mut trace = sequential_trace(0, 1 << 20, 64, Op::Read);
        trace.extend(&strided_trace(1 << 22, 8192, 64, 2048, Op::Write));
        let run = run(&c, &trace);
        assert_eq!(run.vaults.len(), c.mapping.units());
        let acts: u64 = run.vaults.iter().map(|v| v.activations).sum();
        let pres: u64 = run.vaults.iter().map(|v| v.precharges).sum();
        let hits: u64 = run.vaults.iter().map(|v| v.row_hits).sum();
        let misses: u64 = run.vaults.iter().map(|v| v.row_misses).sum();
        let refreshes: u64 = run.vaults.iter().map(|v| v.refreshes).sum();
        assert_eq!(acts, run.stats.activations);
        assert_eq!(pres, run.stats.precharges);
        assert_eq!(hits, run.stats.row_hits);
        assert_eq!(misses, run.stats.row_misses);
        assert_eq!(refreshes, run.stats.refreshes);
        // Interleaving spreads a large stream across every unit.
        assert!(run.vaults.iter().all(|v| v.read_bursts > 0));
    }

    #[test]
    fn precharges_track_row_conflicts() {
        let c = single_channel_config();
        // Same-bank row thrashing: every access after the first conflicts.
        let thrash = run(&c, &strided_trace(0, 8192 * 8, 64, 256, Op::Read));
        assert!(
            thrash.stats.precharges >= 255,
            "precharges {}",
            thrash.stats.precharges
        );
        // A short sequential stream stays in its rows: no conflicts.
        let seq = run(&c, &sequential_trace(0, 4096, 64, Op::Read));
        assert_eq!(seq.stats.precharges, 0);
    }

    #[test]
    fn engine_run_records_per_lane_counters() {
        use mealib_obs::TraceRecorder;
        let c = MemoryConfig::ddr_dual_channel();
        let run = run(&c, &sequential_trace(0, 1 << 20, 64, Op::Read));
        let rec = TraceRecorder::shared();
        run.record_into(&Obs::new(rec.clone()));
        let bd = rec.breakdown();
        // Aggregate + per-lane sums: counter() folds both, so the total
        // is twice the aggregate count.
        assert_eq!(bd.counter(Counter::DramAct), 2 * run.stats.activations);
        assert_eq!(bd.counter(Counter::DramRdBytes), run.stats.bytes_read.get());
    }

    #[test]
    fn empty_trace_is_zero() {
        let s = stats(&MemoryConfig::hmc_stack(), &TraceBuffer::new());
        assert_eq!(s.bytes_moved(), Bytes::ZERO);
        assert_eq!(s.cycles, Cycles::ZERO);
        assert!(s.elapsed.is_zero());
    }

    #[test]
    fn empty_trace_derived_metrics_do_not_divide_by_zero() {
        // Regression: bandwidth and power are derived by dividing by the
        // elapsed time, which is zero for an empty trace. Both must
        // return their ZERO value, not panic or produce NaN/inf.
        for config in [
            MemoryConfig::hmc_stack(),
            MemoryConfig::ddr_dual_channel(),
            MemoryConfig::msas_dram(),
        ] {
            let run = run(&config, &TraceBuffer::new());
            assert_eq!(
                run.stats.achieved_bandwidth(),
                mealib_types::BytesPerSec::ZERO
            );
            assert_eq!(run.stats.average_power(), mealib_types::Watts::ZERO);
            assert!(run.stats.energy.get() >= 0.0 && run.stats.energy.get().is_finite());
            assert_eq!(run.latencies.count(), 0);
            assert!(run.vaults.iter().all(|v| *v == VaultStats::default()));
        }
    }

    #[test]
    fn zero_byte_request_is_a_noop() {
        // Regression: a zero-length request produces no bursts, so it
        // must leave every statistic at zero and the derived
        // bandwidth/power at their guarded ZERO values.
        let c = single_channel_config();
        let trace = TraceBuffer::from(&[Request::read(4096, 0), Request::write(0, 0)]);
        let empty = run(&c, &trace);
        assert_eq!(empty.stats.bytes_moved(), Bytes::ZERO);
        assert_eq!(empty.stats.cycles, Cycles::ZERO);
        assert_eq!(empty.stats.row_hits + empty.stats.row_misses, 0);
        assert_eq!(
            empty.stats.achieved_bandwidth(),
            mealib_types::BytesPerSec::ZERO
        );
        assert_eq!(empty.stats.average_power(), mealib_types::Watts::ZERO);
        // Mixing zero-byte requests into a real trace changes nothing.
        let mut mixed = TraceBuffer::from(&[Request::read(0, 0)]);
        mixed.extend(&sequential_trace(0, 1 << 16, 64, Op::Read));
        mixed.push(Request::write(512, 0));
        let clean = run(&c, &sequential_trace(0, 1 << 16, 64, Op::Read));
        assert_eq!(run(&c, &mixed), clean);
    }

    #[test]
    fn histogram_top_bucket_saturates_instead_of_misbinning() {
        // Latencies at or above 2^31 cycles clamp into the top bucket.
        let mut h = LatencyHistogram::default();
        h.record(1 << 30); // bucket 30, finite bound 2^31
        h.record(1 << 31); // first saturated value
        h.record(u64::MAX); // far past any finite bucket
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets()[30], 1);
        assert_eq!(h.buckets()[LatencyHistogram::SATURATION_BUCKET], 2);
        // Quantiles below the saturated tail keep their finite bounds...
        assert_eq!(h.quantile_bound(0.2), Some(1 << 31));
        // ...while quantiles landing in the top bucket report u64::MAX,
        // not the false 2^32 bound the pre-fix arithmetic produced.
        assert_eq!(h.quantile_bound(0.9), Some(u64::MAX));
        assert_eq!(h.quantile_bound(1.0), Some(u64::MAX));
    }

    #[test]
    fn histogram_merge_is_commutative() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        for v in [0u64, 1, 7, 63, 1 << 20, u64::MAX] {
            a.record(v);
        }
        for v in [2u64, 2, 1 << 31] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 9);
    }

    #[test]
    fn parallel_replay_matches_serial_on_presets() {
        let mut trace = sequential_trace(0, 1 << 20, 64, Op::Read);
        trace.extend(&strided_trace(1 << 22, 8192, 64, 2048, Op::Write));
        trace.push(Request::read(30, 100));
        trace.push(Request::read(0, 0));
        for config in [
            MemoryConfig::hmc_stack(),
            MemoryConfig::ddr_dual_channel(),
            MemoryConfig::msas_dram(),
            MemoryConfig::hmc_stack_gen1(),
        ] {
            let serial = run(&config, &trace);
            for jobs in [0usize, 1, 2, 4, 8] {
                let parallel =
                    simulate(&config, &trace, &SimOptions::default().jobs(jobs)).unwrap();
                assert_eq!(parallel, serial, "{} jobs={jobs}", config.name);
                assert_eq!(
                    parallel.stats.elapsed.get().to_bits(),
                    serial.stats.elapsed.get().to_bits(),
                    "{} jobs={jobs}: elapsed must be bit-exact",
                    config.name
                );
                assert_eq!(
                    parallel.stats.energy.get().to_bits(),
                    serial.stats.energy.get().to_bits(),
                    "{} jobs={jobs}: energy must be bit-exact",
                    config.name
                );
            }
        }
    }

    #[test]
    fn simulate_rejects_invalid_config_and_zero_window() {
        let mut c = MemoryConfig::hmc_stack();
        c.timing.t_rcd = 0;
        let empty = TraceBuffer::new();
        assert!(matches!(
            simulate(&c, &empty, &SimOptions::default().jobs(4)),
            Err(SimError::Config(_))
        ));
        assert_eq!(
            simulate(
                &MemoryConfig::hmc_stack(),
                &empty,
                &SimOptions::default().profile(0)
            ),
            Err(SimError::ZeroWindow)
        );
        assert!(simulate(&MemoryConfig::hmc_stack(), &empty, &SimOptions::default()).is_ok());
    }

    #[test]
    fn profiled_run_matches_unprofiled_and_conserves_counters() {
        let c = MemoryConfig::ddr_dual_channel();
        let mut trace = sequential_trace(0, 1 << 20, 64, Op::Read);
        trace.extend(&strided_trace(1 << 22, 8192, 64, 2048, Op::Write));
        let plain = run(&c, &trace);
        let mut profiled = simulate(&c, &trace, &SimOptions::default().profile(4096)).unwrap();
        let timeline = profiled.timeline.take().expect("profiled run has timeline");
        // Profiling must not perturb the model.
        assert_eq!(profiled, plain);
        // Conservation: the windowed cells sum exactly to the aggregates.
        let agg = timeline.aggregate();
        assert_eq!(agg.bytes_read, plain.stats.bytes_read.get());
        assert_eq!(agg.bytes_written, plain.stats.bytes_written.get());
        assert_eq!(agg.activations, plain.stats.activations);
        assert_eq!(agg.precharges, plain.stats.precharges);
        assert_eq!(agg.row_hits, plain.stats.row_hits);
        assert_eq!(agg.row_misses, plain.stats.row_misses);
        assert_eq!(agg.refreshes, plain.stats.refreshes);
        // One bus slot per burst; queue waits telescope to each unit's
        // final busy cycle.
        let bursts = plain.stats.row_hits + plain.stats.row_misses;
        assert_eq!(agg.bus_busy_cycles, bursts * c.timing.t_burst);
        assert!(agg.queue_wait_cycles >= plain.stats.cycles.get());
        // Every populated window stays inside the modeled cycle span.
        assert!(timeline.num_windows() * 4096 <= plain.stats.cycles.get() + 4096);
        // Lanes are vault indices.
        let units = c.mapping.units() as u16;
        assert!(timeline.lanes().iter().all(|&l| l < units));
    }

    #[test]
    fn profiled_parallel_timeline_is_bit_identical_to_serial() {
        let c = MemoryConfig::hmc_stack();
        let mut trace = sequential_trace(0, 2 << 20, 256, Op::Read);
        trace.extend(&strided_trace(1 << 24, 8192, 64, 4096, Op::Write));
        let serial = simulate(&c, &trace, &SimOptions::default().profile(1024)).unwrap();
        for jobs in [1usize, 2, 4, 8] {
            let parallel =
                simulate(&c, &trace, &SimOptions::default().profile(1024).jobs(jobs)).unwrap();
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn per_lane_timeline_matches_vault_stats() {
        let c = MemoryConfig::ddr_dual_channel();
        let trace = sequential_trace(0, 1 << 20, 64, Op::Read);
        let profiled = simulate(&c, &trace, &SimOptions::default().profile(2048)).unwrap();
        let timeline = profiled.timeline.as_ref().expect("timeline requested");
        for (unit, v) in profiled.vaults.iter().enumerate() {
            let mut lane_total = WindowCounters::default();
            for (_, lane, cell) in timeline.iter() {
                if lane == unit as u16 {
                    lane_total.merge(cell);
                }
            }
            assert_eq!(lane_total.activations, v.activations, "unit {unit}");
            assert_eq!(lane_total.row_hits, v.row_hits, "unit {unit}");
            assert_eq!(lane_total.row_misses, v.row_misses, "unit {unit}");
            assert_eq!(lane_total.refreshes, v.refreshes, "unit {unit}");
        }
    }

    #[test]
    fn empty_trace_profiles_to_an_empty_timeline() {
        let p = simulate(
            &MemoryConfig::hmc_stack(),
            &TraceBuffer::new(),
            &SimOptions::default().profile(512),
        )
        .unwrap();
        let timeline = p.timeline.expect("timeline requested");
        assert!(timeline.is_empty());
        assert_eq!(timeline.window_cycles(), 512);
    }

    #[test]
    fn energy_scales_with_bytes_moved() {
        let c = single_channel_config();
        let small = stats(&c, &sequential_trace(0, 1 << 18, 64, Op::Read));
        let large = stats(&c, &sequential_trace(0, 1 << 20, 64, Op::Read));
        let ratio = large.energy.get() / small.energy.get();
        assert!((3.0..5.0).contains(&ratio), "energy ratio {ratio}");
    }

    #[test]
    fn tagged_run_matches_untagged_and_attributes_every_burst() {
        // Tenant attribution must not perturb the model: the shared
        // statistics of a tagged replay equal the untagged run's, and
        // the per-tenant slices partition the totals exactly.
        let c = MemoryConfig::ddr_dual_channel();
        let mut trace = sequential_trace(0, 1 << 19, 64, Op::Read);
        trace.extend(&strided_trace(1 << 22, 8192, 64, 1024, Op::Write));
        let tags: Vec<u16> = (0..trace.len()).map(|i| (i % 3) as u16).collect();
        let plain = run(&c, &trace);
        let tagged = simulate_tagged(&c, &trace, &tags, &SimOptions::default()).unwrap();
        assert_eq!(tagged.stats, plain.stats);
        assert_eq!(tagged.vaults, plain.vaults);
        assert_eq!(tagged.latencies, plain.latencies);
        assert_eq!(tagged.tenants.len(), 3);
        let read: u64 = tagged.tenants.iter().map(|t| t.bytes_read.get()).sum();
        let written: u64 = tagged.tenants.iter().map(|t| t.bytes_written.get()).sum();
        let bursts: u64 = tagged
            .tenants
            .iter()
            .map(|t| t.read_bursts + t.write_bursts)
            .sum();
        let acts: u64 = tagged.tenants.iter().map(|t| t.activations).sum();
        assert_eq!(read, plain.stats.bytes_read.get());
        assert_eq!(written, plain.stats.bytes_written.get());
        assert_eq!(bursts, plain.stats.row_hits + plain.stats.row_misses);
        assert_eq!(acts, plain.stats.activations);
        let last = tagged.tenants.iter().map(|t| t.cycles.get()).max().unwrap();
        assert_eq!(last, plain.stats.cycles.get());
        // The untagged run reports no tenant slices.
        assert!(plain.tenants.is_empty());
    }

    #[test]
    fn tagged_run_is_engine_and_jobs_invariant() {
        let c = MemoryConfig::hmc_stack();
        let mut trace = sequential_trace(0, 1 << 20, 256, Op::Read);
        trace.extend(&strided_trace(1 << 24, 8192, 64, 2048, Op::Write));
        let tags: Vec<u16> = (0..trace.len()).map(|i| (i % 4) as u16).collect();
        let serial = simulate_tagged(&c, &trace, &tags, &SimOptions::default()).unwrap();
        for opts in [
            SimOptions::cycle().jobs(4),
            SimOptions::fast(),
            SimOptions::fast().jobs(8),
            SimOptions::dual_check(),
            SimOptions::dual_check().jobs(2),
        ] {
            let other = simulate_tagged(&c, &trace, &tags, &opts).unwrap();
            assert_eq!(other, serial, "{opts:?}");
        }
    }

    #[test]
    fn tagged_run_rejects_mismatched_tag_columns() {
        let c = MemoryConfig::hmc_stack();
        let trace = sequential_trace(0, 1 << 16, 64, Op::Read);
        let tags = vec![0u16; trace.len() - 1];
        assert!(matches!(
            simulate_tagged(&c, &trace, &tags, &SimOptions::default()),
            Err(SimError::TagLength { .. })
        ));
    }
}
