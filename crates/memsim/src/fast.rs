//! Event-driven epoch-skipping replay (`EngineKind::Fast`).
//!
//! The fast engine exploits an invariant of the cycle engine's steady
//! state: once a unit's data bus is the binding constraint, every
//! row-hit burst completes exactly `t_burst` cycles after the previous
//! one, and the per-bank state machines advance in lockstep with the
//! bus. Formally, a burst is **bus-limited** when, at its turn,
//!
//! 1. no refresh is owed (`bus_free / t_refi == refreshes_done`),
//! 2. its bank's open row matches (`open_row == Some(row)`), and
//! 3. the bank's column command is not the bottleneck
//!    (`cmd_ready + t_cl <= bus_free`).
//!
//! Under those conditions [`UnitEngine::burst_core`] computes
//! `done = bus_free + t_burst`, latency exactly `t_burst`, and touches
//! nothing but `bus_free`, `cmd_ready`, `issued_at`, the hit counter,
//! and the byte/burst tallies — all of which a streak of `k` such
//! bursts updates in closed form. The engine therefore scans ahead for
//! the longest streak of bus-limited bursts (capped at the next refresh
//! epoch, the next **event** that could perturb the state), applies the
//! batch update, and *skips* the `k·t_burst` dead cycles in one step.
//! Condition 3 stays decidable during the scan without simulating: the
//! bus pointer at streak offset `j` is exactly `bus_free + j·t_burst`,
//! and a bank serviced earlier in the streak has
//! `cmd_ready + t_cl == its last done cycle <= the current bus pointer`
//! by construction.
//!
//! Any burst that fails the conditions — a conflict, an idle bank, a
//! refresh boundary, a cold column path — is replayed through the
//! *shared* [`UnitEngine::burst_core`], so the slow path is the cycle
//! engine's code, not a reimplementation. That, plus the closed-form
//! algebra above, is why `EngineKind::DualCheck` and the determinism
//! proptests hold the two engines bit-for-bit equal on every statistic
//! (stats, vault counts, histogram buckets, energy).
//!
//! # Run-granular decode
//!
//! Address decoding is the other per-burst cost, and it dominates once
//! replay is batched. The decoder therefore splits each request into
//! **runs** — maximal groups of consecutive bursts whose start
//! addresses fall inside one contiguous `(unit, bank, row)` span, as
//! advertised by [`AddressMapping::contiguous_run_bytes`] — and calls
//! [`AddressMapping::decode`] once per run. Burst boundaries within a
//! run are pure arithmetic (`t.burst_bytes`-aligned, like
//! [`for_each_burst_tagged`]), so the concatenated runs reproduce the cycle
//! engine's per-unit burst sequence exactly: same bursts, same
//! locations, same order. The replay then consumes runs whole in the
//! streak scan and only rematerializes individual bursts on the slow
//! path.
//!
//! [`AddressMapping::contiguous_run_bytes`]: crate::address::AddressMapping::contiguous_run_bytes
//! [`AddressMapping::decode`]: crate::address::AddressMapping::decode

use crate::address::AddressMapping;
use crate::config::MemoryConfig;
use crate::engine::{
    collect_timeline, finish_run, Burst, EngineRun, LatencyHistogram, Op, UnitEngine,
};
use crate::timing::DramTiming;
use crate::trace::TraceBuffer;
use mealib_types::PhysAddr;

/// One unit's pre-decoded stream of same-row runs in SoA layout. The
/// streak scan reads `bank`/`row`/`n`, the batch tally reads
/// `head`/`total`/`write`, and only the slow path reconstructs
/// individual bursts (via `col0` + burst arithmetic).
#[derive(Debug, Clone, Default)]
struct UnitStream {
    /// `DramTiming::burst_bytes`, carried so `cum`/`burst` stay
    /// self-contained for `par_map`.
    burst_bytes: u64,
    bank: Vec<u32>,
    row: Vec<u64>,
    /// Column byte offset of the run's first burst.
    col0: Vec<u64>,
    /// Bytes of the run's first burst (it may start mid-burst).
    head: Vec<u64>,
    /// Total bytes across the run's bursts.
    total: Vec<u64>,
    /// Number of bursts in the run.
    n: Vec<u32>,
    write: Vec<bool>,
}

impl UnitStream {
    fn runs(&self) -> usize {
        self.bank.len()
    }

    fn reserve(&mut self, runs: usize) {
        self.bank.reserve(runs);
        self.row.reserve(runs);
        self.col0.reserve(runs);
        self.head.reserve(runs);
        self.total.reserve(runs);
        self.n.reserve(runs);
        self.write.reserve(runs);
    }

    /// Byte offset (within the run) where burst `j` starts; `j == n`
    /// yields the run's total length.
    fn cum(&self, r: usize, j: u32) -> u64 {
        if j == 0 {
            0
        } else {
            self.total[r].min(self.head[r] + (u64::from(j) - 1) * self.burst_bytes)
        }
    }

    /// Reconstructs burst `j` of run `r`, exactly as [`for_each_burst_tagged`]
    /// would have produced it.
    fn burst(&self, r: usize, j: u32, unit: usize) -> Burst {
        let start = self.cum(r, j);
        Burst {
            loc: crate::address::Location {
                unit,
                bank: self.bank[r] as usize,
                row: self.row[r],
                col_byte: self.col0[r] + start,
            },
            bytes: self.cum(r, j + 1) - start,
            op: if self.write[r] { Op::Write } else { Op::Read },
            tenant: 0,
        }
    }
}

/// The fast replay: serial when `jobs <= 1`, vault-sharded otherwise.
///
/// Expects a pre-validated `config` and a pre-normalized `jobs`, like
/// [`crate::engine::run_cycle`]. Profiled runs charge every burst to a
/// cycle window individually, which is exactly the per-burst accounting
/// the streak batch elides — so `profile: Some(_)` delegates to the
/// cycle path (results are identical either way; only the unprofiled
/// replay is the throughput hot path).
pub(crate) fn run_fast(
    config: &MemoryConfig,
    trace: &TraceBuffer,
    jobs: usize,
    profile: Option<u64>,
    tags: crate::engine::Tenancy<'_>,
) -> EngineRun {
    if tags.is_some() {
        // Tenant attribution charges every burst individually — the same
        // per-burst accounting profiling forces — and needs the
        // request→tag association the run decode erases. The tagged
        // replay therefore shares the cycle path outright and is
        // bit-exact by construction.
        return crate::engine::run_cycle(config, trace, jobs, profile, tags);
    }
    if let Some(w) = profile {
        let mut units: Vec<UnitEngine> = decode_streams(config, trace)
            .iter()
            .map(|stream| {
                let mut unit = UnitEngine::with_timeline(config.mapping.banks_per_unit(), w);
                for r in 0..stream.runs() {
                    for j in 0..stream.n[r] {
                        unit.burst(&config.timing, &stream.burst(r, j, 0));
                    }
                }
                unit
            })
            .collect();
        let timeline = collect_timeline(w, &mut units);
        let mut run = finish_run(config, units);
        run.timeline = Some(timeline);
        return run;
    }
    let streams = decode_streams(config, trace);
    let t = &config.timing;
    let banks = config.mapping.banks_per_unit();
    let units = if jobs <= 1 {
        streams
            .iter()
            .map(|stream| replay_unit(t, banks, stream))
            .collect()
    } else {
        mealib_types::par_map(&streams, jobs, |stream| replay_unit(t, banks, stream))
    };
    finish_run(config, units)
}

/// Splits the trace into same-row runs and routes each to its unit's
/// stream. Decoding happens once per run (or once per aligned stretch
/// of whole lines on the bulk path); the burst split inside a run is
/// the same `t.burst_bytes`-aligned arithmetic as [`for_each_burst_tagged`],
/// so per-unit burst order is preserved exactly.
fn decode_streams(config: &MemoryConfig, trace: &TraceBuffer) -> Vec<UnitStream> {
    let t = &config.timing;
    let mapping = &config.mapping;
    let mut streams: Vec<UnitStream> = vec![
        UnitStream {
            burst_bytes: t.burst_bytes,
            ..UnitStream::default()
        };
        mapping.units()
    ];
    // Bulk-path eligibility: within one super-line (`units *
    // line_bytes`, line-aligned), every line has the same
    // `within_unit` offset — hence the same bank, row, and column —
    // and the lines land on `units` distinct units (the XOR unit fold
    // keys on `line / units`, constant across the super-line, and is a
    // permutation for power-of-two unit counts). One decode therefore
    // covers a whole aligned stretch of lines; only the unit index
    // varies, by the same fold `decode` applies.
    let bulk = match *mapping {
        AddressMapping::Interleaved {
            units, line_bytes, ..
        } if units > 1 && line_bytes % t.burst_bytes == 0 => {
            Some((units as u64, line_bytes, false))
        }
        AddressMapping::XorInterleaved {
            units, line_bytes, ..
        } if units > 1 && units.is_power_of_two() && line_bytes % t.burst_bytes == 0 => {
            Some((units as u64, line_bytes, true))
        }
        _ => None,
    };
    // Upper-bound-ish run estimate: one run per decode granule of bulk
    // traffic plus one per request (scalar gathers), split across units.
    let units_n = streams.len() as u64;
    let gran = bulk.map_or(t.burst_bytes, |(_, line_bytes, _)| line_bytes);
    let est = (trace.total_bytes() / gran / units_n + trace.len() as u64 / units_n + 4) as usize;
    for s in streams.iter_mut() {
        s.reserve(est);
    }
    let (addrs, bytes, ops) = (trace.addrs(), trace.bytes(), trace.ops());
    for i in 0..trace.len() {
        let mut remaining = bytes[i];
        let mut addr = addrs[i];
        let write = ops[i] == Op::Write;
        while remaining > 0 {
            if let Some((units, line_bytes, xor)) = bulk {
                if addr % line_bytes == 0 && remaining >= line_bytes {
                    let line = addr / line_bytes;
                    let j0 = line % units;
                    let m = (remaining / line_bytes).min(units - j0);
                    let loc = mapping.decode(PhysAddr::new(addr));
                    let nb = (line_bytes / t.burst_bytes) as u32;
                    for j in 0..m {
                        // The unit fold from `decode`, applied to line
                        // `j0 + j` (same hash, same super-line).
                        let unit = if xor {
                            let hash = line / units;
                            (((j0 + j) ^ hash) % units) as usize
                        } else {
                            (j0 + j) as usize
                        };
                        push_run(
                            &mut streams[unit],
                            t.burst_bytes,
                            loc.bank as u32,
                            loc.row,
                            loc.col_byte,
                            t.burst_bytes,
                            line_bytes,
                            nb,
                            write,
                        );
                    }
                    addr += m * line_bytes;
                    remaining -= m * line_bytes;
                    continue;
                }
            }
            let loc = mapping.decode(PhysAddr::new(addr));
            // First burst: up to the next burst-aligned boundary. It is
            // attributed wholly to `loc` even if it extends past the
            // span — exactly what the per-burst decode does, which
            // decodes each burst at its *start* address.
            let head = (t.burst_bytes - addr % t.burst_bytes).min(remaining);
            // Further bursts join the run while their start addresses
            // stay inside the span (and inside the request). A request
            // that ends inside its first burst needs no span at all —
            // the common case for scalar gathers.
            let extra = if remaining > head {
                let reach = mapping
                    .contiguous_run_bytes(PhysAddr::new(addr))
                    .min(remaining);
                if reach > head {
                    (reach - head).div_ceil(t.burst_bytes)
                } else {
                    0
                }
            } else {
                0
            };
            let total = remaining.min(head + extra * t.burst_bytes);
            let s = &mut streams[loc.unit];
            s.bank.push(loc.bank as u32);
            s.row.push(loc.row);
            s.col0.push(loc.col_byte);
            s.head.push(head);
            s.total.push(total);
            s.n.push(1 + extra as u32);
            s.write.push(write);
            addr += total;
            remaining -= total;
        }
    }
    streams
}

/// Appends a run, coalescing with the stream's tail when the result is
/// burst-arithmetic-equivalent to keeping them separate: same bank,
/// row, and op; column-contiguous; the tail's last burst complete; and
/// the appended run starting burst-aligned. (The bulk decode path
/// always satisfies the alignment conditions — its runs are whole
/// lines — so pure streams coalesce into row-length runs.)
#[allow(clippy::too_many_arguments)]
fn push_run(
    s: &mut UnitStream,
    burst_bytes: u64,
    bank: u32,
    row: u64,
    col0: u64,
    head: u64,
    total: u64,
    n: u32,
    write: bool,
) {
    if let Some(last) = s.runs().checked_sub(1) {
        if s.bank[last] == bank
            && s.row[last] == row
            && s.write[last] == write
            && s.col0[last] + s.total[last] == col0
            && s.total[last] == s.head[last] + u64::from(s.n[last] - 1) * burst_bytes
            && head == burst_bytes
        {
            s.total[last] += total;
            s.n[last] += n;
            return;
        }
    }
    s.bank.push(bank);
    s.row.push(row);
    s.col0.push(col0);
    s.head.push(head);
    s.total.push(total);
    s.n.push(n);
    s.write.push(write);
}

/// Replays one unit's run stream with streak batching. The cursor
/// `(r, j)` points at burst `j` of run `r`: the slow path advances it
/// one burst at a time, the streak batch whole (or partial, at a
/// refresh cap) runs at a time.
fn replay_unit(t: &DramTiming, banks: usize, stream: &UnitStream) -> UnitEngine {
    let mut u = UnitEngine::new(banks);
    let runs = stream.runs();
    let t_burst = t.t_burst;
    let hit_bucket = LatencyHistogram::bucket_of(t_burst);
    // Per-bank completion cycle of the bank's last burst in the current
    // streak; `seen[bank] == generation` marks validity. Reused across
    // streaks without clearing via the generation counter.
    let mut last_done = vec![0u64; banks];
    let mut seen = vec![0u64; banks];
    let mut generation = 0u64;
    let mut r = 0usize;
    let mut j = 0u32;
    while r < runs {
        // A refresh owed now forces the slow path, which pays it.
        let next_refresh = (u.refreshes_done + 1) * t.t_refi;
        if u.bus_free >= next_refresh {
            u.burst_core(t, &stream.burst(r, j, 0));
            j += 1;
            if j == stream.n[r] {
                r += 1;
                j = 0;
            }
            continue;
        }
        // Longest streak of bus-limited row hits before the refresh
        // epoch: the burst at streak offset `c` sees the bus at
        // `bus_free + c·t_burst`, so the refresh caps the streak at
        // `ceil((next_refresh - bus_free) / t_burst)` bursts.
        generation += 1;
        let k_max = (next_refresh - u.bus_free).div_ceil(t_burst);
        let mut count = 0u64;
        let (mut rr, mut jj) = (r, j);
        let mut bytes_read = 0u64;
        let mut bytes_written = 0u64;
        let mut write_bursts = 0u64;
        while count < k_max && rr < runs {
            let bank = stream.bank[rr] as usize;
            let state = &u.banks[bank];
            if state.open_row != Some(stream.row[rr]) {
                break;
            }
            if seen[bank] != generation {
                // First touch this streak: the stored cmd_ready is
                // current. (Later touches need no check — their
                // cmd_ready becomes `done - t_cl` of an earlier streak
                // burst, which trails the bus pointer by construction.)
                if state.cmd_ready + t.t_cl > u.bus_free + count * t_burst {
                    break;
                }
                seen[bank] = generation;
            }
            // Accept the run's remaining bursts, clipped at the
            // refresh cap; a clipped run leaves the cursor mid-run.
            let avail = u64::from(stream.n[rr] - jj);
            let take = avail.min(k_max - count);
            let b = if jj == 0 && take == avail {
                stream.total[rr]
            } else {
                stream.cum(rr, jj + take as u32) - stream.cum(rr, jj)
            };
            if stream.write[rr] {
                bytes_written += b;
                write_bursts += take;
            } else {
                bytes_read += b;
            }
            count += take;
            last_done[bank] = u.bus_free + count * t_burst;
            if take == avail {
                rr += 1;
                jj = 0;
            } else {
                jj += take as u32;
            }
        }
        if count == 0 {
            // Not bus-limited (conflict, idle bank, or cold column
            // path): one exact step through the shared slow path.
            u.burst_core(t, &stream.burst(r, j, 0));
            j += 1;
            if j == stream.n[r] {
                r += 1;
                j = 0;
            }
            continue;
        }
        // Closed-form batch update for `count` bus-limited bursts —
        // each line mirrors what burst_core's hit arm would have done
        // `count` times over.
        u.bytes_read += bytes_read;
        u.bytes_written += bytes_written;
        u.vault.read_bursts += count - write_bursts;
        u.vault.write_bursts += write_bursts;
        u.vault.row_hits += count;
        u.latencies.record_n(hit_bucket, count);
        u.bus_free += count * t_burst;
        u.issued_at = u.bus_free;
        for (bank, state) in u.banks.iter_mut().enumerate() {
            if seen[bank] == generation {
                state.cmd_ready = last_done[bank] - t.t_cl;
            }
        }
        r = rr;
        j = jj;
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{
        for_each_burst_tagged, sequential_trace, simulate, strided_trace, EngineKind, Request,
        SimOptions,
    };

    fn assert_engines_agree(config: &MemoryConfig, trace: &TraceBuffer, what: &str) {
        let cycle = simulate(config, trace, &SimOptions::cycle()).unwrap();
        let fast = simulate(config, trace, &SimOptions::fast()).unwrap();
        assert_eq!(fast, cycle, "{what}");
        // DualCheck performs the same comparison internally.
        let dual = simulate(config, trace, &SimOptions::dual_check()).unwrap();
        assert_eq!(dual, cycle, "{what} (dual)");
    }

    #[test]
    fn run_decode_reproduces_the_per_burst_decode() {
        // The run decomposition must concatenate back into exactly the
        // cycle engine's per-unit burst sequence: same locations, same
        // byte counts, same order.
        let mut xor_stack = MemoryConfig::hmc_stack();
        xor_stack.mapping = AddressMapping::XorInterleaved {
            units: 32,
            banks_per_unit: 8,
            row_bytes: 4096,
            line_bytes: 256,
        };
        for config in [
            MemoryConfig::hmc_stack(),
            MemoryConfig::ddr_dual_channel(),
            MemoryConfig::msas_dram(),
            xor_stack,
        ] {
            let mut trace = sequential_trace(0, 1 << 20, 256, Op::Read);
            trace.extend(strided_trace(1 << 22, 8192, 64, 512, Op::Write).iter());
            trace.push(Request::read(30, 100));
            trace.push(Request::read(5, 1));
            trace.push(Request::write(4093, 10)); // straddles a row edge
            let mut expected: Vec<Vec<Burst>> = vec![Vec::new(); config.mapping.units()];
            for_each_burst_tagged(&config.timing, &config.mapping, &trace, None, |b| {
                expected[b.loc.unit].push(b)
            });
            let streams = decode_streams(&config, &trace);
            for (unit, stream) in streams.iter().enumerate() {
                let mut got = Vec::new();
                for r in 0..stream.runs() {
                    for j in 0..stream.n[r] {
                        got.push(stream.burst(r, j, unit));
                    }
                }
                assert_eq!(
                    got.len(),
                    expected[unit].len(),
                    "{}: unit {unit}",
                    config.name
                );
                for (g, e) in got.iter().zip(&expected[unit]) {
                    assert_eq!(g.loc, e.loc, "{}: unit {unit}", config.name);
                    assert_eq!(g.bytes, e.bytes, "{}: unit {unit}", config.name);
                    assert_eq!(g.op, e.op, "{}: unit {unit}", config.name);
                }
            }
        }
    }

    #[test]
    fn fast_engine_matches_cycle_on_preset_workload_shapes() {
        for config in [
            MemoryConfig::hmc_stack(),
            MemoryConfig::ddr_dual_channel(),
            MemoryConfig::msas_dram(),
            MemoryConfig::hmc_stack_gen1(),
        ] {
            let mut trace = sequential_trace(0, 4 << 20, 64, Op::Read);
            trace.extend(strided_trace(1 << 22, 8192, 64, 2048, Op::Write).iter());
            trace.extend(strided_trace(0, 8192 * 8, 64, 1024, Op::Read).iter());
            trace.push(Request::read(30, 100));
            trace.push(Request::read(0, 0));
            assert_engines_agree(&config, &trace, &config.name);
        }
    }

    #[test]
    fn fast_engine_matches_cycle_across_refresh_epochs() {
        // A stream long enough to cross many tREFI boundaries: every
        // epoch ends a streak and forces the slow path once.
        let c = MemoryConfig::ddr_dual_channel();
        let trace = sequential_trace(0, 32 << 20, 64, Op::Read);
        assert_engines_agree(&c, &trace, "32 MiB stream");
    }

    #[test]
    fn fast_engine_handles_empty_and_degenerate_traces() {
        let c = MemoryConfig::hmc_stack();
        assert_engines_agree(&c, &TraceBuffer::new(), "empty");
        let zeros = TraceBuffer::from(&[Request::read(0, 0), Request::write(64, 0)]);
        assert_engines_agree(&c, &zeros, "zero-length requests");
        let one = TraceBuffer::from(&[Request::write(12345, 1)]);
        assert_engines_agree(&c, &one, "single byte");
    }

    #[test]
    fn fast_engine_is_jobs_invariant() {
        let c = MemoryConfig::hmc_stack();
        let trace = sequential_trace(0, 2 << 20, 256, Op::Read);
        let serial = simulate(&c, &trace, &SimOptions::fast()).unwrap();
        for jobs in [0usize, 2, 4, 8] {
            let parallel = simulate(&c, &trace, &SimOptions::fast().jobs(jobs)).unwrap();
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn fast_profiled_run_equals_cycle_profiled_run() {
        let c = MemoryConfig::ddr_dual_channel();
        let mut trace = sequential_trace(0, 1 << 20, 64, Op::Read);
        trace.extend(strided_trace(1 << 22, 8192, 64, 1024, Op::Write).iter());
        let cycle = simulate(&c, &trace, &SimOptions::cycle().profile(1024)).unwrap();
        let fast = simulate(&c, &trace, &SimOptions::fast().profile(1024)).unwrap();
        assert_eq!(fast, cycle);
        assert!(fast.timeline.is_some());
    }

    #[test]
    fn streaks_actually_batch_on_sequential_streams() {
        // White-box: on a pure sequential stream the fast path must do
        // far fewer slow steps than bursts — here via the row-hit count
        // all landing in the single t_burst latency bucket.
        let c = MemoryConfig::hmc_stack();
        let trace = sequential_trace(0, 1 << 20, 256, Op::Read);
        let run = simulate(&c, &trace, &SimOptions::fast()).unwrap();
        let bucket = LatencyHistogram::bucket_of(c.timing.t_burst);
        assert!(run.stats.row_hits > 0);
        assert!(run.latencies.buckets()[bucket] >= run.stats.row_hits);
    }

    #[test]
    fn dual_check_kind_is_the_default_validation_mode() {
        let opts = SimOptions::dual_check();
        assert_eq!(opts.engine, EngineKind::DualCheck);
        assert_eq!(SimOptions::fast().engine, EngineKind::Fast);
        assert_eq!(SimOptions::cycle().engine, EngineKind::Cycle);
        assert_eq!(SimOptions::default().engine, EngineKind::Cycle);
    }
}
