//! Cycle-level DRAM and 3D-stacked memory (HMC-like) simulator.
//!
//! This crate stands in for the paper's "in-house cycle-accurate 3D-stacked
//! DRAM simulator (where the basic parameters of 3D-stacked DRAM are
//! obtained from CACTI-3DD)" (§4.2). It provides:
//!
//! * [`timing::DramTiming`] / [`energy::DramEnergy`] — device parameters
//!   with presets for DDR3-1600 DIMMs and an HMC-like stacked device;
//! * [`address::AddressMapping`] — physical-address decoding, including
//!   the channel-interleaved and *asymmetric* modes the paper manipulates
//!   to carve a contiguous DIMM out of a commodity system (§4.2);
//! * [`engine`] — a dual-engine bank/vault/bus simulator behind one
//!   [`engine::simulate`] entry point: a cycle-accurate oracle and a
//!   bit-exact event-driven epoch-skipping fast engine, replaying SoA
//!   [`trace::TraceBuffer`] request traces;
//! * [`pattern::AccessPattern`] + [`analytic`] — closed-form estimates of
//!   the same quantities for the regular streams accelerators generate,
//!   validated against the cycle engine in tests;
//! * [`stats::TraceStats`] — achieved bandwidth, row-buffer behaviour,
//!   and energy for either path.
//!
//! # Examples
//!
//! ```
//! use mealib_memsim::config::MemoryConfig;
//! use mealib_memsim::pattern::AccessPattern;
//! use mealib_memsim::analytic::try_estimate;
//!
//! let hmc = MemoryConfig::hmc_stack();
//! let stats = try_estimate(&hmc, &AccessPattern::sequential_read(1 << 30)).unwrap();
//! // A full-stack sequential stream should come close to peak bandwidth.
//! assert!(stats.achieved_bandwidth().as_gb_per_sec() > 300.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod analytic;
pub mod bounds;
pub mod config;
pub mod energy;
pub mod engine;
mod fast;
pub mod pattern;
pub mod stats;
pub mod tenancy;
pub mod timing;
pub mod trace;
pub mod vault;

pub use address::AddressMapping;
pub use config::MemoryConfig;
pub use engine::{
    simulate, simulate_tagged, EngineKind, EngineRun, LatencyHistogram, Op, Request, SimError,
    SimOptions, TenantStats, VaultStats,
};
pub use pattern::AccessPattern;
pub use stats::TraceStats;
pub use tenancy::{interleave_tenants, simulate_tenants, TenantStream};
pub use trace::TraceBuffer;
pub use vault::{RequestSource, VaultController};
