//! Abstract access patterns.
//!
//! Accelerators operating on gigabyte datasets would generate tens of
//! millions of trace entries; instead they describe their traffic as an
//! [`AccessPattern`] that the [`crate::analytic`] model prices in closed
//! form using the *same* timing constants as the cycle engine. Tests in
//! this crate cross-validate the two paths on traces small enough to
//! replay.

/// A summarized memory-access pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPattern {
    /// A unit-stride stream reading and/or writing contiguous data.
    Sequential {
        /// Bytes read.
        read: u64,
        /// Bytes written.
        written: u64,
    },
    /// `count` accesses of `elem_bytes` each, `stride` bytes apart.
    Strided {
        /// Distance between consecutive accesses, bytes.
        stride: u64,
        /// Useful bytes per access.
        elem_bytes: u64,
        /// Number of accesses.
        count: u64,
        /// `true` if the accesses are writes.
        write: bool,
    },
    /// `count` accesses of `elem_bytes` each, uniformly distributed over
    /// a `region_bytes` working set (the SPMV gather pattern).
    Random {
        /// Useful bytes per access.
        elem_bytes: u64,
        /// Number of accesses.
        count: u64,
        /// Size of the region the accesses fall in.
        region_bytes: u64,
    },
    /// Patterns executed one after another (e.g. a pass over the input
    /// followed by a pass over the output).
    Then(Vec<AccessPattern>),
}

impl AccessPattern {
    /// A contiguous read of `bytes`.
    pub fn sequential_read(bytes: u64) -> Self {
        AccessPattern::Sequential {
            read: bytes,
            written: 0,
        }
    }

    /// A contiguous write of `bytes`.
    pub fn sequential_write(bytes: u64) -> Self {
        AccessPattern::Sequential {
            read: 0,
            written: bytes,
        }
    }

    /// A contiguous read of `read` bytes interleaved with a contiguous
    /// write of `written` bytes (the AXPY shape).
    pub fn sequential_rw(read: u64, written: u64) -> Self {
        AccessPattern::Sequential { read, written }
    }

    /// Useful bytes this pattern moves (reads + writes), ignoring
    /// fetch-granularity waste.
    pub fn useful_bytes(&self) -> u64 {
        match self {
            AccessPattern::Sequential { read, written } => read + written,
            AccessPattern::Strided {
                elem_bytes, count, ..
            }
            | AccessPattern::Random {
                elem_bytes, count, ..
            } => elem_bytes * count,
            AccessPattern::Then(parts) => parts.iter().map(|p| p.useful_bytes()).sum(),
        }
    }

    /// Useful bytes read (as opposed to written).
    pub fn useful_read_bytes(&self) -> u64 {
        match self {
            AccessPattern::Sequential { read, .. } => *read,
            AccessPattern::Strided {
                elem_bytes,
                count,
                write,
                ..
            } => {
                if *write {
                    0
                } else {
                    elem_bytes * count
                }
            }
            AccessPattern::Random {
                elem_bytes, count, ..
            } => elem_bytes * count,
            AccessPattern::Then(parts) => parts.iter().map(|p| p.useful_read_bytes()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn useful_bytes_accounting() {
        assert_eq!(AccessPattern::sequential_read(100).useful_bytes(), 100);
        assert_eq!(AccessPattern::sequential_rw(60, 40).useful_bytes(), 100);
        let strided = AccessPattern::Strided {
            stride: 4096,
            elem_bytes: 4,
            count: 10,
            write: false,
        };
        assert_eq!(strided.useful_bytes(), 40);
        assert_eq!(strided.useful_read_bytes(), 40);
        let w = AccessPattern::Strided {
            stride: 64,
            elem_bytes: 8,
            count: 5,
            write: true,
        };
        assert_eq!(w.useful_read_bytes(), 0);
        let then = AccessPattern::Then(vec![
            AccessPattern::sequential_read(10),
            AccessPattern::sequential_write(20),
        ]);
        assert_eq!(then.useful_bytes(), 30);
        assert_eq!(then.useful_read_bytes(), 10);
    }
}
