//! Result statistics shared by the cycle engine and the analytic model.

use core::fmt;

use mealib_obs::{Counter, Obs};
use mealib_types::{Bytes, BytesPerSec, Cycles, Joules, Seconds};

/// Outcome of replaying (or estimating) a memory trace on one device.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceStats {
    /// Wall-clock time the device was busy.
    pub elapsed: Seconds,
    /// Device cycles the trace occupied (command clock).
    pub cycles: Cycles,
    /// Bytes read from the array.
    pub bytes_read: Bytes,
    /// Bytes written to the array.
    pub bytes_written: Bytes,
    /// Row activations issued.
    pub activations: u64,
    /// Row precharges issued (explicit PRE on conflicts plus the
    /// implicit closes performed by refresh).
    pub precharges: u64,
    /// Column accesses that hit an open row.
    pub row_hits: u64,
    /// Column accesses that required opening a row.
    pub row_misses: u64,
    /// Per-bank refresh operations performed during the trace.
    pub refreshes: u64,
    /// Total energy consumed (array + transport + background).
    pub energy: Joules,
}

impl TraceStats {
    /// Total bytes moved in either direction.
    pub fn bytes_moved(&self) -> Bytes {
        self.bytes_read + self.bytes_written
    }

    /// Achieved bandwidth over the busy interval.
    pub fn achieved_bandwidth(&self) -> BytesPerSec {
        self.bytes_moved().per(self.elapsed)
    }

    /// Fraction of column accesses that hit an open row, or `None` when
    /// no accesses were made.
    pub fn row_hit_rate(&self) -> Option<f64> {
        let total = self.row_hits + self.row_misses;
        (total > 0).then(|| self.row_hits as f64 / total as f64)
    }

    /// Average power over the busy interval.
    pub fn average_power(&self) -> mealib_types::Watts {
        self.energy.over(self.elapsed)
    }

    /// Merges the stats of two devices operating *in parallel*: byte and
    /// event counts add, elapsed time is the maximum.
    pub fn merge_parallel(&self, other: &TraceStats) -> TraceStats {
        TraceStats {
            elapsed: self.elapsed.max(other.elapsed),
            cycles: self.cycles.max(other.cycles),
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            activations: self.activations + other.activations,
            precharges: self.precharges + other.precharges,
            row_hits: self.row_hits + other.row_hits,
            row_misses: self.row_misses + other.row_misses,
            refreshes: self.refreshes + other.refreshes,
            energy: self.energy + other.energy,
        }
    }

    /// Merges the stats of two phases executed *back to back*: everything
    /// adds, including elapsed time.
    pub fn merge_sequential(&self, other: &TraceStats) -> TraceStats {
        TraceStats {
            elapsed: self.elapsed + other.elapsed,
            cycles: self.cycles + other.cycles,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            activations: self.activations + other.activations,
            precharges: self.precharges + other.precharges,
            row_hits: self.row_hits + other.row_hits,
            row_misses: self.row_misses + other.row_misses,
            refreshes: self.refreshes + other.refreshes,
            energy: self.energy + other.energy,
        }
    }

    /// Records this trace's aggregate DRAM event counts into an
    /// observability handle. A no-op when recording is off.
    pub fn record_into(&self, obs: &Obs) {
        if !obs.enabled() {
            return;
        }
        obs.count(Counter::DramAct, self.activations);
        obs.count(Counter::DramPre, self.precharges);
        obs.count(Counter::DramRdBytes, self.bytes_read.get());
        obs.count(Counter::DramWrBytes, self.bytes_written.get());
        obs.count(Counter::DramRowHit, self.row_hits);
        obs.count(Counter::DramRowMiss, self.row_misses);
        obs.count(Counter::DramRefresh, self.refreshes);
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in {} ({:.2} GB/s, hit-rate {}, {})",
            self.bytes_moved(),
            self.elapsed,
            self.achieved_bandwidth().as_gb_per_sec(),
            self.row_hit_rate()
                .map_or_else(|| "n/a".to_string(), |r| format!("{:.1}%", r * 100.0)),
            self.energy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, read: u64, hits: u64, misses: u64) -> TraceStats {
        TraceStats {
            elapsed: Seconds::new(t),
            cycles: Cycles::new((t * 1e9) as u64),
            bytes_read: Bytes::new(read),
            bytes_written: Bytes::ZERO,
            activations: misses,
            precharges: misses,
            row_hits: hits,
            row_misses: misses,
            refreshes: 0,
            energy: Joules::new(t * 2.0),
        }
    }

    #[test]
    fn bandwidth_and_hit_rate() {
        let s = sample(2.0, 4 << 30, 3, 1);
        assert!((s.achieved_bandwidth().as_gib_per_sec() - 2.0).abs() < 1e-9);
        assert_eq!(s.row_hit_rate(), Some(0.75));
        assert_eq!(s.average_power(), mealib_types::Watts::new(2.0));
    }

    #[test]
    fn empty_stats_have_no_hit_rate() {
        assert_eq!(TraceStats::default().row_hit_rate(), None);
    }

    #[test]
    fn parallel_merge_takes_max_time_and_sums_bytes() {
        let a = sample(1.0, 100, 1, 1);
        let b = sample(3.0, 200, 2, 2);
        let m = a.merge_parallel(&b);
        assert_eq!(m.elapsed, Seconds::new(3.0));
        assert_eq!(m.bytes_read.get(), 300);
        assert_eq!(m.row_hits, 3);
        assert_eq!(m.energy, Joules::new(8.0));
    }

    #[test]
    fn sequential_merge_sums_time() {
        let a = sample(1.0, 100, 0, 0);
        let b = sample(3.0, 200, 0, 0);
        let m = a.merge_sequential(&b);
        assert_eq!(m.elapsed, Seconds::new(4.0));
        assert_eq!(m.bytes_moved().get(), 300);
    }
}
