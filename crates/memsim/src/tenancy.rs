//! Multi-tenant trace interleaving for the interference oracle.
//!
//! A session set is N per-tenant request streams sharing one device.
//! [`interleave_tenants`] merges them into a single [`TraceBuffer`]
//! with a tenant tag per request, deterministically: tenant `i`'s
//! request `k` carries the merge key `arrival_i + k` (request slots),
//! streams drain in key order, and ties break toward the lower tenant
//! index. The arrival offset models phasing — a tenant arriving at
//! slot 1000 has its first request sequenced after the first 1000
//! slots of earlier tenants — while preserving each tenant's internal
//! program order exactly.
//!
//! The merged trace replays through [`crate::engine::simulate_tagged`],
//! which attributes bytes, bursts, activations, completion time, and
//! energy back to each tenant. That per-tenant measurement is the
//! ground truth the `mealib-verify` interference certifier (MEA3xx) is
//! proven sound against.

use crate::config::MemoryConfig;
use crate::engine::{simulate_tagged, EngineRun, SimError, SimOptions, TenantStats};
use crate::trace::TraceBuffer;

/// One tenant's request stream plus its arrival offset in request
/// slots (merge-key units, not cycles: the engine replays the merged
/// trace back to back, so arrival shapes *ordering*, not idle gaps).
#[derive(Debug, Clone, Default)]
pub struct TenantStream {
    /// The tenant's trace, in its own program order.
    pub trace: TraceBuffer,
    /// Merge-key offset of the tenant's first request.
    pub arrival: u64,
}

impl TenantStream {
    /// A stream arriving at slot 0.
    pub fn new(trace: TraceBuffer) -> Self {
        Self { trace, arrival: 0 }
    }

    /// Sets the arrival offset.
    pub fn arriving_at(mut self, arrival: u64) -> Self {
        self.arrival = arrival;
        self
    }
}

/// Deterministically merges tenant streams into one tagged trace.
///
/// Returns the merged trace and the parallel tag column (`tags[i]` is
/// the tenant index owning merged request `i`). Each tenant's requests
/// stay in program order; across tenants, request `k` of tenant `i`
/// sorts by the key `arrival_i.saturating_add(k)`.
///
/// **Tie-break order (part of the public contract):** when two streams'
/// current requests carry the same merge key, the stream with the
/// *lower tenant index* drains first. Saturation makes this reachable
/// even for distinct arrivals — every key at or above `u64::MAX` clamps
/// to `u64::MAX`, so `u64::MAX`-adjacent arrivals collapse onto one
/// key; once a stream's keys stop advancing the tie-break takes over
/// and the clamped streams drain whole in tenant-index order. The
/// offset arithmetic never wraps: a huge `arrival` plus a long trace
/// saturates instead of overflowing back to the front of the schedule.
///
/// The merge is a pure function of its input, so static analysis and
/// the engine can both consume the same interleaving.
///
/// # Panics
///
/// Panics when more than `u16::MAX + 1` streams are supplied (the tag
/// column is `u16`).
pub fn interleave_tenants(streams: &[TenantStream]) -> (TraceBuffer, Vec<u16>) {
    assert!(
        streams.len() <= u16::MAX as usize + 1,
        "tenant count {} exceeds the u16 tag space",
        streams.len()
    );
    let total: usize = streams.iter().map(|s| s.trace.len()).sum();
    let mut merged = TraceBuffer::with_capacity(total);
    let mut tags = Vec::with_capacity(total);
    let mut cursor = vec![0usize; streams.len()];
    for _ in 0..total {
        let mut best: Option<(u64, usize)> = None;
        for (i, s) in streams.iter().enumerate() {
            if cursor[i] < s.trace.len() {
                // Saturating: `u64::MAX`-adjacent arrivals clamp onto
                // the final merge key rather than wrapping to the front
                // of the schedule.
                let key = s.arrival.saturating_add(cursor[i] as u64);
                // Strict `<` with ascending `i`: ties keep the lower
                // tenant index.
                if best.is_none_or(|(k, _)| key < k) {
                    best = Some((key, i));
                }
            }
        }
        let (_, i) = best.expect("one stream still has requests");
        merged.push(streams[i].trace.get(cursor[i]).expect("cursor in bounds"));
        tags.push(i as u16);
        cursor[i] += 1;
    }
    (merged, tags)
}

/// Interleaves `streams` and replays the merged trace with per-tenant
/// attribution — [`interleave_tenants`] + [`simulate_tagged`] in one
/// call. The returned [`EngineRun::tenants`] always has exactly
/// `streams.len()` entries (a tenant with an empty trace reports a
/// default [`TenantStats`]).
///
/// # Errors
///
/// Everything [`crate::engine::simulate`] reports.
pub fn simulate_tenants(
    config: &MemoryConfig,
    streams: &[TenantStream],
    opts: &SimOptions,
) -> Result<EngineRun, SimError> {
    let (trace, tags) = interleave_tenants(streams);
    let mut run = simulate_tagged(config, &trace, &tags, opts)?;
    run.tenants.resize(streams.len(), TenantStats::default());
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{sequential_trace, simulate, strided_trace, Op, Request};

    fn streams() -> Vec<TenantStream> {
        vec![
            TenantStream::new(sequential_trace(0, 1 << 16, 64, Op::Read)),
            TenantStream::new(strided_trace(1 << 22, 8192, 64, 512, Op::Write)).arriving_at(100),
            TenantStream::new(sequential_trace(1 << 24, 1 << 15, 64, Op::Read)).arriving_at(700),
        ]
    }

    #[test]
    fn interleave_is_deterministic_and_order_preserving() {
        let s = streams();
        let (a, tags_a) = interleave_tenants(&s);
        let (b, tags_b) = interleave_tenants(&s);
        assert_eq!(a, b);
        assert_eq!(tags_a, tags_b);
        assert_eq!(a.len(), s.iter().map(|t| t.trace.len()).sum::<usize>());
        // Per-tenant subsequences are each tenant's trace verbatim.
        for (i, stream) in s.iter().enumerate() {
            let mine: Vec<Request> = a
                .iter()
                .zip(&tags_a)
                .filter(|(_, &t)| t as usize == i)
                .map(|(r, _)| r)
                .collect();
            let orig: Vec<Request> = stream.trace.iter().collect();
            assert_eq!(mine, orig, "tenant {i}");
        }
        // Arrival phasing: tenant 2 arrives at slot 700, after tenant
        // 1's 512 writes have fully drained, so every tag-2 request
        // sorts after every tag-1 request.
        let first_2 = tags_a.iter().position(|&t| t == 2).unwrap();
        let last_1 = tags_a.iter().rposition(|&t| t == 1).unwrap();
        assert!(last_1 < first_2);
    }

    #[test]
    fn zero_arrival_round_robins_equal_streams() {
        let s = vec![
            TenantStream::new(sequential_trace(0, 256, 64, Op::Read)),
            TenantStream::new(sequential_trace(1 << 20, 256, 64, Op::Read)),
        ];
        let (_, tags) = interleave_tenants(&s);
        assert_eq!(tags, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn simulate_tenants_matches_untagged_merged_replay() {
        let c = MemoryConfig::hmc_stack();
        let s = streams();
        let (merged, _) = interleave_tenants(&s);
        let plain = simulate(&c, &merged, &SimOptions::default()).unwrap();
        let tenants = simulate_tenants(&c, &s, &SimOptions::dual_check()).unwrap();
        assert_eq!(tenants.stats, plain.stats);
        assert_eq!(tenants.vaults, plain.vaults);
        assert_eq!(tenants.tenants.len(), s.len());
        for (i, (t, stream)) in tenants.tenants.iter().zip(&s).enumerate() {
            let own: u64 = stream.trace.total_bytes();
            assert_eq!(
                t.bytes_read.get() + t.bytes_written.get(),
                own,
                "tenant {i}"
            );
            assert!(t.cycles.get() <= plain.stats.cycles.get(), "tenant {i}");
            assert!(t.energy.get() > 0.0, "tenant {i}");
        }
    }

    #[test]
    fn max_adjacent_arrivals_saturate_instead_of_wrapping() {
        // Regression: `arrival + pos` used to overflow for arrivals
        // near `u64::MAX` (panic in debug, wrapped merge keys — i.e. a
        // scrambled schedule — in release). Saturation clamps every
        // key at `u64::MAX` and falls back to the documented tenant-
        // index tie-break.
        let s = vec![
            TenantStream::new(sequential_trace(0, 1024, 64, Op::Read)).arriving_at(u64::MAX - 2),
            TenantStream::new(sequential_trace(1 << 20, 1024, 64, Op::Write)).arriving_at(u64::MAX),
        ];
        let (merged, tags) = interleave_tenants(&s);
        assert_eq!(merged.len(), 32);
        // Both streams clamp to u64::MAX almost immediately, so their
        // keys never advance again and the documented tie-break rules:
        // tenant 0 drains whole, then tenant 1.
        let expect: Vec<u16> = [vec![0u16; 16], vec![1u16; 16]].concat();
        assert_eq!(tags, expect);
        let (again, tags_again) = interleave_tenants(&s);
        assert_eq!(merged, again);
        assert_eq!(tags, tags_again);
        // Program order survives saturation for both tenants.
        for (i, stream) in s.iter().enumerate() {
            let mine: Vec<Request> = merged
                .iter()
                .zip(&tags)
                .filter(|(_, &t)| t as usize == i)
                .map(|(r, _)| r)
                .collect();
            assert_eq!(mine, stream.trace.iter().collect::<Vec<_>>(), "tenant {i}");
        }
    }

    /// The time-to-first-burst stat the serving telemetry marks: a
    /// busy tenant's first completion lands inside its busy window
    /// (`0 < first <= last`), an idle tenant reports the zero
    /// sentinel, and the min-merge across engine shards keeps the
    /// stat identical between fast and cycle replays (dual-check).
    #[test]
    fn first_burst_brackets_the_busy_window() {
        let c = MemoryConfig::hmc_stack();
        let s = streams();
        let run = simulate_tenants(&c, &s, &SimOptions::dual_check()).unwrap();
        for (i, t) in run.tenants.iter().enumerate() {
            assert!(t.first_cycles.get() > 0, "tenant {i} issued bursts");
            assert!(t.first_cycles.get() <= t.cycles.get(), "tenant {i}");
            assert!(t.first_elapsed.get() > 0.0, "tenant {i}");
            assert!(t.first_elapsed.get() <= t.elapsed.get(), "tenant {i}");
        }
        // An idle tenant never sees a first burst: the sentinel stays.
        let with_idle = vec![
            TenantStream::new(sequential_trace(0, 4096, 64, Op::Read)),
            TenantStream::new(TraceBuffer::new()),
        ];
        let run = simulate_tenants(&c, &with_idle, &SimOptions::default()).unwrap();
        assert_eq!(run.tenants[1].first_cycles.get(), 0);
        assert_eq!(run.tenants[1].first_elapsed.get(), 0.0);
    }

    #[test]
    fn empty_streams_report_default_slices() {
        let c = MemoryConfig::hmc_stack();
        let s = vec![
            TenantStream::new(sequential_trace(0, 4096, 64, Op::Read)),
            TenantStream::new(TraceBuffer::new()),
        ];
        let run = simulate_tenants(&c, &s, &SimOptions::default()).unwrap();
        assert_eq!(run.tenants.len(), 2);
        assert_eq!(run.tenants[1], TenantStats::default());
    }
}
