//! DRAM timing parameters.
//!
//! All intervals are in DRAM command-clock cycles; `t_ck` gives the cycle
//! time. The presets are deliberately round JEDEC-flavoured numbers — the
//! reproduction cares about ratios (stacked vs. planar, hit vs. miss), not
//! about matching one specific speed bin.

use mealib_types::{Hertz, Seconds};

/// Timing parameters of one DRAM device (bank timing + data bus).
#[derive(Debug, Clone, PartialEq)]
pub struct DramTiming {
    /// Command-clock cycle time.
    pub t_ck: Seconds,
    /// ACT → internal read/write (row-to-column delay), cycles.
    pub t_rcd: u64,
    /// Read command → first data (CAS latency), cycles.
    pub t_cl: u64,
    /// PRE → ACT (row precharge), cycles.
    pub t_rp: u64,
    /// ACT → PRE minimum (row active time), cycles.
    pub t_ras: u64,
    /// Data-bus occupancy of one burst, cycles.
    pub t_burst: u64,
    /// Bytes delivered by one burst on this channel/vault's data path.
    pub burst_bytes: u64,
    /// Write recovery (last write data → PRE), cycles.
    pub t_wr: u64,
    /// Four-activation window: at most four ACTs per unit within this
    /// many cycles (current-delivery limit of the device).
    pub t_faw: u64,
    /// Average refresh interval (one per-bank refresh every `t_refi`
    /// cycles), cycles.
    pub t_refi: u64,
    /// Refresh cycle time (bank unavailable while refreshing), cycles.
    pub t_rfc: u64,
}

impl DramTiming {
    /// DDR3-1600-like DIMM channel: 64-bit bus at 1600 MT/s
    /// (12.8 GB/s peak per channel), 800 MHz command clock.
    pub fn ddr3_1600() -> Self {
        Self {
            t_ck: Hertz::from_mhz(800.0).period(),
            t_rcd: 11,
            t_cl: 11,
            t_rp: 11,
            t_ras: 28,
            t_burst: 4,      // BL8 on a DDR bus = 4 command cycles
            burst_bytes: 64, // 8 transfers x 8 bytes
            t_wr: 12,
            t_faw: 24,
            t_refi: 6240, // 7.8 us at 800 MHz
            t_rfc: 208,   // 260 ns
        }
    }

    /// HMC-like stacked-DRAM vault: a short, wide TSV data path per vault
    /// (32 B per 2 cycles at 1 GHz = 16 GB/s per vault; 32 vaults give the
    /// 510 GB/s aggregate of Table 3).
    pub fn hmc_vault() -> Self {
        Self {
            t_ck: Hertz::from_ghz(1.0).period(),
            t_rcd: 14,
            t_cl: 14,
            t_rp: 14,
            t_ras: 34,
            t_burst: 2,
            burst_bytes: 32,
            t_wr: 16,
            t_faw: 20,    // small rows draw less current per ACT
            t_refi: 7800, // 7.8 us at 1 GHz
            t_rfc: 120,   // short rows refresh quickly
        }
    }

    /// Row cycle time `tRC = tRAS + tRP` — the minimum interval between
    /// activations of different rows in the same bank.
    pub fn t_rc(&self) -> u64 {
        self.t_ras + self.t_rp
    }

    /// Peak data rate of one channel/vault data path.
    pub fn peak_bandwidth(&self) -> mealib_types::BytesPerSec {
        mealib_types::BytesPerSec::new(
            self.burst_bytes as f64 / (self.t_burst as f64 * self.t_ck.get()),
        )
    }

    /// Validates internal consistency (all intervals nonzero, burst
    /// delivers data).
    ///
    /// # Errors
    ///
    /// Returns a [`mealib_types::ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), mealib_types::ConfigError> {
        use mealib_types::ConfigError;
        if self.t_ck.get() <= 0.0 {
            return Err(ConfigError::new("t_ck", "cycle time must be positive"));
        }
        for (name, v) in [
            ("t_rcd", self.t_rcd),
            ("t_cl", self.t_cl),
            ("t_rp", self.t_rp),
            ("t_ras", self.t_ras),
            ("t_burst", self.t_burst),
            ("burst_bytes", self.burst_bytes),
            ("t_wr", self.t_wr),
            ("t_faw", self.t_faw),
            ("t_refi", self.t_refi),
            ("t_rfc", self.t_rfc),
        ] {
            if v == 0 {
                return Err(ConfigError::new(name, "must be nonzero"));
            }
        }
        if self.t_ras < self.t_rcd {
            return Err(ConfigError::new("t_ras", "must be at least t_rcd"));
        }
        if self.t_refi <= self.t_rfc {
            return Err(ConfigError::new(
                "t_refi",
                "refresh interval must exceed the refresh cycle time",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(DramTiming::ddr3_1600().validate().is_ok());
        assert!(DramTiming::hmc_vault().validate().is_ok());
    }

    #[test]
    fn ddr3_peak_bandwidth_is_12_8_gbps() {
        let bw = DramTiming::ddr3_1600().peak_bandwidth();
        assert!((bw.as_gb_per_sec() - 12.8).abs() < 0.01, "{bw}");
    }

    #[test]
    fn hmc_vault_peak_bandwidth_is_16_gbps() {
        let bw = DramTiming::hmc_vault().peak_bandwidth();
        assert!((bw.as_gb_per_sec() - 16.0).abs() < 0.01, "{bw}");
    }

    #[test]
    fn t_rc_is_ras_plus_rp() {
        let t = DramTiming::ddr3_1600();
        assert_eq!(t.t_rc(), 39);
    }

    #[test]
    fn refresh_overhead_is_a_few_percent() {
        // The standard sanity check: tRFC/tREFI is the fraction of time
        // a bank is unavailable to refresh — a few percent on DDR3.
        let t = DramTiming::ddr3_1600();
        let overhead = t.t_rfc as f64 / t.t_refi as f64;
        assert!(
            (0.01..0.08).contains(&overhead),
            "refresh overhead {overhead:.3}"
        );
    }

    #[test]
    fn refresh_interval_must_exceed_refresh_cycle() {
        let mut t = DramTiming::ddr3_1600();
        t.t_refi = t.t_rfc;
        assert_eq!(t.validate().unwrap_err().parameter(), "t_refi");
    }

    #[test]
    fn validation_rejects_zero_fields() {
        let mut t = DramTiming::ddr3_1600();
        t.t_rcd = 0;
        assert_eq!(t.validate().unwrap_err().parameter(), "t_rcd");
        let mut t = DramTiming::ddr3_1600();
        t.t_ras = 5; // < t_rcd
        assert_eq!(t.validate().unwrap_err().parameter(), "t_ras");
    }
}
