//! Canonical SoA request-trace container.
//!
//! [`TraceBuffer`] stores a request trace as three parallel arrays
//! (`addr`, `bytes`, `op`) instead of an array of [`Request`] structs.
//! The layout matters on the replay hot path: the engines walk the
//! address column far more often than the other two (burst splitting and
//! decode touch only addresses and lengths), and a struct-of-arrays
//! layout keeps each walk on densely packed cache lines instead of
//! striding over 24-byte records. Trace generators build a
//! `TraceBuffer` directly — see [`crate::engine::sequential_trace`] and
//! [`crate::engine::strided_trace`] — so the hot paths never re-layout.
//!
//! [`Request`] remains the per-element view: iteration and indexing
//! yield `Request` values, and `From`/`FromIterator`/`Extend`
//! conversions accept them, so call sites that think in single requests
//! keep working unchanged.

use mealib_types::PhysAddr;

use crate::engine::{Op, Request};

/// A request trace in structure-of-arrays layout: parallel `addr`,
/// `bytes`, and `op` columns, one entry per request.
///
/// This is the canonical trace type accepted by
/// [`crate::engine::simulate`]. Build one with [`TraceBuffer::push`],
/// collect one from an iterator of [`Request`]s, or convert an existing
/// slice with `From<&[Request]>`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceBuffer {
    addrs: Vec<u64>,
    bytes: Vec<u64>,
    ops: Vec<Op>,
}

impl TraceBuffer {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with room for `cap` requests.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            addrs: Vec::with_capacity(cap),
            bytes: Vec::with_capacity(cap),
            ops: Vec::with_capacity(cap),
        }
    }

    /// Appends one request.
    pub fn push(&mut self, req: Request) {
        self.addrs.push(req.addr.get());
        self.bytes.push(req.bytes);
        self.ops.push(req.op);
    }

    /// Appends a read of `bytes` bytes starting at `addr`.
    pub fn push_read(&mut self, addr: u64, bytes: u64) {
        self.push(Request::read(addr, bytes));
    }

    /// Appends a write of `bytes` bytes starting at `addr`.
    pub fn push_write(&mut self, addr: u64, bytes: u64) {
        self.push(Request::write(addr, bytes));
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The request at index `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<Request> {
        Some(Request {
            addr: PhysAddr::new(*self.addrs.get(i)?),
            bytes: self.bytes[i],
            op: self.ops[i],
        })
    }

    /// Iterates the trace as [`Request`] values, in program order.
    pub fn iter(&self) -> TraceIter<'_> {
        TraceIter { buf: self, i: 0 }
    }

    /// The address column (one starting physical address per request).
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// The length column (bytes per request).
    pub fn bytes(&self) -> &[u64] {
        &self.bytes
    }

    /// The direction column.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Total payload bytes across all requests.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }
}

/// Iterator over a [`TraceBuffer`]'s requests, in program order.
#[derive(Debug, Clone)]
pub struct TraceIter<'a> {
    buf: &'a TraceBuffer,
    i: usize,
}

impl Iterator for TraceIter<'_> {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        let req = self.buf.get(self.i)?;
        self.i += 1;
        Some(req)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.buf.len() - self.i;
        (left, Some(left))
    }
}

impl ExactSizeIterator for TraceIter<'_> {}

impl<'a> IntoIterator for &'a TraceBuffer {
    type Item = Request;
    type IntoIter = TraceIter<'a>;

    fn into_iter(self) -> TraceIter<'a> {
        self.iter()
    }
}

impl From<&[Request]> for TraceBuffer {
    fn from(reqs: &[Request]) -> Self {
        reqs.iter().copied().collect()
    }
}

impl<const N: usize> From<&[Request; N]> for TraceBuffer {
    fn from(reqs: &[Request; N]) -> Self {
        reqs.as_slice().into()
    }
}

impl From<Vec<Request>> for TraceBuffer {
    fn from(reqs: Vec<Request>) -> Self {
        reqs.as_slice().into()
    }
}

impl FromIterator<Request> for TraceBuffer {
    fn from_iter<I: IntoIterator<Item = Request>>(iter: I) -> Self {
        let mut buf = Self::new();
        buf.extend(iter);
        buf
    }
}

impl Extend<Request> for TraceBuffer {
    fn extend<I: IntoIterator<Item = Request>>(&mut self, iter: I) {
        let iter = iter.into_iter();
        let (lo, _) = iter.size_hint();
        self.addrs.reserve(lo);
        self.bytes.reserve(lo);
        self.ops.reserve(lo);
        for req in iter {
            self.push(req);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_requests_through_columns() {
        let reqs = [
            Request::read(0x40, 128),
            Request::write(0x1000, 0),
            Request::read(u64::MAX - 64, 64),
        ];
        let buf = TraceBuffer::from(&reqs);
        assert_eq!(buf.len(), 3);
        assert!(!buf.is_empty());
        let back: Vec<Request> = buf.iter().collect();
        assert_eq!(back, reqs);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(buf.get(i), Some(*r));
        }
        assert_eq!(buf.get(3), None);
        assert_eq!(buf.total_bytes(), 128 + 64);
    }

    #[test]
    fn collect_extend_and_push_agree() {
        let reqs: Vec<Request> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    Request::read(i * 4096, 64)
                } else {
                    Request::write(i * 4096, 32)
                }
            })
            .collect();
        let collected: TraceBuffer = reqs.iter().copied().collect();
        let mut pushed = TraceBuffer::with_capacity(reqs.len());
        for r in &reqs {
            pushed.push(*r);
        }
        let mut extended = TraceBuffer::new();
        extended.extend(reqs.iter().copied());
        let converted = TraceBuffer::from(reqs);
        assert_eq!(collected, pushed);
        assert_eq!(collected, extended);
        assert_eq!(collected, converted);
    }

    #[test]
    fn push_read_write_tag_directions() {
        let mut buf = TraceBuffer::new();
        buf.push_read(0, 64);
        buf.push_write(64, 64);
        assert_eq!(buf.ops(), &[Op::Read, Op::Write]);
        assert_eq!(buf.addrs(), &[0, 64]);
        assert_eq!(buf.bytes(), &[64, 64]);
    }
}
