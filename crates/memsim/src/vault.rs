//! The augmented vault controller (§2.1, Figure 3).
//!
//! Each vault controller owns three queues — address, write-data, and
//! read-data — and MEALib adds (de)multiplexers so requests can arrive
//! from, and data can be steered to, three sources: the host CPU (via
//! the link controllers), the data-reshape infrastructure on the logic
//! layer, and the accelerator layer below (via TSVs). This module models
//! the queues and the steering; the bank timing behind the controller is
//! [`crate::engine`]'s business.

use std::collections::VecDeque;

use mealib_types::{Bytes, ConfigError, Cycles};

/// Where a vault request originated — the MUX selector of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestSource {
    /// The host CPU, through a link controller.
    Cpu,
    /// The data-reshape infrastructure on the DRAM logic layer.
    Reshape,
    /// An accelerator tile, through the TSV bus.
    Accelerator,
}

/// One queued vault command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VaultRequest {
    /// Originating datapath.
    pub source: RequestSource,
    /// `true` for writes (occupies the write queue's data slot too).
    pub write: bool,
    /// Payload size.
    pub bytes: Bytes,
    /// Cycle the request arrived at the controller.
    pub arrived: Cycles,
}

/// Occupancy statistics of one queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests accepted.
    pub accepted: u64,
    /// Requests refused because the queue was full (back-pressure).
    pub refused: u64,
    /// High-water mark of occupancy.
    pub peak_occupancy: usize,
}

/// A bounded vault-controller queue.
#[derive(Debug, Clone)]
struct BoundedQueue {
    entries: VecDeque<VaultRequest>,
    capacity: usize,
    stats: QueueStats,
}

impl BoundedQueue {
    fn new(capacity: usize) -> Self {
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            stats: QueueStats::default(),
        }
    }

    fn try_push(&mut self, req: VaultRequest) -> bool {
        if self.entries.len() == self.capacity {
            self.stats.refused += 1;
            return false;
        }
        self.entries.push_back(req);
        self.stats.accepted += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.entries.len());
        true
    }

    fn pop(&mut self) -> Option<VaultRequest> {
        self.entries.pop_front()
    }
}

/// The augmented vault controller: address/read/write queues with MUXes
/// steering three request sources.
#[derive(Debug, Clone)]
pub struct VaultController {
    /// Which source the MUX currently admits (the paper's arbitration:
    /// CPU and accelerators never interleave).
    granted: RequestSource,
    address_queue: BoundedQueue,
    write_queue: BoundedQueue,
    /// Read-return data waiting for the DEMUX to steer it back.
    read_queue: BoundedQueue,
    /// Requests rejected because the MUX was granted to another source.
    pub steered_away: u64,
}

impl VaultController {
    /// Creates a controller with the given queue depths.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any depth is zero.
    pub fn new(address_depth: usize, data_depth: usize) -> Result<Self, ConfigError> {
        if address_depth == 0 {
            return Err(ConfigError::new("address_depth", "must be nonzero"));
        }
        if data_depth == 0 {
            return Err(ConfigError::new("data_depth", "must be nonzero"));
        }
        Ok(Self {
            granted: RequestSource::Cpu,
            address_queue: BoundedQueue::new(address_depth),
            write_queue: BoundedQueue::new(data_depth),
            read_queue: BoundedQueue::new(data_depth),
            steered_away: 0,
        })
    }

    /// The HMC-like default: 16-deep address queue, 8-deep data queues.
    pub fn hmc_default() -> Self {
        Self::new(16, 8).expect("static depths are valid")
    }

    /// The source currently granted by the MUX.
    pub fn granted(&self) -> RequestSource {
        self.granted
    }

    /// Re-grants the MUX to a source (the link controller's arbitration
    /// switch). Pending requests from the old source keep draining.
    pub fn grant(&mut self, source: RequestSource) {
        self.granted = source;
    }

    /// Offers a request to the controller. Returns `false` when the MUX
    /// is granted elsewhere (the reshape path is always admitted — it is
    /// shared infrastructure) or the target queue is full.
    pub fn offer(&mut self, req: VaultRequest) -> bool {
        if req.source != self.granted && req.source != RequestSource::Reshape {
            self.steered_away += 1;
            return false;
        }
        if req.write {
            // A write occupies both the address and the write-data queue.
            if self.write_queue.entries.len() == self.write_queue.capacity {
                self.write_queue.stats.refused += 1;
                return false;
            }
            if !self.address_queue.try_push(req) {
                return false;
            }
            let pushed = self.write_queue.try_push(req);
            debug_assert!(pushed, "capacity checked above");
            true
        } else {
            self.address_queue.try_push(req)
        }
    }

    /// Pops the next command in arrival order, moving read data into the
    /// read queue for the DEMUX (dropping it if the read queue is full —
    /// counted as a refusal, i.e. return-path back-pressure).
    pub fn service_next(&mut self) -> Option<VaultRequest> {
        let req = self.address_queue.pop()?;
        if req.write {
            let _ = self.write_queue.pop();
        } else {
            let _ = self.read_queue.try_push(req);
        }
        Some(req)
    }

    /// Drains one read-return toward its source.
    pub fn pop_read_return(&mut self) -> Option<VaultRequest> {
        self.read_queue.pop()
    }

    /// Address-queue statistics.
    pub fn address_stats(&self) -> QueueStats {
        self.address_queue.stats
    }

    /// Write-queue statistics.
    pub fn write_stats(&self) -> QueueStats {
        self.write_queue.stats
    }

    /// Read-queue statistics.
    pub fn read_stats(&self) -> QueueStats {
        self.read_queue.stats
    }

    /// Outstanding commands.
    pub fn pending(&self) -> usize {
        self.address_queue.entries.len()
    }
}

impl Default for VaultController {
    fn default() -> Self {
        Self::hmc_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(source: RequestSource, write: bool) -> VaultRequest {
        VaultRequest {
            source,
            write,
            bytes: Bytes::new(32),
            arrived: Cycles::ZERO,
        }
    }

    #[test]
    fn mux_blocks_non_granted_sources() {
        let mut vc = VaultController::hmc_default();
        assert_eq!(vc.granted(), RequestSource::Cpu);
        assert!(vc.offer(req(RequestSource::Cpu, false)));
        assert!(!vc.offer(req(RequestSource::Accelerator, false)));
        assert_eq!(vc.steered_away, 1);

        vc.grant(RequestSource::Accelerator);
        assert!(vc.offer(req(RequestSource::Accelerator, false)));
        assert!(!vc.offer(req(RequestSource::Cpu, false)));
        assert_eq!(vc.steered_away, 2);
    }

    #[test]
    fn reshape_infrastructure_is_always_admitted() {
        let mut vc = VaultController::hmc_default();
        assert!(vc.offer(req(RequestSource::Reshape, false)));
        vc.grant(RequestSource::Accelerator);
        assert!(vc.offer(req(RequestSource::Reshape, true)));
        assert_eq!(vc.steered_away, 0);
    }

    #[test]
    fn queues_back_pressure_when_full() {
        let mut vc = VaultController::new(2, 1).unwrap();
        assert!(vc.offer(req(RequestSource::Cpu, false)));
        assert!(vc.offer(req(RequestSource::Cpu, false)));
        assert!(
            !vc.offer(req(RequestSource::Cpu, false)),
            "address queue full"
        );
        assert_eq!(vc.address_stats().refused, 1);
        assert_eq!(vc.address_stats().peak_occupancy, 2);
    }

    #[test]
    fn writes_need_both_queues() {
        let mut vc = VaultController::new(8, 1).unwrap();
        assert!(vc.offer(req(RequestSource::Cpu, true)));
        // Write-data queue (depth 1) is now full even though addresses fit.
        assert!(!vc.offer(req(RequestSource::Cpu, true)));
        assert_eq!(vc.write_stats().refused, 1);
        // Reads still flow.
        assert!(vc.offer(req(RequestSource::Cpu, false)));
    }

    #[test]
    fn service_moves_reads_to_the_return_path() {
        let mut vc = VaultController::hmc_default();
        vc.offer(req(RequestSource::Cpu, false));
        vc.offer(req(RequestSource::Cpu, true));
        assert_eq!(vc.pending(), 2);

        let first = vc.service_next().unwrap();
        assert!(!first.write);
        assert_eq!(vc.pop_read_return().unwrap().source, RequestSource::Cpu);

        let second = vc.service_next().unwrap();
        assert!(second.write);
        assert!(vc.pop_read_return().is_none(), "writes return no data");
        assert_eq!(vc.pending(), 0);
        assert!(vc.service_next().is_none());
    }

    #[test]
    fn zero_depth_rejected() {
        assert!(VaultController::new(0, 4).is_err());
        assert!(VaultController::new(4, 0).is_err());
    }
}
