//! Soundness proptests for the static bounds kernel: for random traces
//! and valid configs across all three interleaving modes, the certified
//! intervals must contain the cycle engine's measurement on every
//! counter, and the command/byte bounds must be exact.

use mealib_memsim::address::AddressMapping;
use mealib_memsim::bounds::trace_bounds;
use mealib_memsim::engine::{simulate, Op, Request, SimOptions};
use mealib_memsim::{MemoryConfig, TraceBuffer};
use mealib_types::PhysAddr;
use proptest::prelude::*;

fn request_strategy() -> impl Strategy<Value = Request> {
    (0u64..(1 << 24), 1u64..4096, any::<bool>()).prop_map(|(addr, bytes, write)| {
        if write {
            Request::write(addr, bytes)
        } else {
            Request::read(addr, bytes)
        }
    })
}

/// Valid mappings spanning all three interleaving modes with varied
/// structural parameters.
fn mapping_strategy() -> impl Strategy<Value = AddressMapping> {
    let units = prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(32)];
    let banks = prop_oneof![Just(1usize), Just(2), Just(8)];
    let row = prop_oneof![Just(1024u64), Just(4096), Just(8192)];
    let line = prop_oneof![Just(64u64), Just(256), Just(1024)];
    (units, banks, row, line, 0u8..3, 0u64..4).prop_map(
        |(units, banks_per_unit, row_bytes, line_bytes, mode, split_sel)| {
            let line_bytes = line_bytes.min(row_bytes);
            match mode {
                0 => AddressMapping::Interleaved {
                    units,
                    banks_per_unit,
                    row_bytes,
                    line_bytes,
                },
                1 => AddressMapping::XorInterleaved {
                    units,
                    banks_per_unit,
                    row_bytes,
                    line_bytes,
                },
                _ => AddressMapping::Asymmetric {
                    low_units: units,
                    banks_per_unit,
                    row_bytes,
                    line_bytes,
                    // Split points at and around the trace's address
                    // range, including the degenerate all-high case.
                    split: PhysAddr::new(split_sel * (1 << 23)),
                },
            }
        },
    )
}

fn config_strategy() -> impl Strategy<Value = MemoryConfig> {
    (
        prop_oneof![
            Just(MemoryConfig::hmc_stack()),
            Just(MemoryConfig::ddr_dual_channel()),
            Just(MemoryConfig::msas_dram()),
        ],
        mapping_strategy(),
    )
        .prop_map(|(mut cfg, mapping)| {
            cfg.mapping = mapping;
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline soundness property: lower <= measured <= upper on
    /// every certified counter, for every valid config in every
    /// interleaving mode.
    #[test]
    fn bounds_contain_engine_measurement(
        cfg in config_strategy(),
        trace in proptest::collection::vec(request_strategy(), 0..24),
    ) {
        let trace = TraceBuffer::from(trace);
        let bounds = trace_bounds(&cfg, &trace).unwrap();
        // Dual-check mode: the soundness corpus doubles as a
        // fast-vs-cycle bit-exactness corpus.
        let run = simulate(&cfg, &trace, &SimOptions::dual_check()).expect("valid config");
        let violation = bounds.check_contains(&run.stats);
        prop_assert!(violation.is_none(), "{}: {}", cfg.name, violation.unwrap());
        // Command counts are certified exactly, not just bounded.
        let reads: u64 = run.vaults.iter().map(|v| v.read_bursts).sum();
        let writes: u64 = run.vaults.iter().map(|v| v.write_bursts).sum();
        prop_assert!(bounds.read_bursts.is_exact());
        prop_assert!(bounds.write_bursts.is_exact());
        prop_assert_eq!(bounds.read_bursts.lo, reads as f64);
        prop_assert_eq!(bounds.write_bursts.lo, writes as f64);
        // Per-unit traffic is exact too.
        let per_unit: Vec<u64> =
            run.vaults.iter().map(|v| v.read_bursts + v.write_bursts).collect();
        prop_assert_eq!(&bounds.unit_bursts, &per_unit);
    }

    /// Affine pattern with static trip counts: a strided sweep. Byte and
    /// command bounds collapse to the exact measured point.
    #[test]
    fn affine_static_patterns_are_exact(
        cfg in config_strategy(),
        stride in prop_oneof![Just(256u64), Just(1024), Just(8192)],
        elem in prop_oneof![Just(64u64), Just(256)],
        count in 1u64..512,
        write in any::<bool>(),
    ) {
        let op = if write { Op::Write } else { Op::Read };
        let trace: TraceBuffer = (0..count)
            .map(|i| Request { addr: PhysAddr::new(i * stride), bytes: elem.min(stride), op })
            .collect();
        let bounds = trace_bounds(&cfg, &trace).unwrap();
        let measured = simulate(&cfg, &trace, &SimOptions::fast())
            .expect("valid config")
            .stats;
        prop_assert!(bounds.bytes_read.is_exact() && bounds.bytes_written.is_exact());
        prop_assert_eq!(bounds.bytes_read.lo, measured.bytes_read.get() as f64);
        prop_assert_eq!(bounds.bytes_written.lo, measured.bytes_written.get() as f64);
        prop_assert!(bounds.cycles.contains(measured.cycles.get() as f64));
        prop_assert!(bounds.energy.contains(measured.energy.get()));
    }

    /// Concatenating traces: bounds compose monotonically — the bound on
    /// a prefix never exceeds the bound on the whole trace.
    #[test]
    fn bounds_grow_with_the_trace(
        trace in proptest::collection::vec(request_strategy(), 1..20),
    ) {
        let cfg = MemoryConfig::hmc_stack();
        let full = trace_bounds(&cfg, &TraceBuffer::from(trace.as_slice())).unwrap();
        let prefix = trace_bounds(&cfg, &TraceBuffer::from(&trace[..trace.len() - 1])).unwrap();
        prop_assert!(prefix.cycles.hi <= full.cycles.hi);
        prop_assert!(prefix.total_bursts() <= full.total_bursts());
        prop_assert!(prefix.energy.hi <= full.energy.hi);
    }
}
