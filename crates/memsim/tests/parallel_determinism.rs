//! Determinism suite for the vault-sharded parallel engine.
//!
//! `simulate_trace_parallel` must be *bit-exactly* equal to the serial
//! `simulate_trace_detailed` for every valid configuration — the merge is
//! designed so that per-unit integer totals combine commutatively and the
//! derived `f64` fields (`elapsed`, `energy`) are computed once from the
//! merged totals, never accumulated across threads. These properties are
//! what make `--jobs N` shippable: the parallel run is not "close", it is
//! the same run.

use mealib_memsim::address::AddressMapping;
use mealib_memsim::engine::{
    simulate_trace_detailed, simulate_trace_parallel, simulate_trace_profiled,
    simulate_trace_profiled_parallel, EngineRun, Request,
};
use mealib_memsim::MemoryConfig;
use mealib_obs::timeline::WindowCounters;
use mealib_types::PhysAddr;
use proptest::prelude::*;

/// Addresses stay below 2^24 so the asymmetric split (drawn from the same
/// range) actually lands inside the sampled traffic.
fn request_strategy() -> impl Strategy<Value = Request> {
    (0u64..(1 << 24), 0u64..4096, any::<bool>()).prop_map(|(addr, bytes, write)| {
        if write {
            Request::write(addr, bytes)
        } else {
            Request::read(addr, bytes)
        }
    })
}

/// Random *valid* mappings covering all three interleaving modes:
/// plain interleaved, XOR-hashed, and the asymmetric §4.2 split.
fn mapping_strategy() -> impl Strategy<Value = AddressMapping> {
    // row_bytes = 2^row_shift, line_bytes = 2^line_shift <= row_bytes.
    fn shifts() -> impl Strategy<Value = (u32, u32)> {
        (8u32..=13, 5u32..=13).prop_map(|(row, line)| (row, line.min(row)))
    }
    prop_oneof![
        (1usize..=8, 1usize..=8, shifts()).prop_map(|(units, banks_per_unit, (row, line))| {
            AddressMapping::Interleaved {
                units,
                banks_per_unit,
                row_bytes: 1 << row,
                line_bytes: 1 << line,
            }
        }),
        (1usize..=8, 1usize..=8, shifts()).prop_map(|(units, banks_per_unit, (row, line))| {
            AddressMapping::XorInterleaved {
                units,
                banks_per_unit,
                row_bytes: 1 << row,
                line_bytes: 1 << line,
            }
        }),
        (1usize..=8, 1usize..=8, shifts(), 0u64..(1 << 24)).prop_map(
            |(low_units, banks_per_unit, (row, line), split)| AddressMapping::Asymmetric {
                low_units,
                banks_per_unit,
                row_bytes: 1 << row,
                line_bytes: 1 << line,
                split: PhysAddr::new(split),
            }
        ),
    ]
}

/// Random valid configs: preset device timing/energy × random mapping.
fn config_strategy() -> impl Strategy<Value = MemoryConfig> {
    let device = prop_oneof![
        Just(MemoryConfig::hmc_stack()),
        Just(MemoryConfig::ddr_dual_channel()),
        Just(MemoryConfig::msas_dram()),
    ];
    (device, mapping_strategy()).prop_map(|(mut cfg, mapping)| {
        cfg.mapping = mapping;
        cfg
    })
}

/// Asserts bit-exact equality on every field, including the `f64`s by
/// their raw bit patterns (`PartialEq` on `EngineRun` already compares
/// them exactly; the `to_bits` checks make NaN-safety and signed-zero
/// agreement explicit).
fn assert_bit_exact(parallel: &EngineRun, serial: &EngineRun, ctx: &str) {
    assert_eq!(parallel, serial, "{ctx}: runs differ");
    assert_eq!(
        parallel.stats.elapsed.get().to_bits(),
        serial.stats.elapsed.get().to_bits(),
        "{ctx}: elapsed bits differ"
    );
    assert_eq!(
        parallel.stats.energy.get().to_bits(),
        serial.stats.energy.get().to_bits(),
        "{ctx}: energy bits differ"
    );
    assert_eq!(
        parallel.latencies.buckets(),
        serial.latencies.buckets(),
        "{ctx}: histogram buckets differ"
    );
    assert_eq!(parallel.vaults, serial.vaults, "{ctx}: vault stats differ");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline property: parallel ≡ serial, bit for bit, across
    /// random traces × random valid configs × jobs ∈ {2, 4, 8}.
    #[test]
    fn parallel_equals_serial_bit_exactly(
        cfg in config_strategy(),
        trace in proptest::collection::vec(request_strategy(), 0..40),
    ) {
        prop_assert!(cfg.validate().is_ok());
        let serial = simulate_trace_detailed(&cfg, &trace);
        for jobs in [2usize, 4, 8] {
            let parallel = simulate_trace_parallel(&cfg, &trace, jobs);
            assert_bit_exact(&parallel, &serial, &format!("{} jobs={jobs}", cfg.name));
        }
    }

    /// Repeated parallel runs of the same input are identical — catches
    /// merges that depend on thread completion order.
    #[test]
    fn repeated_parallel_runs_are_identical(
        cfg in config_strategy(),
        trace in proptest::collection::vec(request_strategy(), 1..30),
    ) {
        prop_assert!(cfg.validate().is_ok());
        let first = simulate_trace_parallel(&cfg, &trace, 4);
        for run in 0..10 {
            let again = simulate_trace_parallel(&cfg, &trace, 4);
            assert_bit_exact(&again, &first, &format!("{} run={run}", cfg.name));
        }
    }

    /// jobs=1 is the serial path, so it must also be bit-exact — the
    /// fallback and the sharded path share the same per-unit core.
    #[test]
    fn jobs_one_is_the_serial_path(
        cfg in config_strategy(),
        trace in proptest::collection::vec(request_strategy(), 0..30),
    ) {
        prop_assert!(cfg.validate().is_ok());
        let serial = simulate_trace_detailed(&cfg, &trace);
        let fallback = simulate_trace_parallel(&cfg, &trace, 1);
        assert_bit_exact(&fallback, &serial, &cfg.name);
    }

    /// Timeline conservation: profiling must not perturb the model, and
    /// summing every `(window, lane)` cell must reproduce the aggregate
    /// `TraceStats` counters with exact integer equality — each burst's
    /// contribution is charged to exactly one window.
    #[test]
    fn profiled_timeline_conserves_aggregate_counters(
        cfg in config_strategy(),
        trace in proptest::collection::vec(request_strategy(), 0..40),
        window_cycles in 1u64..5000,
    ) {
        prop_assert!(cfg.validate().is_ok());
        let plain = simulate_trace_detailed(&cfg, &trace);
        let profiled = simulate_trace_profiled(&cfg, &trace, window_cycles);
        prop_assert_eq!(&profiled.run, &plain, "profiling perturbed the run");
        let agg = profiled.timeline.aggregate();
        prop_assert_eq!(agg.bytes_read, plain.stats.bytes_read.get());
        prop_assert_eq!(agg.bytes_written, plain.stats.bytes_written.get());
        prop_assert_eq!(agg.activations, plain.stats.activations);
        prop_assert_eq!(agg.precharges, plain.stats.precharges);
        prop_assert_eq!(agg.row_hits, plain.stats.row_hits);
        prop_assert_eq!(agg.row_misses, plain.stats.row_misses);
        prop_assert_eq!(agg.refreshes, plain.stats.refreshes);
        // One data-bus slot per burst, and the FCFS queue waits
        // telescope per unit, so both derived counters are also exact.
        let bursts = plain.stats.row_hits + plain.stats.row_misses;
        prop_assert_eq!(agg.bus_busy_cycles, bursts * cfg.timing.t_burst);
        // Per-lane sums must equal the per-vault command counts.
        for (unit, v) in profiled.run.vaults.iter().enumerate() {
            let mut lane = WindowCounters::default();
            for (_, l, c) in profiled.timeline.iter() {
                if l == unit as u16 {
                    lane.merge(c);
                }
            }
            prop_assert_eq!(lane.activations, v.activations);
            prop_assert_eq!(lane.row_hits, v.row_hits);
            prop_assert_eq!(lane.row_misses, v.row_misses);
            prop_assert_eq!(lane.read_bursts_like(), v.read_bursts + v.write_bursts);
        }
    }

    /// Parallel timelines are bit-identical to serial for jobs ∈
    /// {2, 4, 8}: same cells, same counters, same window width — the
    /// windowed reduction inherits the aggregate merge's determinism.
    #[test]
    fn profiled_parallel_timelines_are_bit_identical(
        cfg in config_strategy(),
        trace in proptest::collection::vec(request_strategy(), 0..40),
        window_cycles in 1u64..5000,
    ) {
        prop_assert!(cfg.validate().is_ok());
        let serial = simulate_trace_profiled(&cfg, &trace, window_cycles);
        for jobs in [2usize, 4, 8] {
            let parallel =
                simulate_trace_profiled_parallel(&cfg, &trace, window_cycles, jobs);
            prop_assert_eq!(&parallel, &serial, "{} jobs={}", cfg.name, jobs);
            assert_bit_exact(&parallel.run, &serial.run, &format!("{} jobs={jobs}", cfg.name));
        }
    }
}

/// Row hits + misses per lane equal serviced bursts per lane; expressed
/// as a helper so the property above reads as the invariant it checks.
trait BurstCount {
    fn read_bursts_like(&self) -> u64;
}

impl BurstCount for WindowCounters {
    fn read_bursts_like(&self) -> u64 {
        self.row_hits + self.row_misses
    }
}

/// Fixed-config smoke tests, one per interleaving mode, with dense
/// same-row traffic that exercises row hits, conflicts, and refreshes.
#[test]
fn fixed_configs_cover_every_mode() {
    let mut trace = Vec::new();
    for i in 0..2000u64 {
        trace.push(Request::read(i * 64 % (1 << 20), 64));
        if i % 3 == 0 {
            trace.push(Request::write(i * 8192, 256));
        }
    }
    let mappings = [
        AddressMapping::Interleaved {
            units: 4,
            banks_per_unit: 4,
            row_bytes: 2048,
            line_bytes: 64,
        },
        AddressMapping::XorInterleaved {
            units: 4,
            banks_per_unit: 4,
            row_bytes: 2048,
            line_bytes: 64,
        },
        AddressMapping::Asymmetric {
            low_units: 2,
            banks_per_unit: 4,
            row_bytes: 2048,
            line_bytes: 64,
            split: PhysAddr::new(1 << 19),
        },
    ];
    for mapping in mappings {
        let mut cfg = MemoryConfig::ddr_dual_channel();
        cfg.mapping = mapping;
        cfg.validate().expect("fixed config is valid");
        let serial = simulate_trace_detailed(&cfg, &trace);
        // The trace is long enough to produce real activity in each mode.
        assert!(serial.stats.row_hits > 0, "{:?}", cfg.mapping);
        assert!(serial.stats.row_misses > 0, "{:?}", cfg.mapping);
        for jobs in [2usize, 4, 8] {
            let parallel = simulate_trace_parallel(&cfg, &trace, jobs);
            assert_bit_exact(
                &parallel,
                &serial,
                &format!("{:?} jobs={jobs}", cfg.mapping),
            );
        }
    }
}

/// Per-vault counts must still sum to the aggregates after a parallel
/// merge (mirrors the serial-engine invariant test in `engine.rs`).
#[test]
fn parallel_vault_counts_sum_to_aggregates() {
    let cfg = MemoryConfig::hmc_stack();
    let trace: Vec<Request> = (0..4096u64).map(|i| Request::read(i * 256, 256)).collect();
    let run = simulate_trace_parallel(&cfg, &trace, 8);
    assert_eq!(run.vaults.len(), cfg.mapping.units());
    let (mut reads, mut writes, mut acts, mut hits) = (0u64, 0u64, 0u64, 0u64);
    for v in &run.vaults {
        reads += v.read_bursts;
        writes += v.write_bursts;
        acts += v.activations;
        hits += v.row_hits;
    }
    assert_eq!(run.stats.row_hits + run.stats.row_misses, reads + writes);
    assert_eq!(run.stats.activations, acts);
    assert_eq!(run.stats.row_hits, hits);
    assert_eq!(run.latencies.count(), reads + writes);
}
