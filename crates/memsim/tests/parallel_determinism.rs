//! Determinism suite for the dual-engine core.
//!
//! Two families of bit-exactness properties, both over random traces ×
//! random valid configs:
//!
//! 1. **parallel ≡ serial** — the vault-sharded replay must equal the
//!    serial replay bit for bit, for either engine. The merge is
//!    designed so that per-unit integer totals combine commutatively
//!    and the derived `f64` fields (`elapsed`, `energy`) are computed
//!    once from the merged totals, never accumulated across threads.
//! 2. **fast ≡ cycle** — the event-driven epoch-skipping engine must
//!    equal the cycle-accurate oracle bit for bit on every statistic
//!    (stats, vault counts, histogram buckets, energy), across engine
//!    kinds × jobs ∈ {1, 2, 4, 8} × mapping geometries, including
//!    adversarial traces: row-conflict storms, single-vault hotspots,
//!    zero-length and max-burst requests.
//!
//! These properties are what make `--jobs N` and `EngineKind::Fast`
//! shippable: the parallel run and the fast run are not "close", they
//! are the same run.

use mealib_memsim::address::AddressMapping;
use mealib_memsim::engine::{simulate, EngineKind, EngineRun, Request, SimError, SimOptions};
use mealib_memsim::trace::TraceBuffer;
use mealib_memsim::MemoryConfig;
use mealib_obs::timeline::WindowCounters;
use mealib_types::PhysAddr;
use proptest::prelude::*;

/// Addresses stay below 2^24 so the asymmetric split (drawn from the same
/// range) actually lands inside the sampled traffic.
fn request_strategy() -> impl Strategy<Value = Request> {
    (0u64..(1 << 24), 0u64..4096, any::<bool>()).prop_map(|(addr, bytes, write)| {
        if write {
            Request::write(addr, bytes)
        } else {
            Request::read(addr, bytes)
        }
    })
}

/// Adversarial traces aimed at the fast engine's streak batching:
/// every shape is built to break streaks as often as possible or to
/// stretch them to their caps.
fn adversarial_trace_strategy() -> impl Strategy<Value = TraceBuffer> {
    prop_oneof![
        // Row-conflict storm: large power-of-two strides alias onto the
        // same bank under small mappings, so every access precharges.
        (12u32..=18, 1u64..256, any::<bool>()).prop_map(|(shift, count, write)| {
            (0..count)
                .map(|i| {
                    let addr = i * (1u64 << shift);
                    if write {
                        Request::write(addr, 64)
                    } else {
                        Request::read(addr, 64)
                    }
                })
                .collect()
        }),
        // Single-vault hotspot: all traffic inside one line's reach, so
        // one unit absorbs the entire stream (maximal streaks, maximal
        // shard imbalance).
        (0u64..64, 1u64..512).prop_map(|(base, count)| {
            (0..count)
                .map(|i| Request::read(base + (i % 4) * 8, 32))
                .collect()
        }),
        // Zero-length requests interleaved with real ones: must be
        // no-ops on every counter in both engines.
        proptest::collection::vec((0u64..(1 << 20), any::<bool>()), 1..64).prop_map(|specs| {
            specs
                .iter()
                .enumerate()
                .map(|(i, &(addr, zero))| Request::read(addr, if zero { 0 } else { i as u64 }))
                .collect()
        }),
        // Max-burst requests: each one spans many rows and banks, so a
        // single request alternates hit streaks with activations.
        proptest::collection::vec(0u64..(1 << 22), 1..24)
            .prop_map(|addrs| { addrs.iter().map(|&a| Request::write(a, 4096)).collect() }),
    ]
}

/// Random *valid* mappings covering all three interleaving modes:
/// plain interleaved, XOR-hashed, and the asymmetric §4.2 split.
fn mapping_strategy() -> impl Strategy<Value = AddressMapping> {
    // row_bytes = 2^row_shift, line_bytes = 2^line_shift <= row_bytes.
    fn shifts() -> impl Strategy<Value = (u32, u32)> {
        (8u32..=13, 5u32..=13).prop_map(|(row, line)| (row, line.min(row)))
    }
    prop_oneof![
        (1usize..=8, 1usize..=8, shifts()).prop_map(|(units, banks_per_unit, (row, line))| {
            AddressMapping::Interleaved {
                units,
                banks_per_unit,
                row_bytes: 1 << row,
                line_bytes: 1 << line,
            }
        }),
        (1usize..=8, 1usize..=8, shifts()).prop_map(|(units, banks_per_unit, (row, line))| {
            AddressMapping::XorInterleaved {
                units,
                banks_per_unit,
                row_bytes: 1 << row,
                line_bytes: 1 << line,
            }
        }),
        (1usize..=8, 1usize..=8, shifts(), 0u64..(1 << 24)).prop_map(
            |(low_units, banks_per_unit, (row, line), split)| AddressMapping::Asymmetric {
                low_units,
                banks_per_unit,
                row_bytes: 1 << row,
                line_bytes: 1 << line,
                split: PhysAddr::new(split),
            }
        ),
    ]
}

/// Random valid configs: preset device timing/energy × random mapping.
fn config_strategy() -> impl Strategy<Value = MemoryConfig> {
    let device = prop_oneof![
        Just(MemoryConfig::hmc_stack()),
        Just(MemoryConfig::ddr_dual_channel()),
        Just(MemoryConfig::msas_dram()),
    ];
    (device, mapping_strategy()).prop_map(|(mut cfg, mapping)| {
        cfg.mapping = mapping;
        cfg
    })
}

/// Asserts bit-exact equality on every field, including the `f64`s by
/// their raw bit patterns (`PartialEq` on `EngineRun` already compares
/// them exactly; the `to_bits` checks make NaN-safety and signed-zero
/// agreement explicit).
fn assert_bit_exact(got: &EngineRun, want: &EngineRun, ctx: &str) {
    assert_eq!(got, want, "{ctx}: runs differ");
    assert_eq!(
        got.stats.elapsed.get().to_bits(),
        want.stats.elapsed.get().to_bits(),
        "{ctx}: elapsed bits differ"
    );
    assert_eq!(
        got.stats.energy.get().to_bits(),
        want.stats.energy.get().to_bits(),
        "{ctx}: energy bits differ"
    );
    assert_eq!(
        got.latencies.buckets(),
        want.latencies.buckets(),
        "{ctx}: histogram buckets differ"
    );
    assert_eq!(got.vaults, want.vaults, "{ctx}: vault stats differ");
}

fn cycle_serial(cfg: &MemoryConfig, trace: &TraceBuffer) -> EngineRun {
    simulate(cfg, trace, &SimOptions::cycle()).expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline property: every engine kind × every worker count is
    /// bit-for-bit the serial cycle oracle, across random traces ×
    /// random valid configs × jobs ∈ {1, 2, 4, 8}.
    #[test]
    fn engines_and_jobs_equal_the_cycle_oracle_bit_exactly(
        cfg in config_strategy(),
        trace in proptest::collection::vec(request_strategy(), 0..40),
    ) {
        prop_assert!(cfg.validate().is_ok());
        let trace = TraceBuffer::from(trace);
        let oracle = cycle_serial(&cfg, &trace);
        for engine in [EngineKind::Cycle, EngineKind::Fast] {
            for jobs in [1usize, 2, 4, 8] {
                let opts = SimOptions { engine, jobs, ..SimOptions::default() };
                let run = simulate(&cfg, &trace, &opts).expect("valid config");
                assert_bit_exact(
                    &run,
                    &oracle,
                    &format!("{} {engine:?} jobs={jobs}", cfg.name),
                );
            }
        }
    }

    /// The fast engine survives adversarial trace shapes (conflict
    /// storms, hotspots, zero-length, max-burst) on every preset device
    /// and random mapping, and `DualCheck` never reports divergence.
    #[test]
    fn fast_engine_survives_adversarial_traces(
        cfg in config_strategy(),
        trace in adversarial_trace_strategy(),
    ) {
        prop_assert!(cfg.validate().is_ok());
        let oracle = cycle_serial(&cfg, &trace);
        for jobs in [1usize, 2, 4, 8] {
            let fast = simulate(&cfg, &trace, &SimOptions::fast().jobs(jobs))
                .expect("valid config");
            assert_bit_exact(&fast, &oracle, &format!("{} fast jobs={jobs}", cfg.name));
            match simulate(&cfg, &trace, &SimOptions::dual_check().jobs(jobs)) {
                Ok(dual) => assert_bit_exact(
                    &dual,
                    &oracle,
                    &format!("{} dual jobs={jobs}", cfg.name),
                ),
                Err(SimError::EngineDivergence(what)) => {
                    prop_assert!(false, "{}: dual-check divergence: {what}", cfg.name);
                }
                Err(e) => prop_assert!(false, "{}: unexpected error: {e}", cfg.name),
            }
        }
    }

    /// Repeated parallel runs of the same input are identical — catches
    /// merges that depend on thread completion order.
    #[test]
    fn repeated_parallel_runs_are_identical(
        cfg in config_strategy(),
        trace in proptest::collection::vec(request_strategy(), 1..30),
    ) {
        prop_assert!(cfg.validate().is_ok());
        let trace = TraceBuffer::from(trace);
        for engine in [EngineKind::Cycle, EngineKind::Fast] {
            let opts = SimOptions { engine, jobs: 4, ..SimOptions::default() };
            let first = simulate(&cfg, &trace, &opts).expect("valid config");
            for run in 0..5 {
                let again = simulate(&cfg, &trace, &opts).expect("valid config");
                assert_bit_exact(&again, &first, &format!("{} {engine:?} run={run}", cfg.name));
            }
        }
    }

    /// `jobs: 0` (auto) and `jobs: 1` (exact serial path) produce the
    /// same bits as any explicit worker count — the normalized `jobs`
    /// semantics regression property.
    #[test]
    fn jobs_zero_and_one_match_explicit_counts(
        cfg in config_strategy(),
        trace in proptest::collection::vec(request_strategy(), 0..30),
    ) {
        prop_assert!(cfg.validate().is_ok());
        let trace = TraceBuffer::from(trace);
        let serial = cycle_serial(&cfg, &trace);
        for engine in [EngineKind::Cycle, EngineKind::Fast] {
            for jobs in [0usize, 1] {
                let opts = SimOptions { engine, jobs, ..SimOptions::default() };
                let run = simulate(&cfg, &trace, &opts).expect("valid config");
                assert_bit_exact(&run, &serial, &format!("{} {engine:?} jobs={jobs}", cfg.name));
            }
        }
    }

    /// Timeline conservation: profiling must not perturb the model, and
    /// summing every `(window, lane)` cell must reproduce the aggregate
    /// `TraceStats` counters with exact integer equality — each burst's
    /// contribution is charged to exactly one window.
    #[test]
    fn profiled_timeline_conserves_aggregate_counters(
        cfg in config_strategy(),
        trace in proptest::collection::vec(request_strategy(), 0..40),
        window_cycles in 1u64..5000,
    ) {
        prop_assert!(cfg.validate().is_ok());
        let trace = TraceBuffer::from(trace);
        let plain = cycle_serial(&cfg, &trace);
        let mut profiled =
            simulate(&cfg, &trace, &SimOptions::cycle().profile(window_cycles))
                .expect("valid config");
        let timeline = profiled.timeline.take().expect("profile requested");
        prop_assert_eq!(&profiled, &plain, "profiling perturbed the run");
        let agg = timeline.aggregate();
        prop_assert_eq!(agg.bytes_read, plain.stats.bytes_read.get());
        prop_assert_eq!(agg.bytes_written, plain.stats.bytes_written.get());
        prop_assert_eq!(agg.activations, plain.stats.activations);
        prop_assert_eq!(agg.precharges, plain.stats.precharges);
        prop_assert_eq!(agg.row_hits, plain.stats.row_hits);
        prop_assert_eq!(agg.row_misses, plain.stats.row_misses);
        prop_assert_eq!(agg.refreshes, plain.stats.refreshes);
        // One data-bus slot per burst, and the FCFS queue waits
        // telescope per unit, so both derived counters are also exact.
        let bursts = plain.stats.row_hits + plain.stats.row_misses;
        prop_assert_eq!(agg.bus_busy_cycles, bursts * cfg.timing.t_burst);
        // Per-lane sums must equal the per-vault command counts.
        for (unit, v) in profiled.vaults.iter().enumerate() {
            let mut lane = WindowCounters::default();
            for (_, l, c) in timeline.iter() {
                if l == unit as u16 {
                    lane.merge(c);
                }
            }
            prop_assert_eq!(lane.activations, v.activations);
            prop_assert_eq!(lane.row_hits, v.row_hits);
            prop_assert_eq!(lane.row_misses, v.row_misses);
            prop_assert_eq!(lane.read_bursts_like(), v.read_bursts + v.write_bursts);
        }
    }

    /// Profiled runs are bit-identical across engine kinds and worker
    /// counts: same cells, same counters, same window width — the
    /// windowed reduction inherits the aggregate merge's determinism.
    #[test]
    fn profiled_runs_are_bit_identical_across_engines_and_jobs(
        cfg in config_strategy(),
        trace in proptest::collection::vec(request_strategy(), 0..40),
        window_cycles in 1u64..5000,
    ) {
        prop_assert!(cfg.validate().is_ok());
        let trace = TraceBuffer::from(trace);
        let serial = simulate(&cfg, &trace, &SimOptions::cycle().profile(window_cycles))
            .expect("valid config");
        for engine in [EngineKind::Cycle, EngineKind::Fast] {
            for jobs in [2usize, 4, 8] {
                let opts = SimOptions {
                    engine,
                    jobs,
                    profile: Some(window_cycles),
                    ..SimOptions::default()
                };
                let parallel = simulate(&cfg, &trace, &opts).expect("valid config");
                prop_assert_eq!(&parallel, &serial, "{} {:?} jobs={}", cfg.name, engine, jobs);
                assert_bit_exact(&parallel, &serial, &format!("{} {engine:?} jobs={jobs}", cfg.name));
            }
        }
    }
}

/// Row hits + misses per lane equal serviced bursts per lane; expressed
/// as a helper so the property above reads as the invariant it checks.
trait BurstCount {
    fn read_bursts_like(&self) -> u64;
}

impl BurstCount for WindowCounters {
    fn read_bursts_like(&self) -> u64 {
        self.row_hits + self.row_misses
    }
}

/// Fixed-config smoke tests, one per interleaving mode, with dense
/// same-row traffic that exercises row hits, conflicts, and refreshes —
/// for both engines and every worker count.
#[test]
fn fixed_configs_cover_every_mode() {
    let mut trace = TraceBuffer::new();
    for i in 0..2000u64 {
        trace.push(Request::read(i * 64 % (1 << 20), 64));
        if i % 3 == 0 {
            trace.push(Request::write(i * 8192, 256));
        }
    }
    let mappings = [
        AddressMapping::Interleaved {
            units: 4,
            banks_per_unit: 4,
            row_bytes: 2048,
            line_bytes: 64,
        },
        AddressMapping::XorInterleaved {
            units: 4,
            banks_per_unit: 4,
            row_bytes: 2048,
            line_bytes: 64,
        },
        AddressMapping::Asymmetric {
            low_units: 2,
            banks_per_unit: 4,
            row_bytes: 2048,
            line_bytes: 64,
            split: PhysAddr::new(1 << 19),
        },
    ];
    for mapping in mappings {
        let mut cfg = MemoryConfig::ddr_dual_channel();
        cfg.mapping = mapping;
        cfg.validate().expect("fixed config is valid");
        let serial = cycle_serial(&cfg, &trace);
        // The trace is long enough to produce real activity in each mode.
        assert!(serial.stats.row_hits > 0, "{:?}", cfg.mapping);
        assert!(serial.stats.row_misses > 0, "{:?}", cfg.mapping);
        for engine in [EngineKind::Cycle, EngineKind::Fast, EngineKind::DualCheck] {
            for jobs in [2usize, 4, 8] {
                let opts = SimOptions {
                    engine,
                    jobs,
                    ..SimOptions::default()
                };
                let run = simulate(&cfg, &trace, &opts).expect("valid config");
                assert_bit_exact(
                    &run,
                    &serial,
                    &format!("{:?} {engine:?} jobs={jobs}", cfg.mapping),
                );
            }
        }
    }
}

/// Per-vault counts must still sum to the aggregates after a parallel
/// merge (mirrors the serial-engine invariant test in `engine.rs`).
#[test]
fn parallel_vault_counts_sum_to_aggregates() {
    let cfg = MemoryConfig::hmc_stack();
    let trace: TraceBuffer = (0..4096u64).map(|i| Request::read(i * 256, 256)).collect();
    for engine in [EngineKind::Cycle, EngineKind::Fast] {
        let opts = SimOptions {
            engine,
            jobs: 8,
            ..SimOptions::default()
        };
        let run = simulate(&cfg, &trace, &opts).expect("valid config");
        assert_eq!(run.vaults.len(), cfg.mapping.units());
        let (mut reads, mut writes, mut acts, mut hits) = (0u64, 0u64, 0u64, 0u64);
        for v in &run.vaults {
            reads += v.read_bursts;
            writes += v.write_bursts;
            acts += v.activations;
            hits += v.row_hits;
        }
        assert_eq!(run.stats.row_hits + run.stats.row_misses, reads + writes);
        assert_eq!(run.stats.activations, acts);
        assert_eq!(run.stats.row_hits, hits);
        assert_eq!(run.latencies.count(), reads + writes);
    }
}
