//! Property tests over the DRAM simulator invariants.

use mealib_memsim::engine::{simulate, Op, Request, SimOptions};
use mealib_memsim::{analytic, AccessPattern, MemoryConfig, TraceBuffer};
use proptest::prelude::*;

/// Replays through the unified API in dual-check mode, so every corpus
/// trace also proves fast-vs-cycle bit-exactness.
fn replay(cfg: &MemoryConfig, trace: &[Request]) -> mealib_memsim::TraceStats {
    simulate(cfg, &TraceBuffer::from(trace), &SimOptions::dual_check())
        .expect("valid config")
        .stats
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (0u64..(1 << 24), 1u64..4096, any::<bool>()).prop_map(|(addr, bytes, write)| {
        if write {
            Request::write(addr, bytes)
        } else {
            Request::read(addr, bytes)
        }
    })
}

fn config_strategy() -> impl Strategy<Value = MemoryConfig> {
    prop_oneof![
        Just(MemoryConfig::hmc_stack()),
        Just(MemoryConfig::ddr_dual_channel()),
        Just(MemoryConfig::msas_dram()),
        Just(MemoryConfig::hmc_stack_remote()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every requested byte is accounted for, reads and writes
    /// separately, on every device.
    #[test]
    fn engine_conserves_bytes(
        cfg in config_strategy(),
        trace in proptest::collection::vec(request_strategy(), 0..40),
    ) {
        let stats = replay(&cfg, &trace);
        let want_read: u64 = trace.iter().filter(|r| r.op == Op::Read).map(|r| r.bytes).sum();
        let want_written: u64 =
            trace.iter().filter(|r| r.op == Op::Write).map(|r| r.bytes).sum();
        prop_assert_eq!(stats.bytes_read.get(), want_read);
        prop_assert_eq!(stats.bytes_written.get(), want_written);
        // Every burst either hit or missed; misses equal activations.
        prop_assert_eq!(stats.row_misses, stats.activations);
    }

    /// Appending requests never makes the trace finish earlier.
    #[test]
    fn engine_time_is_monotone_in_trace_length(
        trace in proptest::collection::vec(request_strategy(), 1..30),
    ) {
        let cfg = MemoryConfig::hmc_stack();
        let full = replay(&cfg, &trace);
        let prefix = replay(&cfg, &trace[..trace.len() - 1]);
        prop_assert!(full.cycles >= prefix.cycles);
        prop_assert!(full.energy.get() >= prefix.energy.get());
    }

    /// The engine is deterministic.
    #[test]
    fn engine_is_deterministic(
        cfg in config_strategy(),
        trace in proptest::collection::vec(request_strategy(), 0..30),
    ) {
        prop_assert_eq!(replay(&cfg, &trace), replay(&cfg, &trace));
    }

    /// Analytic estimates are finite, non-negative, and conserve bytes.
    #[test]
    fn analytic_estimates_are_sane(
        cfg in config_strategy(),
        read in 0u64..(1 << 32),
        written in 0u64..(1 << 32),
    ) {
        let s = analytic::try_estimate(&cfg, &AccessPattern::sequential_rw(read, written)).unwrap();
        prop_assert_eq!(s.bytes_read.get(), read);
        prop_assert_eq!(s.bytes_written.get(), written);
        prop_assert!(s.elapsed.get().is_finite() && s.elapsed.get() >= 0.0);
        prop_assert!(s.energy.get().is_finite() && s.energy.get() >= 0.0);
        if read + written > 0 {
            // Achieved bandwidth can never exceed the device peak.
            prop_assert!(
                s.achieved_bandwidth().get() <= cfg.peak_bandwidth().get() * 1.001,
                "bw {} above peak {}",
                s.achieved_bandwidth(),
                cfg.peak_bandwidth()
            );
        }
    }

    /// More data never takes less time in the analytic model.
    #[test]
    fn analytic_time_is_monotone_in_bytes(
        cfg in config_strategy(),
        a in 0u64..(1 << 30),
        b in 0u64..(1 << 30),
    ) {
        let (small, large) = (a.min(b), a.max(b));
        let ts = analytic::try_estimate(&cfg, &AccessPattern::sequential_read(small)).unwrap().elapsed;
        let tl = analytic::try_estimate(&cfg, &AccessPattern::sequential_read(large)).unwrap().elapsed;
        prop_assert!(tl >= ts);
    }

    /// Strided accesses never beat the sequential stream over the same
    /// number of useful bytes.
    #[test]
    fn strided_never_beats_sequential(
        stride in 64u64..65536,
        count in 1u64..4096,
    ) {
        let cfg = MemoryConfig::ddr_dual_channel();
        let strided = analytic::try_estimate(
            &cfg,
            &AccessPattern::Strided { stride, elem_bytes: 4, count, write: false },
        )
        .unwrap();
        let seq = analytic::try_estimate(&cfg, &AccessPattern::sequential_read(4 * count)).unwrap();
        prop_assert!(
            strided.elapsed.get() >= seq.elapsed.get() * 0.99,
            "strided {} beat sequential {}",
            strided.elapsed,
            seq.elapsed
        );
    }
}
