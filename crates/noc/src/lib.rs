//! 2D-mesh network-on-chip simulator for the MEALib accelerator layer.
//!
//! Figure 4 of the paper organizes the accelerator tiles "as a traditional
//! mesh network" with a Network Controller (NC) per tile; the NoC carries
//! configuration traffic from the centralized Configuration Unit and
//! inter-tile data for chained accelerators. This crate models that mesh:
//! dimension-ordered (XY) routing, per-link serialization, per-hop router
//! latency, and a flit-level energy model whose budget matches the
//! "NoC (router + link): 0.095 W / 1.44 mm²" row of Table 5.
//!
//! # Examples
//!
//! ```
//! use mealib_noc::{Mesh, Packet, TileId};
//!
//! let mesh = Mesh::mealib_layer(); // 4x8: one tile per vault
//! let stats = mesh.simulate(&[Packet::new(TileId::new(0, 0), TileId::new(3, 7), 256)]);
//! assert!(stats.cycles.get() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;

use mealib_obs::timeline::{Timeline, WindowCounters};
use mealib_types::{ConfigError, Cycles, Hertz, Joules, Seconds, Watts};

/// Coordinates of a tile in the mesh (row-major).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TileId {
    /// Row (y coordinate).
    pub row: usize,
    /// Column (x coordinate).
    pub col: usize,
}

impl TileId {
    /// Creates a tile id from row and column.
    pub const fn new(row: usize, col: usize) -> Self {
        Self { row, col }
    }

    /// Manhattan distance in hops to `other`.
    pub fn hops_to(&self, other: TileId) -> usize {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// A message from one tile to another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Source tile.
    pub src: TileId,
    /// Destination tile.
    pub dst: TileId,
    /// Payload size in bytes.
    pub bytes: u64,
}

impl Packet {
    /// Creates a packet.
    pub const fn new(src: TileId, dst: TileId, bytes: u64) -> Self {
        Self { src, dst, bytes }
    }
}

/// A directed link between two adjacent routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct LinkId {
    from: TileId,
    to: TileId,
}

/// Aggregate result of pushing a batch of packets through the mesh.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NocStats {
    /// Cycles until the last flit arrived.
    pub cycles: Cycles,
    /// Wall-clock equivalent at the mesh clock.
    pub elapsed: Seconds,
    /// Total flits injected.
    pub flits: u64,
    /// Total link traversals (flits × hops).
    pub flit_hops: u64,
    /// Dynamic + leakage energy.
    pub energy: Joules,
}

impl NocStats {
    /// Records this transfer's flit counters into an observability
    /// handle. Credits are one per flit per link in this wormhole
    /// model, i.e. equal to the flit-hop count. A no-op when recording
    /// is off.
    pub fn record_into(&self, obs: &mealib_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        obs.count(mealib_obs::Counter::NocFlits, self.flits);
        obs.count(mealib_obs::Counter::NocFlitHops, self.flit_hops);
        obs.count(mealib_obs::Counter::NocCredits, self.flit_hops);
    }
}

/// A 2D mesh NoC with XY routing.
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh {
    rows: usize,
    cols: usize,
    /// Payload bytes per flit.
    flit_bytes: u64,
    /// Pipeline latency of one router traversal, cycles.
    router_latency: u64,
    /// Mesh clock.
    clock: Hertz,
    /// Dynamic energy per flit per hop (link + router switching).
    e_flit_hop: Joules,
    /// Static power of all routers and links together.
    p_static: Watts,
}

impl Mesh {
    /// Creates a mesh with explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any dimension or rate parameter is
    /// zero.
    pub fn new(
        rows: usize,
        cols: usize,
        flit_bytes: u64,
        router_latency: u64,
        clock: Hertz,
    ) -> Result<Self, ConfigError> {
        if rows == 0 || cols == 0 {
            return Err(ConfigError::new(
                "rows/cols",
                "mesh dimensions must be nonzero",
            ));
        }
        if flit_bytes == 0 {
            return Err(ConfigError::new("flit_bytes", "must be nonzero"));
        }
        if router_latency == 0 {
            return Err(ConfigError::new("router_latency", "must be nonzero"));
        }
        if clock.get() <= 0.0 {
            return Err(ConfigError::new("clock", "must be positive"));
        }
        Ok(Self {
            rows,
            cols,
            flit_bytes,
            router_latency,
            clock,
            e_flit_hop: Joules::from_picos(1.2),
            p_static: Watts::new(0.02),
        })
    }

    /// The accelerator-layer mesh of the paper: one tile per vault
    /// (32 vaults → 4×8), 16-byte flits, 2-cycle routers at 1 GHz, with
    /// energy constants sized to the Table 5 NoC budget (0.095 W under
    /// load).
    pub fn mealib_layer() -> Self {
        Self::new(4, 8, 16, 2, Hertz::from_ghz(1.0)).expect("static parameters are valid")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of tiles.
    pub fn tiles(&self) -> usize {
        self.rows * self.cols
    }

    /// Returns `true` if the tile exists in this mesh.
    pub fn contains(&self, t: TileId) -> bool {
        t.row < self.rows && t.col < self.cols
    }

    /// The XY route from `src` to `dst`: first along the row (X/columns),
    /// then along the column (Y/rows). Returns the sequence of tiles
    /// *visited after* `src` (empty when `src == dst`).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the mesh.
    pub fn route(&self, src: TileId, dst: TileId) -> Vec<TileId> {
        assert!(self.contains(src), "source tile outside mesh");
        assert!(self.contains(dst), "destination tile outside mesh");
        let mut path = Vec::with_capacity(src.hops_to(dst));
        let mut cur = src;
        while cur.col != dst.col {
            cur.col = if dst.col > cur.col {
                cur.col + 1
            } else {
                cur.col - 1
            };
            path.push(cur);
        }
        while cur.row != dst.row {
            cur.row = if dst.row > cur.row {
                cur.row + 1
            } else {
                cur.row - 1
            };
            path.push(cur);
        }
        path
    }

    /// Pushes a batch of packets (all injected at cycle 0) through the
    /// mesh and returns aggregate statistics. Links serialize flits;
    /// packets are processed in order, wormhole-style (a packet's flits
    /// stream back to back unless a link is busy).
    ///
    /// # Panics
    ///
    /// Panics if any packet endpoint is outside the mesh.
    pub fn simulate(&self, packets: &[Packet]) -> NocStats {
        self.simulate_impl(packets, None)
    }

    /// Like [`Mesh::simulate`], additionally accumulating a
    /// cycle-windowed [`Timeline`]: per window, the flits whose tail
    /// traversed a link (`noc_flits`, lane = destination-router tile
    /// index) and the cycles flit heads stalled waiting for link credit
    /// (`noc_credit_stalls`). Windows cover `[w·W, (w+1)·W)` mesh-clock
    /// cycles over each hop's tail-arrival time.
    ///
    /// # Panics
    ///
    /// Panics if any packet endpoint is outside the mesh or
    /// `window_cycles` is zero.
    pub fn simulate_profiled(
        &self,
        packets: &[Packet],
        window_cycles: u64,
    ) -> (NocStats, Timeline) {
        let mut timeline = Timeline::new(window_cycles);
        let stats = self.simulate_impl(packets, Some(&mut timeline));
        (stats, timeline)
    }

    /// Shared simulation core. The disabled profiling path costs one
    /// `Option` discriminant check per hop.
    fn simulate_impl(&self, packets: &[Packet], mut timeline: Option<&mut Timeline>) -> NocStats {
        use std::collections::HashMap;
        let mut link_free: HashMap<LinkId, u64> = HashMap::new();
        let mut stats = NocStats::default();
        let mut last_arrival = 0u64;

        for p in packets {
            let flits = p.bytes.div_ceil(self.flit_bytes).max(1);
            let path = self.route(p.src, p.dst);
            stats.flits += flits;
            stats.flit_hops += flits * path.len() as u64;
            if path.is_empty() {
                // Local delivery still pays one router traversal.
                last_arrival = last_arrival.max(self.router_latency);
                continue;
            }
            // Head flit advances hop by hop; the body streams behind it.
            let mut head_time = 0u64;
            let mut prev = p.src;
            let mut tail_time = 0u64;
            for hop in &path {
                let link = LinkId {
                    from: prev,
                    to: *hop,
                };
                let free = link_free.get(&link).copied().unwrap_or(0);
                let stalled = free.saturating_sub(head_time);
                head_time = head_time.max(free) + self.router_latency;
                // The link is busy until every flit of this packet passed.
                tail_time = head_time + flits - 1;
                link_free.insert(link, tail_time + 1);
                if let Some(tl) = timeline.as_deref_mut() {
                    let lane = (hop.row * self.cols + hop.col) as u16;
                    tl.record(
                        tail_time,
                        lane,
                        &WindowCounters {
                            noc_flits: flits,
                            noc_credit_stalls: stalled,
                            ..WindowCounters::default()
                        },
                    );
                }
                prev = *hop;
            }
            last_arrival = last_arrival.max(tail_time);
        }

        stats.cycles = Cycles::new(last_arrival);
        stats.elapsed = stats.cycles.at(self.clock);
        stats.energy =
            self.e_flit_hop * stats.flit_hops as f64 + self.p_static.for_duration(stats.elapsed);
        stats
    }

    /// Cost of broadcasting `bytes` from tile `src` to every other tile
    /// (the Configuration Unit's descriptor distribution).
    pub fn broadcast(&self, src: TileId, bytes: u64) -> NocStats {
        let packets: Vec<Packet> = (0..self.rows)
            .flat_map(|r| (0..self.cols).map(move |c| TileId::new(r, c)))
            .filter(|&t| t != src)
            .map(|t| Packet::new(src, t, bytes))
            .collect();
        self.simulate(&packets)
    }

    /// Cost of gathering `bytes` of completion status from every tile
    /// back to `dst` (the Decode Unit's pass-completion monitoring,
    /// §2.2: "The DU monitors the status of the last accelerator in the
    /// pass").
    pub fn gather(&self, dst: TileId, bytes: u64) -> NocStats {
        let packets: Vec<Packet> = (0..self.rows)
            .flat_map(|r| (0..self.cols).map(move |c| TileId::new(r, c)))
            .filter(|&t| t != dst)
            .map(|t| Packet::new(t, dst, bytes))
            .collect();
        self.simulate(&packets)
    }

    /// The mesh clock (anchors profiled timelines to modeled time).
    pub fn clock(&self) -> Hertz {
        self.clock
    }

    /// Static (idle) power of the mesh.
    pub fn static_power(&self) -> Watts {
        self.p_static
    }

    /// Average power of the mesh while executing `stats`'s traffic.
    pub fn average_power(&self, stats: &NocStats) -> Watts {
        stats.energy.over(stats.elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_xy_ordered() {
        let m = Mesh::mealib_layer();
        let path = m.route(TileId::new(0, 0), TileId::new(2, 3));
        assert_eq!(path.len(), 5);
        // X first: columns advance before rows.
        assert_eq!(path[0], TileId::new(0, 1));
        assert_eq!(path[2], TileId::new(0, 3));
        assert_eq!(path[3], TileId::new(1, 3));
        assert_eq!(path[4], TileId::new(2, 3));
    }

    #[test]
    fn route_to_self_is_empty() {
        let m = Mesh::mealib_layer();
        assert!(m.route(TileId::new(1, 1), TileId::new(1, 1)).is_empty());
    }

    #[test]
    fn route_handles_negative_directions() {
        let m = Mesh::mealib_layer();
        let path = m.route(TileId::new(3, 7), TileId::new(0, 0));
        assert_eq!(path.len(), 10);
        assert_eq!(*path.last().unwrap(), TileId::new(0, 0));
    }

    #[test]
    fn single_packet_latency_is_hops_plus_serialization() {
        let m = Mesh::mealib_layer(); // 16B flits, 2-cycle routers
        let s = m.simulate(&[Packet::new(TileId::new(0, 0), TileId::new(0, 2), 64)]);
        // 4 flits, 2 hops: head arrives at 2*2=4, tail 3 flits later.
        assert_eq!(s.cycles.get(), 7);
        assert_eq!(s.flits, 4);
        assert_eq!(s.flit_hops, 8);
    }

    #[test]
    fn contended_link_serializes() {
        let m = Mesh::mealib_layer();
        let a = Packet::new(TileId::new(0, 0), TileId::new(0, 1), 160); // 10 flits
        let lone = m.simulate(&[a]);
        let pair = m.simulate(&[a, a]);
        assert!(
            pair.cycles.get() >= lone.cycles.get() + 10,
            "second packet must wait: {} vs {}",
            pair.cycles,
            lone.cycles
        );
    }

    #[test]
    fn disjoint_paths_run_in_parallel() {
        let m = Mesh::mealib_layer();
        let a = Packet::new(TileId::new(0, 0), TileId::new(0, 1), 160);
        let b = Packet::new(TileId::new(3, 0), TileId::new(3, 1), 160);
        let lone = m.simulate(&[a]);
        let pair = m.simulate(&[a, b]);
        assert_eq!(pair.cycles, lone.cycles, "no shared links, no slowdown");
    }

    #[test]
    fn broadcast_reaches_all_tiles() {
        let m = Mesh::mealib_layer();
        let s = m.broadcast(TileId::new(0, 0), 64);
        // 31 destinations x 4 flits.
        assert_eq!(s.flits, 31 * 4);
        assert!(s.cycles.get() > 0);
    }

    #[test]
    fn gather_mirrors_broadcast_flit_counts() {
        let m = Mesh::mealib_layer();
        let g = m.gather(TileId::new(0, 0), 16);
        let b = m.broadcast(TileId::new(0, 0), 16);
        assert_eq!(g.flits, b.flits);
        // Fan-in converges on the destination's links: comparable
        // serialization to the fan-out.
        assert!(g.cycles.get() * 2 >= b.cycles.get());
    }

    #[test]
    fn noc_counters_record_into_obs() {
        use mealib_obs::{Counter, Obs, TraceRecorder};
        let m = Mesh::mealib_layer();
        let s = m.broadcast(TileId::new(0, 0), 64);
        let rec = TraceRecorder::shared();
        s.record_into(&Obs::new(rec.clone()));
        let bd = rec.breakdown();
        assert_eq!(bd.counter(Counter::NocFlits), s.flits);
        assert_eq!(bd.counter(Counter::NocFlitHops), s.flit_hops);
        assert_eq!(bd.counter(Counter::NocCredits), s.flit_hops);
    }

    #[test]
    fn profiled_simulation_matches_plain_and_conserves_flits() {
        let m = Mesh::mealib_layer();
        let packets: Vec<Packet> = (0..16)
            .map(|i| Packet::new(TileId::new(0, 0), TileId::new(3, i % 8), 256))
            .collect();
        let plain = m.simulate(&packets);
        let (stats, timeline) = m.simulate_profiled(&packets, 8);
        assert_eq!(stats, plain, "profiling must not perturb the model");
        // Conservation: windowed flit counts sum to flit-hops (one cell
        // contribution per link traversal).
        let agg = timeline.aggregate();
        assert_eq!(agg.noc_flits, plain.flit_hops);
        assert!(agg.noc_credit_stalls > 0, "contended fan-out must stall");
        // Lanes are router tile indices.
        let tiles = m.tiles() as u16;
        assert!(timeline.lanes().iter().all(|&l| l < tiles));
        // No window lies beyond the last arrival.
        assert!(timeline.num_windows() * 8 <= plain.cycles.get() + 8);
    }

    #[test]
    fn uncontended_profile_has_no_stalls() {
        let m = Mesh::mealib_layer();
        let (_, timeline) =
            m.simulate_profiled(&[Packet::new(TileId::new(0, 0), TileId::new(0, 3), 64)], 4);
        assert_eq!(timeline.aggregate().noc_credit_stalls, 0);
        assert!(timeline.aggregate().noc_flits > 0);
    }

    #[test]
    fn local_delivery_pays_router_latency_only() {
        let m = Mesh::mealib_layer();
        let s = m.simulate(&[Packet::new(TileId::new(1, 1), TileId::new(1, 1), 64)]);
        assert_eq!(s.cycles.get(), 2);
        assert_eq!(s.flit_hops, 0);
    }

    #[test]
    fn noc_power_stays_within_table5_budget() {
        // Saturate one link for a long time; average power must stay in
        // the neighbourhood of the 0.095 W Table 5 row.
        let m = Mesh::mealib_layer();
        let packets: Vec<Packet> = (0..64)
            .map(|_| Packet::new(TileId::new(0, 0), TileId::new(3, 7), 4096))
            .collect();
        let s = m.simulate(&packets);
        let p = m.average_power(&s).get();
        assert!(p < 0.2, "NoC power {p} W exceeds budget headroom");
        assert!(p > 0.02, "NoC under load should burn dynamic power: {p} W");
    }

    #[test]
    fn mesh_validation() {
        assert!(Mesh::new(0, 4, 16, 2, Hertz::from_ghz(1.0)).is_err());
        assert!(Mesh::new(4, 4, 0, 2, Hertz::from_ghz(1.0)).is_err());
        assert!(Mesh::new(4, 4, 16, 0, Hertz::from_ghz(1.0)).is_err());
        assert!(Mesh::new(4, 4, 16, 2, Hertz::new(0.0)).is_err());
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn route_rejects_out_of_bounds() {
        let m = Mesh::mealib_layer();
        let _ = m.route(TileId::new(0, 0), TileId::new(9, 9));
    }

    #[test]
    fn hops_metric() {
        assert_eq!(TileId::new(0, 0).hops_to(TileId::new(2, 3)), 5);
        assert_eq!(TileId::new(2, 3).hops_to(TileId::new(2, 3)), 0);
    }
}
