//! Property tests over the mesh NoC.

use mealib_noc::{Mesh, Packet, TileId};
use proptest::prelude::*;

fn tile() -> impl Strategy<Value = TileId> {
    (0usize..4, 0usize..8).prop_map(|(r, c)| TileId::new(r, c))
}

fn packet() -> impl Strategy<Value = Packet> {
    (tile(), tile(), 1u64..4096).prop_map(|(src, dst, bytes)| Packet::new(src, dst, bytes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// XY routes have exactly Manhattan-distance hops, stay in bounds,
    /// and end at the destination.
    #[test]
    fn routes_are_minimal_and_in_bounds(src in tile(), dst in tile()) {
        let mesh = Mesh::mealib_layer();
        let path = mesh.route(src, dst);
        prop_assert_eq!(path.len(), src.hops_to(dst));
        let mut prev = src;
        for hop in &path {
            prop_assert!(mesh.contains(*hop));
            prop_assert_eq!(prev.hops_to(*hop), 1, "non-adjacent hop");
            prev = *hop;
        }
        if !path.is_empty() {
            prop_assert_eq!(*path.last().unwrap(), dst);
        }
    }

    /// Simulation accounts for every flit and never finishes before the
    /// longest single packet would alone.
    #[test]
    fn simulation_conserves_flits(packets in proptest::collection::vec(packet(), 0..20)) {
        let mesh = Mesh::mealib_layer();
        let stats = mesh.simulate(&packets);
        let want_flits: u64 = packets.iter().map(|p| p.bytes.div_ceil(16).max(1)).sum();
        prop_assert_eq!(stats.flits, want_flits);
        for p in &packets {
            let alone = mesh.simulate(std::slice::from_ref(p));
            prop_assert!(
                stats.cycles >= alone.cycles,
                "batch finished before its slowest member"
            );
        }
    }

    /// Adding a packet never reduces total latency or energy.
    #[test]
    fn more_traffic_never_helps(packets in proptest::collection::vec(packet(), 1..15)) {
        let mesh = Mesh::mealib_layer();
        let full = mesh.simulate(&packets);
        let fewer = mesh.simulate(&packets[..packets.len() - 1]);
        prop_assert!(full.cycles >= fewer.cycles);
        prop_assert!(full.flit_hops >= fewer.flit_hops);
    }

    /// The mesh is deterministic.
    #[test]
    fn simulation_is_deterministic(packets in proptest::collection::vec(packet(), 0..15)) {
        let mesh = Mesh::mealib_layer();
        prop_assert_eq!(mesh.simulate(&packets), mesh.simulate(&packets));
    }
}
