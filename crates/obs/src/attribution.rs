//! Roofline bottleneck attribution.
//!
//! [`Attribution::classify`] tiles a run's modeled time `[0, total)` into
//! fixed-width windows and labels each one with the resource that bound
//! it, generalizing the paper's Fig. 14 phase totals to "which resource
//! bound the run, *when*". Windows are built contiguously — each window's
//! start is the previous window's end and the last end is exactly
//! `total` — so coverage of modeled time is 100% by construction.
//!
//! Classification of a window `[a, b)`:
//!
//! 1. Overlap-weight the profile's phase intervals against the window:
//!    `Compute` time counts toward compute, `Dma` toward bandwidth, and
//!    `Plan`/`Encode`/`Verify`/`Flush`/`Drain` toward overhead.
//! 2. If DRAM timelines place enough traffic in the window that achieved
//!    bandwidth exceeds [`BANDWIDTH_SATURATION`] of the roofline peak,
//!    the window is bandwidth-bound outright.
//! 3. Otherwise the largest of the three occupancy buckets wins
//!    (bandwidth > compute > overhead on ties).
//! 4. A window whose occupancy is below [`IDLE_OCCUPANCY`] of its width
//!    is idle.

use mealib_types::{BytesPerSec, Seconds};

use crate::json::{array, Object};
use crate::profile::Profile;
use crate::Phase;

/// A window is bandwidth-bound outright when achieved DRAM bandwidth
/// exceeds this fraction of the roofline peak.
pub const BANDWIDTH_SATURATION: f64 = 0.5;

/// A window is idle when phase intervals occupy less than this fraction
/// of it.
pub const IDLE_OCCUPANCY: f64 = 0.05;

/// The resource that bound one window of modeled time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Bound {
    /// Memory traffic dominated (DMA/streaming phases, or achieved
    /// bandwidth near the roofline peak).
    Bandwidth,
    /// PE/host arithmetic dominated.
    Compute,
    /// Control phases dominated: plan, encode, verify, flush, drain.
    Overhead,
    /// Nothing was modeled as running.
    Idle,
}

impl Bound {
    /// All variants, in display order.
    pub const ALL: [Bound; 4] = [
        Bound::Bandwidth,
        Bound::Compute,
        Bound::Overhead,
        Bound::Idle,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Bound::Bandwidth => "bandwidth",
            Bound::Compute => "compute",
            Bound::Overhead => "overhead",
            Bound::Idle => "idle",
        }
    }
}

/// The platform roofline a run is classified against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak memory bandwidth.
    pub peak_bandwidth: BytesPerSec,
    /// Peak arithmetic throughput, FLOP/s.
    pub peak_flops: f64,
}

impl Roofline {
    /// Builds a roofline from its two peaks.
    pub fn new(peak_bandwidth: BytesPerSec, peak_flops: f64) -> Self {
        Self {
            peak_bandwidth,
            peak_flops,
        }
    }

    /// Arithmetic intensity (FLOP/byte) at the ridge point.
    pub fn ridge_intensity(&self) -> f64 {
        if self.peak_bandwidth.get() > 0.0 {
            self.peak_flops / self.peak_bandwidth.get()
        } else {
            f64::INFINITY
        }
    }
}

/// One classified window of modeled time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundWindow {
    /// Window start, modeled seconds.
    pub start: Seconds,
    /// Window end, modeled seconds.
    pub end: Seconds,
    /// The winning resource.
    pub bound: Bound,
    /// Achieved DRAM bandwidth in the window as a fraction of the
    /// roofline peak (0 when no timeline covers the window).
    pub bandwidth_utilization: f64,
}

impl BoundWindow {
    /// Window duration.
    pub fn duration(&self) -> Seconds {
        Seconds::new(self.end.get() - self.start.get())
    }
}

/// A per-run bottleneck attribution: every window of modeled time,
/// classified.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Attribution {
    /// Classified windows, contiguous and ascending; empty only for a
    /// zero-length run.
    pub windows: Vec<BoundWindow>,
    /// Total modeled time covered.
    pub total: Seconds,
}

impl Attribution {
    /// Classifies `profile` against `roofline` using windows of width
    /// `window` (clamped to at least `total / 4096` to bound the window
    /// count; a non-positive `window` yields a single window).
    pub fn classify(profile: &Profile, roofline: &Roofline, window: Seconds) -> Attribution {
        let total = profile.end_time();
        if total.get() <= 0.0 {
            return Attribution {
                windows: Vec::new(),
                total: Seconds::new(0.0),
            };
        }
        let width = if window.get() > 0.0 {
            window.get().max(total.get() / 4096.0)
        } else {
            total.get()
        };

        let mut windows = Vec::new();
        let mut start = 0.0f64;
        while start < total.get() {
            let end = (start + width).min(total.get());
            windows.push(Self::classify_window(profile, roofline, start, end));
            start = end;
        }
        // Contiguity is structural (each start is the previous end), and
        // the loop's exit condition pins the last end to `total`.
        if let Some(last) = windows.last_mut() {
            last.end = total;
        }
        Attribution { windows, total }
    }

    fn classify_window(profile: &Profile, roofline: &Roofline, a: f64, b: f64) -> BoundWindow {
        let overlap = |s: f64, e: f64| -> f64 { (e.min(b) - s.max(a)).max(0.0) };

        let (mut bw_t, mut compute_t, mut overhead_t) = (0.0f64, 0.0f64, 0.0f64);
        for iv in &profile.intervals {
            let t = overlap(iv.start.get(), iv.end.get());
            if t <= 0.0 {
                continue;
            }
            match iv.phase {
                Phase::Dma => bw_t += t,
                Phase::Compute => compute_t += t,
                Phase::Plan | Phase::Encode | Phase::Verify | Phase::Flush | Phase::Drain => {
                    overhead_t += t;
                }
            }
        }

        // Pro-rate windowed DRAM traffic into [a, b) by interval overlap.
        let mut bytes = 0.0f64;
        for tl in &profile.timelines {
            let wdur = tl.window_duration().get();
            if wdur <= 0.0 {
                continue;
            }
            for (w, _, c) in tl.timeline.iter() {
                let ws = tl.window_start(w).get();
                let frac = overlap(ws, ws + wdur) / wdur;
                if frac > 0.0 {
                    bytes += frac * c.bytes_moved() as f64;
                }
            }
        }
        let width = b - a;
        let peak = roofline.peak_bandwidth.get();
        let bw_util = if peak > 0.0 && width > 0.0 {
            bytes / (peak * width)
        } else {
            0.0
        };

        let busy = bw_t + compute_t + overhead_t;
        let bound = if busy < IDLE_OCCUPANCY * width && bw_util < IDLE_OCCUPANCY {
            Bound::Idle
        } else if bw_util >= BANDWIDTH_SATURATION || (bw_t >= compute_t && bw_t >= overhead_t) {
            Bound::Bandwidth
        } else if compute_t >= overhead_t {
            Bound::Compute
        } else {
            Bound::Overhead
        };

        BoundWindow {
            start: Seconds::new(a),
            end: Seconds::new(b),
            bound,
            bandwidth_utilization: bw_util,
        }
    }

    /// Fraction of modeled time attributed to `bound`.
    pub fn share(&self, bound: Bound) -> f64 {
        if self.total.get() <= 0.0 {
            return 0.0;
        }
        let t: f64 = self
            .windows
            .iter()
            .filter(|w| w.bound == bound)
            .map(|w| w.duration().get())
            .sum();
        t / self.total.get()
    }

    /// The bound with the largest time share (`Idle` for an empty run).
    pub fn dominant(&self) -> Bound {
        Bound::ALL
            .into_iter()
            .max_by(|x, y| {
                self.share(*x)
                    .partial_cmp(&self.share(*y))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(Bound::Idle)
    }

    /// Fraction of `[0, total)` covered by windows. Windows are
    /// contiguous from zero, so this is exactly 1.0 for any nonzero run
    /// (and 1.0 by convention for a zero-length run).
    pub fn coverage(&self) -> f64 {
        if self.total.get() <= 0.0 {
            return 1.0;
        }
        match (self.windows.first(), self.windows.last()) {
            (Some(first), Some(last)) => (last.end.get() - first.start.get()) / self.total.get(),
            _ => 0.0,
        }
    }

    /// Renders the attribution summary as a JSON object.
    pub fn to_json(&self) -> String {
        let mut shares = Object::new();
        for b in Bound::ALL {
            shares.num(b.name(), self.share(b));
        }
        let windows: Vec<String> = self
            .windows
            .iter()
            .map(|w| {
                let mut o = Object::new();
                o.num("start_s", w.start.get());
                o.num("end_s", w.end.get());
                o.str("bound", w.bound.name());
                o.num("bw_util", w.bandwidth_utilization);
                o.render()
            })
            .collect();
        let mut o = Object::new();
        o.num("total_s", self.total.get());
        o.str("dominant", self.dominant().name());
        o.raw("shares", shares.render());
        o.raw("windows", array(&windows));
        o.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{Timeline, WindowCounters};

    fn roofline() -> Roofline {
        // 25.6 GB/s, 112 GFLOP/s: the paper's Haswell host.
        Roofline::new(BytesPerSec::new(25.6e9), 112e9)
    }

    fn s(x: f64) -> Seconds {
        Seconds::new(x)
    }

    #[test]
    fn empty_profile_has_full_coverage_by_convention() {
        let a = Attribution::classify(&Profile::new(), &roofline(), s(1e-6));
        assert!(a.windows.is_empty());
        assert_eq!(a.coverage(), 1.0);
        assert_eq!(a.dominant(), Bound::Idle);
    }

    #[test]
    fn windows_tile_modeled_time_exactly() {
        let mut p = Profile::new();
        p.interval("t", Phase::Compute, "c", s(0.0), s(10e-6));
        // A window width that does not divide the total.
        let a = Attribution::classify(&p, &roofline(), s(3e-6));
        assert_eq!(a.windows.len(), 4);
        assert_eq!(a.coverage(), 1.0);
        assert_eq!(a.windows[0].start.get(), 0.0);
        assert_eq!(a.windows.last().unwrap().end.get(), a.total.get());
        for pair in a.windows.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "windows must be contiguous");
        }
        assert_eq!(a.dominant(), Bound::Compute);
        assert!((a.share(Bound::Compute) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_mix_classifies_per_window() {
        let mut p = Profile::new();
        let c = p.interval("t", Phase::Dma, "stream", s(0.0), s(4e-6));
        let c = p.interval("t", Phase::Compute, "fft", c, s(4e-6));
        p.interval("t", Phase::Flush, "flush", c, s(4e-6));
        let a = Attribution::classify(&p, &roofline(), s(4e-6));
        let bounds: Vec<Bound> = a.windows.iter().map(|w| w.bound).collect();
        assert_eq!(
            bounds,
            vec![Bound::Bandwidth, Bound::Compute, Bound::Overhead]
        );
    }

    #[test]
    fn saturated_traffic_promotes_to_bandwidth_bound() {
        let mut p = Profile::new();
        // Nominally compute-labeled, but the timeline shows the DRAM
        // pinned at ~78% of the 25.6 GB/s peak.
        p.interval("t", Phase::Compute, "c", s(0.0), s(1e-6));
        let mut tl = Timeline::new(1000);
        tl.record(
            500,
            0,
            &WindowCounters {
                bytes_read: 20_000,
                ..WindowCounters::default()
            },
        );
        p.push_timeline("dram", tl, Seconds::from_nanos(1.0), s(0.0));
        let a = Attribution::classify(&p, &roofline(), s(1e-6));
        assert_eq!(a.windows[0].bound, Bound::Bandwidth);
        assert!(a.windows[0].bandwidth_utilization > BANDWIDTH_SATURATION);
    }

    #[test]
    fn gaps_between_intervals_are_idle() {
        let mut p = Profile::new();
        p.interval("t", Phase::Compute, "c", s(0.0), s(1e-6));
        p.intervals.push(crate::profile::IntervalEvent {
            track: "t".into(),
            phase: Phase::Compute,
            label: "late".into(),
            start: s(9e-6),
            end: s(10e-6),
        });
        let a = Attribution::classify(&p, &roofline(), s(1e-6));
        assert_eq!(a.windows.len(), 10);
        assert_eq!(a.windows[5].bound, Bound::Idle);
        assert!(a.share(Bound::Idle) > 0.7);
    }

    #[test]
    fn json_summary_parses() {
        let mut p = Profile::new();
        p.interval("t", Phase::Dma, "d", s(0.0), s(2e-6));
        let a = Attribution::classify(&p, &roofline(), s(1e-6));
        let v = crate::json::parse(&a.to_json()).expect("valid JSON");
        let o = v.as_object().expect("object");
        assert_eq!(o["dominant"].as_str(), Some("bandwidth"));
        assert_eq!(o["windows"].as_array().unwrap().len(), 2);
    }
}
