//! The versioned `BENCH_*.json` summary schema.
//!
//! Schema v1 is the perf-trajectory interchange format: one document per
//! benchmark sweep, one record per harness, scalar metrics only, plus an
//! optional harness wall time per record:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "generated_by": "scripts/bench_smoke.sh",
//!   "benches": [
//!     {"bench": "fig09_performance",
//!      "metrics": {"avg_speedup": 23.6, ...},
//!      "wall_s": 1.42}
//!   ]
//! }
//! ```
//!
//! Earlier BENCH files (`BENCH_pr2.json`, `BENCH_pr4.json`) predate the
//! version field; [`BenchSummary::parse`] accepts that legacy shape and
//! converts it on the fly, which is also how `meaperf --convert` migrates
//! files on disk. Metrics keyed with a `wall_s` suffix are treated as
//! wall-clock measurements by the trajectory gate (report-only on
//! single-CPU CI); everything else is a modeled metric and gates hard.

use crate::json::{array, parse, Object, Value};

/// Current schema version emitted by the tooling.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// One harness record: name, scalar metrics, optional harness wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Harness name, e.g. `"fig09_performance"`.
    pub bench: String,
    /// Scalar metrics in deterministic (sorted) key order.
    pub metrics: Vec<(String, f64)>,
    /// Harness wall-clock seconds, when measured.
    pub wall_s: Option<f64>,
}

impl BenchRecord {
    /// Looks up one metric by key.
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// True when `key` names a wall-clock measurement (or a metric
    /// derived from one, like a measured-throughput `*per_sec*` rate)
    /// rather than a modeled metric.
    pub fn is_wall_metric(key: &str) -> bool {
        key.ends_with("wall_s") || key.ends_with("_wall") || key.contains("per_sec")
    }
}

/// A parsed, schema-versioned BENCH summary document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSummary {
    /// Schema version of the source document (legacy files parse as 0).
    pub schema_version: u64,
    /// Producer string.
    pub generated_by: String,
    /// Per-harness records, document order.
    pub benches: Vec<BenchRecord>,
}

impl BenchSummary {
    /// Starts an empty v1 summary.
    pub fn new(generated_by: &str) -> Self {
        Self {
            schema_version: BENCH_SCHEMA_VERSION,
            generated_by: generated_by.to_string(),
            benches: Vec::new(),
        }
    }

    /// Looks up a record by harness name.
    pub fn bench(&self, name: &str) -> Option<&BenchRecord> {
        self.benches.iter().find(|b| b.bench == name)
    }

    /// Looks up one metric of one harness.
    pub fn metric(&self, bench: &str, key: &str) -> Option<f64> {
        self.bench(bench).and_then(|b| b.metric(key))
    }

    /// True when the source document carried no `schema_version`.
    pub fn is_legacy(&self) -> bool {
        self.schema_version == 0
    }

    /// Parses a BENCH document — schema v1 or the legacy unversioned
    /// shape (which is converted in place, `schema_version` reported
    /// as 0).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: invalid
    /// JSON, unsupported future version, or a malformed record.
    pub fn parse(text: &str) -> Result<BenchSummary, String> {
        let v = parse(text)?;
        let obj = v.as_object().ok_or("BENCH document is not an object")?;
        let schema_version = match obj.get("schema_version") {
            None => 0,
            Some(v) => {
                let n = v.as_f64().ok_or("schema_version is not a number")?;
                if n != 1.0 {
                    return Err(format!("unsupported schema_version {n}"));
                }
                1
            }
        };
        let generated_by = obj
            .get("generated_by")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string();
        let records = obj
            .get("benches")
            .ok_or("missing benches array")?
            .as_array()
            .ok_or("benches is not an array")?;

        let mut benches = Vec::new();
        for (i, rec) in records.iter().enumerate() {
            let rec = rec
                .as_object()
                .ok_or_else(|| format!("bench record {i} is not an object"))?;
            let bench = rec
                .get("bench")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("bench record {i} missing name"))?
                .to_string();
            let metrics_obj = rec
                .get("metrics")
                .and_then(Value::as_object)
                .ok_or_else(|| format!("bench record {i} ({bench}) missing metrics object"))?;
            // BTreeMap iteration gives sorted, deterministic key order.
            let mut metrics = Vec::new();
            for (k, v) in metrics_obj {
                let n = v
                    .as_f64()
                    .ok_or_else(|| format!("metric {bench}.{k} is not a number"))?;
                metrics.push((k.clone(), n));
            }
            let wall_s = rec.get("wall_s").and_then(Value::as_f64);
            benches.push(BenchRecord {
                bench,
                metrics,
                wall_s,
            });
        }
        Ok(BenchSummary {
            schema_version,
            generated_by,
            benches,
        })
    }

    /// Renders the summary as a schema-v1 document (regardless of the
    /// version it was parsed from — rendering *is* the conversion).
    pub fn render(&self) -> String {
        let records: Vec<String> = self
            .benches
            .iter()
            .map(|b| {
                let mut metrics = Object::new();
                for (k, v) in &b.metrics {
                    metrics.num(k, *v);
                }
                let mut o = Object::new();
                o.str("bench", &b.bench);
                o.raw("metrics", metrics.render());
                if let Some(w) = b.wall_s {
                    o.num("wall_s", w);
                }
                o.render()
            })
            .collect();
        let mut doc = Object::new();
        doc.int("schema_version", BENCH_SCHEMA_VERSION);
        doc.str("generated_by", &self.generated_by);
        doc.raw("benches", array(&records));
        doc.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEGACY: &str = r#"{
      "generated_by": "scripts/bench_smoke.sh",
      "benches": [
        {"bench": "fig09_performance",
         "metrics": {"avg_speedup": 23.6, "speedup_fft": 38.1}},
        {"bench": "fig11_jobs_scaling",
         "metrics": {"jobs1_wall_s": 6.55, "jobs4_wall_s": 6.59, "speedup": 0.994}}
      ]
    }"#;

    #[test]
    fn legacy_documents_parse_and_convert() {
        let s = BenchSummary::parse(LEGACY).expect("legacy parses");
        assert!(s.is_legacy());
        assert_eq!(s.benches.len(), 2);
        assert_eq!(s.metric("fig09_performance", "avg_speedup"), Some(23.6));

        let converted = s.render();
        let round = BenchSummary::parse(&converted).expect("converted parses");
        assert_eq!(round.schema_version, BENCH_SCHEMA_VERSION);
        assert!(!round.is_legacy());
        assert_eq!(round.benches, s.benches);
    }

    #[test]
    fn v1_documents_round_trip_exactly() {
        let mut s = BenchSummary::new("test");
        s.benches.push(BenchRecord {
            bench: "fig13_stap".into(),
            metrics: vec![("ee_gain".into(), 8.5), ("speedup".into(), 3.2)],
            wall_s: Some(0.25),
        });
        let doc = s.render();
        let round = BenchSummary::parse(&doc).expect("parses");
        assert_eq!(round, s);
        assert_eq!(round.bench("fig13_stap").unwrap().wall_s, Some(0.25));
    }

    #[test]
    fn future_versions_and_malformed_docs_are_rejected() {
        assert!(BenchSummary::parse("[]").is_err());
        assert!(BenchSummary::parse(r#"{"schema_version": 2, "benches": []}"#).is_err());
        assert!(BenchSummary::parse(r#"{"schema_version": 1}"#).is_err());
        assert!(BenchSummary::parse(
            r#"{"schema_version": 1, "benches": [{"bench": "x", "metrics": {"m": "oops"}}]}"#
        )
        .is_err());
    }

    #[test]
    fn wall_metric_keys_are_recognized() {
        assert!(BenchRecord::is_wall_metric("jobs1_wall_s"));
        assert!(BenchRecord::is_wall_metric("wall_s"));
        assert!(BenchRecord::is_wall_metric("speedup_wall"));
        assert!(BenchRecord::is_wall_metric("fast_bursts_per_sec_per_core"));
        assert!(!BenchRecord::is_wall_metric("avg_speedup"));
        assert!(!BenchRecord::is_wall_metric("bandwidth_gbps"));
    }
}
