//! Dependency-free JSON emission and parsing.
//!
//! The workspace vendors no serialization crates, so the trace layer
//! hand-rolls the tiny subset of JSON it needs: an [`Object`] builder
//! for emission and a recursive-descent [`parse`] used by tests and
//! the bench smoke harness to validate emitted traces.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON document (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number. Non-finite values (which valid
/// model output never produces) are clamped to `null`-safe zero.
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "0".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        // Integral values print exactly; avoids "1e2"-style output
        // for simple counts.
        format!("{x:.1}")
    } else {
        format!("{x:e}")
    }
}

/// An insertion-ordered JSON object builder.
#[derive(Debug, Clone, Default)]
pub struct Object {
    fields: Vec<(String, String)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.fields
            .push((key.to_string(), format!("\"{}\"", escape(value))));
        self
    }

    /// Adds a floating-point field.
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        self.fields.push((key.to_string(), fmt_f64(value)));
        self
    }

    /// Adds an integer field.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a pre-rendered JSON value (object, array, ...).
    pub fn raw(&mut self, key: &str, value: String) -> &mut Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Renders the object.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(k), v);
        }
        out.push('}');
        out
    }
}

/// Renders a JSON array from pre-rendered element values.
pub fn array(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(item);
    }
    out.push(']');
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Field lookup on objects (`None` for other value kinds).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Parses one JSON document. Returns a human-readable error with a
/// byte offset on malformed input.
///
/// # Errors
///
/// Returns a message describing the first syntax error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the remaining input.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_renders_valid_json() {
        let mut o = Object::new();
        o.str("name", "fig14");
        o.num("time_s", 1.25e-3);
        o.int("count", 42);
        o.bool("ok", true);
        let rendered = o.render();
        let v = parse(&rendered).expect("valid");
        assert_eq!(v.get("name").and_then(Value::as_str), Some("fig14"));
        assert_eq!(v.get("count").and_then(Value::as_f64), Some(42.0));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let mut o = Object::new();
        o.str("k", nasty);
        let v = parse(&o.render()).expect("valid");
        assert_eq!(v.get("k").and_then(Value::as_str), Some(nasty));
    }

    #[test]
    fn arrays_and_nesting_parse() {
        let doc = r#"{"rows":[{"x":1},{"x":2.5e-3}],"empty":[],"n":null}"#;
        let v = parse(doc).expect("valid");
        let rows = v.get("rows").and_then(Value::as_array).expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("x").and_then(Value::as_f64), Some(2.5e-3));
        assert_eq!(v.get("n"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123 45").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn fmt_f64_output_is_json_legal() {
        for x in [0.0, 1.0, -2.5, 1.25e-3, 3.4e9, 1.0e-18, f64::NAN] {
            let s = fmt_f64(x);
            let v = parse(&s).expect("number parses");
            if x.is_finite() {
                assert_eq!(v.as_f64(), Some(x), "{s}");
            }
        }
    }
}
