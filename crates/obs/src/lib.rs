//! Zero-cost-when-off instrumentation for the MEALib stack.
//!
//! The model crates (memsim, noc, accel, runtime, host, sim) expose
//! end-of-run aggregates; this crate adds the *attribution* layer the
//! paper's Figure 14 is built on. Two primitives:
//!
//! * **Spans** — phase-labeled `(modeled time, modeled energy, wall
//!   time)` events. The phase taxonomy follows the software stack's
//!   life of a call: `plan`/`encode`/`verify` (host-side descriptor
//!   preparation, wall-clocked), `flush`/`dma`/`compute`/`drain`
//!   (modeled device-side cost).
//! * **Counters** — a typed registry of micro-architectural event
//!   counts (DRAM ACT/PRE/RD/WR, NoC flits, CU fetch/decode/loop
//!   statistics, allocator traffic), optionally per-lane (e.g. per
//!   DRAM vault).
//!
//! The [`Obs`] handle is a nullable `Arc<dyn Recorder>`: when no
//! recorder is installed every call short-circuits on a single
//! `Option` check and allocates nothing, so instrumented code paths
//! cost (essentially) nothing in the default configuration.
//!
//! [`TraceRecorder`] is the batteries-included sink: it accumulates a
//! [`Breakdown`] (per-phase totals + counter registry) and an ordered
//! event log that serializes to JSONL via
//! [`TraceRecorder::to_jsonl`]. The [`json`] module carries the
//! hand-rolled emitter plus a small parser used by tests and the
//! bench harnesses to validate traces without external dependencies.
//!
//! The time-resolved layer (PR 5) builds on these primitives:
//! [`timeline`] carries cycle-windowed counter timelines, [`profile`]
//! assembles them with phase intervals into Perfetto-exportable run
//! profiles, [`attribution`] classifies each window against a platform
//! roofline, and [`bench_schema`] defines the versioned `BENCH_*.json`
//! summary the perf-trajectory gate (`meaperf`) diffs.

#![forbid(unsafe_code)]

pub mod attribution;
pub mod bench_schema;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod quantiles;
pub mod sketch;
pub mod slo;
pub mod timeline;

pub use attribution::{Attribution, Bound, BoundWindow, Roofline};
pub use bench_schema::{BenchRecord, BenchSummary, BENCH_SCHEMA_VERSION};
pub use metrics::{validate_exposition, ExpositionSummary, MetricKey, MetricsRegistry};
pub use profile::{validate_chrome_trace, IntervalEvent, Profile, TimelineTrack};
pub use sketch::QuantileSketch;
pub use slo::{Alert, AlertKind, Objective, ObjectiveKind, SloEngine, WindowObs};
pub use timeline::{Timeline, WindowCounters};

use mealib_types::{Joules, Seconds};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// The phase taxonomy for span events.
///
/// `Plan`, `Encode` and `Verify` are host-side software phases (their
/// modeled time is zero; the wall clock captures real library
/// overhead). The remaining phases partition the modeled device time:
/// `Flush` (cache flush + driver invocation), `Dma` (descriptor fetch,
/// configuration broadcast and memory streaming), `Compute` (PE
/// arithmetic) and `Drain` (result gather).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// TDL parsing / planning on the host.
    Plan,
    /// Descriptor encoding on the host.
    Encode,
    /// Static verification (mealint) on the host.
    Verify,
    /// Cache flush + driver round trip before an invocation.
    Flush,
    /// Data movement: descriptor fetch, config broadcast, DRAM streaming.
    Dma,
    /// PE arithmetic.
    Compute,
    /// Result gather back toward the host.
    Drain,
}

impl Phase {
    /// All phases, in taxonomy order.
    pub const ALL: [Phase; 7] = [
        Phase::Plan,
        Phase::Encode,
        Phase::Verify,
        Phase::Flush,
        Phase::Dma,
        Phase::Compute,
        Phase::Drain,
    ];

    /// Stable lowercase name used in JSONL traces.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Plan => "plan",
            Phase::Encode => "encode",
            Phase::Verify => "verify",
            Phase::Flush => "flush",
            Phase::Dma => "dma",
            Phase::Compute => "compute",
            Phase::Drain => "drain",
        }
    }

    /// Parses the stable name back into a phase.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The typed counter registry.
///
/// Counters are cumulative event counts; the unit of each is given in
/// its doc line. Lanes (see [`CounterKey`]) distinguish replicated
/// hardware units, e.g. DRAM vaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// DRAM row activations (ACT commands).
    DramAct,
    /// DRAM precharges (PRE commands).
    DramPre,
    /// DRAM bytes read.
    DramRdBytes,
    /// DRAM bytes written.
    DramWrBytes,
    /// DRAM row-buffer hits.
    DramRowHit,
    /// DRAM row-buffer misses.
    DramRowMiss,
    /// DRAM refresh commands.
    DramRefresh,
    /// NoC flits injected.
    NocFlits,
    /// NoC flit-hops traversed (flits x links).
    NocFlitHops,
    /// NoC credits returned (one per flit per link in this model).
    NocCredits,
    /// CU descriptor bytes fetched from DRAM.
    CuFetchBytes,
    /// CU instructions decoded.
    CuDecodedInstrs,
    /// CU passes executed (loop iterations counted individually).
    CuPasses,
    /// CU hardware-loop iterations triggered without host involvement.
    CuLoopIters,
    /// Bytes allocated through the runtime allocator.
    AllocBytes,
    /// Buffers freed through the runtime allocator.
    BufferFrees,
    /// Host cache flushes before invocations.
    CacheFlushes,
    /// Driver round trips (descriptor writes).
    DriverCalls,
    /// Host floating-point operations (roofline model).
    HostFlops,
    /// Host DRAM bytes moved (roofline model).
    HostBytes,
}

impl Counter {
    /// Stable snake_case name used in JSONL traces.
    pub fn name(self) -> &'static str {
        match self {
            Counter::DramAct => "dram_act",
            Counter::DramPre => "dram_pre",
            Counter::DramRdBytes => "dram_rd_bytes",
            Counter::DramWrBytes => "dram_wr_bytes",
            Counter::DramRowHit => "dram_row_hit",
            Counter::DramRowMiss => "dram_row_miss",
            Counter::DramRefresh => "dram_refresh",
            Counter::NocFlits => "noc_flits",
            Counter::NocFlitHops => "noc_flit_hops",
            Counter::NocCredits => "noc_credits",
            Counter::CuFetchBytes => "cu_fetch_bytes",
            Counter::CuDecodedInstrs => "cu_decoded_instrs",
            Counter::CuPasses => "cu_passes",
            Counter::CuLoopIters => "cu_loop_iters",
            Counter::AllocBytes => "alloc_bytes",
            Counter::BufferFrees => "buffer_frees",
            Counter::CacheFlushes => "cache_flushes",
            Counter::DriverCalls => "driver_calls",
            Counter::HostFlops => "host_flops",
            Counter::HostBytes => "host_bytes",
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A counter plus an optional lane (replicated-unit index, e.g. a
/// DRAM vault). `lane: None` is the aggregate across all lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CounterKey {
    /// Which counter.
    pub counter: Counter,
    /// Replicated-unit index, or `None` for the aggregate.
    pub lane: Option<u16>,
}

impl CounterKey {
    /// Aggregate (lane-less) key.
    pub fn total(counter: Counter) -> Self {
        Self {
            counter,
            lane: None,
        }
    }

    /// Per-lane key.
    pub fn lane(counter: Counter, lane: u16) -> Self {
        Self {
            counter,
            lane: Some(lane),
        }
    }
}

/// One phase-labeled span event.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Phase label.
    pub phase: Phase,
    /// Free-form site label ("stap.cdotc", "acc_execute", ...).
    pub label: String,
    /// Modeled time attributed to this span.
    pub time: Seconds,
    /// Modeled energy attributed to this span.
    pub energy: Joules,
    /// Wall-clock time spent in the library (host phases only;
    /// zero for modeled device phases).
    pub wall: Seconds,
}

/// A sink for instrumentation events. Methods take `&self`;
/// implementations use interior mutability so one recorder can be
/// shared across the whole stack behind an `Arc`.
pub trait Recorder {
    /// Records one span event.
    fn record_span(&self, event: &SpanEvent);
    /// Adds `value` to the given counter.
    fn record_count(&self, key: CounterKey, value: u64);
    /// Records a batch of events in order. The default forwards one by
    /// one; lock-based sinks override this to take their lock once per
    /// batch instead of once per event (see [`SpoolRecorder`]).
    fn record_batch(&self, events: &[TraceEvent]) {
        for event in events {
            match event {
                TraceEvent::Span(s) => self.record_span(s),
                TraceEvent::Count { key, value } => self.record_count(*key, *value),
            }
        }
    }
}

/// A cheap, cloneable handle to an optional recorder.
///
/// `Obs::off()` is the default everywhere: every recording call then
/// reduces to one `Option` discriminant check.
#[derive(Clone, Default)]
pub struct Obs(Option<Arc<dyn Recorder + Send + Sync>>);

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Obs")
            .field(&if self.0.is_some() { "on" } else { "off" })
            .finish()
    }
}

impl Obs {
    /// The disabled handle (records nothing).
    pub const fn off() -> Self {
        Obs(None)
    }

    /// Wraps a recorder.
    pub fn new(recorder: Arc<dyn Recorder + Send + Sync>) -> Self {
        Obs(Some(recorder))
    }

    /// `true` when a recorder is installed.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The installed recorder, if any. Lets infrastructure (e.g. the
    /// sweep's per-worker spool) interpose another recorder in front of
    /// the user's sink.
    pub fn recorder(&self) -> Option<Arc<dyn Recorder + Send + Sync>> {
        self.0.clone()
    }

    /// Records a modeled span (no wall time).
    pub fn span(&self, phase: Phase, label: &str, time: Seconds, energy: Joules) {
        self.span_wall(phase, label, time, energy, Seconds::ZERO);
    }

    /// Records a span with an explicit wall-clock component.
    pub fn span_wall(
        &self,
        phase: Phase,
        label: &str,
        time: Seconds,
        energy: Joules,
        wall: Seconds,
    ) {
        if let Some(rec) = &self.0 {
            rec.record_span(&SpanEvent {
                phase,
                label: label.to_string(),
                time,
                energy,
                wall,
            });
        }
    }

    /// Adds `value` to an aggregate counter. Zero increments are
    /// dropped to keep traces lean.
    pub fn count(&self, counter: Counter, value: u64) {
        if value != 0 {
            if let Some(rec) = &self.0 {
                rec.record_count(CounterKey::total(counter), value);
            }
        }
    }

    /// Adds `value` to a per-lane counter.
    pub fn count_lane(&self, counter: Counter, lane: u16, value: u64) {
        if value != 0 {
            if let Some(rec) = &self.0 {
                rec.record_count(CounterKey::lane(counter, lane), value);
            }
        }
    }

    /// Replays a prebuilt breakdown into the recorder: one span per
    /// phase (labeled `label`) and one increment per counter key.
    pub fn record_breakdown(&self, breakdown: &Breakdown, label: &str) {
        if !self.enabled() {
            return;
        }
        for (phase, totals) in breakdown.phases() {
            self.span(phase, label, totals.time, totals.energy);
        }
        if let Some(rec) = &self.0 {
            for (key, value) in breakdown.counters() {
                if value != 0 {
                    rec.record_count(key, value);
                }
            }
        }
    }
}

/// Accumulated time/energy for one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTotals {
    /// Modeled time.
    pub time: Seconds,
    /// Modeled energy.
    pub energy: Joules,
    /// Wall-clock time (host phases).
    pub wall: Seconds,
}

impl Default for PhaseTotals {
    fn default() -> Self {
        Self {
            time: Seconds::ZERO,
            energy: Joules::ZERO,
            wall: Seconds::ZERO,
        }
    }
}

/// Per-phase totals plus the counter registry — the generalized
/// Figure 14 data structure carried by `RunReport` and
/// `ExperimentReport`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Breakdown {
    phases: BTreeMap<Phase, PhaseTotals>,
    counters: BTreeMap<CounterKey, u64>,
}

impl Breakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a modeled (time, energy) contribution to `phase`.
    pub fn add_phase(&mut self, phase: Phase, time: Seconds, energy: Joules) {
        self.add_phase_wall(phase, time, energy, Seconds::ZERO);
    }

    /// Adds a contribution with a wall-clock component.
    pub fn add_phase_wall(&mut self, phase: Phase, time: Seconds, energy: Joules, wall: Seconds) {
        let slot = self.phases.entry(phase).or_default();
        slot.time += time;
        slot.energy += energy;
        slot.wall += wall;
    }

    /// Adds `value` to a counter key.
    pub fn add_count(&mut self, key: CounterKey, value: u64) {
        if value != 0 {
            *self.counters.entry(key).or_insert(0) += value;
        }
    }

    /// Totals for one phase (zero if never recorded).
    pub fn phase(&self, phase: Phase) -> PhaseTotals {
        self.phases.get(&phase).copied().unwrap_or_default()
    }

    /// Iterates recorded phases in taxonomy order.
    pub fn phases(&self) -> impl Iterator<Item = (Phase, PhaseTotals)> + '_ {
        self.phases.iter().map(|(p, t)| (*p, *t))
    }

    /// Iterates recorded counters.
    pub fn counters(&self) -> impl Iterator<Item = (CounterKey, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// A counter summed across all its lanes (including the aggregate
    /// lane-less key).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.counter == counter)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Sum of modeled time over all phases.
    pub fn total_time(&self) -> Seconds {
        let mut t = Seconds::ZERO;
        for totals in self.phases.values() {
            t += totals.time;
        }
        t
    }

    /// Sum of modeled energy over all phases.
    pub fn total_energy(&self) -> Joules {
        let mut e = Joules::ZERO;
        for totals in self.phases.values() {
            e += totals.energy;
        }
        e
    }

    /// Sum of wall time over all phases.
    pub fn total_wall(&self) -> Seconds {
        let mut t = Seconds::ZERO;
        for totals in self.phases.values() {
            t += totals.wall;
        }
        t
    }

    /// Folds another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown) {
        for (phase, totals) in other.phases() {
            self.add_phase_wall(phase, totals.time, totals.energy, totals.wall);
        }
        for (key, value) in other.counters() {
            self.add_count(key, value);
        }
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty() && self.counters.is_empty()
    }

    /// Renders the breakdown as one JSON object
    /// (`{"phases": {...}, "counters": {...}}`).
    pub fn to_json(&self) -> String {
        let mut phases = json::Object::new();
        for (phase, totals) in self.phases() {
            let mut o = json::Object::new();
            o.num("time_s", totals.time.get());
            o.num("energy_j", totals.energy.get());
            o.num("wall_s", totals.wall.get());
            phases.raw(phase.name(), o.render());
        }
        let mut counters = json::Object::new();
        for (key, value) in self.counters() {
            let name = match key.lane {
                Some(lane) => format!("{}[{lane}]", key.counter.name()),
                None => key.counter.name().to_string(),
            };
            counters.int(&name, value);
        }
        let mut root = json::Object::new();
        root.raw("phases", phases.render());
        root.raw("counters", counters.render());
        root.render()
    }
}

/// One entry of a [`TraceRecorder`]'s ordered event log.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A span event.
    Span(SpanEvent),
    /// A counter increment.
    Count {
        /// Counter key.
        key: CounterKey,
        /// Increment value.
        value: u64,
    },
}

impl TraceEvent {
    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            TraceEvent::Span(s) => {
                let mut o = json::Object::new();
                o.str("type", "span");
                o.str("phase", s.phase.name());
                o.str("label", &s.label);
                o.num("time_s", s.time.get());
                o.num("energy_j", s.energy.get());
                o.num("wall_s", s.wall.get());
                o.render()
            }
            TraceEvent::Count { key, value } => {
                let mut o = json::Object::new();
                o.str("type", "count");
                o.str("counter", key.counter.name());
                if let Some(lane) = key.lane {
                    o.int("lane", u64::from(lane));
                }
                o.int("value", *value);
                o.render()
            }
        }
    }
}

#[derive(Debug, Default)]
struct TraceInner {
    events: Vec<TraceEvent>,
    breakdown: Breakdown,
}

/// The standard in-memory recorder: keeps the ordered event log for
/// JSONL export and folds every event into a running [`Breakdown`].
#[derive(Debug, Default)]
pub struct TraceRecorder {
    inner: Mutex<TraceInner>,
}

impl TraceRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh recorder already wrapped for sharing.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Snapshot of the accumulated breakdown.
    pub fn breakdown(&self) -> Breakdown {
        self.lock().breakdown.clone()
    }

    /// Snapshot of the ordered event log.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().events.clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// `true` when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Drops all recorded state.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.events.clear();
        inner.breakdown = Breakdown::default();
    }

    /// Serializes the event log as JSONL (one JSON object per line).
    pub fn to_jsonl(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for event in &inner.events {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }
}

impl Recorder for TraceRecorder {
    fn record_span(&self, event: &SpanEvent) {
        let mut inner = self.lock();
        inner
            .breakdown
            .add_phase_wall(event.phase, event.time, event.energy, event.wall);
        inner.events.push(TraceEvent::Span(event.clone()));
    }

    fn record_count(&self, key: CounterKey, value: u64) {
        if value == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.breakdown.add_count(key, value);
        inner.events.push(TraceEvent::Count { key, value });
    }

    /// One lock acquisition for the whole batch — this is what makes the
    /// per-worker [`SpoolRecorder`] drain cheap under `--jobs N`.
    fn record_batch(&self, events: &[TraceEvent]) {
        if events.is_empty() {
            return;
        }
        let mut inner = self.lock();
        for event in events {
            match event {
                TraceEvent::Span(s) => {
                    inner
                        .breakdown
                        .add_phase_wall(s.phase, s.time, s.energy, s.wall);
                }
                TraceEvent::Count { key, value } => inner.breakdown.add_count(*key, *value),
            }
            inner.events.push(event.clone());
        }
    }
}

/// A per-worker buffering recorder.
///
/// Under a parallel sweep every worker used to contend on the shared
/// [`TraceRecorder`] mutex for *every* span and counter event. A
/// `SpoolRecorder` sits in front of the shared sink, accumulates the
/// worker's events in a local (uncontended) buffer, and hands them to the
/// target in one [`Recorder::record_batch`] call at drain time — one lock
/// acquisition per run instead of one per event. Event order within a
/// worker is preserved; cross-worker interleaving is batch-granular,
/// which is fine because [`Breakdown`] merging is commutative.
pub struct SpoolRecorder {
    target: Arc<dyn Recorder + Send + Sync>,
    buffer: Mutex<Vec<TraceEvent>>,
}

impl fmt::Debug for SpoolRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpoolRecorder")
            .field("buffered", &self.buffered())
            .finish()
    }
}

impl SpoolRecorder {
    /// Creates a spool in front of `target`.
    pub fn new(target: Arc<dyn Recorder + Send + Sync>) -> Self {
        Self {
            target,
            buffer: Mutex::new(Vec::new()),
        }
    }

    /// Creates a shared spool in front of `target`.
    pub fn shared(target: Arc<dyn Recorder + Send + Sync>) -> Arc<Self> {
        Arc::new(Self::new(target))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<TraceEvent>> {
        self.buffer.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of events waiting in the buffer.
    pub fn buffered(&self) -> usize {
        self.lock().len()
    }

    /// Drains the buffer into the target with a single batch call.
    pub fn flush(&self) {
        let events = std::mem::take(&mut *self.lock());
        if !events.is_empty() {
            self.target.record_batch(&events);
        }
    }
}

impl Drop for SpoolRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Recorder for SpoolRecorder {
    fn record_span(&self, event: &SpanEvent) {
        self.lock().push(TraceEvent::Span(event.clone()));
    }

    fn record_count(&self, key: CounterKey, value: u64) {
        if value == 0 {
            return;
        }
        self.lock().push(TraceEvent::Count { key, value });
    }

    fn record_batch(&self, events: &[TraceEvent]) {
        self.lock().extend_from_slice(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: f64) -> Seconds {
        Seconds::new(x)
    }

    fn j(x: f64) -> Joules {
        Joules::new(x)
    }

    #[test]
    fn off_handle_records_nothing_and_is_cheap() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        obs.span(Phase::Compute, "x", s(1.0), j(1.0));
        obs.count(Counter::DramAct, 5);
        // Nothing to observe: the handle has no sink at all.
    }

    #[test]
    fn trace_recorder_accumulates_breakdown() {
        let rec = TraceRecorder::shared();
        let obs = Obs::new(rec.clone());
        assert!(obs.enabled());
        obs.span(Phase::Dma, "a", s(2.0), j(4.0));
        obs.span(Phase::Dma, "b", s(1.0), j(1.0));
        obs.span(Phase::Compute, "c", s(3.0), j(2.0));
        obs.count(Counter::DramAct, 10);
        obs.count_lane(Counter::DramRowHit, 3, 7);
        obs.count(Counter::DramAct, 0); // dropped

        let bd = rec.breakdown();
        assert_eq!(bd.phase(Phase::Dma).time, s(3.0));
        assert_eq!(bd.phase(Phase::Dma).energy, j(5.0));
        assert_eq!(bd.total_time(), s(6.0));
        assert_eq!(bd.total_energy(), j(7.0));
        assert_eq!(bd.counter(Counter::DramAct), 10);
        assert_eq!(bd.counter(Counter::DramRowHit), 7);
        assert_eq!(rec.len(), 5);
    }

    #[test]
    fn breakdown_merge_is_additive() {
        let mut a = Breakdown::new();
        a.add_phase(Phase::Flush, s(1.0), j(2.0));
        a.add_count(CounterKey::total(Counter::CacheFlushes), 1);
        let mut b = Breakdown::new();
        b.add_phase(Phase::Flush, s(0.5), j(0.5));
        b.add_phase(Phase::Drain, s(0.25), j(0.0));
        b.add_count(CounterKey::total(Counter::CacheFlushes), 2);
        a.merge(&b);
        assert_eq!(a.phase(Phase::Flush).time, s(1.5));
        assert_eq!(a.phase(Phase::Drain).time, s(0.25));
        assert_eq!(a.counter(Counter::CacheFlushes), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let rec = TraceRecorder::shared();
        let obs = Obs::new(rec.clone());
        obs.span_wall(
            Phase::Plan,
            "parse \"tdl\"",
            Seconds::ZERO,
            Joules::ZERO,
            s(1.5e-6),
        );
        obs.span(Phase::Compute, "pass0", s(1.25e-3), j(3.5e-2));
        obs.count_lane(Counter::DramAct, 12, 345);
        let jsonl = rec.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        for line in jsonl.lines() {
            let v = json::parse(line).expect("valid JSON line");
            let ty = v.get("type").and_then(json::Value::as_str).expect("type");
            assert!(ty == "span" || ty == "count");
        }
        // Spot-check one value survives the round trip.
        let first = json::parse(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(
            first.get("phase").and_then(json::Value::as_str),
            Some("plan")
        );
        let wall = first.get("wall_s").and_then(json::Value::as_f64).unwrap();
        assert!((wall - 1.5e-6).abs() < 1e-18);
    }

    #[test]
    fn record_breakdown_replays_phases_and_counters() {
        let mut bd = Breakdown::new();
        bd.add_phase(Phase::Dma, s(1.0), j(2.0));
        bd.add_count(CounterKey::lane(Counter::DramRowMiss, 2), 9);
        let rec = TraceRecorder::shared();
        Obs::new(rec.clone()).record_breakdown(&bd, "replay");
        let got = rec.breakdown();
        assert_eq!(got.phase(Phase::Dma).time, s(1.0));
        assert_eq!(got.counter(Counter::DramRowMiss), 9);
    }

    #[test]
    fn breakdown_json_is_parseable() {
        let mut bd = Breakdown::new();
        bd.add_phase(Phase::Compute, s(0.5), j(1.5));
        bd.add_count(CounterKey::lane(Counter::DramAct, 1), 4);
        let v = json::parse(&bd.to_json()).expect("valid");
        let phases = v.get("phases").expect("phases");
        let compute = phases.get("compute").expect("compute");
        assert_eq!(
            compute.get("time_s").and_then(json::Value::as_f64),
            Some(0.5)
        );
        let counters = v.get("counters").expect("counters");
        assert_eq!(
            counters.get("dram_act[1]").and_then(json::Value::as_f64),
            Some(4.0)
        );
    }

    #[test]
    fn spool_buffers_until_flush_and_preserves_order() {
        let sink = TraceRecorder::shared();
        let spool = SpoolRecorder::shared(sink.clone());
        let obs = Obs::new(spool.clone());
        obs.span(Phase::Dma, "a", s(1.0), j(2.0));
        obs.count_lane(Counter::DramAct, 4, 7);
        obs.span(Phase::Compute, "b", s(3.0), j(1.0));
        assert_eq!(spool.buffered(), 3);
        assert!(sink.is_empty(), "nothing reaches the sink before flush");

        spool.flush();
        assert_eq!(spool.buffered(), 0);
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert!(matches!(&events[0], TraceEvent::Span(e) if e.label == "a"));
        assert!(matches!(&events[1], TraceEvent::Count { value: 7, .. }));
        let bd = sink.breakdown();
        assert_eq!(bd.total_time(), s(4.0));
        assert_eq!(bd.counter(Counter::DramAct), 7);
    }

    #[test]
    fn spool_drop_flushes_remaining_events() {
        let sink = TraceRecorder::shared();
        {
            let spool = SpoolRecorder::new(sink.clone());
            Obs::new(Arc::new(spool)).span(Phase::Flush, "tail", s(0.5), j(0.0));
        }
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.breakdown().phase(Phase::Flush).time, s(0.5));
    }

    #[test]
    fn batched_recording_equals_per_event_recording() {
        let a = TraceRecorder::shared();
        let oa = Obs::new(a.clone());
        oa.span(Phase::Dma, "x", s(1.0), j(1.0));
        oa.count(Counter::NocFlits, 5);

        let b = TraceRecorder::shared();
        b.record_batch(&a.events());
        assert_eq!(b.events(), a.events());
        assert_eq!(b.breakdown(), a.breakdown());
    }

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("nope"), None);
    }
}
