//! A labeled metrics registry with Prometheus-style text exposition
//! and JSON snapshots.
//!
//! [`MetricsRegistry`] holds three metric kinds, all keyed by
//! `(name, sorted label pairs)`:
//!
//! * **counters** — cumulative `u64` event counts (merge adds);
//! * **gauges** — point-in-time `f64` values (merge takes the other
//!   side's value, last-write-wins);
//! * **histograms** — [`QuantileSketch`]es (merge folds bucket
//!   counts; see [`crate::sketch`] for the bit-exact commutativity
//!   argument).
//!
//! Everything is `BTreeMap`-ordered, so both exporters emit
//! byte-identical text for equal registries — the property the
//! serving telemetry's determinism harness pins down. The exporters:
//!
//! * [`MetricsRegistry::to_prometheus`] — the text exposition format
//!   (`# HELP` / `# TYPE` comments, then `name{labels} value`
//!   samples; histograms render as Prometheus *summaries* with
//!   `quantile`-labeled samples plus `_sum`/`_count`);
//! * [`MetricsRegistry::snapshot_json`] — one JSON object through the
//!   dependency-free [`crate::json`] builder, for per-epoch JSONL
//!   snapshot streams.
//!
//! [`validate_exposition`] is the round-trip checker the bench
//! harness runs over emitted exposition text.

use std::collections::BTreeMap;

use crate::json::Object;
use crate::sketch::QuantileSketch;

/// A metric identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the label pairs.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or label key (exposition
    /// syntax restricts both to `[a-zA-Z_][a-zA-Z0-9_]*`).
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| {
                assert!(valid_name(k), "invalid label key {k:?}");
                ((*k).to_string(), (*v).to_string())
            })
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    /// Renders the label block (`{k="v",...}`), empty for no labels;
    /// `extra` appends one more pair (used for `quantile` labels).
    fn label_block(&self, extra: Option<(&str, &str)>) -> String {
        let mut pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        if let Some((k, v)) = extra {
            pairs.push(format!("{k}=\"{}\"", escape_label(v)));
        }
        if pairs.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", pairs.join(","))
        }
    }

    /// The flat `name{k="v",...}` form used as a JSON snapshot key.
    pub fn flat(&self) -> String {
        format!("{}{}", self.name, self.label_block(None))
    }
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats a sample value: integers exactly, floats via the shortest
/// round-trip form.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:e}")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Summary,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Summary => "summary",
        }
    }
}

/// The labeled metrics registry (see the module docs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    /// `# HELP` text per metric name.
    help: BTreeMap<String, String>,
    /// Metric kind per name — one name, one kind.
    kinds: BTreeMap<String, Kind>,
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, QuantileSketch>,
    /// Relative accuracy for histograms created through [`Self::observe`].
    alpha: f64,
}

impl MetricsRegistry {
    /// An empty registry with the default sketch accuracy (1%).
    pub fn new() -> Self {
        Self::with_alpha(QuantileSketch::DEFAULT_ALPHA)
    }

    /// An empty registry whose histograms use relative accuracy
    /// `alpha`.
    pub fn with_alpha(alpha: f64) -> Self {
        Self {
            alpha,
            ..Self::default()
        }
    }

    /// The histogram sketch accuracy.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Sets the `# HELP` text for a metric name.
    pub fn describe(&mut self, name: &str, help: &str) {
        self.help.insert(name.to_string(), help.to_string());
    }

    fn claim(&mut self, name: &str, kind: Kind) {
        let prev = *self.kinds.entry(name.to_string()).or_insert(kind);
        assert!(
            prev == kind,
            "metric {name} already registered as {} (now used as {})",
            prev.label(),
            kind.label()
        );
    }

    /// Adds `delta` to a counter (creating it at zero).
    pub fn add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.claim(name, Kind::Counter);
        *self
            .counters
            .entry(MetricKey::new(name, labels))
            .or_insert(0) += delta;
    }

    /// Adds 1 to a counter.
    pub fn inc(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.add(name, labels, 1);
    }

    /// Overwrites a counter with an absolute cumulative value (for
    /// exporting externally-maintained counters, e.g. runtime plan
    /// statistics).
    pub fn store(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.claim(name, Kind::Counter);
        self.counters.insert(MetricKey::new(name, labels), value);
    }

    /// Reads a counter (zero if never touched).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.claim(name, Kind::Gauge);
        self.gauges.insert(MetricKey::new(name, labels), value);
    }

    /// Reads a gauge, `None` if never set.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&MetricKey::new(name, labels)).copied()
    }

    /// Records one observation into a histogram (creating its sketch
    /// with the registry's `alpha` on first use).
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.claim(name, Kind::Summary);
        let alpha = self.alpha;
        self.histograms
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| QuantileSketch::new(alpha))
            .record(value);
    }

    /// The sketch behind a histogram, if populated.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&QuantileSketch> {
        self.histograms.get(&MetricKey::new(name, labels))
    }

    /// Iterates all histogram entries.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricKey, &QuantileSketch)> {
        self.histograms.iter()
    }

    /// Iterates all counter entries.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> {
        self.counters.iter().map(|(k, v)| (k, *v))
    }

    /// Total occupied sketch buckets across every histogram: the
    /// registry's only sample-dependent memory, which the soak test
    /// bounds by O(classes × buckets).
    pub fn total_buckets(&self) -> usize {
        self.histograms
            .values()
            .map(QuantileSketch::buckets_used)
            .sum()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, gauges take `other`'s
    /// value, histograms merge sketches.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, help) in &other.help {
            self.help
                .entry(name.clone())
                .or_insert_with(|| help.clone());
        }
        for (name, kind) in &other.kinds {
            self.claim(name, *kind);
        }
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, s) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .or_insert_with(|| QuantileSketch::new(s.alpha()))
                .merge(s);
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    /// Deterministic: metric families appear in name order, samples in
    /// label order.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, kind) in &self.kinds {
            let mut family = String::new();
            match kind {
                Kind::Counter => {
                    for (k, v) in self.counters.iter().filter(|(k, _)| &k.name == name) {
                        family.push_str(&format!("{}{} {v}\n", k.name, k.label_block(None)));
                    }
                }
                Kind::Gauge => {
                    for (k, v) in self.gauges.iter().filter(|(k, _)| &k.name == name) {
                        family.push_str(&format!(
                            "{}{} {}\n",
                            k.name,
                            k.label_block(None),
                            fmt_value(*v)
                        ));
                    }
                }
                Kind::Summary => {
                    for (k, s) in self.histograms.iter().filter(|(k, _)| &k.name == name) {
                        if let Some((p50, p95, p99)) = s.p50_p95_p99() {
                            for (q, v) in [("0.5", p50), ("0.95", p95), ("0.99", p99)] {
                                family.push_str(&format!(
                                    "{}{} {}\n",
                                    k.name,
                                    k.label_block(Some(("quantile", q))),
                                    fmt_value(v)
                                ));
                            }
                        }
                        family.push_str(&format!(
                            "{}_sum{} {}\n",
                            k.name,
                            k.label_block(None),
                            fmt_value(s.sum())
                        ));
                        family.push_str(&format!(
                            "{}_count{} {}\n",
                            k.name,
                            k.label_block(None),
                            s.count()
                        ));
                    }
                }
            }
            if family.is_empty() {
                continue;
            }
            if let Some(help) = self.help.get(name) {
                out.push_str(&format!("# HELP {name} {help}\n"));
            }
            out.push_str(&format!("# TYPE {name} {}\n", kind.label()));
            out.push_str(&family);
        }
        out
    }

    /// Renders the registry as one JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`
    /// with flat `name{k="v"}` keys. Histogram values are the sketch
    /// objects from [`QuantileSketch::to_json`].
    pub fn snapshot_json(&self) -> String {
        let mut counters = Object::new();
        for (k, v) in &self.counters {
            counters.int(&k.flat(), *v);
        }
        let mut gauges = Object::new();
        for (k, v) in &self.gauges {
            gauges.num(&k.flat(), *v);
        }
        let mut hists = Object::new();
        for (k, s) in &self.histograms {
            hists.raw(&k.flat(), s.to_json());
        }
        let mut root = Object::new();
        root.raw("counters", counters.render());
        root.raw("gauges", gauges.render());
        root.raw("histograms", hists.render());
        root.render()
    }
}

/// Summary returned by a successful [`validate_exposition`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpositionSummary {
    /// Metric families (`# TYPE` lines).
    pub families: usize,
    /// Sample lines.
    pub samples: usize,
}

/// Validates Prometheus text exposition: every sample line parses as
/// `name{labels} value`, every sample's family has a preceding
/// `# TYPE`, and every value is a finite float.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_exposition(text: &str) -> Result<ExpositionSummary, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or_default();
            let kind = parts.next().ok_or(format!("line {i}: TYPE without kind"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                return Err(format!("line {i}: unknown metric type {kind:?}"));
            }
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample: name[{labels}] value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {i}: sample without value: {line:?}"))?;
        let v: f64 = value
            .parse()
            .map_err(|_| format!("line {i}: unparseable value {value:?}"))?;
        if !v.is_finite() {
            return Err(format!("line {i}: non-finite sample value {value}"));
        }
        let name = series.split('{').next().unwrap_or_default();
        if let Some(open) = series.find('{') {
            if !series.ends_with('}') {
                return Err(format!("line {i}: unterminated label block: {line:?}"));
            }
            let block = &series[open + 1..series.len() - 1];
            for pair in block.split(',') {
                let (k, val) = pair
                    .split_once('=')
                    .ok_or(format!("line {i}: malformed label {pair:?}"))?;
                if !valid_name(k) {
                    return Err(format!("line {i}: invalid label key {k:?}"));
                }
                if !(val.starts_with('"') && val.ends_with('"') && val.len() >= 2) {
                    return Err(format!("line {i}: unquoted label value {val:?}"));
                }
            }
        }
        // `_sum`/`_count` samples belong to their summary family.
        let family = name
            .strip_suffix("_sum")
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| types.contains_key(*base))
            .unwrap_or(name);
        if !types.contains_key(family) {
            return Err(format!("line {i}: sample {name} has no # TYPE declaration"));
        }
        samples += 1;
    }
    Ok(ExpositionSummary {
        families: types.len(),
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.describe("serve_admitted_total", "sessions admitted");
        reg.add("serve_admitted_total", &[("class", "stap-tiny")], 3);
        reg.inc("serve_admitted_total", &[("class", "sar-chain-256")]);
        reg.set_gauge("serve_queue_depth", &[], 7.0);
        for i in 1..=100u64 {
            reg.observe(
                "serve_service_seconds",
                &[("class", "stap-tiny")],
                i as f64 * 1e-4,
            );
        }
        reg
    }

    #[test]
    fn exposition_round_trips_through_the_validator() {
        let reg = sample_registry();
        let text = reg.to_prometheus();
        let summary = validate_exposition(&text).expect("valid exposition");
        assert_eq!(summary.families, 3);
        // 2 counter samples + 1 gauge + (3 quantiles + sum + count).
        assert_eq!(summary.samples, 8);
        assert!(text.contains("# TYPE serve_admitted_total counter"));
        assert!(text.contains("serve_admitted_total{class=\"stap-tiny\"} 3"));
        assert!(text.contains("serve_service_seconds{class=\"stap-tiny\",quantile=\"0.99\"}"));
        assert!(text.contains("serve_service_seconds_count{class=\"stap-tiny\"} 100"));
    }

    #[test]
    fn snapshot_json_parses_and_reads_back() {
        let reg = sample_registry();
        let v = crate::json::parse(&reg.snapshot_json()).expect("snapshot parses");
        let counters = v.get("counters").expect("counters");
        assert_eq!(
            counters
                .get("serve_admitted_total{class=\"stap-tiny\"}")
                .and_then(|x| x.as_f64()),
            Some(3.0)
        );
        let hists = v.get("histograms").expect("histograms");
        let sketch = hists
            .get("serve_service_seconds{class=\"stap-tiny\"}")
            .expect("sketch");
        assert_eq!(sketch.get("count").and_then(|x| x.as_f64()), Some(100.0));
    }

    #[test]
    fn merge_adds_counters_and_folds_sketches() {
        let mut a = sample_registry();
        let b = sample_registry();
        a.merge(&b);
        assert_eq!(
            a.counter("serve_admitted_total", &[("class", "stap-tiny")]),
            6
        );
        assert_eq!(
            a.histogram("serve_service_seconds", &[("class", "stap-tiny")])
                .unwrap()
                .count(),
            200
        );
        assert_eq!(a.gauge("serve_queue_depth", &[]), Some(7.0));
    }

    #[test]
    fn equal_registries_render_byte_identically() {
        let a = sample_registry();
        let b = sample_registry();
        assert_eq!(a.to_prometheus(), b.to_prometheus());
        assert_eq!(a.snapshot_json(), b.snapshot_json());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn one_name_cannot_be_two_kinds() {
        let mut reg = MetricsRegistry::new();
        reg.inc("x_total", &[]);
        reg.set_gauge("x_total", &[], 1.0);
    }

    #[test]
    fn validator_rejects_undeclared_and_malformed_samples() {
        assert!(validate_exposition("x 1\n").is_err(), "no TYPE");
        assert!(validate_exposition("# TYPE x counter\nx nope\n").is_err());
        assert!(validate_exposition("# TYPE x counter\nx{k=\"v\" 1\n").is_err());
        assert!(validate_exposition("# TYPE x counter\nx{k=v} 1\n").is_err());
        assert!(validate_exposition("# TYPE x counter\nx 1\n").is_ok());
    }
}
