//! Time-resolved run profiles and the Chrome trace-event exporter.
//!
//! A [`Profile`] is the union of two time-resolved views of one modeled
//! run:
//!
//! * **phase intervals** ([`IntervalEvent`]) — `accel`/`runtime`/`host`
//!   phases (plan, encode, flush, DMA, compute, drain) with start/end in
//!   modeled seconds, grouped into named tracks;
//! * **counter timelines** ([`TimelineTrack`]) — cycle-windowed
//!   [`Timeline`]s from the DRAM engine and the NoC, anchored to modeled
//!   time by a clock period and an origin.
//!
//! [`Profile::to_chrome_trace`] renders both as Chrome trace-event JSON
//! (the `{"traceEvents": [...]}` dialect Perfetto and `chrome://tracing`
//! load directly): intervals become `"X"` complete events, timeline
//! windows become `"C"` counter series, and each track gets a
//! `thread_name` metadata record. [`validate_chrome_trace`] is the
//! round-trip checker: it re-parses an emitted document with
//! [`crate::json`] and verifies that spans nest without partial overlap
//! on every track.

use mealib_types::Seconds;

use crate::json::{array, parse, Object, Value};
use crate::timeline::Timeline;
use crate::Phase;

/// One phase occupancy interval on a named track, in modeled time.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalEvent {
    /// Track (rendered as a Perfetto thread) the interval belongs to.
    pub track: String,
    /// Phase taxonomy bucket (becomes the event category).
    pub phase: Phase,
    /// Human-readable label (becomes the event name).
    pub label: String,
    /// Start of the interval in modeled time.
    pub start: Seconds,
    /// End of the interval in modeled time (`end >= start`).
    pub end: Seconds,
}

impl IntervalEvent {
    /// Interval duration.
    pub fn duration(&self) -> Seconds {
        Seconds::new((self.end.get() - self.start.get()).max(0.0))
    }
}

/// A cycle-windowed [`Timeline`] anchored to modeled time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineTrack {
    /// Track name, e.g. `"dram:fftw"`.
    pub name: String,
    /// The windowed counters.
    pub timeline: Timeline,
    /// Duration of one producer cycle (the engine's `t_ck`).
    pub cycle_time: Seconds,
    /// Modeled time of the producer's cycle 0.
    pub origin: Seconds,
}

impl TimelineTrack {
    /// Modeled start time of window `w`.
    pub fn window_start(&self, w: u64) -> Seconds {
        let cycles = w as f64 * self.timeline.window_cycles() as f64;
        Seconds::new(self.origin.get() + cycles * self.cycle_time.get())
    }

    /// Modeled duration of one window.
    pub fn window_duration(&self) -> Seconds {
        Seconds::new(self.timeline.window_cycles() as f64 * self.cycle_time.get())
    }

    /// Modeled end time of the last populated window.
    pub fn end_time(&self) -> Seconds {
        self.window_start(self.timeline.num_windows())
    }
}

/// A complete time-resolved profile of one modeled run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Phase intervals, any track order.
    pub intervals: Vec<IntervalEvent>,
    /// Counter timelines, any order.
    pub timelines: Vec<TimelineTrack>,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one interval; returns the new cursor (`end`), so callers
    /// can lay out sequential phases without bookkeeping.
    pub fn interval(
        &mut self,
        track: &str,
        phase: Phase,
        label: &str,
        start: Seconds,
        duration: Seconds,
    ) -> Seconds {
        let end = Seconds::new(start.get() + duration.get().max(0.0));
        if duration.get() > 0.0 {
            self.intervals.push(IntervalEvent {
                track: track.to_string(),
                phase,
                label: label.to_string(),
                start,
                end,
            });
        }
        end
    }

    /// Appends a timeline track.
    pub fn push_timeline(
        &mut self,
        name: &str,
        timeline: Timeline,
        cycle_time: Seconds,
        origin: Seconds,
    ) {
        self.timelines.push(TimelineTrack {
            name: name.to_string(),
            timeline,
            cycle_time,
            origin,
        });
    }

    /// Builds a single-track profile from an end-of-run [`crate::Breakdown`]:
    /// one interval per nonzero phase, laid out sequentially in taxonomy
    /// order. This is the coarse fallback every harness can afford; rich
    /// profiles add real interval structure on top.
    pub fn from_breakdown(bd: &crate::Breakdown, track: &str) -> Self {
        let mut p = Profile::new();
        let mut cursor = Seconds::new(0.0);
        for phase in Phase::ALL {
            let cost = bd.phase(phase);
            if cost.time.get() > 0.0 {
                cursor = p.interval(track, phase, phase.name(), cursor, cost.time);
            }
        }
        p
    }

    /// Merges another profile's events into this one.
    pub fn merge(&mut self, other: Profile) {
        self.intervals.extend(other.intervals);
        self.timelines.extend(other.timelines);
    }

    /// The latest modeled time covered by any interval or timeline
    /// window (zero for an empty profile).
    pub fn end_time(&self) -> Seconds {
        let mut end: f64 = 0.0;
        for iv in &self.intervals {
            end = end.max(iv.end.get());
        }
        for tl in &self.timelines {
            end = end.max(tl.end_time().get());
        }
        Seconds::new(end)
    }

    /// Track names in first-appearance order: interval tracks first,
    /// then timeline tracks.
    pub fn track_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for iv in &self.intervals {
            if !names.contains(&iv.track) {
                names.push(iv.track.clone());
            }
        }
        for tl in &self.timelines {
            if !names.contains(&tl.name) {
                names.push(tl.name.clone());
            }
        }
        names
    }

    /// Renders the profile as a Chrome trace-event JSON document.
    ///
    /// Layout: one process (`pid` 1), one thread per track with a
    /// `thread_name` metadata event; intervals are `"X"` complete events
    /// (`ts`/`dur` in microseconds of modeled time, category = phase);
    /// timeline windows are `"C"` counter events carrying the full
    /// [`crate::timeline::WindowCounters`] key set, summed across lanes.
    pub fn to_chrome_trace(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        let tracks = self.track_names();
        let tid_of =
            |name: &str| -> u64 { tracks.iter().position(|t| t == name).unwrap_or(0) as u64 + 1 };

        for name in &tracks {
            let mut args = Object::new();
            args.str("name", name);
            let mut o = Object::new();
            o.str("name", "thread_name");
            o.str("ph", "M");
            o.int("pid", 1);
            o.int("tid", tid_of(name));
            o.raw("args", args.render());
            events.push(o.render());
        }

        for iv in &self.intervals {
            let mut o = Object::new();
            o.str("name", &iv.label);
            o.str("cat", iv.phase.name());
            o.str("ph", "X");
            o.int("pid", 1);
            o.int("tid", tid_of(&iv.track));
            o.num("ts", iv.start.as_micros());
            o.num("dur", iv.duration().as_micros());
            events.push(o.render());
        }

        for tl in &self.timelines {
            let tid = tid_of(&tl.name);
            for w in 0..tl.timeline.num_windows() {
                let total = tl.timeline.window_total(w);
                let mut o = Object::new();
                o.str("name", &tl.name);
                o.str("cat", "timeline");
                o.str("ph", "C");
                o.int("pid", 1);
                o.int("tid", tid);
                o.num("ts", tl.window_start(w).as_micros());
                o.raw("args", total.to_json());
                events.push(o.render());
            }
        }

        let mut doc = Object::new();
        doc.raw("traceEvents", array(&events));
        doc.str("displayTimeUnit", "ns");
        doc.render()
    }
}

/// Summary returned by a successful [`validate_chrome_trace`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Total events in the document.
    pub events: usize,
    /// `"X"` complete (span) events.
    pub spans: usize,
    /// `"C"` counter events.
    pub counters: usize,
    /// Distinct `(pid, tid)` tracks observed.
    pub tracks: usize,
}

/// Round-trip checker for an emitted Chrome trace-event document.
///
/// Verifies that the document parses with the dependency-free
/// [`crate::json`] parser, that `traceEvents` is an array of objects with
/// the required fields per phase type, and that on every `(pid, tid)`
/// track the `"X"` spans nest properly — a span may contain another, but
/// partial overlap is a violation.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_chrome_trace(doc: &str) -> Result<ChromeTraceSummary, String> {
    let v = parse(doc)?;
    let obj = v.as_object().ok_or("trace document is not an object")?;
    let events = obj
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;

    // (pid, tid) -> list of (ts, dur) spans.
    let mut spans_by_track: std::collections::BTreeMap<(u64, u64), Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    let mut spans = 0usize;
    let mut counters = 0usize;
    let mut tracks = std::collections::BTreeSet::new();

    for (i, ev) in events.iter().enumerate() {
        let ev = ev
            .as_object()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} missing ph"))?;
        if ev.get("name").and_then(Value::as_str).is_none() {
            return Err(format!("event {i} missing name"));
        }
        let num = |key: &str| ev.get(key).and_then(Value::as_f64);
        let track = (
            num("pid").unwrap_or(0.0) as u64,
            num("tid").unwrap_or(0.0) as u64,
        );
        match ph {
            "X" => {
                let ts = num("ts").ok_or_else(|| format!("event {i} missing ts"))?;
                let dur = num("dur").ok_or_else(|| format!("event {i} missing dur"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i} has negative ts or dur"));
                }
                spans_by_track.entry(track).or_default().push((ts, dur));
                tracks.insert(track);
                spans += 1;
            }
            "C" => {
                let ts = num("ts").ok_or_else(|| format!("event {i} missing ts"))?;
                if ts < 0.0 {
                    return Err(format!("event {i} has negative ts"));
                }
                if ev.get("args").and_then(Value::as_object).is_none() {
                    return Err(format!("counter event {i} missing args object"));
                }
                tracks.insert(track);
                counters += 1;
            }
            "M" => {}
            other => return Err(format!("event {i} has unsupported ph {other:?}")),
        }
    }

    // Per-track nesting: sort by (ts asc, dur desc) and sweep with a
    // stack of open span ends. A span starting before the innermost open
    // span ends must also finish by then.
    const EPS: f64 = 1e-9;
    for ((pid, tid), mut track_spans) in spans_by_track {
        track_spans.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
        });
        let mut open: Vec<f64> = Vec::new();
        for (ts, dur) in track_spans {
            while open.last().is_some_and(|&end| end <= ts + EPS) {
                open.pop();
            }
            let end = ts + dur;
            if let Some(&enclosing) = open.last() {
                if end > enclosing + EPS {
                    return Err(format!(
                        "track ({pid},{tid}): span [{ts}, {end}) partially overlaps \
                         enclosing span ending at {enclosing}"
                    ));
                }
            }
            open.push(end);
        }
    }

    Ok(ChromeTraceSummary {
        events: events.len(),
        spans,
        counters,
        tracks: tracks.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::WindowCounters;

    fn s(x: f64) -> Seconds {
        Seconds::new(x)
    }

    #[test]
    fn sequential_intervals_export_and_validate() {
        let mut p = Profile::new();
        let c = p.interval("cu", Phase::Dma, "fetch", s(0.0), s(1e-6));
        let c = p.interval("cu", Phase::Plan, "decode", c, s(2e-6));
        p.interval("cu", Phase::Compute, "pass0", c, s(5e-6));
        let doc = p.to_chrome_trace();
        let summary = validate_chrome_trace(&doc).expect("valid trace");
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.tracks, 1);
        assert!((p.end_time().get() - 8e-6).abs() < 1e-18);
    }

    #[test]
    fn zero_length_intervals_are_dropped() {
        let mut p = Profile::new();
        p.interval("cu", Phase::Dma, "empty", s(0.0), s(0.0));
        assert!(p.intervals.is_empty());
    }

    #[test]
    fn timeline_windows_become_counter_events() {
        let mut tl = Timeline::new(100);
        tl.record(
            50,
            0,
            &WindowCounters {
                bytes_read: 640,
                ..WindowCounters::default()
            },
        );
        tl.record(
            150,
            1,
            &WindowCounters {
                bytes_written: 320,
                ..WindowCounters::default()
            },
        );
        let mut p = Profile::new();
        p.push_timeline("dram", tl, Seconds::from_nanos(1.0), s(0.0));
        let doc = p.to_chrome_trace();
        let summary = validate_chrome_trace(&doc).expect("valid trace");
        assert_eq!(summary.counters, 2);
    }

    #[test]
    fn nested_spans_validate_but_partial_overlap_fails() {
        let mut p = Profile::new();
        p.intervals.push(IntervalEvent {
            track: "t".into(),
            phase: Phase::Compute,
            label: "outer".into(),
            start: s(0.0),
            end: s(10e-6),
        });
        p.intervals.push(IntervalEvent {
            track: "t".into(),
            phase: Phase::Dma,
            label: "inner".into(),
            start: s(2e-6),
            end: s(4e-6),
        });
        validate_chrome_trace(&p.to_chrome_trace()).expect("nesting is legal");

        p.intervals.push(IntervalEvent {
            track: "t".into(),
            phase: Phase::Dma,
            label: "straddler".into(),
            start: s(8e-6),
            end: s(12e-6),
        });
        let err = validate_chrome_trace(&p.to_chrome_trace()).unwrap_err();
        assert!(err.contains("partially overlaps"), "{err}");
    }

    #[test]
    fn garbage_documents_are_rejected() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents": 3}"#).is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents": [{"ph": "X", "name": "x"}]}"#).is_err());
    }

    #[test]
    fn from_breakdown_lays_phases_out_sequentially() {
        let mut bd = crate::Breakdown::new();
        bd.add_phase(
            Phase::Dma,
            Seconds::from_micros(3.0),
            mealib_types::Joules::new(1e-6),
        );
        bd.add_phase(
            Phase::Compute,
            Seconds::from_micros(7.0),
            mealib_types::Joules::new(2e-6),
        );
        let p = Profile::from_breakdown(&bd, "run");
        assert_eq!(p.intervals.len(), 2);
        assert!((p.end_time().as_micros() - 10.0).abs() < 1e-9);
        validate_chrome_trace(&p.to_chrome_trace()).expect("valid");
    }
}
