//! Percentile helpers with one documented definition.
//!
//! Every latency percentile the stack reports (the serving layer's
//! p50/p95/p99, the bench summaries) uses the **nearest-rank**
//! definition: for a sample of `n` values sorted ascending, the `q`-th
//! quantile is the value at 1-based rank `ceil(q * n)` (clamped to at
//! least 1). Nearest-rank always returns an *observed* sample — no
//! interpolation — so percentiles are exactly reproducible across
//! runs, job counts, and platforms whenever the sample multiset is,
//! which is the property the deterministic-replay tests pin down. It
//! also matches the rank rule of `mealib-memsim`'s
//! `LatencyHistogram::quantile_bound`, so histogram-bucketed and
//! exact-sample percentiles agree on which observation they select.
//!
//! **Empty-sample semantics.** Both helpers return `Option`: an empty
//! sample is `None`, *never* `0.0`. The distinction is load-bearing
//! for the SLO engine ([`crate::slo`]) — a window with no completions
//! must be *skipped*, not scored as "zero latency" (which would
//! trivially pass every latency objective and silently inflate
//! conformance). [`crate::sketch::QuantileSketch::quantile`] follows
//! the same contract.
//!
//! **NaN semantics.** NaN is rejected, not propagated: the stack only
//! produces finite modeled times, so a NaN sample is a caller bug and
//! [`p50_p95_p99`] panics on it rather than returning a NaN that
//! would poison every downstream comparison (`NaN > threshold` is
//! `false`, so a poisoned percentile would silently *pass* SLO
//! checks).

/// The `q`-th nearest-rank quantile of `sorted` (ascending). Returns
/// `None` on an empty sample.
///
/// # Panics
///
/// Panics when `q` is outside `[0, 1]` or `sorted` is not ascending
/// (debug builds check the ordering; release builds trust it).
pub fn nearest_rank(sorted: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "sample must be sorted ascending"
    );
    if sorted.is_empty() {
        return None;
    }
    let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
    Some(sorted[rank.min(sorted.len()) - 1])
}

/// The (p50, p95, p99) triple of `values`, sorting a copy first.
/// Returns `None` on an empty sample. NaNs are rejected by the sort
/// (total order over non-NaN floats is all the stack produces).
///
/// # Panics
///
/// Panics if `values` contains a NaN.
pub fn p50_p95_p99(values: &[f64]) -> Option<(f64, f64, f64)> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("percentile samples must not be NaN")
    });
    Some((
        nearest_rank(&sorted, 0.50).expect("non-empty"),
        nearest_rank(&sorted, 0.95).expect("non-empty"),
        nearest_rank(&sorted, 0.99).expect("non-empty"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_selects_observed_samples() {
        let s: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(nearest_rank(&s, 0.50), Some(50.0));
        assert_eq!(nearest_rank(&s, 0.95), Some(95.0));
        assert_eq!(nearest_rank(&s, 0.99), Some(99.0));
        assert_eq!(nearest_rank(&s, 1.0), Some(100.0));
        // q = 0 clamps to the first observation, never rank 0.
        assert_eq!(nearest_rank(&s, 0.0), Some(1.0));
        assert_eq!(nearest_rank(&[], 0.5), None);
    }

    #[test]
    fn small_samples_round_up_to_a_real_rank() {
        // n = 3: ceil(0.5 * 3) = 2, ceil(0.95 * 3) = 3.
        let s = [1.0, 2.0, 3.0];
        assert_eq!(nearest_rank(&s, 0.5), Some(2.0));
        assert_eq!(nearest_rank(&s, 0.95), Some(3.0));
        // A single observation is every percentile.
        assert_eq!(nearest_rank(&[7.5], 0.99), Some(7.5));
    }

    #[test]
    fn triple_sorts_its_input() {
        let unsorted = [3.0, 1.0, 2.0, 5.0, 4.0];
        assert_eq!(p50_p95_p99(&unsorted), Some((3.0, 5.0, 5.0)));
        assert_eq!(p50_p95_p99(&[]), None);
    }

    #[test]
    fn no_data_is_none_never_zero() {
        // Regression: the SLO engine distinguishes "no completions"
        // (None — skip the window) from "all completions instant"
        // (Some(0.0) — evaluate it). Conflating them would score empty
        // windows as passing every latency objective.
        assert_eq!(nearest_rank(&[], 0.99), None);
        assert_eq!(p50_p95_p99(&[]), None);
        let zeros = [0.0, 0.0, 0.0];
        assert_eq!(nearest_rank(&zeros, 0.99), Some(0.0));
        assert_eq!(p50_p95_p99(&zeros), Some((0.0, 0.0, 0.0)));
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_samples_panic_instead_of_poisoning_percentiles() {
        p50_p95_p99(&[1.0, f64::NAN, 2.0]);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn out_of_range_quantiles_panic() {
        nearest_rank(&[1.0], 1.5);
    }
}
