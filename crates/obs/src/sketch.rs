//! A deterministic, mergeable, bounded-memory quantile sketch.
//!
//! [`QuantileSketch`] is a fixed-scheme log-bucket histogram in the
//! DDSketch family: for relative accuracy `alpha` it uses the base
//! `gamma = (1 + alpha) / (1 - alpha)` and maps a positive value `v`
//! to bucket `i = ceil(ln v / ln gamma)`, i.e. the bucket covering
//! `(gamma^(i-1), gamma^i]`. Reporting the bucket's midpoint-in-ratio
//! representative `2 * gamma^i / (gamma + 1)` guarantees the
//! **relative-error bound**
//!
//! ```text
//! |q_sketch - q_exact| <= alpha * q_exact
//! ```
//!
//! for every quantile of every stream (proof: a value `v` in bucket
//! `i` satisfies `gamma^(i-1) < v <= gamma^i`, and the representative
//! `r_i = 2 gamma^i / (gamma + 1)` satisfies `r_i / gamma^i =
//! 2 / (gamma + 1) = 1 - alpha` and `r_i / gamma^(i-1) =
//! 2 gamma / (gamma + 1) = 1 + alpha`), up to a few ulps of float
//! rounding in `ln`/`exp` at bucket boundaries. Values at or below
//! [`QuantileSketch::MIN_VALUE`] land in a dedicated zero bucket and
//! are reported as exactly `0.0`.
//!
//! Determinism and mergeability, the properties the serving telemetry
//! leans on:
//!
//! * the bucket scheme is *fixed* by `alpha` alone — no collapsing, no
//!   re-scaling — so the bucket a value lands in never depends on what
//!   was recorded before it;
//! * [`QuantileSketch::merge`] adds `u64` bucket counts and combines
//!   `sum`/`min`/`max` with commutative float ops, so
//!   `merge(a, b) == merge(b, a)` **bit-exactly** and parallel epochs
//!   can be folded in any order;
//! * memory is `O(buckets)`: at most
//!   `ln(max/min) / ln(gamma) + 2` occupied buckets regardless of how
//!   many values stream through (the `BTreeMap` is sparse), with a
//!   hard index clamp as a safety valve for pathological dynamic
//!   ranges.
//!
//! The quantile query is *nearest-rank* over bucket representatives
//! (rank `ceil(q * n)`, clamped to at least 1), matching
//! [`crate::quantiles::nearest_rank`] so sketch and exact answers are
//! directly comparable. An empty sketch returns `None` — "no data" is
//! never conflated with "zero latency".

use std::collections::BTreeMap;

use crate::json::Object;

/// A mergeable log-bucket quantile sketch with relative accuracy
/// `alpha` (see the module docs for the bound and its proof).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    alpha: f64,
    /// `ln(gamma)` for `gamma = (1 + alpha) / (1 - alpha)`.
    ln_gamma: f64,
    /// Sparse bucket counts keyed by log index.
    buckets: BTreeMap<i32, u64>,
    /// Count of values at or below [`Self::MIN_VALUE`].
    zero_count: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// Values at or below this land in the zero bucket and are
    /// reported as exactly `0.0`.
    pub const MIN_VALUE: f64 = 1e-12;

    /// Safety clamp on bucket indices: values whose log index falls
    /// outside `±MAX_INDEX` saturate into the edge bucket (and may
    /// then exceed the relative-error bound). For the default
    /// `alpha = 0.01` the clamp only engages beyond `~e±83886`, far
    /// outside f64 range, so in practice it never fires.
    pub const MAX_INDEX: i32 = 1 << 22;

    /// The default relative accuracy: 1%.
    pub const DEFAULT_ALPHA: f64 = 0.01;

    /// A sketch with relative accuracy `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "sketch alpha must be in (0, 1), got {alpha}"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Self {
            alpha,
            ln_gamma: gamma.ln(),
            buckets: BTreeMap::new(),
            zero_count: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The configured relative accuracy.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Records one value.
    ///
    /// # Panics
    ///
    /// Panics on NaN, infinite, or negative values: the telemetry
    /// streams modeled times/bytes, which are always finite and
    /// non-negative, so anything else is a caller bug.
    pub fn record(&mut self, value: f64) {
        assert!(
            value.is_finite() && value >= 0.0,
            "sketch values must be finite and non-negative, got {value}"
        );
        if value <= Self::MIN_VALUE {
            self.zero_count += 1;
        } else {
            let idx = (value.ln() / self.ln_gamma).ceil() as i64;
            let idx = idx.clamp(-(Self::MAX_INDEX as i64), Self::MAX_INDEX as i64) as i32;
            *self.buckets.entry(idx).or_insert(0) += 1;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values (accumulated in record order).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact minimum, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Occupied buckets (including the zero bucket when populated):
    /// the sketch's memory footprint, which the soak test pins to
    /// O(value dynamic range), not O(samples).
    pub fn buckets_used(&self) -> usize {
        self.buckets.len() + usize::from(self.zero_count > 0)
    }

    /// The representative value reported for bucket `idx`.
    fn representative(&self, idx: i32) -> f64 {
        // 2 gamma^i / (gamma + 1), computed via exp for the full index
        // range.
        let gamma = (1.0 + self.alpha) / (1.0 - self.alpha);
        2.0 * (self.ln_gamma * f64::from(idx)).exp() / (gamma + 1.0)
    }

    /// The nearest-rank `q`-quantile over bucket representatives, or
    /// `None` when the sketch is empty.
    ///
    /// The returned value is within `alpha` relative error of the
    /// exact nearest-rank quantile of the recorded stream (module docs
    /// give the proof; boundary values may add a few ulps).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= q <= 1`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        if rank <= self.zero_count {
            return Some(0.0);
        }
        let mut seen = self.zero_count;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(self.representative(idx));
            }
        }
        // Unreachable: bucket counts sum to `count` and rank <= count.
        Some(self.representative(*self.buckets.keys().last()?))
    }

    /// The (p50, p95, p99) triple, or `None` when empty.
    pub fn p50_p95_p99(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
        ))
    }

    /// Folds `other` into `self`. Commutative bit-exactly: bucket
    /// counts add in `u64`, `sum` is a single float addition (IEEE
    /// addition of two finite operands is commutative), and `min`/
    /// `max` are order-free.
    ///
    /// # Panics
    ///
    /// Panics if the sketches were built with different `alpha`
    /// (their bucket schemes are incompatible).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.alpha.to_bits() == other.alpha.to_bits(),
            "cannot merge sketches with different alpha ({} vs {})",
            self.alpha,
            other.alpha
        );
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        self.zero_count += other.zero_count;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Renders the sketch as one JSON object: scheme, exact moments,
    /// and the standard quantile triple.
    pub fn to_json(&self) -> String {
        let mut o = Object::new();
        o.num("alpha", self.alpha);
        o.int("count", self.count);
        o.num("sum", self.sum);
        if let Some((p50, p95, p99)) = self.p50_p95_p99() {
            o.num("min", self.min);
            o.num("max", self.max);
            o.num("p50", p50);
            o.num("p95", p95);
            o.num("p99", p99);
        }
        o.int("buckets", self.buckets_used() as u64);
        o.render()
    }
}

impl Default for QuantileSketch {
    /// The default sketch: `alpha = 0.01` (1% relative error).
    fn default() -> Self {
        Self::new(Self::DEFAULT_ALPHA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantiles::nearest_rank;

    /// Slack over the documented bound for float rounding at bucket
    /// boundaries (`ln`/`exp` are correctly rounded to within an ulp,
    /// so boundary values can land one bucket off).
    fn within_bound(sketch: f64, exact: f64, alpha: f64) -> bool {
        if exact <= QuantileSketch::MIN_VALUE {
            return sketch == 0.0;
        }
        (sketch - exact).abs() <= alpha * exact * (1.0 + 1e-9) + 1e-12
    }

    #[test]
    fn empty_sketch_reports_no_data() {
        let s = QuantileSketch::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.p50_p95_p99(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.buckets_used(), 0);
    }

    #[test]
    fn quantiles_stay_within_the_documented_bound() {
        let mut s = QuantileSketch::default();
        let mut values: Vec<f64> = Vec::new();
        // A deliberately wide dynamic range: microseconds to kiloseconds.
        for i in 0..5000u64 {
            let v = 1e-6 * (1.0 + i as f64).powf(2.3);
            s.record(v);
            values.push(v);
        }
        values.sort_by(f64::total_cmp);
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let exact = nearest_rank(&values, q).unwrap();
            let approx = s.quantile(q).unwrap();
            assert!(
                within_bound(approx, exact, s.alpha()),
                "q={q}: sketch {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn zero_bucket_values_report_exactly_zero() {
        let mut s = QuantileSketch::default();
        for _ in 0..10 {
            s.record(0.0);
        }
        s.record(1.0);
        assert_eq!(s.quantile(0.5), Some(0.0));
        assert!(s.quantile(1.0).unwrap() > 0.9);
        assert_eq!(s.min(), Some(0.0));
    }

    #[test]
    fn merge_is_commutative_bit_exactly() {
        let mut a = QuantileSketch::default();
        let mut b = QuantileSketch::default();
        for i in 0..100u64 {
            a.record(1e-3 * (i + 1) as f64);
            b.record(2.7e-5 * (i + 1) as f64 * (i + 1) as f64);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.sum().to_bits(), ba.sum().to_bits());
        assert_eq!(ab.count(), a.count() + b.count());
        assert_eq!(
            ab.quantile(0.99).unwrap().to_bits(),
            ba.quantile(0.99).unwrap().to_bits()
        );
    }

    #[test]
    fn memory_is_bounded_by_dynamic_range_not_samples() {
        let mut s = QuantileSketch::default();
        // 100k samples across three decades.
        for i in 0..100_000u64 {
            s.record(1e-4 + (i % 1000) as f64 * 1e-4);
        }
        // ln(1e3) / ln(gamma) ≈ 345 buckets for alpha = 1%.
        assert!(s.buckets_used() <= 400, "{} buckets", s.buckets_used());
        assert_eq!(s.count(), 100_000);
    }

    #[test]
    #[should_panic(expected = "different alpha")]
    fn merging_mismatched_alphas_panics() {
        let mut a = QuantileSketch::new(0.01);
        let b = QuantileSketch::new(0.02);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_values_panic() {
        QuantileSketch::default().record(-1.0);
    }

    #[test]
    fn json_rendering_parses_and_carries_the_triple() {
        let mut s = QuantileSketch::default();
        for i in 1..=100u64 {
            s.record(i as f64 * 1e-3);
        }
        let v = crate::json::parse(&s.to_json()).expect("sketch json parses");
        assert_eq!(v.get("count").and_then(|x| x.as_f64()), Some(100.0));
        let p50 = v.get("p50").and_then(|x| x.as_f64()).unwrap();
        assert!(within_bound(p50, 0.050, s.alpha()), "p50 {p50}");
    }
}
