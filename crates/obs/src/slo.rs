//! Service-level objectives, error budgets, and sliding-window
//! burn-rate alerts — all in modeled time.
//!
//! An [`Objective`] declares a per-subject target (a tenant class, in
//! the serving stack) of one of three kinds:
//!
//! * **p99 latency** — at most `error_budget` of a window's
//!   completions may exceed `threshold` seconds. The caller counts
//!   violations *exactly* (each completion compared against the
//!   threshold when it happens), so burn decisions never depend on
//!   sketch approximation.
//! * **admission rate** — the fraction of a window's arrivals that
//!   are *not shed* must reach `threshold`. Proved rejections
//!   (impossible declared budgets, MEA3xx) are client errors and do
//!   not count against availability — the classic 4xx exclusion.
//! * **bandwidth floor** — delivered bytes over the window's busy
//!   (service) time must reach `threshold` bytes/second.
//!
//! The **burn rate** of a window is `shortfall / error_budget`: how
//! fast the window consumes its budget, with `> 1` meaning the budget
//! burns before the window ends — that raises an [`Alert`] of kind
//! [`AlertKind::SloBurn`]. The engine never alerts on "no data": a
//! window with no completions skips the latency and bandwidth checks
//! entirely (see [`crate::quantiles`] — "no data" is not "zero
//! latency").
//!
//! [`AlertKind::BoundsEscape`] is the distinct, stronger alert class:
//! a windowed observation escaped the tenant's MEA3xx *certified*
//! interval. The serving telemetry performs those exact checks itself
//! and raises the alert through [`SloEngine::raise`]; the engine
//! records it and taints conformance accounting the same way.
//!
//! Everything here is deterministic: windows are indexed, observations
//! arrive in modeled-time order, and [`SloEngine::conformance`] is a
//! pure ratio of checked-to-burning window evaluations.

use std::collections::BTreeMap;

use crate::json::Object;

/// What an [`Objective`] constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObjectiveKind {
    /// p99 completion latency, seconds: at most `error_budget` of a
    /// window's completions may exceed the threshold.
    LatencyP99,
    /// Fraction of arrivals not shed must reach the threshold.
    AdmissionRate,
    /// Delivered bytes per second of busy time must reach the
    /// threshold.
    BandwidthFloor,
}

impl ObjectiveKind {
    /// Stable snake_case name used in alerts and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ObjectiveKind::LatencyP99 => "latency_p99",
            ObjectiveKind::AdmissionRate => "admission_rate",
            ObjectiveKind::BandwidthFloor => "bandwidth_floor",
        }
    }
}

/// One declared objective with its error budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objective {
    /// What is constrained.
    pub kind: ObjectiveKind,
    /// The target (seconds, fraction, or bytes/second by kind).
    pub threshold: f64,
    /// Tolerated shortfall per window: violation fraction for
    /// latency, rate shortfall for admission, relative shortfall for
    /// bandwidth. Must be positive.
    pub error_budget: f64,
}

/// One subject's aggregated observations over one sliding window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowObs {
    /// Index of the window (e.g. the epoch closing it).
    pub window_index: u64,
    /// Modeled duration of the window, seconds.
    pub duration_s: f64,
    /// Completions in the window.
    pub completions: u64,
    /// Completions whose latency exceeded the subject's declared
    /// [`ObjectiveKind::LatencyP99`] threshold (counted exactly by
    /// the caller).
    pub latency_violations: u64,
    /// Fresh arrivals in the window.
    pub arrivals: u64,
    /// Arrivals shed in the window (server-side failures).
    pub shed: u64,
    /// Bytes delivered by the window's completions.
    pub bytes: u64,
    /// Summed service time of the window's completions, seconds.
    pub service_s: f64,
}

/// The alert taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertKind {
    /// An SLO window burned more than its error budget.
    SloBurn,
    /// A windowed observation escaped a certified MEA3xx interval —
    /// a *proved* anomaly, not a heuristic one.
    BoundsEscape,
}

impl AlertKind {
    /// Stable snake_case name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::SloBurn => "slo_burn",
            AlertKind::BoundsEscape => "bounds_escape",
        }
    }
}

/// One structured alert record.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Alert class.
    pub kind: AlertKind,
    /// The subject (tenant class) the alert concerns.
    pub subject: String,
    /// The violated objective's name (or the escaped bound's field).
    pub objective: String,
    /// The window that burned.
    pub window_index: u64,
    /// The observed value.
    pub observed: f64,
    /// The declared threshold (or certified bound) it violated.
    pub threshold: f64,
    /// Budget burn rate (`> 1` burns the budget; bounds escapes
    /// report `f64::INFINITY` — there is no budget against a proof).
    pub burn_rate: f64,
    /// Human-readable context.
    pub detail: String,
}

impl Alert {
    /// Renders the alert as one JSON object.
    pub fn to_json(&self) -> String {
        let mut o = Object::new();
        o.str("kind", self.kind.name());
        o.str("subject", &self.subject);
        o.str("objective", &self.objective);
        o.int("window", self.window_index);
        o.num("observed", self.observed);
        o.num("threshold", self.threshold);
        o.num("burn_rate", self.burn_rate);
        o.str("detail", &self.detail);
        o.render()
    }
}

/// The burn-rate engine: declared objectives per subject, evaluated
/// window by window.
#[derive(Debug, Clone, Default)]
pub struct SloEngine {
    specs: BTreeMap<String, Vec<Objective>>,
    alerts: Vec<Alert>,
    /// Objective-window evaluations performed / found burning.
    evaluated: u64,
    burning: u64,
}

impl SloEngine {
    /// An engine with no objectives (every window trivially conforms).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `objective` for `subject`.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive error budget.
    pub fn declare(&mut self, subject: &str, objective: Objective) {
        assert!(
            objective.error_budget > 0.0,
            "{subject}/{}: error budget must be positive",
            objective.kind.name()
        );
        self.specs
            .entry(subject.to_string())
            .or_default()
            .push(objective);
    }

    /// The declared latency threshold for `subject`, if any — the
    /// caller uses it to count violations exactly at completion time.
    pub fn latency_threshold(&self, subject: &str) -> Option<f64> {
        self.specs
            .get(subject)?
            .iter()
            .find_map(|o| (o.kind == ObjectiveKind::LatencyP99).then_some(o.threshold))
    }

    /// Subjects with declared objectives.
    pub fn subjects(&self) -> impl Iterator<Item = &str> {
        self.specs.keys().map(String::as_str)
    }

    /// Evaluates one subject's window against its declared
    /// objectives, raising a [`AlertKind::SloBurn`] alert per
    /// objective whose burn rate exceeds 1. Objectives with no data
    /// in the window (no completions, no arrivals, no busy time) are
    /// skipped, not passed.
    pub fn evaluate(&mut self, subject: &str, w: &WindowObs) {
        let Some(objectives) = self.specs.get(subject) else {
            return;
        };
        let mut fired: Vec<Alert> = Vec::new();
        for o in objectives {
            let (observed, shortfall, detail) = match o.kind {
                ObjectiveKind::LatencyP99 => {
                    if w.completions == 0 {
                        continue;
                    }
                    let vf = w.latency_violations as f64 / w.completions as f64;
                    let obs = vf;
                    (
                        obs,
                        vf,
                        format!(
                            "{}/{} completions over {:.3e}s",
                            w.latency_violations, w.completions, o.threshold
                        ),
                    )
                }
                ObjectiveKind::AdmissionRate => {
                    if w.arrivals == 0 {
                        continue;
                    }
                    let rate = 1.0 - w.shed as f64 / w.arrivals as f64;
                    (
                        rate,
                        (o.threshold - rate).max(0.0),
                        format!("{} of {} arrivals shed", w.shed, w.arrivals),
                    )
                }
                ObjectiveKind::BandwidthFloor => {
                    if w.service_s <= 0.0 {
                        continue;
                    }
                    let bw = w.bytes as f64 / w.service_s;
                    (
                        bw,
                        ((o.threshold - bw) / o.threshold).max(0.0),
                        format!("{} bytes over {:.3e}s busy", w.bytes, w.service_s),
                    )
                }
            };
            self.evaluated += 1;
            let burn_rate = shortfall / o.error_budget;
            if burn_rate > 1.0 {
                self.burning += 1;
                fired.push(Alert {
                    kind: AlertKind::SloBurn,
                    subject: subject.to_string(),
                    objective: o.kind.name().to_string(),
                    window_index: w.window_index,
                    observed,
                    threshold: o.threshold,
                    burn_rate,
                    detail,
                });
            }
        }
        self.alerts.extend(fired);
    }

    /// Records an externally-raised alert (the serving telemetry's
    /// certified-bounds monitor uses this for
    /// [`AlertKind::BoundsEscape`]).
    pub fn raise(&mut self, alert: Alert) {
        self.alerts.push(alert);
    }

    /// All alerts raised so far, in raise order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Objective-window evaluations performed.
    pub fn evaluations(&self) -> u64 {
        self.evaluated
    }

    /// Fraction of objective-window evaluations that did *not* burn
    /// their budget; `1.0` when nothing was evaluated.
    pub fn conformance(&self) -> f64 {
        if self.evaluated == 0 {
            1.0
        } else {
            1.0 - self.burning as f64 / self.evaluated as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(completions: u64, violations: u64) -> WindowObs {
        WindowObs {
            window_index: 3,
            duration_s: 1.0,
            completions,
            latency_violations: violations,
            arrivals: completions,
            shed: 0,
            bytes: 1_000_000,
            service_s: 0.5,
        }
    }

    fn latency_slo(budget: f64) -> Objective {
        Objective {
            kind: ObjectiveKind::LatencyP99,
            threshold: 1e-3,
            error_budget: budget,
        }
    }

    #[test]
    fn healthy_windows_conform_without_alerts() {
        let mut e = SloEngine::new();
        e.declare("stap-tiny", latency_slo(0.05));
        e.declare(
            "stap-tiny",
            Objective {
                kind: ObjectiveKind::AdmissionRate,
                threshold: 0.9,
                error_budget: 0.5,
            },
        );
        e.evaluate("stap-tiny", &window(100, 2));
        assert!(e.alerts().is_empty());
        assert_eq!(e.evaluations(), 2);
        assert!((e.conformance() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn budget_burn_fires_a_structured_alert() {
        let mut e = SloEngine::new();
        e.declare("stap-tiny", latency_slo(0.05));
        // 10% violations against a 5% budget: burn rate 2.
        e.evaluate("stap-tiny", &window(100, 10));
        let alerts = e.alerts();
        assert_eq!(alerts.len(), 1);
        let a = &alerts[0];
        assert_eq!(a.kind, AlertKind::SloBurn);
        assert_eq!(a.objective, "latency_p99");
        assert!((a.burn_rate - 2.0).abs() < 1e-12, "{}", a.burn_rate);
        assert!(e.conformance() < 1.0);
        let v = crate::json::parse(&a.to_json()).expect("alert json parses");
        assert_eq!(v.get("kind").and_then(|x| x.as_str()), Some("slo_burn"));
    }

    #[test]
    fn empty_windows_are_skipped_not_passed() {
        let mut e = SloEngine::new();
        e.declare("stap-tiny", latency_slo(0.01));
        e.evaluate("stap-tiny", &WindowObs::default());
        assert_eq!(e.evaluations(), 0, "no data means no evaluation");
        assert!((e.conformance() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn shed_arrivals_burn_availability_but_rejections_do_not() {
        let mut e = SloEngine::new();
        e.declare(
            "c",
            Objective {
                kind: ObjectiveKind::AdmissionRate,
                threshold: 0.9,
                error_budget: 0.1,
            },
        );
        // 40% shed: rate 0.6, shortfall 0.3, burn 3.
        let mut w = window(10, 0);
        w.arrivals = 10;
        w.shed = 4;
        e.evaluate("c", &w);
        assert_eq!(e.alerts().len(), 1);
        assert!((e.alerts()[0].burn_rate - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_floor_uses_busy_time() {
        let mut e = SloEngine::new();
        e.declare(
            "c",
            Objective {
                kind: ObjectiveKind::BandwidthFloor,
                threshold: 4e6,
                error_budget: 0.25,
            },
        );
        // 1 MB over 0.5 s busy = 2 MB/s against a 4 MB/s floor:
        // relative shortfall 0.5, burn 2.
        e.evaluate("c", &window(10, 0));
        assert_eq!(e.alerts().len(), 1);
        assert!((e.alerts()[0].observed - 2e6).abs() < 1e-6);
    }

    #[test]
    fn raised_bounds_escapes_are_recorded_verbatim() {
        let mut e = SloEngine::new();
        e.raise(Alert {
            kind: AlertKind::BoundsEscape,
            subject: "stap-tiny".into(),
            objective: "elapsed_hi".into(),
            window_index: 9,
            observed: 2.0,
            threshold: 1.5,
            burn_rate: f64::INFINITY,
            detail: "s42 over certified ceiling".into(),
        });
        assert_eq!(e.alerts().len(), 1);
        assert_eq!(e.alerts()[0].kind, AlertKind::BoundsEscape);
        // Bounds escapes ride outside the budget accounting.
        assert_eq!(e.evaluations(), 0);
    }

    #[test]
    fn latency_threshold_lookup_serves_exact_violation_counting() {
        let mut e = SloEngine::new();
        e.declare("c", latency_slo(0.01));
        assert_eq!(e.latency_threshold("c"), Some(1e-3));
        assert_eq!(e.latency_threshold("other"), None);
    }
}
