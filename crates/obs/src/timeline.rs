//! Cycle-windowed counter timelines.
//!
//! A [`Timeline`] slices modeled time into fixed-width cycle windows and
//! accumulates a [`WindowCounters`] per `(window, lane)` cell. Producers
//! (the DRAM engine's per-vault units, the NoC's links) attribute each
//! event to the window containing its *completion* cycle, so windows are
//! half-open cycle ranges `[w·W, (w+1)·W)` over completion times.
//!
//! Every field is an unsigned integer and [`Timeline::merge`] is a plain
//! per-cell sum, so merging per-unit timelines is commutative and
//! associative: the parallel engine (PR 4) can build one timeline per
//! vault shard and merge them in any order, and the result is bit-identical
//! to the serial run. The same property makes the conservation invariant
//! exact — summing all cells reproduces the aggregate run counters with
//! integer equality, never "within epsilon".

use std::collections::BTreeMap;

use crate::json::{array, Object};

/// Additive event counters for one `(window, lane)` cell.
///
/// One struct serves both producers: the DRAM fields are filled by
/// `mealib-memsim` (lane = vault index) and the NoC fields by
/// `mealib-noc` (lane = destination tile); unused fields stay zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowCounters {
    /// Bytes moved by read bursts completing in this window.
    pub bytes_read: u64,
    /// Bytes moved by write bursts completing in this window.
    pub bytes_written: u64,
    /// Row activations (ACT commands).
    pub activations: u64,
    /// Precharges (PRE commands, including refresh-implied ones).
    pub precharges: u64,
    /// Bursts that hit an open row.
    pub row_hits: u64,
    /// Bursts that missed (row conflict or closed bank).
    pub row_misses: u64,
    /// Refresh operations charged to this window.
    pub refreshes: u64,
    /// Cycles the unit's data bus was driving data.
    pub bus_busy_cycles: u64,
    /// Summed FCFS queue residency: for each burst, cycles between the
    /// previous burst's completion and this one's (service + wait).
    pub queue_wait_cycles: u64,
    /// NoC flits whose tail traversed a link in this window.
    pub noc_flits: u64,
    /// Cycles flit heads stalled waiting for link credit.
    pub noc_credit_stalls: u64,
}

impl WindowCounters {
    /// Adds `other` into `self` field-wise.
    pub fn merge(&mut self, other: &WindowCounters) {
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.activations += other.activations;
        self.precharges += other.precharges;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.refreshes += other.refreshes;
        self.bus_busy_cycles += other.bus_busy_cycles;
        self.queue_wait_cycles += other.queue_wait_cycles;
        self.noc_flits += other.noc_flits;
        self.noc_credit_stalls += other.noc_credit_stalls;
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == WindowCounters::default()
    }

    /// Total bytes moved in this cell.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Renders the cell as a JSON object (zero fields included, so every
    /// cell has a stable key set).
    pub fn to_json(&self) -> String {
        let mut o = Object::new();
        o.int("bytes_read", self.bytes_read);
        o.int("bytes_written", self.bytes_written);
        o.int("activations", self.activations);
        o.int("precharges", self.precharges);
        o.int("row_hits", self.row_hits);
        o.int("row_misses", self.row_misses);
        o.int("refreshes", self.refreshes);
        o.int("bus_busy_cycles", self.bus_busy_cycles);
        o.int("queue_wait_cycles", self.queue_wait_cycles);
        o.int("noc_flits", self.noc_flits);
        o.int("noc_credit_stalls", self.noc_credit_stalls);
        o.render()
    }
}

/// A cycle-windowed, per-lane counter timeline.
///
/// Cells are keyed `(window index, lane)` in a `BTreeMap`, so iteration
/// order — and therefore any rendering — is deterministic regardless of
/// the order cells were produced or merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    window_cycles: u64,
    cells: BTreeMap<(u64, u16), WindowCounters>,
}

impl Timeline {
    /// Creates an empty timeline with the given window width in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window_cycles` is zero.
    pub fn new(window_cycles: u64) -> Self {
        assert!(window_cycles > 0, "window_cycles must be positive");
        Self {
            window_cycles,
            cells: BTreeMap::new(),
        }
    }

    /// The configured window width in cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// The window index containing `cycle`.
    pub fn window_of(&self, cycle: u64) -> u64 {
        cycle / self.window_cycles
    }

    /// Merges `delta` into the cell for the window containing `cycle` on
    /// `lane`.
    pub fn record(&mut self, cycle: u64, lane: u16, delta: &WindowCounters) {
        if delta.is_zero() {
            return;
        }
        let w = self.window_of(cycle);
        self.cells.entry((w, lane)).or_default().merge(delta);
    }

    /// Merges `delta` directly into the cell `(window, lane)` — for
    /// producers that already bucket their own events by window index.
    pub fn add_cell(&mut self, window: u64, lane: u16, delta: &WindowCounters) {
        if delta.is_zero() {
            return;
        }
        self.cells.entry((window, lane)).or_default().merge(delta);
    }

    /// Merges another timeline into this one, cell-wise.
    ///
    /// # Panics
    ///
    /// Panics if the window widths differ — cells would not be
    /// commensurable.
    pub fn merge(&mut self, other: &Timeline) {
        assert_eq!(
            self.window_cycles, other.window_cycles,
            "cannot merge timelines with different window widths"
        );
        for (key, delta) in &other.cells {
            self.cells.entry(*key).or_default().merge(delta);
        }
    }

    /// Number of populated cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cell has been recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates cells in `(window, lane)` order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u16, &WindowCounters)> {
        self.cells.iter().map(|(&(w, l), c)| (w, l, c))
    }

    /// The exclusive upper bound on populated window indices (0 when
    /// empty).
    pub fn num_windows(&self) -> u64 {
        self.cells.keys().map(|&(w, _)| w + 1).max().unwrap_or(0)
    }

    /// Distinct lanes with at least one populated cell, ascending.
    pub fn lanes(&self) -> Vec<u16> {
        let mut lanes: Vec<u16> = self.cells.keys().map(|&(_, l)| l).collect();
        lanes.sort_unstable();
        lanes.dedup();
        lanes
    }

    /// Sums every cell — the conservation counterpart of the aggregate
    /// run statistics.
    pub fn aggregate(&self) -> WindowCounters {
        let mut total = WindowCounters::default();
        for c in self.cells.values() {
            total.merge(c);
        }
        total
    }

    /// Sums all lanes of one window.
    pub fn window_total(&self, window: u64) -> WindowCounters {
        let mut total = WindowCounters::default();
        for (&(w, _), c) in self.cells.range((window, 0)..=(window, u16::MAX)) {
            if w == window {
                total.merge(c);
            }
        }
        total
    }

    /// Renders the timeline as a JSON object with one entry per cell.
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .iter()
            .map(|(w, l, c)| {
                let mut o = Object::new();
                o.int("window", w);
                o.int("lane", u64::from(l));
                o.raw("counters", c.to_json());
                o.render()
            })
            .collect();
        let mut o = Object::new();
        o.int("window_cycles", self.window_cycles);
        o.raw("cells", array(&cells));
        o.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(bytes: u64) -> WindowCounters {
        WindowCounters {
            bytes_read: bytes,
            row_hits: 1,
            ..WindowCounters::default()
        }
    }

    #[test]
    fn record_buckets_by_completion_cycle() {
        let mut t = Timeline::new(100);
        t.record(0, 0, &delta(64));
        t.record(99, 0, &delta(64));
        t.record(100, 0, &delta(64));
        assert_eq!(t.len(), 2);
        assert_eq!(t.window_total(0).bytes_read, 128);
        assert_eq!(t.window_total(1).bytes_read, 64);
        assert_eq!(t.num_windows(), 2);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Timeline::new(64);
        a.record(10, 0, &delta(1));
        a.record(70, 1, &delta(2));
        let mut b = Timeline::new(64);
        b.record(70, 1, &delta(3));
        b.record(500, 5, &delta(4));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.aggregate().bytes_read, 10);
        assert_eq!(ab.lanes(), vec![0, 1, 5]);
    }

    #[test]
    #[should_panic(expected = "different window widths")]
    fn merge_rejects_mismatched_windows() {
        let mut a = Timeline::new(64);
        a.merge(&Timeline::new(128));
    }

    #[test]
    fn zero_deltas_are_not_stored() {
        let mut t = Timeline::new(10);
        t.record(5, 0, &WindowCounters::default());
        assert!(t.is_empty());
    }

    #[test]
    fn json_round_trips_through_parser() {
        let mut t = Timeline::new(256);
        t.record(300, 2, &delta(96));
        let v = crate::json::parse(&t.to_json()).expect("valid JSON");
        let o = v.as_object().expect("object");
        assert_eq!(o["window_cycles"].as_f64(), Some(256.0));
        let cells = o["cells"].as_array().expect("cells");
        assert_eq!(cells.len(), 1);
        let cell = cells[0].as_object().expect("cell");
        assert_eq!(cell["window"].as_f64(), Some(1.0));
        assert_eq!(cell["lane"].as_f64(), Some(2.0));
    }
}
