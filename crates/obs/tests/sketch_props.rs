//! Property tests for the telemetry quantile sketch: the documented
//! relative-error bound holds for arbitrary streams, merge is
//! commutative bit-exactly, sharded folds reproduce the sequential
//! quantiles, and registry merges are order-insensitive.

use mealib_obs::quantiles::nearest_rank;
use mealib_obs::{MetricsRegistry, QuantileSketch};
use proptest::prelude::*;

/// Positive values spanning nanoseconds to kiloseconds — the dynamic
/// range the serving telemetry actually streams — plus exact zeros
/// (one draw in nine). Exponents are sampled in millibels because the
/// vendored proptest only strategizes integer ranges.
fn value_strategy() -> impl Strategy<Value = f64> {
    (0u64..9, -9000i64..3000).prop_map(|(zero, millibels)| {
        if zero == 0 {
            0.0
        } else {
            10f64.powf(millibels as f64 / 1000.0)
        }
    })
}

fn stream_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(value_strategy(), 1..300)
}

/// Quantiles on a 1/1000 grid over [0, 1].
fn q_strategy() -> impl Strategy<Value = f64> {
    (0u64..=1000).prop_map(|n| n as f64 / 1000.0)
}

/// The documented bound with a few-ulp slack for `ln`/`exp` rounding
/// at bucket boundaries (mirrors the sketch's own unit tests).
fn within_bound(sketch: f64, exact: f64, alpha: f64) -> bool {
    if exact <= QuantileSketch::MIN_VALUE {
        return sketch == 0.0;
    }
    (sketch - exact).abs() <= alpha * exact * (1.0 + 1e-9) + 1e-12
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// |q_sketch - q_exact| <= alpha * q_exact for every quantile of
    /// every stream, against the exact nearest-rank reference.
    #[test]
    fn quantiles_within_documented_bound(
        values in stream_strategy(),
        q in q_strategy(),
    ) {
        let mut sketch = QuantileSketch::default();
        for &v in &values {
            sketch.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = nearest_rank(&sorted, q).unwrap();
        let approx = sketch.quantile(q).unwrap();
        prop_assert!(
            within_bound(approx, exact, sketch.alpha()),
            "q={q}: sketch {approx} vs exact {exact} over {} values",
            values.len()
        );
    }

    /// merge(a, b) == merge(b, a) bit-exactly: equal bucket maps, equal
    /// sum bits, equal rendered JSON.
    #[test]
    fn merge_commutes_bit_exactly(
        xs in stream_strategy(),
        ys in stream_strategy(),
    ) {
        let mut a = QuantileSketch::default();
        for &v in &xs {
            a.record(v);
        }
        let mut b = QuantileSketch::default();
        for &v in &ys {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.sum().to_bits(), ba.sum().to_bits());
        prop_assert_eq!(ab.to_json(), ba.to_json());
    }

    /// Sharding a stream and folding the shards in either order yields
    /// the sequential sketch's quantiles bit-exactly: quantiles depend
    /// only on bucket counts, which add associatively in u64.
    #[test]
    fn sharded_folds_match_sequential_quantiles(
        values in stream_strategy(),
        shards in 1usize..5,
        q in q_strategy(),
    ) {
        let mut sequential = QuantileSketch::default();
        let mut parts = vec![QuantileSketch::default(); shards];
        for (i, &v) in values.iter().enumerate() {
            sequential.record(v);
            parts[i % shards].record(v);
        }
        let mut forward = QuantileSketch::default();
        for p in &parts {
            forward.merge(p);
        }
        let mut reverse = QuantileSketch::default();
        for p in parts.iter().rev() {
            reverse.merge(p);
        }
        let seq_q = sequential.quantile(q).unwrap();
        prop_assert_eq!(forward.quantile(q).unwrap().to_bits(), seq_q.to_bits());
        prop_assert_eq!(reverse.quantile(q).unwrap().to_bits(), seq_q.to_bits());
        prop_assert_eq!(forward.count(), sequential.count());
        prop_assert_eq!(forward.buckets_used(), sequential.buckets_used());
    }

    /// Registry merges commute on the exposition text: two registries
    /// with overlapping counter/histogram keys render identically
    /// whichever way they are folded.
    #[test]
    fn registry_merge_is_order_insensitive(
        xs in stream_strategy(),
        ys in stream_strategy(),
        n in 0u64..1000,
    ) {
        let build = |values: &[f64], count: u64| {
            let mut reg = MetricsRegistry::new();
            reg.describe("test_service_seconds", "service time");
            reg.describe("test_total", "events");
            for &v in values {
                reg.observe("test_service_seconds", &[("class", "a")], v);
            }
            reg.add("test_total", &[("class", "a")], count);
            reg
        };
        let ra = build(&xs, n);
        let rb = build(&ys, 1000 - n);
        let mut ab = ra.clone();
        ab.merge(&rb);
        let mut ba = rb.clone();
        ba.merge(&ra);
        prop_assert_eq!(ab.to_prometheus(), ba.to_prometheus());
        prop_assert_eq!(ab.counter("test_total", &[("class", "a")]), 1000);
    }
}
