//! Host cache-coherence cost model.
//!
//! "The data coherence is enforced by using the `wbinvd` instruction to
//! write back the modified cache lines to main memory before invoking
//! the accelerators" (§3.5). The dominant invocation costs are this
//! write-back plus the descriptor copy into the command space; both are
//! modeled here.

use mealib_types::{Bytes, BytesPerSec, Joules, Seconds, Watts};

/// Parameters of the host's cache write-back behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheModel {
    /// Total last-level cache capacity.
    pub llc_bytes: Bytes,
    /// Expected fraction of the LLC holding dirty lines at invocation.
    pub dirty_fraction: f64,
    /// Rate at which dirty lines drain to DRAM.
    pub writeback_bandwidth: BytesPerSec,
    /// Fixed microcode/serialization latency of `wbinvd`.
    pub base_latency: Seconds,
    /// Host package power while flushing.
    pub flush_power: Watts,
}

impl CacheModel {
    /// A Haswell i7-4770K-like host: 8 MiB LLC, ~25% dirty, draining at
    /// ~16 GB/s.
    pub fn haswell() -> Self {
        Self {
            llc_bytes: Bytes::from_mib(8),
            dirty_fraction: 0.25,
            writeback_bandwidth: BytesPerSec::from_gb_per_sec(16.0),
            base_latency: Seconds::from_micros(20.0),
            flush_power: Watts::new(30.0),
        }
    }

    /// Time of one full `wbinvd` given the expected dirty footprint.
    pub fn flush_time(&self) -> Seconds {
        let dirty = self.llc_bytes.get() as f64 * self.dirty_fraction;
        self.base_latency + Seconds::new(dirty / self.writeback_bandwidth.get())
    }

    /// Time to flush when the working set is smaller than the cache (the
    /// dirty data cannot exceed the bytes the host actually touched).
    pub fn flush_time_for(&self, touched: Bytes) -> Seconds {
        let dirty = (self.llc_bytes.get() as f64 * self.dirty_fraction).min(touched.get() as f64);
        self.base_latency + Seconds::new(dirty / self.writeback_bandwidth.get())
    }

    /// Energy of one flush.
    pub fn flush_energy(&self, flush_time: Seconds) -> Joules {
        self.flush_power.for_duration(flush_time)
    }

    /// Fixed driver cost of one accelerator invocation: the `ioctl` into
    /// the device driver plus serialization, independent of cache state.
    pub fn driver_latency(&self) -> Seconds {
        Seconds::from_micros(25.0)
    }

    /// Per-invocation overhead when the host re-invokes in a tight loop:
    /// the cache holds few dirty lines (the host touched no data since
    /// the last flush), so `wbinvd` costs only its base latency, and the
    /// driver round trip dominates.
    pub fn repeat_invocation_latency(&self) -> Seconds {
        self.base_latency + self.driver_latency()
    }

    /// Time to copy a descriptor image into the (uncached) command space.
    pub fn descriptor_copy_time(&self, image_bytes: usize) -> Seconds {
        // Uncached stores trickle at a fraction of the write-back rate.
        let rate = self.writeback_bandwidth.get() / 4.0;
        Seconds::new(image_bytes as f64 / rate)
    }
}

impl Default for CacheModel {
    fn default() -> Self {
        Self::haswell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_time_has_floor_and_scales() {
        let c = CacheModel::haswell();
        let t = c.flush_time();
        assert!(t >= c.base_latency);
        // 2 MiB dirty at 16 GB/s ≈ 131 µs + 20 µs base.
        assert!((t.as_micros() - 151.0).abs() < 5.0, "{}", t.as_micros());
    }

    #[test]
    fn small_working_sets_flush_faster() {
        let c = CacheModel::haswell();
        let small = c.flush_time_for(Bytes::from_kib(64));
        let large = c.flush_time_for(Bytes::from_gib(1));
        assert!(small < large);
        assert_eq!(large, c.flush_time(), "flush cost caps at the LLC");
    }

    #[test]
    fn descriptor_copy_is_cheap_but_nonzero() {
        let c = CacheModel::haswell();
        let t = c.descriptor_copy_time(4096);
        assert!(t.get() > 0.0);
        assert!(t < Seconds::from_micros(10.0));
    }

    #[test]
    fn repeat_invocation_is_cheaper_than_cold() {
        let c = CacheModel::haswell();
        let cold = c.flush_time() + c.driver_latency();
        let warm = c.repeat_invocation_latency();
        assert!(warm < cold);
        assert!(warm >= c.driver_latency());
    }

    #[test]
    fn flush_energy_tracks_time() {
        let c = CacheModel::haswell();
        let t = Seconds::from_micros(100.0);
        assert!((c.flush_energy(t).get() - 30.0 * 100.0e-6).abs() < 1e-12);
    }
}
