//! Accelerator control runtime routines (Listing 2).
//!
//! ```c
//! acc_plan mealib_acc_plan(const char *tdl, ...);
//! void     mealib_acc_execute(acc_plan p);
//! void     mealib_acc_destroy(acc_plan p);
//! ```
//!
//! [`Runtime::acc_plan`] parses the TDL string, resolves buffer names
//! against the driver's allocation table, and encodes the binary
//! descriptor. [`Runtime::acc_execute`] charges the invocation overhead
//! (cache write-back + descriptor copy), then hands the descriptor to
//! the Configuration Unit model. Plans are reusable, matching the
//! paper's "the accelerator descriptor can be reused to invoke the same
//! accelerator(s) … multiple times".

use std::fmt;

use mealib_accel::cu::{run_descriptor, CuCostModel, CuError, DescriptorRun};
use mealib_accel::AcceleratorLayer;
use mealib_obs::{Attribution, Breakdown, Counter, Obs, Phase, Profile};
use mealib_tdl::{parse_with_lines, Descriptor, DescriptorError, ParamBag, ParseError, TdlProgram};
use mealib_types::{Bytes, Joules, Report, Seconds};
use mealib_verify::TdlLimits;

use mealib_memsim::MemoryConfig;
use mealib_tdl::TdlItem;

use crate::cache::CacheModel;
use crate::driver::{DriverError, MealibDriver, StackId};
use crate::sanitizer::Sanitizer;

/// How strictly [`Runtime::acc_plan`] applies the `mealib-verify`
/// static passes to each plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// Run the passes; coded errors fail the plan (the default).
    #[default]
    Enforce,
    /// Run the passes and record the report, but never fail the plan.
    Warn,
    /// Skip verification entirely (escape hatch for deliberately
    /// malformed inputs, e.g. fault-injection studies).
    Off,
}

/// Errors from the control runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum RuntimeError {
    /// TDL parse failure.
    Parse(ParseError),
    /// Static verification found coded errors (`MEA0xx`).
    Verify(Report),
    /// Descriptor encoding failure (missing params/buffers).
    Descriptor(DescriptorError),
    /// Driver failure (allocation, bounds, command space).
    Driver(DriverError),
    /// Configuration Unit failure while executing.
    Cu(CuError),
    /// The plan was already destroyed.
    PlanDestroyed,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Parse(e) => write!(f, "TDL parse error: {e}"),
            RuntimeError::Verify(r) => write!(f, "static verification failed:\n{r}"),
            RuntimeError::Descriptor(e) => write!(f, "descriptor error: {e}"),
            RuntimeError::Driver(e) => write!(f, "driver error: {e}"),
            RuntimeError::Cu(e) => write!(f, "configuration unit error: {e}"),
            RuntimeError::PlanDestroyed => f.write_str("accelerator plan already destroyed"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<ParseError> for RuntimeError {
    fn from(e: ParseError) -> Self {
        RuntimeError::Parse(e)
    }
}

impl From<DescriptorError> for RuntimeError {
    fn from(e: DescriptorError) -> Self {
        RuntimeError::Descriptor(e)
    }
}

impl From<DriverError> for RuntimeError {
    fn from(e: DriverError) -> Self {
        RuntimeError::Driver(e)
    }
}

impl From<CuError> for RuntimeError {
    fn from(e: CuError) -> Self {
        RuntimeError::Cu(e)
    }
}

/// A prepared accelerator plan (the `acc_plan` of Listing 2).
#[derive(Debug, Clone)]
pub struct AccPlan {
    id: u64,
    program: TdlProgram,
    descriptor: Descriptor,
    destroyed: bool,
}

impl AccPlan {
    /// The TDL program behind this plan.
    pub fn program(&self) -> &TdlProgram {
        &self.program
    }

    /// The encoded descriptor image.
    pub fn descriptor(&self) -> &Descriptor {
        &self.descriptor
    }

    /// Plan identity (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// The modeled cost of one `mealib_acc_execute`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Host-side invocation overhead: `wbinvd` + descriptor copy.
    pub invocation_time: Seconds,
    /// Energy of the host-side overhead.
    pub invocation_energy: Joules,
    /// The Configuration Unit's run (setup + accelerator execution).
    pub run: DescriptorRun,
    /// Per-phase attribution of this invocation; its phase sums equal
    /// [`RunReport::total_time`] / `total_energy` exactly.
    pub breakdown: Breakdown,
    /// Windowed roofline attribution of the invocation against the
    /// layer it actually ran on; its windows tile
    /// `[0, total_time())` with 100% coverage.
    pub attribution: Attribution,
}

/// Number of attribution windows an invocation's modeled time is split
/// into.
const ATTRIBUTION_WINDOWS: f64 = 64.0;

/// The time-resolved interval layout of one invocation: the host-side
/// flush + descriptor copy on a `runtime` track, then the CU run's exact
/// fetch/decode/config/stream/compute/drain layout on a `cu` track.
fn invocation_profile(invocation_time: Seconds, run: &DescriptorRun) -> Profile {
    let mut p = Profile::new();
    p.interval(
        "runtime",
        Phase::Flush,
        "invocation",
        Seconds::ZERO,
        invocation_time,
    );
    p.intervals.extend(run.intervals("cu", invocation_time));
    p
}

impl RunReport {
    /// End-to-end time of the invocation.
    pub fn total_time(&self) -> Seconds {
        self.invocation_time + self.run.total_time()
    }

    /// The time-resolved phase-interval profile of this invocation
    /// (tracks `runtime` and `cu`); its end time equals
    /// [`RunReport::total_time`].
    pub fn profile(&self) -> Profile {
        invocation_profile(self.invocation_time, &self.run)
    }

    /// End-to-end energy of the invocation.
    pub fn total_energy(&self) -> Joules {
        self.invocation_energy + self.run.total_energy()
    }

    /// Overhead (host + CU setup) as a fraction of total time.
    pub fn overhead_time_fraction(&self) -> f64 {
        (self.invocation_time + self.run.setup_time).get() / self.total_time().get()
    }

    /// Overhead as a fraction of total energy.
    pub fn overhead_energy_fraction(&self) -> f64 {
        (self.invocation_energy + self.run.setup_energy).get() / self.total_energy().get()
    }
}

/// Cumulative runtime statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeCounters {
    /// Plans created.
    pub plans_created: u64,
    /// Plans destroyed.
    pub plans_destroyed: u64,
    /// `acc_execute` calls.
    pub executions: u64,
    /// Dynamic accelerator invocations performed.
    pub invocations: u64,
    /// Plan-cache hits ([`Runtime::acc_plan_cached`]).
    pub plan_cache_hits: u64,
}

impl RuntimeCounters {
    /// Exports every counter into a metrics registry under the
    /// `runtime_` prefix (absolute values — these are cumulative
    /// already).
    pub fn export_into(&self, reg: &mut mealib_obs::MetricsRegistry) {
        let pairs: [(&str, &str, u64); 5] = [
            (
                "runtime_plans_created_total",
                "Plans created",
                self.plans_created,
            ),
            (
                "runtime_plans_destroyed_total",
                "Plans destroyed",
                self.plans_destroyed,
            ),
            (
                "runtime_executions_total",
                "acc_execute calls",
                self.executions,
            ),
            (
                "runtime_invocations_total",
                "Dynamic accelerator invocations",
                self.invocations,
            ),
            (
                "runtime_plan_cache_hits_total",
                "Plan-cache hits",
                self.plan_cache_hits,
            ),
        ];
        for (name, help, value) in pairs {
            reg.describe(name, help);
            reg.store(name, &[], value);
        }
    }
}

/// Default capacity of the plan cache (entries).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 128;

/// FIFO plan cache behind a `Mutex`, so a `Runtime` can be shared across
/// sweep worker threads (`Runtime` itself stays `&mut self`, but the
/// cache must not be the field that makes the type `!Sync`).
#[derive(Debug)]
struct PlanCache {
    inner: std::sync::Mutex<PlanCacheInner>,
}

#[derive(Debug, Clone)]
struct PlanCacheInner {
    plans: std::collections::BTreeMap<String, AccPlan>,
    /// Insertion order of `plans` keys (FIFO eviction).
    order: std::collections::VecDeque<String>,
    capacity: usize,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        Self {
            inner: std::sync::Mutex::new(PlanCacheInner {
                plans: std::collections::BTreeMap::new(),
                order: std::collections::VecDeque::new(),
                capacity,
            }),
        }
    }

    /// A poisoned lock only means another thread panicked mid-insert;
    /// the cache holds plain data, so recover rather than propagate.
    fn lock(&self) -> std::sync::MutexGuard<'_, PlanCacheInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn get(&self, key: &str) -> Option<AccPlan> {
        self.lock().plans.get(key).cloned()
    }

    fn insert(&self, key: String, plan: AccPlan) {
        let mut inner = self.lock();
        if inner.capacity == 0 {
            return;
        }
        while inner.plans.len() >= inner.capacity {
            match inner.order.pop_front() {
                Some(oldest) => {
                    inner.plans.remove(&oldest);
                }
                None => break,
            }
        }
        inner.plans.insert(key.clone(), plan);
        inner.order.push_back(key);
    }

    fn clear(&self) {
        let mut inner = self.lock();
        inner.plans.clear();
        inner.order.clear();
    }

    fn set_capacity(&self, capacity: usize) {
        let mut inner = self.lock();
        inner.capacity = capacity;
        while inner.plans.len() > capacity {
            if let Some(oldest) = inner.order.pop_front() {
                inner.plans.remove(&oldest);
            } else {
                break;
            }
        }
    }

    fn capacity(&self) -> usize {
        self.lock().capacity
    }

    fn len(&self) -> usize {
        self.lock().plans.len()
    }
}

impl Clone for PlanCache {
    fn clone(&self) -> Self {
        Self {
            inner: std::sync::Mutex::new(self.lock().clone()),
        }
    }
}

/// The MEALib runtime: driver + cache model + CU cost model + layer.
#[derive(Debug, Clone)]
pub struct Runtime {
    driver: MealibDriver,
    cache: CacheModel,
    cu_cost: CuCostModel,
    layer: AcceleratorLayer,
    counters: RuntimeCounters,
    next_plan_id: u64,
    plan_cache: PlanCache,
    verify_mode: VerifyMode,
    verify_limits: TdlLimits,
    last_verify: Option<Report>,
    obs: Obs,
    sanitizer: Sanitizer,
}

impl Runtime {
    /// Creates a runtime over the default stack and layer.
    pub fn new() -> Self {
        Self::with_parts(
            MealibDriver::with_default_stack(),
            CacheModel::haswell(),
            CuCostModel::default(),
            AcceleratorLayer::mealib_default(),
        )
    }

    /// Creates a runtime over `stacks` memory stacks of 2 GiB each
    /// (stack 0 is the accelerators' LMS).
    ///
    /// # Panics
    ///
    /// Panics if `stacks` is zero.
    pub fn with_stack_count(stacks: usize) -> Self {
        assert!(stacks > 0, "at least one memory stack required");
        let regions = (0..stacks)
            .map(|i| {
                mealib_types::AddrRange::new(
                    mealib_types::PhysAddr::new((8 + 2 * i as u64) << 30),
                    Bytes::from_gib(2),
                )
            })
            .collect();
        Self::with_parts(
            MealibDriver::with_stacks(regions, Bytes::from_mib(1)),
            CacheModel::haswell(),
            CuCostModel::default(),
            AcceleratorLayer::mealib_default(),
        )
    }

    /// Creates a runtime from explicit parts.
    pub fn with_parts(
        driver: MealibDriver,
        cache: CacheModel,
        cu_cost: CuCostModel,
        layer: AcceleratorLayer,
    ) -> Self {
        Self {
            driver,
            cache,
            cu_cost,
            layer,
            counters: RuntimeCounters::default(),
            next_plan_id: 1,
            plan_cache: PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY),
            verify_mode: VerifyMode::default(),
            verify_limits: TdlLimits::default(),
            last_verify: None,
            obs: Obs::off(),
            sanitizer: Sanitizer::off(),
        }
    }

    /// Installs (or clears) the shadow-memory sanitizer. The same
    /// handle is pushed into the driver so host `write`/`read` accesses
    /// are recorded, and it is seeded with the live allocation table so
    /// the overlap pass sees real extents.
    pub fn set_sanitizer(&mut self, san: Sanitizer) {
        san.set_extents(self.driver.extent_table());
        self.driver.set_sanitizer(san.clone());
        self.sanitizer = san;
    }

    /// The current sanitizer handle.
    pub fn sanitizer(&self) -> &Sanitizer {
        &self.sanitizer
    }

    /// Installs (or clears) the observability handle events are
    /// recorded through.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The current observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Caps [`Runtime::acc_plan_cached`]'s cache at `capacity` entries
    /// (FIFO eviction; `0` disables caching). Default:
    /// [`DEFAULT_PLAN_CACHE_CAPACITY`].
    pub fn set_plan_cache_capacity(&mut self, capacity: usize) {
        self.plan_cache.set_capacity(capacity);
    }

    /// The plan cache's capacity in entries.
    pub fn plan_cache_capacity(&self) -> usize {
        self.plan_cache.capacity()
    }

    /// Live entries in the plan cache — together with
    /// [`RuntimeCounters::plan_cache_hits`] this is the descriptor-reuse
    /// telemetry the serving layer reports per run.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// Sets how strictly plans are statically verified (default:
    /// [`VerifyMode::Enforce`]).
    pub fn set_verify_mode(&mut self, mode: VerifyMode) {
        self.verify_mode = mode;
    }

    /// The current verification mode.
    pub fn verify_mode(&self) -> VerifyMode {
        self.verify_mode
    }

    /// The verification report of the most recent [`Runtime::acc_plan`]
    /// (including warnings that did not fail the plan). `None` before
    /// the first plan or when verification is [`VerifyMode::Off`].
    pub fn last_verify_report(&self) -> Option<&Report> {
        self.last_verify.as_ref()
    }

    /// The driver (buffer allocation and host access).
    pub fn driver(&self) -> &MealibDriver {
        &self.driver
    }

    /// Mutable driver access.
    pub fn driver_mut(&mut self) -> &mut MealibDriver {
        &mut self.driver
    }

    /// The accelerator layer.
    pub fn layer(&self) -> &AcceleratorLayer {
        &self.layer
    }

    /// Cumulative counters.
    pub fn counters(&self) -> &RuntimeCounters {
        &self.counters
    }

    /// `mealib_mem_alloc`: allocates a named, physically contiguous,
    /// host-mapped buffer.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError::Driver`] on allocation failure.
    pub fn mem_alloc(&mut self, name: &str, bytes: Bytes) -> Result<(), RuntimeError> {
        self.driver.alloc(name, bytes)?;
        self.obs.count(Counter::AllocBytes, bytes.get());
        self.obs.count(Counter::DriverCalls, 1);
        Ok(())
    }

    /// `mealib_mem_alloc` with an explicit stack: "The memory stack used
    /// for allocation can also be explicitly specified during memory
    /// allocation" (§3.5).
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError::Driver`] for unknown stacks or
    /// allocation failure.
    pub fn mem_alloc_on(
        &mut self,
        name: &str,
        bytes: Bytes,
        stack: StackId,
    ) -> Result<(), RuntimeError> {
        self.driver.alloc_on(name, bytes, stack)?;
        self.obs.count(Counter::AllocBytes, bytes.get());
        self.obs.count(Counter::DriverCalls, 1);
        Ok(())
    }

    /// `mealib_mem_free`.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError::Driver`] if the buffer is unknown.
    pub fn mem_free(&mut self, name: &str) -> Result<(), RuntimeError> {
        self.driver.release(name)?;
        // Cached plans may hold stale physical addresses for this name.
        self.plan_cache.clear();
        self.obs.count(Counter::BufferFrees, 1);
        self.obs.count(Counter::DriverCalls, 1);
        Ok(())
    }

    /// `mealib_acc_plan`: parses TDL, statically verifies it (per the
    /// [`VerifyMode`]), resolves buffers, encodes the descriptor, and
    /// verifies the encoded image before it can reach the command space.
    ///
    /// # Errors
    ///
    /// Returns parse, verification, descriptor, or driver errors.
    pub fn acc_plan(&mut self, tdl: &str, params: &ParamBag) -> Result<AccPlan, RuntimeError> {
        // Host phases have no modeled cost; when recording is on, span
        // them with the real wall-clock time the library spends.
        let timer = self.obs.enabled().then(std::time::Instant::now);
        let wall_span = |obs: &Obs, phase: Phase, since: Option<std::time::Instant>| {
            if let Some(t0) = since {
                let wall = Seconds::new(t0.elapsed().as_secs_f64());
                obs.span_wall(phase, "acc_plan", Seconds::ZERO, Joules::ZERO, wall);
            }
        };
        let (program, lines) = parse_with_lines(tdl)?;
        wall_span(&self.obs, Phase::Plan, timer);
        let timer = self.obs.enabled().then(std::time::Instant::now);
        let mut report = Report::new();
        if self.verify_mode != VerifyMode::Off {
            report = mealib_verify::tdl::verify_program(
                &program,
                Some(&lines),
                Some(params),
                &self.verify_limits,
            );
            // Dataflow pass in implicit mode, against the driver's real
            // allocation extents: overlap and chain-capacity defects
            // surface before the descriptor is even encoded.
            let env = mealib_verify::DataflowEnv {
                extents: self.driver.extent_table(),
                ..Default::default()
            };
            report.merge(mealib_verify::dataflow::verify_program(
                &program,
                Some(&lines),
                &env,
            ));
            if self.verify_mode == VerifyMode::Enforce && report.has_errors() {
                self.last_verify = Some(report.clone());
                return Err(RuntimeError::Verify(report));
            }
        }
        wall_span(&self.obs, Phase::Verify, timer);
        let timer = self.obs.enabled().then(std::time::Instant::now);
        let buffers = self.driver.buffer_table();
        let descriptor = Descriptor::encode(&program, params, &buffers)?;
        if self.verify_mode != VerifyMode::Off {
            report.merge(mealib_verify::descriptor::verify_image(
                descriptor.as_bytes(),
            ));
            self.last_verify = Some(report.clone());
            if self.verify_mode == VerifyMode::Enforce && report.has_errors() {
                return Err(RuntimeError::Verify(report));
            }
        }
        wall_span(&self.obs, Phase::Encode, timer);
        let id = self.next_plan_id;
        self.next_plan_id += 1;
        self.counters.plans_created += 1;
        Ok(AccPlan {
            id,
            program,
            descriptor,
            destroyed: false,
        })
    }

    /// Like [`Runtime::acc_plan`], but reuses a previously built plan
    /// for the identical (TDL, parameters) pair — the paper's
    /// "the accelerator descriptor can be reused to invoke the same
    /// accelerator(s) with the same configuration multiple times".
    ///
    /// The cache key includes the parameter bytes, so changed parameters
    /// build a fresh plan. Buffers are resolved at first build; freeing
    /// and reallocating a referenced buffer invalidates the cache (the
    /// whole cache is cleared on any `mem_free`).
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Runtime::acc_plan`].
    pub fn acc_plan_cached(
        &mut self,
        tdl: &str,
        params: &ParamBag,
    ) -> Result<AccPlan, RuntimeError> {
        let mut key = String::with_capacity(tdl.len() + 64);
        key.push_str(tdl);
        for (name, blob) in params {
            key.push('\u{1f}');
            key.push_str(name);
            key.push('=');
            for b in blob {
                key.push_str(&format!("{b:02x}"));
            }
        }
        if let Some(plan) = self.plan_cache.get(&key) {
            self.counters.plan_cache_hits += 1;
            return Ok(plan);
        }
        let plan = self.acc_plan(tdl, params)?;
        self.plan_cache.insert(key, plan.clone());
        Ok(plan)
    }

    /// `mealib_acc_execute`: flushes the cache, copies the descriptor to
    /// the command space, and runs it through the Configuration Unit.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::PlanDestroyed`], driver, or CU errors.
    pub fn acc_execute(&mut self, plan: &AccPlan) -> Result<RunReport, RuntimeError> {
        self.execute_impl(plan, true)
    }

    /// Like [`Runtime::acc_execute`] but *without* the implicit cache
    /// write-back: only the descriptor copy is charged, and the
    /// sanitizer sees no flush. This is the decomposed invocation used
    /// by harnesses that manage coherence explicitly via
    /// [`Runtime::cache_sync`] — exactly the split the coherence
    /// analysis reasons about.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::PlanDestroyed`], driver, or CU errors.
    pub fn acc_execute_unsynced(&mut self, plan: &AccPlan) -> Result<RunReport, RuntimeError> {
        self.execute_impl(plan, false)
    }

    /// A standalone `wbinvd`: writes back every dirty host line and
    /// invalidates the cache, making host and accelerator views
    /// coherent. Returns the modeled cost.
    pub fn cache_sync(&mut self) -> Seconds {
        self.sanitizer.flush();
        let flush = self.cache.flush_time_for(self.driver.allocated_bytes());
        if self.obs.enabled() {
            self.obs.span(
                Phase::Flush,
                "cache_sync",
                flush,
                self.cache.flush_energy(flush),
            );
            self.obs.count(Counter::CacheFlushes, 1);
        }
        flush
    }

    fn execute_impl(&mut self, plan: &AccPlan, sync: bool) -> Result<RunReport, RuntimeError> {
        if plan.destroyed {
            return Err(RuntimeError::PlanDestroyed);
        }
        let image = plan.descriptor.as_bytes();
        self.driver.write_descriptor(image)?;

        if sync {
            self.sanitizer.flush();
        }
        self.sanitizer.observe_program(&plan.program);

        let copy = self.cache.descriptor_copy_time(image.len());
        let invocation_time = if sync {
            self.cache.flush_time_for(self.driver.allocated_bytes()) + copy
        } else {
            copy
        };
        let invocation_energy = self.cache.flush_energy(invocation_time);

        // §3.3: data should reside in the accelerator's Local Memory
        // Stack. If any referenced buffer lives on a remote stack, every
        // access crosses the inter-stack links — run against the remote
        // memory view.
        let buffer_names: Vec<&str> = plan
            .program
            .items
            .iter()
            .flat_map(|item| match item {
                TdlItem::Pass(p) => vec![p.input.as_str(), p.output.as_str()],
                TdlItem::Loop(l) => l
                    .body
                    .iter()
                    .flat_map(|p| [p.input.as_str(), p.output.as_str()])
                    .collect(),
            })
            .collect();
        let layer = if self.driver.all_local(buffer_names) {
            self.layer.clone()
        } else {
            self.layer.with_mem(MemoryConfig::hmc_stack_remote())
        };
        let run = run_descriptor(&plan.descriptor, &layer, &self.cu_cost)?;
        self.counters.executions += 1;
        self.counters.invocations += run.invocations();

        // Per-phase attribution: the host-side flush + descriptor copy
        // is its own phase, everything else comes from the CU run's
        // exact partition. Building this is a handful of additions, so
        // it is carried unconditionally on every report.
        let mut breakdown = run.breakdown();
        breakdown.add_phase(Phase::Flush, invocation_time, invocation_energy);

        // Roofline attribution against the layer the run actually used
        // (remote placement classifies against the remote-stack peak).
        let profile = invocation_profile(invocation_time, &run);
        let window = Seconds::new(profile.end_time().get() / ATTRIBUTION_WINDOWS);
        let attribution = Attribution::classify(&profile, &layer.roofline(), window);
        if self.obs.enabled() {
            self.obs.span(
                Phase::Flush,
                "acc_execute",
                invocation_time,
                invocation_energy,
            );
            self.obs.record_breakdown(&run.breakdown(), "acc_execute");
            run.record_into(&self.obs);
            if sync {
                self.obs.count(Counter::CacheFlushes, 1);
            }
            self.obs.count(Counter::DriverCalls, 1);
        }
        Ok(RunReport {
            invocation_time,
            invocation_energy,
            run,
            breakdown,
            attribution,
        })
    }

    /// `mealib_acc_destroy`.
    pub fn acc_destroy(&mut self, plan: &mut AccPlan) {
        if !plan.destroyed {
            plan.destroyed = true;
            self.counters.plans_destroyed += 1;
        }
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mealib_accel::AccelParams;

    fn fft_runtime_and_plan(loop_count: u64) -> (Runtime, AccPlan) {
        let mut rt = Runtime::new();
        rt.mem_alloc("x", Bytes::from_mib(4)).unwrap();
        rt.mem_alloc("y", Bytes::from_mib(4)).unwrap();
        let mut params = ParamBag::new();
        params.insert(
            "fft.para".into(),
            AccelParams::Fft { n: 256, batch: 256 }.to_bytes(),
        );
        let tdl =
            format!("LOOP {loop_count} {{ PASS in=x out=y {{ COMP FFT params=\"fft.para\" }} }}");
        let plan = rt.acc_plan(&tdl, &params).unwrap();
        (rt, plan)
    }

    #[test]
    fn plan_execute_destroy_lifecycle() {
        let (mut rt, mut plan) = fft_runtime_and_plan(2);
        let report = rt.acc_execute(&plan).unwrap();
        assert!(report.total_time().get() > 0.0);
        assert_eq!(rt.counters().executions, 1);
        assert_eq!(rt.counters().invocations, 2);
        rt.acc_destroy(&mut plan);
        assert!(matches!(
            rt.acc_execute(&plan),
            Err(RuntimeError::PlanDestroyed)
        ));
        assert_eq!(rt.counters().plans_destroyed, 1);
    }

    #[test]
    fn plans_are_reusable() {
        let (mut rt, plan) = fft_runtime_and_plan(1);
        let a = rt.acc_execute(&plan).unwrap();
        let b = rt.acc_execute(&plan).unwrap();
        assert_eq!(a.run, b.run, "same plan, same modeled cost");
        assert_eq!(rt.counters().executions, 2);
    }

    #[test]
    fn hardware_loop_amortizes_invocation_overhead() {
        // One descriptor with LOOP 128 vs 128 separate executions.
        let (mut rt_hw, plan_hw) = fft_runtime_and_plan(128);
        let hw = rt_hw.acc_execute(&plan_hw).unwrap();

        let (mut rt_sw, plan_sw) = fft_runtime_and_plan(1);
        let one = rt_sw.acc_execute(&plan_sw).unwrap();
        let sw_total = one.total_time() * 128.0;

        assert!(
            sw_total.get() > 3.0 * hw.total_time().get(),
            "Fig 12b shape: software loop {} vs hardware loop {}",
            sw_total,
            hw.total_time()
        );
    }

    #[test]
    fn unknown_buffer_fails_at_plan_time() {
        let mut rt = Runtime::new();
        let mut params = ParamBag::new();
        params.insert(
            "fft.para".into(),
            AccelParams::Fft { n: 256, batch: 1 }.to_bytes(),
        );
        let err = rt
            .acc_plan(
                "PASS in=ghost out=ghost2 { COMP FFT params=\"fft.para\" }",
                &params,
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Descriptor(_)), "{err}");
    }

    #[test]
    fn malformed_tdl_fails_at_plan_time() {
        let mut rt = Runtime::new();
        let err = rt.acc_plan("PASS oops", &ParamBag::new()).unwrap_err();
        assert!(matches!(err, RuntimeError::Parse(_)), "{err}");
    }

    #[test]
    fn semantically_bad_tdl_fails_with_coded_diagnostics() {
        let mut rt = Runtime::new();
        rt.mem_alloc("x", Bytes::from_mib(1)).unwrap();
        let mut params = ParamBag::new();
        params.insert("r.para".into(), vec![0; 8]);
        params.insert("f.para".into(), vec![0; 8]);
        // Chained pass streaming in place: parseable, unrunnable.
        let tdl = "PASS in=x out=x { COMP RESHP params=\"r.para\" COMP FFT params=\"f.para\" }";
        let err = rt.acc_plan(tdl, &params).unwrap_err();
        match err {
            RuntimeError::Verify(report) => {
                assert!(
                    report.has_code(mealib_types::ErrorCode::TdlInPlaceChain),
                    "{report}"
                );
            }
            other => panic!("expected Verify, got {other}"),
        }
        assert!(rt.last_verify_report().unwrap().has_errors());
    }

    #[test]
    fn verify_off_restores_the_old_behavior() {
        let mut rt = Runtime::new();
        rt.mem_alloc("x", Bytes::from_mib(1)).unwrap();
        rt.set_verify_mode(VerifyMode::Off);
        let mut params = ParamBag::new();
        params.insert("r.para".into(), vec![0; 8]);
        params.insert("f.para".into(), vec![0; 8]);
        let tdl = "PASS in=x out=x { COMP RESHP params=\"r.para\" COMP FFT params=\"f.para\" }";
        assert!(rt.acc_plan(tdl, &params).is_ok());
        assert!(rt.last_verify_report().is_none());
    }

    #[test]
    fn verify_warn_records_but_does_not_fail() {
        let mut rt = Runtime::new();
        rt.mem_alloc("x", Bytes::from_mib(1)).unwrap();
        rt.set_verify_mode(VerifyMode::Warn);
        let mut params = ParamBag::new();
        params.insert("r.para".into(), vec![0; 8]);
        params.insert("f.para".into(), vec![0; 8]);
        let tdl = "PASS in=x out=x { COMP RESHP params=\"r.para\" COMP FFT params=\"f.para\" }";
        assert!(rt.acc_plan(tdl, &params).is_ok());
        assert!(rt.last_verify_report().unwrap().has_errors());
    }

    #[test]
    fn missing_param_file_reported_before_encoding() {
        let mut rt = Runtime::new();
        rt.mem_alloc("x", Bytes::from_mib(1)).unwrap();
        rt.mem_alloc("y", Bytes::from_mib(1)).unwrap();
        let err = rt
            .acc_plan(
                "PASS in=x out=y { COMP FFT params=\"nope.para\" }",
                &ParamBag::new(),
            )
            .unwrap_err();
        match err {
            RuntimeError::Verify(report) => {
                assert!(
                    report.has_code(mealib_types::ErrorCode::TdlDanglingParams),
                    "{report}"
                );
            }
            other => panic!("expected Verify, got {other}"),
        }
    }

    #[test]
    fn healthy_plans_verify_clean_and_snapshot_is_consistent() {
        let (mut rt, _) = fft_runtime_and_plan(4);
        let report = rt.last_verify_report().unwrap();
        assert!(report.is_clean(), "{report}");
        let snap = rt.driver().snapshot();
        let audit = mealib_verify::physmem::verify_snapshot(&snap, None);
        assert!(audit.is_clean(), "{audit}");
        // Freeing a buffer keeps the bookkeeping consistent.
        rt.mem_free("x").unwrap();
        let audit = mealib_verify::physmem::verify_snapshot(&rt.driver().snapshot(), None);
        assert!(audit.is_clean(), "{audit}");
    }

    #[test]
    fn overhead_fraction_is_small_for_large_work() {
        let (mut rt, plan) = fft_runtime_and_plan(512);
        let report = rt.acc_execute(&plan).unwrap();
        // Fig 14: invocation overheads are a few percent when work is
        // compacted into few descriptors.
        assert!(
            report.overhead_time_fraction() < 0.25,
            "overhead fraction {:.3}",
            report.overhead_time_fraction()
        );
    }

    #[test]
    fn remote_stack_buffers_slow_execution_down() {
        let mut params = ParamBag::new();
        params.insert(
            "fft.para".into(),
            AccelParams::Fft {
                n: 1024,
                batch: 16384,
            }
            .to_bytes(),
        );
        let tdl = "PASS in=x out=y { COMP FFT params=\"fft.para\" }";

        // Local placement.
        let mut local = Runtime::with_stack_count(2);
        local.mem_alloc("x", Bytes::from_mib(16)).unwrap();
        local.mem_alloc("y", Bytes::from_mib(16)).unwrap();
        let plan = local.acc_plan(tdl, &params).unwrap();
        let fast = local.acc_execute(&plan).unwrap();

        // Same data on the remote stack.
        let mut remote = Runtime::with_stack_count(2);
        remote
            .mem_alloc_on("x", Bytes::from_mib(16), StackId(1))
            .unwrap();
        remote
            .mem_alloc_on("y", Bytes::from_mib(16), StackId(1))
            .unwrap();
        let plan = remote.acc_plan(tdl, &params).unwrap();
        let slow = remote.acc_execute(&plan).unwrap();

        assert!(
            slow.total_time().get() > 2.0 * fast.total_time().get(),
            "remote {} vs local {}",
            slow.total_time(),
            fast.total_time()
        );
        assert!(slow.total_energy().get() > fast.total_energy().get());
    }

    #[test]
    fn unknown_stack_is_rejected() {
        let mut rt = Runtime::with_stack_count(2);
        let err = rt
            .mem_alloc_on("x", Bytes::from_kib(4), StackId(5))
            .unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Driver(DriverError::NoSuchStack { .. })
        ));
    }

    #[test]
    fn stacks_allocate_independently() {
        let mut rt = Runtime::with_stack_count(3);
        rt.mem_alloc_on("a", Bytes::from_gib(1), StackId(0))
            .unwrap();
        rt.mem_alloc_on("b", Bytes::from_gib(1), StackId(1))
            .unwrap();
        rt.mem_alloc_on("c", Bytes::from_gib(1), StackId(2))
            .unwrap();
        assert_eq!(rt.driver().stack_of("b"), Some(StackId(1)));
        assert!(rt.driver().all_local(["a"]));
        assert!(!rt.driver().all_local(["a", "b"]));
    }

    #[test]
    fn plan_cache_reuses_identical_requests() {
        let (mut rt, _) = fft_runtime_and_plan(1);
        let mut params = ParamBag::new();
        params.insert(
            "fft.para".into(),
            AccelParams::Fft { n: 256, batch: 256 }.to_bytes(),
        );
        let tdl = "PASS in=x out=y { COMP FFT params=\"fft.para\" }";
        assert_eq!(rt.plan_cache_len(), 0);
        let a = rt.acc_plan_cached(tdl, &params).unwrap();
        let b = rt.acc_plan_cached(tdl, &params).unwrap();
        assert_eq!(a.id(), b.id(), "second request served from the cache");
        assert_eq!(rt.counters().plan_cache_hits, 1);
        assert_eq!(rt.plan_cache_len(), 1);
        // Different parameters build a fresh plan.
        params.insert(
            "fft.para".into(),
            AccelParams::Fft { n: 512, batch: 256 }.to_bytes(),
        );
        let c = rt.acc_plan_cached(tdl, &params).unwrap();
        assert_ne!(a.id(), c.id());
        assert_eq!(rt.counters().plan_cache_hits, 1);
    }

    #[test]
    fn plan_cache_invalidates_on_free() {
        let (mut rt, _) = fft_runtime_and_plan(1);
        let mut params = ParamBag::new();
        params.insert(
            "fft.para".into(),
            AccelParams::Fft { n: 256, batch: 256 }.to_bytes(),
        );
        let tdl = "PASS in=x out=y { COMP FFT params=\"fft.para\" }";
        let a = rt.acc_plan_cached(tdl, &params).unwrap();
        rt.mem_free("x").unwrap();
        rt.mem_alloc("x", Bytes::from_mib(4)).unwrap();
        let b = rt.acc_plan_cached(tdl, &params).unwrap();
        assert_ne!(a.id(), b.id(), "free must invalidate cached plans");
    }

    #[test]
    fn run_report_breakdown_reconciles_with_totals() {
        for loops in [1, 128] {
            let (mut rt, plan) = fft_runtime_and_plan(loops);
            let report = rt.acc_execute(&plan).unwrap();
            let bd = &report.breakdown;
            let dt = (bd.total_time().get() - report.total_time().get()).abs();
            let de = (bd.total_energy().get() - report.total_energy().get()).abs();
            assert!(
                dt <= 1e-9 * report.total_time().get(),
                "time {} vs {}",
                bd.total_time(),
                report.total_time()
            );
            assert!(
                de <= 1e-9 * report.total_energy().get(),
                "energy {} vs {}",
                bd.total_energy(),
                report.total_energy()
            );
            assert!(bd.phase(Phase::Flush).time.get() > 0.0);
            assert!(bd.phase(Phase::Compute).time.get() > 0.0);
        }
    }

    #[test]
    fn attribution_covers_all_modeled_time() {
        for loops in [1, 64] {
            let (mut rt, plan) = fft_runtime_and_plan(loops);
            let report = rt.acc_execute(&plan).unwrap();
            let a = &report.attribution;
            assert_eq!(a.coverage(), 1.0, "loops={loops}");
            assert!(
                (a.total.get() - report.total_time().get()).abs()
                    <= 1e-9 * report.total_time().get(),
                "loops={loops}: attribution total {} vs report {}",
                a.total,
                report.total_time()
            );
            for pair in a.windows.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "windows must tile");
            }
            // An FFT invocation spends real time in every bucket's
            // source phases; none of the shares can be everything.
            let share_sum: f64 = mealib_obs::Bound::ALL.into_iter().map(|b| a.share(b)).sum();
            assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to 1");
        }
    }

    #[test]
    fn report_profile_reconciles_with_totals() {
        let (mut rt, plan) = fft_runtime_and_plan(8);
        let report = rt.acc_execute(&plan).unwrap();
        let p = report.profile();
        assert!(
            (p.end_time().get() - report.total_time().get()).abs()
                <= 1e-9 * report.total_time().get(),
            "profile end {} vs total {}",
            p.end_time(),
            report.total_time()
        );
        let tracks = p.track_names();
        assert!(tracks.contains(&"runtime".to_string()), "{tracks:?}");
        assert!(tracks.contains(&"cu".to_string()), "{tracks:?}");
        mealib_obs::validate_chrome_trace(&p.to_chrome_trace()).expect("exportable");
    }

    #[test]
    fn recorder_sees_spans_and_counters() {
        use mealib_obs::TraceRecorder;
        let rec = TraceRecorder::shared();
        let mut rt = Runtime::new();
        rt.set_obs(Obs::new(rec.clone()));
        rt.mem_alloc("x", Bytes::from_mib(4)).unwrap();
        rt.mem_alloc("y", Bytes::from_mib(4)).unwrap();
        let mut params = ParamBag::new();
        params.insert(
            "fft.para".into(),
            AccelParams::Fft { n: 256, batch: 256 }.to_bytes(),
        );
        let plan = rt
            .acc_plan("PASS in=x out=y { COMP FFT params=\"fft.para\" }", &params)
            .unwrap();
        let report = rt.acc_execute(&plan).unwrap();
        let bd = rec.breakdown();
        // Host phases are wall-clocked.
        assert!(bd.phase(Phase::Plan).wall.get() > 0.0);
        assert!(bd.phase(Phase::Verify).wall.get() > 0.0);
        assert!(bd.phase(Phase::Encode).wall.get() > 0.0);
        // Modeled device phases reconcile with the report.
        let modeled = bd.total_time();
        assert!(
            (modeled.get() - report.total_time().get()).abs() <= 1e-9 * modeled.get(),
            "recorded {} vs report {}",
            modeled,
            report.total_time()
        );
        assert_eq!(
            bd.counter(Counter::AllocBytes),
            2 * Bytes::from_mib(4).get()
        );
        assert_eq!(bd.counter(Counter::CacheFlushes), 1);
        assert!(bd.counter(Counter::CuPasses) > 0);
        assert!(bd.counter(Counter::DramAct) > 0);
    }

    #[test]
    fn plan_cache_capacity_evicts_fifo() {
        let (mut rt, _) = fft_runtime_and_plan(1);
        rt.set_plan_cache_capacity(2);
        let mut params = ParamBag::new();
        let tdls: Vec<String> = (0..3)
            .map(|i| {
                format!(
                    "LOOP {} {{ PASS in=x out=y {{ COMP FFT params=\"fft.para\" }} }}",
                    i + 2
                )
            })
            .collect();
        params.insert(
            "fft.para".into(),
            AccelParams::Fft { n: 256, batch: 256 }.to_bytes(),
        );
        let a = rt.acc_plan_cached(&tdls[0], &params).unwrap();
        let _b = rt.acc_plan_cached(&tdls[1], &params).unwrap();
        let _c = rt.acc_plan_cached(&tdls[2], &params).unwrap(); // evicts a
        let a2 = rt.acc_plan_cached(&tdls[0], &params).unwrap();
        assert_ne!(a.id(), a2.id(), "oldest entry must have been evicted");
        assert_eq!(rt.counters().plan_cache_hits, 0);
        // The two youngest are still cached.
        let c2 = rt.acc_plan_cached(&tdls[2], &params).unwrap();
        assert_eq!(rt.counters().plan_cache_hits, 1);
        let _ = c2;
        // Capacity 0 disables caching entirely.
        rt.set_plan_cache_capacity(0);
        let d = rt.acc_plan_cached(&tdls[1], &params).unwrap();
        let d2 = rt.acc_plan_cached(&tdls[1], &params).unwrap();
        assert_ne!(d.id(), d2.id());
    }

    #[test]
    fn mem_alloc_free_round_trip() {
        let mut rt = Runtime::new();
        rt.mem_alloc("a", Bytes::from_mib(1)).unwrap();
        assert!(rt.driver().buffer("a").is_some());
        rt.mem_free("a").unwrap();
        assert!(rt.driver().buffer("a").is_none());
        assert!(matches!(rt.mem_free("a"), Err(RuntimeError::Driver(_))));
    }

    /// The parallel sweep moves `Runtime`s (inside experiment closures)
    /// across worker threads; a field that is not `Send + Sync` would
    /// silently serialize the whole sim layer.
    #[test]
    fn runtime_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Runtime>();
        assert_send_sync::<PlanCache>();
    }

    #[test]
    fn plan_cache_clone_is_independent() {
        let (mut rt, _) = fft_runtime_and_plan(1);
        let mut params = ParamBag::new();
        params.insert(
            "fft.para".into(),
            AccelParams::Fft { n: 256, batch: 256 }.to_bytes(),
        );
        let tdl = "PASS in=x out=y { COMP FFT params=\"fft.para\" }";
        let a = rt.acc_plan_cached(tdl, &params).unwrap();
        // The clone carries the cached plan...
        let mut clone = rt.clone();
        let b = clone.acc_plan_cached(tdl, &params).unwrap();
        assert_eq!(a.id(), b.id());
        assert_eq!(clone.counters().plan_cache_hits, 1);
        // ...but its cache is an independent copy: clearing the
        // original does not evict the clone's entry.
        rt.mem_free("x").unwrap();
        let c = clone.acc_plan_cached(tdl, &params).unwrap();
        assert_eq!(a.id(), c.id());
        assert_eq!(clone.counters().plan_cache_hits, 2);
    }
}
